// Extending the library: a user-defined online test scheduler plugged into
// the system through SystemConfig::scheduler_factory.
//
// The example policy is "power-aware round-robin": it walks the cores in a
// fixed circular order (ignoring criticality) but still admits each test
// only if its power fits in the budget slack -- a useful middle ground to
// compare against the paper's criticality-driven ranking.
//
// Usage: custom_scheduler [seconds=10] [occupancy=0.6] [seed=42]

#include <cstdio>
#include <unordered_set>

#include "core/system.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

using namespace mcs;

namespace {

/// Round-robin test order with power-aware admission.
class RoundRobinScheduler : public TestScheduler {
public:
    explicit RoundRobinScheduler(double guard_band_w)
        : guard_band_w_(guard_band_w) {}

    void epoch(SchedulerContext& ctx) override {
        if (ctx.candidates.empty()) {
            return;
        }
        // Index candidates by core for O(1) lookup, then serve cores in
        // circular id order starting after the last one served.
        std::unordered_set<CoreId> offered;
        CoreId max_core = 0;
        for (const TestCandidate& c : ctx.candidates) {
            offered.insert(c.core);
            max_core = std::max(max_core, c.core);
        }
        double slack = ctx.power_slack_w;
        const int top = static_cast<int>(ctx.vf_table->size()) - 1;
        const CoreId base = next_;
        for (CoreId step = 0; step <= max_core; ++step) {
            const CoreId core =
                static_cast<CoreId>((base + step) % (max_core + 1));
            if (!offered.count(core)) {
                continue;
            }
            const double power = ctx.test_power_w(core, top);
            if (power + guard_band_w_ > slack) {
                continue;
            }
            ctx.start_test(core, top);
            slack -= power;
            next_ = core + 1;
        }
    }

    std::string_view name() const override { return "round-robin"; }

private:
    double guard_band_w_;
    CoreId next_ = 0;
};

RunMetrics run_with(const std::function<std::unique_ptr<TestScheduler>()>&
                        factory,
                    SchedulerKind fallback, double occupancy,
                    double seconds, std::uint64_t seed) {
    SystemConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.seed = seed;
    cfg.scheduler = fallback;
    cfg.scheduler_factory = factory;
    const double capacity = 64.0 * technology(cfg.node).max_freq_hz;
    cfg.workload.arrival_rate_hz =
        rate_for_occupancy(occupancy, cfg.workload.graphs, capacity);
    ManycoreSystem sys(cfg);
    return sys.run(from_seconds(seconds));
}

}  // namespace

int run(int argc, char** argv) {
    const Config args = Config::from_args(
        std::span<const char* const>(argv + 1,
                                     static_cast<std::size_t>(argc - 1)));
    const double seconds = args.get_double("seconds", 10.0);
    const double occupancy = args.get_double("occupancy", 0.6);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    std::printf("custom scheduler demo: round-robin (user plug-in) vs the "
                "paper's criticality-driven policy\n\n");

    const RunMetrics rr = run_with(
        [] { return std::make_unique<RoundRobinScheduler>(1.0); },
        SchedulerKind::PowerAware, occupancy, seconds, seed);
    const RunMetrics pa = run_with({}, SchedulerKind::PowerAware, occupancy,
                                   seconds, seed);

    TablePrinter table({"policy", "tests/core/s", "mean interval [s]",
                        "max open gap [s]", "TDP viol.", "test energy"});
    auto row = [&](const char* name, const RunMetrics& m) {
        table.add_row({name, fmt(m.tests_per_core_per_s, 2),
                       fmt(m.test_interval_s.count()
                               ? m.test_interval_s.mean()
                               : 0.0, 2),
                       fmt(m.max_open_test_gap_s, 2),
                       fmt_pct(m.tdp_violation_rate, 3),
                       fmt_pct(m.test_energy_share)});
    };
    row("round-robin (custom)", rr);
    row("power-aware (paper)", pa);
    std::printf("%s\n", table.to_string().c_str());
    return 0;
}

int main(int argc, char** argv) {
    try {
        return run(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "custom_scheduler: error: %s\n", e.what());
        return 1;
    }
}
