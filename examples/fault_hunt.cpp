// Fault-hunt scenario: wear-out faults appear at runtime; the power-aware
// online test scheduler finds them during idle periods and decommissions
// the cores. Prints a per-fault timeline and the detection-latency
// distribution.
//
// Usage: fault_hunt [seconds=15] [rate=0.05] [occupancy=0.6] [seed=7]
//                   [scheduler=power-aware|periodic|greedy|none]

#include <cstdio>

#include "core/system.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

using namespace mcs;

int run(int argc, char** argv) {
    const Config args = Config::from_args(
        std::span<const char* const>(argv + 1,
                                     static_cast<std::size_t>(argc - 1)));

    SystemConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    cfg.enable_fault_injection = true;
    cfg.faults.base_rate_per_core_s = args.get_double("rate", 0.05);

    const std::string sched = args.get_string("scheduler", "power-aware");
    if (sched == "periodic") {
        cfg.scheduler = SchedulerKind::Periodic;
    } else if (sched == "greedy") {
        cfg.scheduler = SchedulerKind::Greedy;
    } else if (sched == "none") {
        cfg.scheduler = SchedulerKind::None;
    }

    const double occupancy = args.get_double("occupancy", 0.6);
    const double capacity = 64.0 * technology(cfg.node).max_freq_hz;
    cfg.workload.arrival_rate_hz =
        rate_for_occupancy(occupancy, cfg.workload.graphs, capacity);

    const double seconds = args.get_double("seconds", 15.0);
    std::printf("fault hunt: %s scheduler, fault rate %.3f /core-s, "
                "%.0f s horizon\n\n",
                sched.c_str(), cfg.faults.base_rate_per_core_s, seconds);

    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(from_seconds(seconds));

    TablePrinter timeline({"core", "unit", "injected [s]", "status",
                           "detected [s]", "latency [s]"});
    const FaultInjector* injector = sys.fault_injector();
    for (const Fault& f : injector->history()) {
        timeline.add_row(
            {fmt(static_cast<std::uint64_t>(f.core)),
             to_string(f.unit), fmt(to_seconds(f.injected), 2),
             f.detected ? "detected" : "latent",
             f.detected ? fmt(to_seconds(f.detected_at), 2) : "-",
             f.detected ? fmt(to_seconds(f.detected_at - f.injected), 2)
                        : "-"});
    }
    std::printf("%s\n", timeline.to_string().c_str());

    std::printf("injected %llu | detected %llu | test escapes %llu | "
                "corrupted tasks %llu\n",
                static_cast<unsigned long long>(m.faults_injected),
                static_cast<unsigned long long>(m.faults_detected),
                static_cast<unsigned long long>(m.test_escapes),
                static_cast<unsigned long long>(m.corrupted_tasks));
    if (!m.detection_latency_samples.empty()) {
        std::printf("detection latency: mean %.2f s | median %.2f s | "
                    "p95 %.2f s | max %.2f s\n",
                    m.detection_latency_samples.mean(),
                    m.detection_latency_samples.median(),
                    m.detection_latency_samples.quantile(0.95),
                    m.detection_latency_samples.max());
    }
    return 0;
}

int main(int argc, char** argv) {
    try {
        return run(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fault_hunt: error: %s\n", e.what());
        return 1;
    }
}
