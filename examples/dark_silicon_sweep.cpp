// Dark-silicon exploration: how much of a chip can each technology node
// keep lit under its power budget, and how much of the leftover budget the
// online test scheduler can harvest.
//
// Usage: dark_silicon_sweep [seconds=6] [seed=42]

#include <cstdio>

#include "core/system.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

using namespace mcs;

namespace {

RunMetrics run_node(TechNode node, double occupancy, SchedulerKind sched,
                    double seconds, std::uint64_t seed, bool compute_bound) {
    SystemConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.node = node;
    cfg.seed = seed;
    cfg.scheduler = sched;
    if (compute_bound) {
        cfg.workload.graphs.min_tasks = 1;
        cfg.workload.graphs.max_tasks = 1;
    }
    const double capacity = 64.0 * technology(node).max_freq_hz;
    cfg.workload.arrival_rate_hz =
        rate_for_occupancy(occupancy, cfg.workload.graphs, capacity);
    ManycoreSystem sys(cfg);
    return sys.run(from_seconds(seconds));
}

}  // namespace

int run(int argc, char** argv) {
    const Config args = Config::from_args(
        std::span<const char* const>(argv + 1,
                                     static_cast<std::size_t>(argc - 1)));
    const double seconds = args.get_double("seconds", 6.0);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    std::printf("dark-silicon sweep: 8x8 chip, four technology nodes\n\n");

    TablePrinter table({"node", "TDP [W]", "lit fraction (saturated)",
                        "tests/core/s (occ 0.6)", "test energy",
                        "mean test interval [s]"});
    for (TechNode node : {TechNode::nm45, TechNode::nm32, TechNode::nm22,
                          TechNode::nm16}) {
        // How much compute survives the power cap when demand is unlimited.
        const RunMetrics wall =
            run_node(node, 1.3, SchedulerKind::None, seconds, seed, true);
        const double lit = wall.work_cycles_per_s /
                           (64.0 * technology(node).max_freq_hz);
        // What the test scheduler harvests at a normal dynamic load.
        const RunMetrics pa = run_node(node, 0.6, SchedulerKind::PowerAware,
                                       seconds, seed, false);
        table.add_row({std::string(to_string(node)), fmt(pa.tdp_w, 1),
                       fmt_pct(lit, 1), fmt(pa.tests_per_core_per_s, 2),
                       fmt_pct(pa.test_energy_share),
                       fmt(pa.test_interval_s.count()
                               ? pa.test_interval_s.mean()
                               : 0.0, 2)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("The lit fraction shrinks each generation (dark silicon); "
                "the widening TDP gap is the budget the paper's scheduler "
                "spends on online testing.\n");
    return 0;
}

int main(int argc, char** argv) {
    try {
        return run(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "dark_silicon_sweep: error: %s\n", e.what());
        return 1;
    }
}
