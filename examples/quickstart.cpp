// Quickstart: simulate an 8x8 16nm manycore running a dynamic workload with
// power-aware online testing, and print the headline numbers.
//
// Usage: quickstart [width=8] [height=8] [seconds=10] [occupancy=0.6]
//                   [seed=42] [scheduler=power-aware|periodic|greedy|none]

#include <cstdio>

#include "core/system.hpp"
#include "util/config.hpp"

int run(int argc, char** argv) {
    const mcs::Config args = mcs::Config::from_args(
        std::span<const char* const>(argv + 1, static_cast<std::size_t>(
                                                   argc - 1)));

    mcs::SystemConfig cfg;
    cfg.width = static_cast<int>(args.get_int("width", 8));
    cfg.height = static_cast<int>(args.get_int("height", 8));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    const std::string sched = args.get_string("scheduler", "power-aware");
    if (sched == "periodic") {
        cfg.scheduler = mcs::SchedulerKind::Periodic;
    } else if (sched == "greedy") {
        cfg.scheduler = mcs::SchedulerKind::Greedy;
    } else if (sched == "none") {
        cfg.scheduler = mcs::SchedulerKind::None;
    }

    cfg.workload.graphs.min_tasks =
        static_cast<int>(args.get_int("min_tasks", 4));
    cfg.workload.graphs.max_tasks =
        static_cast<int>(args.get_int("max_tasks", 16));

    // Translate the requested chip occupancy into a Poisson arrival rate.
    const double occupancy = args.get_double("occupancy", 0.6);
    const auto& tech = mcs::technology(cfg.node);
    const double chip_cycles_per_s =
        static_cast<double>(cfg.width) * static_cast<double>(cfg.height) *
        tech.max_freq_hz;
    cfg.workload.arrival_rate_hz = mcs::rate_for_occupancy(
        occupancy, cfg.workload.graphs, chip_cycles_per_s);

    const double seconds = args.get_double("seconds", 10.0);

    std::printf("manycore online-test quickstart\n");
    std::printf("  chip        : %dx%d @ %s, TDP-capped\n", cfg.width,
                cfg.height, mcs::to_string(cfg.node));
    std::printf("  scheduler   : %s\n", sched.c_str());
    std::printf("  occupancy   : %.2f (%.1f apps/s)\n", occupancy,
                cfg.workload.arrival_rate_hz);
    std::printf("  horizon     : %.1f s\n\n", seconds);

    mcs::ManycoreSystem sys(cfg);
    const mcs::RunMetrics m = sys.run(mcs::from_seconds(seconds));

    std::printf("results\n");
    std::printf("  TDP                  : %.1f W\n", m.tdp_w);
    std::printf("  mean / max power     : %.1f / %.1f W\n", m.mean_power_w,
                m.max_power_w);
    std::printf("  TDP violation rate   : %.4f%%\n",
                m.tdp_violation_rate * 100.0);
    std::printf("  apps completed       : %llu / %llu\n",
                static_cast<unsigned long long>(m.apps_completed),
                static_cast<unsigned long long>(m.apps_arrived));
    std::printf("  task throughput      : %.1f tasks/s\n",
                m.throughput_tasks_per_s);
    std::printf("  work throughput      : %.3e cycles/s\n",
                m.work_cycles_per_s);
    std::printf("  chip utilization     : %.1f%% busy, %.1f%% reserved, "
                "%.1f%% dark\n",
                m.mean_chip_utilization * 100.0,
                m.mean_reserved_fraction * 100.0,
                m.mean_dark_fraction * 100.0);
    std::printf("  tests completed      : %llu (%.2f per core per s)\n",
                static_cast<unsigned long long>(m.tests_completed),
                m.tests_per_core_per_s);
    std::printf("  mean test interval   : %.3f s\n", m.test_interval_s.mean());
    std::printf("  test energy share    : %.2f%%\n",
                m.test_energy_share * 100.0);
    std::printf("  untested cores       : %.1f%% (max open gap %.2f s)\n",
                m.untested_core_fraction * 100.0, m.max_open_test_gap_s);
    std::printf("  tests aborted        : %llu\n",
                static_cast<unsigned long long>(m.tests_aborted));
    std::printf("  mean queue wait      : %.2f ms\n",
                m.app_queue_wait_ms.mean());
    std::printf("  peak temperature     : %.1f C\n", m.peak_temp_c);
    return 0;
}

int main(int argc, char** argv) {
    try {
        return run(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "quickstart: error: %s\n", e.what());
        return 1;
    }
}
