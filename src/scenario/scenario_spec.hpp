#pragma once

// Declarative scenario specifications (schema family "mcs.scenario"): a
// named, time-ordered list of directives that perturb a run mid-flight --
// arrival bursts, forced test aborts / progress invalidations, fault and
// wear injections, power-budget retargeting and forced DVFS moves. A spec
// is pure data; src/scenario/scenario_player.hpp compiles it into calendar
// events over the engine seams so replays are deterministic and snapshots
// carry the replay position.
//
// The grammar is strict by design: unknown keys, unordered times, and
// malformed fields are RequireErrors, never best-effort guesses, because
// the same parser also serves the corpus gate and the fuzz suite.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "app/workload.hpp"
#include "arch/core.hpp"
#include "sbst/fault_model.hpp"
#include "sim/time.hpp"

namespace mcs::telemetry {
struct JsonValue;
}  // namespace mcs::telemetry

namespace mcs {

enum class DirectiveKind {
    ArrivalBurst,        ///< inject + arrive a batch of applications now
    AbortTests,          ///< abort in-flight SBST sessions
    InvalidateProgress,  ///< drop saved segmented-suite progress
    InjectFault,         ///< plant one specific latent fault
    InjectWear,          ///< add wear damage to cores
    SetBudget,           ///< retarget the TDP (scale of the config TDP)
    SetVf,               ///< force Idle/Busy cores to a DVFS level
};

const char* to_string(DirectiveKind kind);

/// One timed directive. Only the fields of the directive's kind are
/// meaningful; parse_scenario rejects specs that set foreign fields.
struct ScenarioDirective {
    DirectiveKind kind = DirectiveKind::ArrivalBurst;
    SimTime at = 0;  ///< absolute firing time ("at_us" * 1 us)

    // arrival_burst
    std::uint64_t apps = 0;  ///< batch size (>= 1)
    int tasks = 0;           ///< fixed tasks per app; 0 = config's range
    QosClass qos = QosClass::BestEffort;

    // abort_tests / invalidate_progress / inject_wear / set_vf:
    // strictly-increasing core ids; empty = every core.
    std::vector<CoreId> cores;

    // inject_fault
    CoreId core = 0;
    FunctionalUnit unit = FunctionalUnit::Alu;
    FaultKind fault = FaultKind::StuckAt;

    // inject_wear
    double damage = 0.0;

    // set_budget
    double tdp_scale = 1.0;

    // set_vf
    int vf_level = 0;
};

struct ScenarioSpec {
    std::string name;
    std::vector<ScenarioDirective> directives;
};

/// Parses and validates a scenario document. Throws RequireError on any
/// deviation: wrong schema tag, unknown keys (top-level or per directive),
/// empty or non-ascending "at_us" times, missing/foreign/ill-typed fields,
/// non-ascending core lists.
ScenarioSpec parse_scenario(const telemetry::JsonValue& doc);

/// parse_scenario over raw text, through the hardened JSON layer with
/// scenario-sized limits (specs are small; a multi-megabyte or deeply
/// nested document is rejected before parsing).
ScenarioSpec parse_scenario_text(std::string_view text);

/// Reads and parses a scenario file.
ScenarioSpec load_scenario_file(const std::string& path);

/// Canonical serialization: schema tag, name, then directives with their
/// fields in fixed order and defaulted optionals omitted. Canonical bytes
/// round-trip exactly: parse_scenario_text(canonical_scenario_json(s))
/// re-canonicalizes to the same bytes.
std::string canonical_scenario_json(const ScenarioSpec& spec);

/// FNV-1a (16 lowercase hex digits) over the canonical bytes: the spec's
/// identity. Snapshots carry it so a checkpointed scenario run can only be
/// resumed under the same spec.
std::string scenario_fingerprint(const ScenarioSpec& spec);

/// The fingerprint as the raw 64-bit hash (per-directive RNG stream root).
std::uint64_t scenario_fingerprint_u64(const ScenarioSpec& spec);

}  // namespace mcs
