#include "scenario/scenario_spec.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "telemetry/json.hpp"
#include "telemetry/schema.hpp"
#include "util/require.hpp"

namespace mcs {

namespace {

using telemetry::JsonValue;

constexpr std::string_view kSchemaFamily = "mcs.scenario";

/// Scenario documents are small; bound hostile input well below the
/// general JSON limits (the parser also serves the fuzz suite).
constexpr telemetry::JsonLimits kScenarioLimits{
    /*max_bytes=*/std::size_t{1} << 20, /*max_depth=*/8};

std::uint64_t fnv1a64(std::string_view bytes) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

DirectiveKind parse_kind(const std::string& name) {
    if (name == "arrival-burst") return DirectiveKind::ArrivalBurst;
    if (name == "abort-tests") return DirectiveKind::AbortTests;
    if (name == "invalidate-progress") {
        return DirectiveKind::InvalidateProgress;
    }
    if (name == "inject-fault") return DirectiveKind::InjectFault;
    if (name == "inject-wear") return DirectiveKind::InjectWear;
    if (name == "set-budget") return DirectiveKind::SetBudget;
    if (name == "set-vf") return DirectiveKind::SetVf;
    MCS_REQUIRE(false, "scenario: unknown directive kind: " + name);
    return DirectiveKind::ArrivalBurst;
}

QosClass parse_qos(const std::string& name) {
    for (std::size_t q = 0; q < kQosClassCount; ++q) {
        if (name == to_string(static_cast<QosClass>(q))) {
            return static_cast<QosClass>(q);
        }
    }
    MCS_REQUIRE(false, "scenario: unknown QoS class: " + name);
    return QosClass::BestEffort;
}

FunctionalUnit parse_unit(const std::string& name) {
    for (std::size_t u = 0; u < kFunctionalUnitCount; ++u) {
        if (name == to_string(static_cast<FunctionalUnit>(u))) {
            return static_cast<FunctionalUnit>(u);
        }
    }
    MCS_REQUIRE(false, "scenario: unknown functional unit: " + name);
    return FunctionalUnit::Alu;
}

FaultKind parse_fault(const std::string& name) {
    for (int k = 0; k <= 2; ++k) {
        if (name == to_string(static_cast<FaultKind>(k))) {
            return static_cast<FaultKind>(k);
        }
    }
    MCS_REQUIRE(false, "scenario: unknown fault kind: " + name);
    return FaultKind::StuckAt;
}

std::vector<CoreId> parse_cores(const JsonValue& v) {
    MCS_REQUIRE(v.is_array() && !v.array.empty(),
                "scenario: \"cores\" must be a non-empty array");
    std::vector<CoreId> cores;
    cores.reserve(v.array.size());
    for (const JsonValue& c : v.array) {
        const std::uint64_t id = c.u64();
        MCS_REQUIRE(id < kInvalidCore, "scenario: core id out of range");
        MCS_REQUIRE(cores.empty() || cores.back() < id,
                    "scenario: core ids must be strictly increasing");
        cores.push_back(static_cast<CoreId>(id));
    }
    return cores;
}

double parse_positive(const JsonValue& v, const char* what) {
    MCS_REQUIRE(v.is_number() && v.number > 0.0,
                std::string("scenario: ") + what + " must be positive");
    return v.number;
}

/// Every key of `obj` must appear in `allowed` (which includes the common
/// keys); foreign fields are grammar errors, not silently ignored state.
void require_keys(const JsonValue& obj,
                  std::initializer_list<std::string_view> allowed) {
    for (const auto& [key, value] : obj.object) {
        bool ok = false;
        for (const std::string_view a : allowed) {
            if (key == a) {
                ok = true;
                break;
            }
        }
        MCS_REQUIRE(ok, "scenario: unknown directive field: " + key);
    }
}

ScenarioDirective parse_directive(const JsonValue& obj) {
    MCS_REQUIRE(obj.is_object(), "scenario: directive must be an object");
    MCS_REQUIRE(obj.has("at_us") && obj.has("kind"),
                "scenario: directive needs \"at_us\" and \"kind\"");
    ScenarioDirective d;
    const std::uint64_t at_us = obj.at("at_us").u64();
    MCS_REQUIRE(at_us > 0, "scenario: at_us must be positive");
    MCS_REQUIRE(at_us < static_cast<std::uint64_t>(-1) / kMicrosecond,
                "scenario: at_us overflows the clock");
    d.at = at_us * kMicrosecond;
    d.kind = parse_kind(obj.at("kind").string);
    switch (d.kind) {
        case DirectiveKind::ArrivalBurst:
            require_keys(obj, {"at_us", "kind", "apps", "tasks", "qos"});
            d.apps = obj.at("apps").u64();
            MCS_REQUIRE(d.apps >= 1 && d.apps <= 4096,
                        "scenario: apps must be in [1, 4096]");
            if (obj.has("tasks")) {
                const std::uint64_t tasks = obj.at("tasks").u64();
                MCS_REQUIRE(tasks >= 1 && tasks <= 4096,
                            "scenario: tasks must be in [1, 4096]");
                d.tasks = static_cast<int>(tasks);
            }
            if (obj.has("qos")) {
                d.qos = parse_qos(obj.at("qos").string);
            }
            break;
        case DirectiveKind::AbortTests:
        case DirectiveKind::InvalidateProgress:
            require_keys(obj, {"at_us", "kind", "cores"});
            if (obj.has("cores")) {
                d.cores = parse_cores(obj.at("cores"));
            }
            break;
        case DirectiveKind::InjectFault: {
            require_keys(obj, {"at_us", "kind", "core", "unit", "fault"});
            MCS_REQUIRE(obj.has("core") && obj.has("unit") &&
                            obj.has("fault"),
                        "scenario: inject-fault needs core/unit/fault");
            const std::uint64_t id = obj.at("core").u64();
            MCS_REQUIRE(id < kInvalidCore, "scenario: core id out of range");
            d.core = static_cast<CoreId>(id);
            d.unit = parse_unit(obj.at("unit").string);
            d.fault = parse_fault(obj.at("fault").string);
            break;
        }
        case DirectiveKind::InjectWear:
            require_keys(obj, {"at_us", "kind", "cores", "damage"});
            MCS_REQUIRE(obj.has("damage"),
                        "scenario: inject-wear needs damage");
            if (obj.has("cores")) {
                d.cores = parse_cores(obj.at("cores"));
            }
            d.damage = parse_positive(obj.at("damage"), "damage");
            break;
        case DirectiveKind::SetBudget:
            require_keys(obj, {"at_us", "kind", "tdp_scale"});
            MCS_REQUIRE(obj.has("tdp_scale"),
                        "scenario: set-budget needs tdp_scale");
            d.tdp_scale = parse_positive(obj.at("tdp_scale"), "tdp_scale");
            break;
        case DirectiveKind::SetVf: {
            require_keys(obj, {"at_us", "kind", "cores", "level"});
            MCS_REQUIRE(obj.has("level"), "scenario: set-vf needs level");
            if (obj.has("cores")) {
                d.cores = parse_cores(obj.at("cores"));
            }
            const std::uint64_t level = obj.at("level").u64();
            MCS_REQUIRE(level <= 64, "scenario: level out of range");
            d.vf_level = static_cast<int>(level);
            break;
        }
    }
    return d;
}

}  // namespace

const char* to_string(DirectiveKind kind) {
    switch (kind) {
        case DirectiveKind::ArrivalBurst: return "arrival-burst";
        case DirectiveKind::AbortTests: return "abort-tests";
        case DirectiveKind::InvalidateProgress: return "invalidate-progress";
        case DirectiveKind::InjectFault: return "inject-fault";
        case DirectiveKind::InjectWear: return "inject-wear";
        case DirectiveKind::SetBudget: return "set-budget";
        case DirectiveKind::SetVf: return "set-vf";
    }
    return "?";
}

ScenarioSpec parse_scenario(const telemetry::JsonValue& doc) {
    telemetry::require_schema(doc, kSchemaFamily);
    for (const auto& [key, value] : doc.object) {
        MCS_REQUIRE(key == "schema" || key == "name" || key == "directives",
                    "scenario: unknown top-level key: " + key);
    }
    MCS_REQUIRE(doc.has("name") && doc.at("name").is_string() &&
                    !doc.at("name").string.empty(),
                "scenario: needs a non-empty \"name\"");
    MCS_REQUIRE(doc.has("directives") && doc.at("directives").is_array() &&
                    !doc.at("directives").array.empty(),
                "scenario: needs a non-empty \"directives\" array");

    ScenarioSpec spec;
    spec.name = doc.at("name").string;
    spec.directives.reserve(doc.at("directives").array.size());
    SimTime prev = 0;
    for (const JsonValue& obj : doc.at("directives").array) {
        ScenarioDirective d = parse_directive(obj);
        MCS_REQUIRE(d.at > prev,
                    "scenario: directive times must be strictly increasing");
        prev = d.at;
        spec.directives.push_back(std::move(d));
    }
    return spec;
}

ScenarioSpec parse_scenario_text(std::string_view text) {
    return parse_scenario(telemetry::parse_json(text, kScenarioLimits));
}

ScenarioSpec load_scenario_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    MCS_REQUIRE(in.is_open(), "cannot open scenario file: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    MCS_REQUIRE(in.good() || in.eof(), "scenario read failed: " + path);
    return parse_scenario_text(text.str());
}

std::string canonical_scenario_json(const ScenarioSpec& spec) {
    std::ostringstream out;
    telemetry::JsonWriter w(out);
    w.begin_object();
    w.field("schema", telemetry::schema_tag(kSchemaFamily));
    w.field("name", spec.name);
    w.key("directives");
    w.begin_array();
    for (const ScenarioDirective& d : spec.directives) {
        w.begin_object();
        w.field("at_us", static_cast<std::uint64_t>(d.at / kMicrosecond));
        w.field("kind", to_string(d.kind));
        const auto write_cores = [&] {
            if (d.cores.empty()) {
                return;
            }
            w.key("cores");
            w.begin_array();
            for (const CoreId id : d.cores) {
                w.value(static_cast<std::uint64_t>(id));
            }
            w.end_array();
        };
        switch (d.kind) {
            case DirectiveKind::ArrivalBurst:
                w.field("apps", d.apps);
                if (d.tasks != 0) {
                    w.field("tasks", static_cast<std::int64_t>(d.tasks));
                }
                if (d.qos != QosClass::BestEffort) {
                    w.field("qos", to_string(d.qos));
                }
                break;
            case DirectiveKind::AbortTests:
            case DirectiveKind::InvalidateProgress:
                write_cores();
                break;
            case DirectiveKind::InjectFault:
                w.field("core", static_cast<std::uint64_t>(d.core));
                w.field("unit", to_string(d.unit));
                w.field("fault", to_string(d.fault));
                break;
            case DirectiveKind::InjectWear:
                write_cores();
                w.field("damage", d.damage);
                break;
            case DirectiveKind::SetBudget:
                w.field("tdp_scale", d.tdp_scale);
                break;
            case DirectiveKind::SetVf:
                write_cores();
                w.field("level", static_cast<std::int64_t>(d.vf_level));
                break;
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return out.str();
}

std::uint64_t scenario_fingerprint_u64(const ScenarioSpec& spec) {
    return fnv1a64(canonical_scenario_json(spec));
}

std::string scenario_fingerprint(const ScenarioSpec& spec) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      scenario_fingerprint_u64(spec)));
    return std::string(buf);
}

}  // namespace mcs
