#include "scenario/scenario_runner.hpp"

#include "core/config_bridge.hpp"
#include "scenario/scenario_player.hpp"
#include "util/require.hpp"

namespace mcs {

bool attach_scenario_from(ManycoreSystem& sys, const Config& cfg) {
    if (!cfg.has("scenario")) {
        return false;
    }
    const std::string path = cfg.get_string("scenario", "");
    MCS_REQUIRE(!path.empty(), "scenario= needs a file path");
    sys.attach_scenario(make_scenario_player(path));
    return true;
}

std::unique_ptr<ManycoreSystem> make_system_with_scenario(const Config& cfg) {
    auto sys = std::make_unique<ManycoreSystem>(system_config_from(cfg));
    attach_scenario_from(*sys, cfg);
    apply_restore(*sys, cfg);
    return sys;
}

RunMetrics run_system_with_scenario(const Config& cfg, SimDuration horizon) {
    return make_system_with_scenario(cfg)->run(horizon);
}

}  // namespace mcs
