#pragma once

// Config-level glue for scenarios: the `scenario=<path>` key attaches a
// ScenarioPlayer to a system built from the same key=value configuration
// that drives everything else, so scenarios compose with --sweep cells,
// restore= forks, and the serve/bench harnesses without new plumbing.

#include <memory>

#include "core/system_factory.hpp"

namespace mcs {

/// If `cfg` carries `scenario=<path>`, loads the spec and attaches a
/// player to `sys`; otherwise does nothing. Must be called before
/// restore()/run() (the façade enforces this). Returns whether a scenario
/// was attached.
bool attach_scenario_from(ManycoreSystem& sys, const Config& cfg);

/// make_system() plus scenario attachment, in the order restore requires
/// (attach first, then restore, so a snapshot captured mid-scenario can
/// reload its replay position).
std::unique_ptr<ManycoreSystem> make_system_with_scenario(const Config& cfg);

/// Builds and runs one (possibly scenario-driven) system; drop-in
/// replacement for run_system as a campaign replica function.
RunMetrics run_system_with_scenario(const Config& cfg, SimDuration horizon);

}  // namespace mcs
