#include "scenario/scenario_player.hpp"

#include <utility>

#include "core/platform_engine.hpp"
#include "core/system.hpp"
#include "core/test_engine.hpp"
#include "core/workload_engine.hpp"
#include "power/power_manager.hpp"
#include "sim/simulator.hpp"
#include "telemetry/json.hpp"
#include "util/require.hpp"

namespace mcs {

namespace {

/// Burst application ids live far above the workload generator's dense
/// 1..n range so the two id spaces can never collide; within the burst
/// space, each directive owns a block wide enough for its whole batch.
constexpr std::uint64_t kBurstIdBase = std::uint64_t{1} << 40;
constexpr std::uint64_t kBurstIdStride = 100'000;

}  // namespace

ScenarioPlayer::ScenarioPlayer(ScenarioSpec spec)
    : spec_(std::move(spec)),
      fingerprint_(scenario_fingerprint(spec_)),
      fingerprint_u64_(scenario_fingerprint_u64(spec_)) {
    MCS_REQUIRE(!spec_.directives.empty(), "scenario: empty spec");
}

void ScenarioPlayer::bind(ManycoreSystem& sys) {
    MCS_REQUIRE(sys_ == nullptr, "scenario player already bound");
    sys_ = &sys;
    // The budget still sits at the configuration TDP here (attachment
    // precedes restore and run), so this anchors set-budget scaling.
    orig_tdp_w_ = sys.budget().tdp_w();
    // Structural validation against the bound system; parse could not see
    // the chip, so id/level ranges are checked here, for restores too.
    const std::size_t cores = sys.chip().core_count();
    const int levels = static_cast<int>(sys.chip().vf_level_count());
    for (const ScenarioDirective& d : spec_.directives) {
        for (const CoreId id : d.cores) {
            MCS_REQUIRE(id < cores, "scenario: core id exceeds chip size");
        }
        if (d.kind == DirectiveKind::InjectFault) {
            MCS_REQUIRE(d.core < cores,
                        "scenario: core id exceeds chip size");
        }
        if (d.kind == DirectiveKind::SetVf) {
            MCS_REQUIRE(d.vf_level < levels,
                        "scenario: V/F level exceeds the table");
        }
    }
}

void ScenarioPlayer::begin(SimDuration horizon) {
    MCS_REQUIRE(sys_ != nullptr, "scenario player not bound");
    MCS_REQUIRE(spec_.directives.back().at < horizon,
                "scenario: directive at or beyond the run horizon");
    next_ = 0;
    schedule_next(spec_.directives.front().at);
}

void ScenarioPlayer::schedule_next(SimTime when) {
    pending_ = sys_->simulator().schedule_at(when, [this] {
        pending_ = EventId{};
        apply(next_);
        ++next_;
        if (next_ < spec_.directives.size()) {
            schedule_next(spec_.directives[next_].at);
        }
    });
}

std::vector<CoreId> ScenarioPlayer::targets_of(
    const ScenarioDirective& d) const {
    if (!d.cores.empty()) {
        return d.cores;
    }
    std::vector<CoreId> all(sys_->chip().core_count());
    for (CoreId id = 0; id < all.size(); ++id) {
        all[id] = id;
    }
    return all;
}

std::vector<ApplicationSpec> ScenarioPlayer::burst_apps(
    std::size_t index) const {
    MCS_REQUIRE(sys_ != nullptr, "scenario player not bound");
    MCS_REQUIRE(index < spec_.directives.size(),
                "scenario: directive index out of range");
    const ScenarioDirective& d = spec_.directives[index];
    MCS_REQUIRE(d.kind == DirectiveKind::ArrivalBurst,
                "scenario: not an arrival-burst directive");
    const WorkloadParams& wl = sys_->config().workload;
    TaskGraphGenParams shape = wl.graphs;
    if (d.tasks > 0) {
        shape.min_tasks = d.tasks;
        shape.max_tasks = d.tasks;
    }
    TaskGraphGenerator gen(shape);
    // Scenario-local stream: rooted at the spec fingerprint and the
    // directive index, fully decoupled from the engines' RNG streams (the
    // stochastic workload/fault processes are unperturbed by the burst).
    Rng rng(Rng::stream_seed(fingerprint_u64_, index));
    std::vector<ApplicationSpec> out;
    out.reserve(d.apps);
    for (std::uint64_t j = 0; j < d.apps; ++j) {
        TaskGraph graph = gen.generate(rng);
        SimDuration deadline = 0;
        if (d.qos != QosClass::BestEffort) {
            // Same deadline derivation as the workload generator's.
            const double ideal_s =
                static_cast<double>(graph.critical_path_cycles()) /
                wl.reference_freq_hz;
            const double factor = d.qos == QosClass::HardRealTime
                                      ? wl.hard_deadline_factor
                                      : wl.soft_deadline_factor;
            deadline = from_seconds(ideal_s * factor);
        }
        out.push_back(ApplicationSpec{
            kBurstIdBase + index * kBurstIdStride + j, d.at, d.qos,
            deadline, std::move(graph)});
    }
    return out;
}

void ScenarioPlayer::apply(std::size_t index) {
    const ScenarioDirective& d = spec_.directives[index];
    const SimTime now = sys_->simulator().now();
    switch (d.kind) {
        case DirectiveKind::ArrivalBurst: {
            WorkloadEngine& workload = sys_->workload_engine();
            for (ApplicationSpec& spec : burst_apps(index)) {
                const std::size_t idx = workload.inject(std::move(spec));
                workload.on_arrival(idx);
            }
            break;
        }
        case DirectiveKind::AbortTests: {
            TestEngine& test = sys_->test_engine();
            for (const CoreId id : targets_of(d)) {
                if (test.test_active(id)) {
                    test.abort_test(id);
                }
            }
            break;
        }
        case DirectiveKind::InvalidateProgress: {
            TestEngine& test = sys_->test_engine();
            for (const CoreId id : targets_of(d)) {
                test.invalidate_progress(id);
            }
            break;
        }
        case DirectiveKind::InjectFault:
            // False (injection disabled / core already faulted-latent) is
            // not an error: the directive is a stress stimulus, not an
            // assertion about the run's current state.
            (void)sys_->platform_engine().force_fault(d.core, d.unit,
                                                      d.fault);
            break;
        case DirectiveKind::InjectWear: {
            const std::vector<CoreId> cores = targets_of(d);
            sys_->platform_engine().inject_wear(cores, d.damage);
            break;
        }
        case DirectiveKind::SetBudget:
            sys_->budget().set_tdp(orig_tdp_w_ * d.tdp_scale);
            break;
        case DirectiveKind::SetVf: {
            PowerManager& pm = sys_->platform_engine().power_manager();
            for (const CoreId id : targets_of(d)) {
                const Core& c = sys_->chip().core(id);
                if ((c.state() == CoreState::Idle ||
                     c.state() == CoreState::Busy) &&
                    c.vf_level() != d.vf_level) {
                    pm.force_vf(now, id, d.vf_level);
                }
            }
            break;
        }
    }
}

void ScenarioPlayer::append_event_manifest(
    std::vector<SnapshotEvent>& out) const {
    if (!pending_.valid() || !sys_->simulator().is_pending(pending_)) {
        return;
    }
    SnapshotEvent e;
    e.kind = "scenario";
    e.when = sys_->simulator().event_time(pending_);
    e.seq = pending_.seq;
    e.a = next_;
    out.push_back(std::move(e));
}

void ScenarioPlayer::save_state(telemetry::JsonWriter& w) const {
    w.begin_object();
    w.field("fingerprint", fingerprint_);
    w.field("name", spec_.name);
    w.field("next", static_cast<std::uint64_t>(next_));
    w.end_object();
}

void ScenarioPlayer::load_state(const telemetry::JsonValue& doc) {
    MCS_REQUIRE(doc.at("fingerprint").string == fingerprint_,
                "snapshot scenario: spec fingerprint mismatch (the "
                "attached scenario differs from the captured one)");
    const std::uint64_t next = doc.at("next").u64();
    MCS_REQUIRE(next <= spec_.directives.size(),
                "snapshot scenario: replay position out of range");
    next_ = static_cast<std::size_t>(next);
}

void ScenarioPlayer::reinject_restored() {
    WorkloadEngine& workload = sys_->workload_engine();
    for (std::size_t i = 0; i < next_; ++i) {
        if (spec_.directives[i].kind != DirectiveKind::ArrivalBurst) {
            continue;
        }
        // Same specs in the same order as the live run appended them; the
        // engine's runtime state (loaded right after this) indexes apps by
        // position, so the vectors line up exactly.
        for (ApplicationSpec& spec : burst_apps(i)) {
            (void)workload.inject(std::move(spec));
        }
    }
}

void ScenarioPlayer::reapply_restored() {
    // The power budget's TDP is rebuilt from configuration, so an applied
    // set-budget directive must be replayed onto the restored budget. All
    // other directives' effects live inside persisted engine state.
    for (std::size_t i = next_; i-- > 0;) {
        const ScenarioDirective& d = spec_.directives[i];
        if (d.kind == DirectiveKind::SetBudget) {
            sys_->budget().set_tdp(orig_tdp_w_ * d.tdp_scale);
            break;
        }
    }
}

void ScenarioPlayer::schedule_restored_directive(std::uint64_t index,
                                                 SimTime when) {
    MCS_REQUIRE(sys_ != nullptr, "scenario player not bound");
    MCS_REQUIRE(index == next_,
                "snapshot scenario: pending directive index does not match "
                "the replay position");
    MCS_REQUIRE(next_ < spec_.directives.size() &&
                    spec_.directives[next_].at == when,
                "snapshot scenario: pending directive time mismatch");
    schedule_next(when);
}

std::unique_ptr<ScenarioPlayer> make_scenario_player(
    const std::string& path) {
    return std::make_unique<ScenarioPlayer>(load_scenario_file(path));
}

}  // namespace mcs
