#pragma once

// ScenarioPlayer: compiles a ScenarioSpec into calendar-queue events over
// the engine seams of a ManycoreSystem. Directives are chained -- each
// directive's event schedules the next one -- so the player contributes at
// most one pending event to the queue at any instant, which keeps the
// snapshot manifest entry ("scenario", a = next directive index) trivially
// unique and the replay position a single integer.
//
// Determinism: directive application is pure replay (no RNG draws on the
// engines' streams; burst applications are generated from a scenario-local
// stream rooted at the spec fingerprint), so a scenario run is
// byte-identical across epoch_workers counts and across checkpoint/restore
// -- the same contract every other subsystem honors.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/scenario_hook.hpp"
#include "scenario/scenario_spec.hpp"
#include "sim/event_queue.hpp"

namespace mcs {

class ScenarioPlayer final : public ScenarioDriver {
public:
    explicit ScenarioPlayer(ScenarioSpec spec);

    // --- ScenarioDriver ---
    void bind(ManycoreSystem& sys) override;
    void begin(SimDuration horizon) override;
    void append_event_manifest(
        std::vector<SnapshotEvent>& out) const override;
    void save_state(telemetry::JsonWriter& w) const override;
    void load_state(const telemetry::JsonValue& doc) override;
    void reinject_restored() override;
    void reapply_restored() override;
    void schedule_restored_directive(std::uint64_t index,
                                     SimTime when) override;

    // --- introspection (tests) ---
    const ScenarioSpec& spec() const noexcept { return spec_; }
    const std::string& fingerprint() const noexcept { return fingerprint_; }
    /// Directives applied so far (== index of the next one to fire).
    std::size_t applied() const noexcept { return next_; }

    /// The burst applications directive `index` injects, exactly as the
    /// player generates them (scenario-local RNG stream, burst id space).
    /// Exposed so differential tests can hand-drive the same injections.
    std::vector<ApplicationSpec> burst_apps(std::size_t index) const;

private:
    void schedule_next(SimTime when);
    void apply(std::size_t index);
    /// d.cores, or every core id when the directive targets all cores.
    std::vector<CoreId> targets_of(const ScenarioDirective& d) const;

    ScenarioSpec spec_;
    std::string fingerprint_;
    std::uint64_t fingerprint_u64_ = 0;
    ManycoreSystem* sys_ = nullptr;
    double orig_tdp_w_ = 0.0;
    std::size_t next_ = 0;  ///< next unapplied directive
    EventId pending_{};
};

/// Convenience: parse `path` and wrap the spec in a player.
std::unique_ptr<ScenarioPlayer> make_scenario_player(
    const std::string& path);

}  // namespace mcs
