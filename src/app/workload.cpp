#include "app/workload.hpp"

#include <cmath>

#include "util/require.hpp"

namespace mcs {

TaskGraphGenerator::TaskGraphGenerator(TaskGraphGenParams params)
    : params_(params) {
    MCS_REQUIRE(params_.min_tasks >= 1, "graphs need at least one task");
    MCS_REQUIRE(params_.max_tasks >= params_.min_tasks,
                "task count range must be ordered");
    MCS_REQUIRE(params_.min_cycles >= 1, "task cycles must be positive");
    MCS_REQUIRE(params_.max_cycles >= params_.min_cycles,
                "cycle range must be ordered");
    MCS_REQUIRE(params_.max_edge_bytes >= params_.min_edge_bytes,
                "edge byte range must be ordered");
    MCS_REQUIRE(params_.max_fanin >= 1, "max fan-in must be at least 1");
}

TaskGraph TaskGraphGenerator::generate(Rng& rng) const {
    const int n = static_cast<int>(
        rng.uniform_int(params_.min_tasks, params_.max_tasks));

    // Log-uniform cycle draw.
    const double log_lo = std::log(static_cast<double>(params_.min_cycles));
    const double log_hi = std::log(static_cast<double>(params_.max_cycles));
    auto draw_cycles = [&] {
        return static_cast<std::uint64_t>(
            std::exp(rng.uniform(log_lo, log_hi)));
    };
    auto draw_bytes = [&] {
        return static_cast<std::uint64_t>(rng.uniform_int(
            static_cast<std::int64_t>(params_.min_edge_bytes),
            static_cast<std::int64_t>(params_.max_edge_bytes)));
    };

    std::vector<Task> tasks(static_cast<std::size_t>(n));
    for (auto& t : tasks) {
        t.cycles = draw_cycles();
    }

    // Layered DAG, 2..4 layers with tasks spread evenly (wide, shallow
    // graphs: most tasks run in parallel, as in the streaming workloads the
    // paper family maps). Each task in layer k >= 1 connects from
    // 1..max_fanin distinct tasks of layer k-1 (edges stored on the
    // predecessor side).
    const int depth = n == 1 ? 1
                             : static_cast<int>(rng.uniform_int(
                                   2, std::min<std::int64_t>(4, n)));
    std::vector<std::vector<TaskIndex>> layers(
        static_cast<std::size_t>(depth));
    int placed = 0;
    for (int k = 0; k < depth; ++k) {
        const int width = n / depth + (k < n % depth ? 1 : 0);
        for (int i = 0; i < width; ++i) {
            layers[static_cast<std::size_t>(k)].push_back(
                static_cast<TaskIndex>(placed++));
        }
    }
    MCS_REQUIRE(placed == n, "layer distribution lost tasks");
    for (std::size_t k = 1; k < layers.size(); ++k) {
        const auto& prev = layers[k - 1];
        for (TaskIndex t : layers[k]) {
            const int fanin = static_cast<int>(rng.uniform_int(
                1, std::min<std::int64_t>(params_.max_fanin,
                                          static_cast<std::int64_t>(
                                              prev.size()))));
            // Sample distinct predecessors by shuffling a copy.
            std::vector<TaskIndex> pool = prev;
            rng.shuffle(std::span<TaskIndex>(pool));
            for (int i = 0; i < fanin; ++i) {
                tasks[pool[static_cast<std::size_t>(i)]].successors.push_back(
                    TaskEdge{t, draw_bytes()});
            }
        }
    }
    return TaskGraph(std::move(tasks));
}

double TaskGraphGenerator::estimate_mean_app_cycles(
    const TaskGraphGenParams& params, std::uint64_t seed, int samples) {
    MCS_REQUIRE(samples > 0, "need at least one sample");
    TaskGraphGenerator gen(params);
    Rng rng(seed);
    double sum = 0.0;
    for (int i = 0; i < samples; ++i) {
        sum += static_cast<double>(gen.generate(rng).total_cycles());
    }
    return sum / static_cast<double>(samples);
}

const char* to_string(QosClass qos) {
    switch (qos) {
        case QosClass::BestEffort: return "best-effort";
        case QosClass::SoftRealTime: return "soft-RT";
        case QosClass::HardRealTime: return "hard-RT";
    }
    return "?";
}

WorkloadGenerator::WorkloadGenerator(WorkloadParams params, std::uint64_t seed)
    : params_(std::move(params)), rng_(seed) {
    MCS_REQUIRE(params_.arrival_rate_hz > 0.0,
                "arrival rate must be positive");
    MCS_REQUIRE(params_.best_effort_weight >= 0.0 &&
                    params_.soft_rt_weight >= 0.0 &&
                    params_.hard_rt_weight >= 0.0,
                "QoS weights must be non-negative");
    MCS_REQUIRE(params_.best_effort_weight + params_.soft_rt_weight +
                        params_.hard_rt_weight > 0.0,
                "at least one QoS weight must be positive");
    MCS_REQUIRE(params_.hard_deadline_factor > 0.0 &&
                    params_.soft_deadline_factor > 0.0,
                "deadline factors must be positive");
    MCS_REQUIRE(params_.reference_freq_hz > 0.0,
                "reference frequency must be positive");
}

std::vector<ApplicationSpec> WorkloadGenerator::generate(SimTime horizon) {
    TaskGraphGenerator gen(params_.graphs);
    Rng graph_rng = rng_.split();
    std::vector<ApplicationSpec> out;
    const double mean_gap_s = 1.0 / params_.arrival_rate_hz;
    double t_s = 0.0;
    while (true) {
        t_s += rng_.exponential(mean_gap_s);
        const SimTime arrival = from_seconds(t_s);
        if (arrival >= horizon) {
            break;
        }
        TaskGraph graph =
            params_.graph_library.empty()
                ? gen.generate(graph_rng)
                : params_.graph_library[graph_rng.index(
                      params_.graph_library.size())];

        // Draw the QoS class and derive the deadline from the graph's
        // ideal makespan.
        const double weights[] = {params_.best_effort_weight,
                                  params_.soft_rt_weight,
                                  params_.hard_rt_weight};
        const auto qos = static_cast<QosClass>(rng_.categorical(weights));
        SimDuration deadline = 0;
        if (qos != QosClass::BestEffort) {
            const double ideal_s =
                static_cast<double>(graph.critical_path_cycles()) /
                params_.reference_freq_hz;
            const double factor = qos == QosClass::HardRealTime
                                      ? params_.hard_deadline_factor
                                      : params_.soft_deadline_factor;
            deadline = from_seconds(ideal_s * factor);
        }
        out.push_back(ApplicationSpec{next_id_++, arrival, qos, deadline,
                                      std::move(graph)});
    }
    return out;
}

double WorkloadGenerator::offered_utilization(const WorkloadParams& params,
                                              double chip_cycles_per_s) {
    MCS_REQUIRE(chip_cycles_per_s > 0.0, "chip capacity must be positive");
    const double mean_cycles =
        TaskGraphGenerator::estimate_mean_app_cycles(params.graphs);
    return params.arrival_rate_hz * mean_cycles / chip_cycles_per_s;
}

double WorkloadGenerator::rate_for_utilization(
    double target_utilization, const TaskGraphGenParams& graphs,
    double chip_cycles_per_s) {
    MCS_REQUIRE(target_utilization > 0.0, "target utilization must be > 0");
    const double mean_cycles =
        TaskGraphGenerator::estimate_mean_app_cycles(graphs);
    return target_utilization * chip_cycles_per_s / mean_cycles;
}

}  // namespace mcs
