#include "app/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/require.hpp"

namespace mcs {

TaskGraph read_task_graph(std::istream& in) {
    std::vector<Task> tasks;
    std::vector<bool> declared;
    bool have_count = false;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream ls(line);
        std::string directive;
        if (!(ls >> directive)) {
            continue;  // blank / comment line
        }
        const std::string where =
            " (line " + std::to_string(line_no) + ")";
        if (directive == "tasks") {
            MCS_REQUIRE(!have_count, "duplicate 'tasks' directive" + where);
            std::size_t count = 0;
            MCS_REQUIRE(static_cast<bool>(ls >> count),
                        "malformed 'tasks' directive" + where);
            MCS_REQUIRE(count > 0, "graph must have tasks" + where);
            tasks.resize(count);
            declared.assign(count, false);
            have_count = true;
        } else if (directive == "task") {
            MCS_REQUIRE(have_count, "'task' before 'tasks'" + where);
            std::size_t index = 0;
            std::uint64_t cycles = 0;
            MCS_REQUIRE(static_cast<bool>(ls >> index >> cycles),
                        "malformed 'task' directive" + where);
            MCS_REQUIRE(index < tasks.size(), "task index out of range" +
                                                  where);
            MCS_REQUIRE(!declared[index], "duplicate task" + where);
            MCS_REQUIRE(cycles > 0, "task cycles must be positive" + where);
            tasks[index].cycles = cycles;
            declared[index] = true;
        } else if (directive == "edge") {
            MCS_REQUIRE(have_count, "'edge' before 'tasks'" + where);
            std::size_t src = 0, dst = 0;
            std::uint64_t bytes = 0;
            MCS_REQUIRE(static_cast<bool>(ls >> src >> dst >> bytes),
                        "malformed 'edge' directive" + where);
            MCS_REQUIRE(src < tasks.size() && dst < tasks.size(),
                        "edge endpoint out of range" + where);
            tasks[src].successors.push_back(
                TaskEdge{static_cast<TaskIndex>(dst), bytes});
        } else {
            MCS_REQUIRE(false, "unknown directive '" + directive + "'" +
                                   where);
        }
    }
    MCS_REQUIRE(have_count, "missing 'tasks' directive");
    for (std::size_t i = 0; i < declared.size(); ++i) {
        MCS_REQUIRE(declared[i],
                    "task " + std::to_string(i) + " not declared");
    }
    return TaskGraph(std::move(tasks));
}

TaskGraph load_task_graph(const std::string& path) {
    std::ifstream in(path);
    MCS_REQUIRE(in.is_open(), "cannot open task graph file: " + path);
    return read_task_graph(in);
}

void write_task_graph(const TaskGraph& graph, std::ostream& out) {
    out << "tasks " << graph.size() << "\n";
    for (TaskIndex i = 0; i < graph.size(); ++i) {
        out << "task " << i << " " << graph.task(i).cycles << "\n";
    }
    for (TaskIndex i = 0; i < graph.size(); ++i) {
        for (const TaskEdge& e : graph.task(i).successors) {
            out << "edge " << i << " " << e.dst << " " << e.bytes << "\n";
        }
    }
}

void save_task_graph(const TaskGraph& graph, const std::string& path) {
    std::ofstream out(path);
    MCS_REQUIRE(out.is_open(), "cannot open task graph file: " + path);
    write_task_graph(graph, out);
}

}  // namespace mcs
