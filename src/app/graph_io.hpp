#pragma once

#include <iosfwd>
#include <string>

#include "app/task_graph.hpp"

namespace mcs {

/// Plain-text task-graph format (TGFF-like, one directive per line):
///
///     # comment / blank lines ignored
///     tasks <count>
///     task <index> <cycles>
///     edge <src> <dst> <bytes>
///
/// `tasks` must come first; every task index must be declared exactly once;
/// edges reference declared tasks. The resulting graph is validated by the
/// TaskGraph constructor (acyclicity etc.).
TaskGraph read_task_graph(std::istream& in);
TaskGraph load_task_graph(const std::string& path);

void write_task_graph(const TaskGraph& graph, std::ostream& out);
void save_task_graph(const TaskGraph& graph, const std::string& path);

}  // namespace mcs
