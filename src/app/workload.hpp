#pragma once

#include <cstdint>
#include <vector>

#include "app/task_graph.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace mcs {

/// TGFF-style random task-graph parameters. Graphs are layered DAGs:
/// `min_tasks..max_tasks` tasks arranged in layers, each non-source task
/// drawing 1..max_fanin predecessors from the previous layer. Cycle counts
/// are log-uniform (task sizes span decades, as in real mixes).
struct TaskGraphGenParams {
    int min_tasks = 4;
    int max_tasks = 16;
    std::uint64_t min_cycles = 400'000;
    std::uint64_t max_cycles = 4'000'000;
    std::uint64_t min_edge_bytes = 2'000;
    std::uint64_t max_edge_bytes = 64'000;
    int max_fanin = 3;
};

/// Generates random applications (one task per core in the paper family's
/// mapping model, so an n-task graph requests an n-core region).
class TaskGraphGenerator {
public:
    explicit TaskGraphGenerator(TaskGraphGenParams params = {});

    TaskGraph generate(Rng& rng) const;

    const TaskGraphGenParams& params() const noexcept { return params_; }

    /// Monte-Carlo estimate of the mean total cycles of one application;
    /// used to translate an arrival rate into offered chip utilization.
    static double estimate_mean_app_cycles(const TaskGraphGenParams& params,
                                           std::uint64_t seed = 1,
                                           int samples = 2000);

private:
    TaskGraphGenParams params_;
};

/// Application criticality classes (the ICCD'14 power-management companion
/// distinguishes hard real-time, soft real-time and best-effort workloads
/// and treats them with according priority).
enum class QosClass { BestEffort, SoftRealTime, HardRealTime };
inline constexpr std::size_t kQosClassCount = 3;

const char* to_string(QosClass qos);

/// One dynamically arriving application instance.
struct ApplicationSpec {
    std::uint64_t id = 0;
    SimTime arrival = 0;
    QosClass qos = QosClass::BestEffort;
    /// Completion deadline relative to arrival (0 = none / best effort).
    SimDuration relative_deadline = 0;
    TaskGraph graph;
};

/// Dynamic workload parameters: Poisson arrivals at `arrival_rate_hz`.
/// Application shapes come from the random generator (`graphs`) unless a
/// fixed `graph_library` is supplied (e.g. loaded via app/graph_io.hpp), in
/// which case each arrival draws uniformly from the library.
struct WorkloadParams {
    double arrival_rate_hz = 50.0;
    TaskGraphGenParams graphs;
    std::vector<TaskGraph> graph_library;

    /// Class mix (normalized internally). Default: best-effort only (the
    /// DATE'15 evaluation); the QoS experiments raise the real-time shares.
    double best_effort_weight = 1.0;
    double soft_rt_weight = 0.0;
    double hard_rt_weight = 0.0;
    /// Deadlines are `factor x` the application's ideal makespan (critical
    /// path at `reference_freq_hz`, no queueing or communication).
    double hard_deadline_factor = 2.0;
    double soft_deadline_factor = 4.0;
    double reference_freq_hz = 2.5e9;
};

/// Pre-generates a deterministic arrival trace for a simulation horizon.
class WorkloadGenerator {
public:
    WorkloadGenerator(WorkloadParams params, std::uint64_t seed);

    /// All applications arriving strictly before `horizon`.
    std::vector<ApplicationSpec> generate(SimTime horizon);

    /// Offered chip utilization for a given compute capacity
    /// (cores * nominal frequency), in [0, inf): 1.0 means arrivals demand
    /// exactly the whole chip.
    static double offered_utilization(const WorkloadParams& params,
                                      double chip_cycles_per_s);

    /// Arrival rate that produces a target offered utilization.
    static double rate_for_utilization(double target_utilization,
                                       const TaskGraphGenParams& graphs,
                                       double chip_cycles_per_s);

private:
    WorkloadParams params_;
    Rng rng_;
    std::uint64_t next_id_ = 1;
};

}  // namespace mcs
