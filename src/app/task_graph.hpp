#pragma once

#include <cstdint>
#include <vector>

namespace mcs {

using TaskIndex = std::uint32_t;

/// Directed communication edge: when the owning task finishes it sends
/// `bytes` to task `dst`, which cannot start before the data arrives.
struct TaskEdge {
    TaskIndex dst = 0;
    std::uint64_t bytes = 0;
};

/// One task: a computation of `cycles` clock cycles plus outgoing edges.
struct Task {
    std::uint64_t cycles = 0;
    std::vector<TaskEdge> successors;
};

/// An immutable application task graph (DAG). Construction validates edge
/// targets and acyclicity and precomputes predecessor counts.
class TaskGraph {
public:
    explicit TaskGraph(std::vector<Task> tasks);

    std::size_t size() const noexcept { return tasks_.size(); }
    const Task& task(TaskIndex i) const;
    std::uint32_t pred_count(TaskIndex i) const;

    /// Tasks with no predecessors (ready at application start).
    const std::vector<TaskIndex>& sources() const noexcept { return sources_; }

    std::uint64_t total_cycles() const noexcept { return total_cycles_; }
    std::uint64_t total_comm_bytes() const noexcept { return total_bytes_; }
    std::size_t edge_count() const noexcept { return edge_count_; }

    /// Length (in cycles) of the longest dependency chain — the lower bound
    /// on makespan at a fixed frequency with unlimited cores.
    std::uint64_t critical_path_cycles() const noexcept {
        return critical_path_cycles_;
    }

private:
    std::vector<Task> tasks_;
    std::vector<std::uint32_t> pred_counts_;
    std::vector<TaskIndex> sources_;
    std::uint64_t total_cycles_ = 0;
    std::uint64_t total_bytes_ = 0;
    std::size_t edge_count_ = 0;
    std::uint64_t critical_path_cycles_ = 0;
};

}  // namespace mcs
