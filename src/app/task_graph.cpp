#include "app/task_graph.hpp"

#include <algorithm>
#include <queue>

#include "util/require.hpp"

namespace mcs {

TaskGraph::TaskGraph(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
    MCS_REQUIRE(!tasks_.empty(), "task graph must be non-empty");
    const std::size_t n = tasks_.size();
    pred_counts_.assign(n, 0);
    for (const Task& t : tasks_) {
        total_cycles_ += t.cycles;
        for (const TaskEdge& e : t.successors) {
            MCS_REQUIRE(e.dst < n, "task edge target out of range");
            ++pred_counts_[e.dst];
            total_bytes_ += e.bytes;
            ++edge_count_;
        }
    }
    for (TaskIndex i = 0; i < n; ++i) {
        if (pred_counts_[i] == 0) {
            sources_.push_back(i);
        }
    }
    MCS_REQUIRE(!sources_.empty(), "task graph has no source (cyclic)");

    // Kahn's algorithm: verifies acyclicity and computes the critical path.
    std::vector<std::uint32_t> remaining = pred_counts_;
    std::vector<std::uint64_t> finish_cycles(n, 0);
    std::queue<TaskIndex> ready;
    for (TaskIndex s : sources_) {
        ready.push(s);
        finish_cycles[s] = tasks_[s].cycles;
    }
    std::size_t visited = 0;
    while (!ready.empty()) {
        const TaskIndex u = ready.front();
        ready.pop();
        ++visited;
        for (const TaskEdge& e : tasks_[u].successors) {
            finish_cycles[e.dst] =
                std::max(finish_cycles[e.dst],
                         finish_cycles[u] + tasks_[e.dst].cycles);
            if (--remaining[e.dst] == 0) {
                ready.push(e.dst);
            }
        }
    }
    MCS_REQUIRE(visited == n, "task graph contains a cycle");
    critical_path_cycles_ =
        *std::max_element(finish_cycles.begin(), finish_cycles.end());
}

const Task& TaskGraph::task(TaskIndex i) const {
    MCS_REQUIRE(i < tasks_.size(), "task index out of range");
    return tasks_[i];
}

std::uint32_t TaskGraph::pred_count(TaskIndex i) const {
    MCS_REQUIRE(i < pred_counts_.size(), "task index out of range");
    return pred_counts_[i];
}

}  // namespace mcs
