#include "noc/link_test.hpp"

#include "util/require.hpp"

namespace mcs {

LinkTester::LinkTester(std::size_t link_count, NocTestParams params,
                       std::uint64_t seed)
    : params_(params), rng_(seed), latent_(link_count) {
    MCS_REQUIRE(link_count > 0, "link tester needs links");
    MCS_REQUIRE(params_.fault_rate_per_link_s >= 0.0,
                "link fault rate must be non-negative");
    MCS_REQUIRE(params_.test_coverage >= 0.0 && params_.test_coverage <= 1.0,
                "coverage must be a probability");
    MCS_REQUIRE(params_.message_corruption_prob >= 0.0 &&
                    params_.message_corruption_prob <= 1.0,
                "corruption probability must be in [0,1]");
    MCS_REQUIRE(params_.test_bytes > 0, "test pattern must be non-empty");
    MCS_REQUIRE(params_.max_concurrent_tests > 0,
                "max concurrent link tests must be positive");
    MCS_REQUIRE(params_.test_period_target > 0,
                "test period target must be positive");
}

std::vector<LinkId> LinkTester::step(SimTime now, double dt_s) {
    MCS_REQUIRE(dt_s >= 0.0, "negative link fault step");
    std::vector<LinkId> fresh;
    if (params_.fault_rate_per_link_s <= 0.0 || dt_s <= 0.0) {
        return fresh;
    }
    const double p = params_.fault_rate_per_link_s * dt_s;
    for (std::size_t l = 0; l < latent_.size(); ++l) {
        if (latent_[l].has_value()) {
            continue;
        }
        if (rng_.bernoulli(p)) {
            LinkFault f;
            f.link = static_cast<LinkId>(l);
            f.injected = now;
            latent_[l] = history_.size();
            history_.push_back(f);
            fresh.push_back(f.link);
        }
    }
    return fresh;
}

bool LinkTester::has_latent_fault(LinkId link) const {
    MCS_REQUIRE(link < latent_.size(), "link id out of range");
    return latent_[link].has_value();
}

std::optional<LinkFault> LinkTester::attempt_detection(LinkId link,
                                                       SimTime now) {
    MCS_REQUIRE(link < latent_.size(), "link id out of range");
    auto& slot = latent_[link];
    if (!slot.has_value()) {
        return std::nullopt;
    }
    LinkFault& fault = history_[*slot];
    if (rng_.bernoulli(params_.test_coverage)) {
        fault.detected = true;
        fault.detected_at = now;
        ++detected_;
        slot.reset();  // repaired (spare-wire swap)
        return fault;
    }
    ++escaped_;
    return std::nullopt;
}

bool LinkTester::roll_message_corruption(LinkId link) {
    MCS_REQUIRE(link < latent_.size(), "link id out of range");
    if (!latent_[link].has_value()) {
        return false;
    }
    if (rng_.bernoulli(params_.message_corruption_prob)) {
        ++corrupted_;
        return true;
    }
    return false;
}


void LinkTester::load_state(const Rng& rng,
                            std::vector<std::optional<std::size_t>> latent,
                            std::vector<LinkFault> history,
                            std::uint64_t detected, std::uint64_t escaped,
                            std::uint64_t corrupted) {
    MCS_REQUIRE(latent.size() == latent_.size(),
                "link tester state: link count mismatch");
    for (const auto& slot : latent) {
        MCS_REQUIRE(!slot.has_value() || *slot < history.size(),
                    "link tester state: latent index out of range");
    }
    rng_ = rng;
    latent_ = std::move(latent);
    history_ = std::move(history);
    detected_ = detected;
    escaped_ = escaped;
    corrupted_ = corrupted;
}

}  // namespace mcs
