#include "noc/topology.hpp"

#include <cstdlib>

#include "util/require.hpp"

namespace mcs {

// Link id layout for a W x H mesh (all blocks contiguous):
//   east  block: (W-1)*H links, (x,y)->(x+1,y), id = y*(W-1) + x
//   west  block: (W-1)*H links, (x,y)->(x-1,y), id = base + y*(W-1) + (x-1)
//   south block: W*(H-1) links, (x,y)->(x,y+1), id = base + y*W + x
//   north block: W*(H-1) links, (x,y)->(x,y-1), id = base + (y-1)*W + x

MeshTopology::MeshTopology(int width, int height)
    : width_(width), height_(height) {
    MCS_REQUIRE(width_ > 0 && height_ > 0, "mesh dimensions must be positive");
    east_count_ = static_cast<std::size_t>(width_ - 1) *
                  static_cast<std::size_t>(height_);
    vert_count_ = static_cast<std::size_t>(width_) *
                  static_cast<std::size_t>(height_ - 1);
    link_count_ = 2 * east_count_ + 2 * vert_count_;
}

void MeshTopology::check_node(CoreId n) const {
    MCS_REQUIRE(n < node_count(), "node id out of range");
}

CoreId MeshTopology::node_at(int x, int y) const {
    MCS_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_,
                "coordinates outside mesh");
    return static_cast<CoreId>(y * width_ + x);
}

int MeshTopology::manhattan(CoreId a, CoreId b) const {
    check_node(a);
    check_node(b);
    return std::abs(x_of(a) - x_of(b)) + std::abs(y_of(a) - y_of(b));
}

LinkId MeshTopology::link_between(CoreId from, CoreId to) const {
    check_node(from);
    check_node(to);
    const int fx = x_of(from), fy = y_of(from);
    const int tx = x_of(to), ty = y_of(to);
    const std::size_t west_base = east_count_;
    const std::size_t south_base = 2 * east_count_;
    const std::size_t north_base = 2 * east_count_ + vert_count_;
    if (ty == fy && tx == fx + 1) {  // east
        return static_cast<LinkId>(fy * (width_ - 1) + fx);
    }
    if (ty == fy && tx == fx - 1) {  // west
        return static_cast<LinkId>(west_base + fy * (width_ - 1) + (fx - 1));
    }
    if (tx == fx && ty == fy + 1) {  // south
        return static_cast<LinkId>(south_base + fy * width_ + fx);
    }
    if (tx == fx && ty == fy - 1) {  // north
        return static_cast<LinkId>(north_base + (fy - 1) * width_ + fx);
    }
    MCS_REQUIRE(false, "link_between requires adjacent nodes");
    return 0;  // unreachable
}

std::pair<CoreId, CoreId> MeshTopology::link_ends(LinkId link) const {
    MCS_REQUIRE(link < link_count_, "link id out of range");
    const std::size_t west_base = east_count_;
    const std::size_t south_base = 2 * east_count_;
    const std::size_t north_base = 2 * east_count_ + vert_count_;
    std::size_t l = link;
    if (l < west_base) {  // east
        const int y = static_cast<int>(l / (width_ - 1));
        const int x = static_cast<int>(l % (width_ - 1));
        return {node_at(x, y), node_at(x + 1, y)};
    }
    if (l < south_base) {  // west
        l -= west_base;
        const int y = static_cast<int>(l / (width_ - 1));
        const int x = static_cast<int>(l % (width_ - 1)) + 1;
        return {node_at(x, y), node_at(x - 1, y)};
    }
    if (l < north_base) {  // south
        l -= south_base;
        const int y = static_cast<int>(l / width_);
        const int x = static_cast<int>(l % width_);
        return {node_at(x, y), node_at(x, y + 1)};
    }
    l -= north_base;
    const int y = static_cast<int>(l / width_) + 1;
    const int x = static_cast<int>(l % width_);
    return {node_at(x, y), node_at(x, y - 1)};
}

std::vector<LinkId> MeshTopology::xy_route(CoreId src, CoreId dst) const {
    check_node(src);
    check_node(dst);
    std::vector<LinkId> route;
    route.reserve(static_cast<std::size_t>(manhattan(src, dst)));
    int x = x_of(src);
    int y = y_of(src);
    const int dx = x_of(dst);
    const int dy = y_of(dst);
    while (x != dx) {
        const int nx = x + (dx > x ? 1 : -1);
        route.push_back(link_between(node_at(x, y), node_at(nx, y)));
        x = nx;
    }
    while (y != dy) {
        const int ny = y + (dy > y ? 1 : -1);
        route.push_back(link_between(node_at(x, y), node_at(x, ny)));
        y = ny;
    }
    return route;
}

}  // namespace mcs
