#include "noc/network.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace mcs {

Network::Network(int width, int height, NocParams params)
    : topo_(width, height), params_(params) {
    MCS_REQUIRE(params_.link_bandwidth_bytes_per_s > 0,
                "link bandwidth must be positive");
    MCS_REQUIRE(params_.util_window > 0, "utilization window must be positive");
    MCS_REQUIRE(params_.util_ewma_alpha > 0 && params_.util_ewma_alpha <= 1,
                "EWMA alpha must be in (0,1]");
    window_bytes_.assign(topo_.link_count(), 0.0);
    util_.assign(topo_.link_count(), 0.0);
}

Transfer Network::send(CoreId src, CoreId dst, std::uint64_t bytes) {
    ++messages_;
    bytes_ += bytes;
    Transfer t;
    last_route_.clear();
    if (src == dst || bytes == 0) {
        return t;
    }
    last_route_ = topo_.xy_route(src, dst);
    const auto& route = last_route_;
    t.hops = static_cast<int>(route.size());
    double bottleneck = 0.0;
    for (LinkId link : route) {
        bottleneck = std::max(bottleneck, util_[link]);
        window_bytes_[link] += static_cast<double>(bytes);
    }
    hop_bytes_ += bytes * static_cast<std::uint64_t>(route.size());
    t.bottleneck_util = bottleneck;

    const double eff_util = std::min(bottleneck, params_.max_effective_util);
    const double eff_bw = params_.link_bandwidth_bytes_per_s * (1.0 - eff_util);
    const double serialization_s = static_cast<double>(bytes) / eff_bw;
    t.latency = static_cast<SimDuration>(route.size()) *
                    params_.router_latency +
                from_seconds(serialization_s);
    t.energy_j = static_cast<double>(bytes) *
                 static_cast<double>(route.size()) *
                 params_.energy_per_byte_hop_j;
    total_energy_j_ += t.energy_j;
    return t;
}

void Network::inject_link_load(LinkId link, std::uint64_t bytes) {
    MCS_REQUIRE(link < window_bytes_.size(), "link id out of range");
    window_bytes_[link] += static_cast<double>(bytes);
}

SimDuration Network::link_transfer_time(std::uint64_t bytes) const {
    const double s = static_cast<double>(bytes) /
                     params_.link_bandwidth_bytes_per_s;
    return 2 * params_.router_latency + from_seconds(s);
}

void Network::roll_window() {
    const double window_capacity =
        params_.link_bandwidth_bytes_per_s * to_seconds(params_.util_window);
    for (std::size_t i = 0; i < util_.size(); ++i) {
        const double inst = window_bytes_[i] / window_capacity;
        util_[i] = params_.util_ewma_alpha * inst +
                   (1.0 - params_.util_ewma_alpha) * util_[i];
        window_bytes_[i] = 0.0;
    }
}

double Network::link_utilization(LinkId link) const {
    MCS_REQUIRE(link < util_.size(), "link id out of range");
    return util_[link];
}

double Network::peak_utilization() const {
    if (util_.empty()) {
        return 0.0;
    }
    return *std::max_element(util_.begin(), util_.end());
}

double Network::mean_utilization() const {
    if (util_.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (double u : util_) {
        sum += u;
    }
    return sum / static_cast<double>(util_.size());
}

double Network::routers_idle_power_w() const {
    return params_.router_idle_power_w *
           static_cast<double>(topo_.node_count());
}


void Network::load_state(std::vector<double> window_bytes,
                         std::vector<double> util, double total_energy_j,
                         std::uint64_t messages, std::uint64_t bytes,
                         std::uint64_t hop_bytes) {
    MCS_REQUIRE(window_bytes.size() == window_bytes_.size() &&
                    util.size() == util_.size(),
                "network state: link count mismatch");
    window_bytes_ = std::move(window_bytes);
    util_ = std::move(util);
    total_energy_j_ = total_energy_j;
    messages_ = messages;
    bytes_ = bytes;
    hop_bytes_ = hop_bytes;
}

}  // namespace mcs
