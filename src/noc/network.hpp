#pragma once

#include <cstdint>
#include <vector>

#include "noc/topology.hpp"
#include "sim/time.hpp"

namespace mcs {

/// NoC model parameters. Defaults approximate a 32-bit-flit mesh at core
/// frequency; constants are modeling choices documented in DESIGN.md.
struct NocParams {
    double link_bandwidth_bytes_per_s = 4.0e9;  ///< per directed link
    SimDuration router_latency = 4;             ///< per hop, ns
    double energy_per_byte_hop_j = 6.0e-12;     ///< transport energy
    double router_idle_power_w = 0.003;         ///< per router static power
    /// EWMA smoothing for link utilization (per utilization-window update).
    double util_ewma_alpha = 0.3;
    /// Window length over which offered bytes are turned into utilization.
    SimDuration util_window = 100 * kMicrosecond;
    /// Cap on modeled utilization when computing serialization slowdown,
    /// so latency stays finite under overload.
    double max_effective_util = 0.95;
};

/// Outcome of planning one message transfer.
struct Transfer {
    SimDuration latency = 0;   ///< injection to delivery
    double energy_j = 0.0;     ///< transport energy for the whole message
    int hops = 0;
    double bottleneck_util = 0.0;  ///< highest link utilization on the path
};

/// Analytic contention NoC: messages are routed XY; per-link utilization is
/// tracked in windows and smoothed with an EWMA; a message's serialization
/// delay is inflated by the bottleneck utilization along its path. This is
/// the standard abstraction level for runtime-mapping papers (no flit-level
/// simulation), preserving the congestion feedback the mapper needs.
class Network {
public:
    Network(int width, int height, NocParams params = {});

    const MeshTopology& topology() const noexcept { return topo_; }
    /// Convenience for the common topology query (saves callers a hop).
    std::size_t link_count() const noexcept { return topo_.link_count(); }
    const NocParams& params() const noexcept { return params_; }

    /// Plans a transfer of `bytes` from `src` to `dst`, charges the load to
    /// every link on the path, and returns latency/energy. src == dst (or
    /// bytes == 0) yields a zero-latency local transfer.
    Transfer send(CoreId src, CoreId dst, std::uint64_t bytes);

    /// The links traversed by the most recent send() (empty for local
    /// transfers). Valid until the next send().
    const std::vector<LinkId>& last_route() const noexcept {
        return last_route_;
    }

    /// Charges raw traffic to one link (used by the link tester: test
    /// patterns consume link bandwidth like any other traffic).
    void inject_link_load(LinkId link, std::uint64_t bytes);

    /// Wall time needed to push `bytes` across one uncongested link.
    SimDuration link_transfer_time(std::uint64_t bytes) const;

    /// Advances the utilization window: folds accumulated bytes into the
    /// per-link EWMA utilization and resets the window accumulators. Call
    /// every `params().util_window`.
    void roll_window();

    /// Smoothed utilization of a link in [0, 1+).
    double link_utilization(LinkId link) const;

    /// Highest smoothed utilization over all links.
    double peak_utilization() const;
    /// Mean smoothed utilization over all links.
    double mean_utilization() const;

    double total_energy_j() const noexcept { return total_energy_j_; }
    std::uint64_t messages_sent() const noexcept { return messages_; }
    std::uint64_t bytes_sent() const noexcept { return bytes_; }
    std::uint64_t total_hop_bytes() const noexcept { return hop_bytes_; }

    /// Static power of all routers (added to chip power by the power model).
    double routers_idle_power_w() const;

    // ---- snapshot support ----
    // last_route_ is scratch (valid only until the next send) and is not
    // part of the persisted state.
    const std::vector<double>& window_bytes() const noexcept {
        return window_bytes_;
    }
    const std::vector<double>& smoothed_util() const noexcept { return util_; }
    void load_state(std::vector<double> window_bytes,
                    std::vector<double> util, double total_energy_j,
                    std::uint64_t messages, std::uint64_t bytes,
                    std::uint64_t hop_bytes);

private:
    MeshTopology topo_;
    NocParams params_;
    std::vector<double> window_bytes_;
    std::vector<double> util_;
    std::vector<LinkId> last_route_;
    double total_energy_j_ = 0.0;
    std::uint64_t messages_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t hop_bytes_ = 0;
};

}  // namespace mcs
