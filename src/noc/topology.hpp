#pragma once

#include <cstdint>
#include <vector>

#include "arch/core.hpp"

namespace mcs {

using LinkId = std::uint32_t;

/// 2-D mesh topology with deterministic dimension-ordered (XY) routing.
/// Links are directed; each adjacent router pair is joined by two links.
/// Node ids are the chip's row-major core ids.
class MeshTopology {
public:
    MeshTopology(int width, int height);

    int width() const noexcept { return width_; }
    int height() const noexcept { return height_; }
    std::size_t node_count() const noexcept {
        return static_cast<std::size_t>(width_) *
               static_cast<std::size_t>(height_);
    }
    std::size_t link_count() const noexcept { return link_count_; }

    int x_of(CoreId n) const noexcept { return static_cast<int>(n) % width_; }
    int y_of(CoreId n) const noexcept { return static_cast<int>(n) / width_; }
    CoreId node_at(int x, int y) const;

    int manhattan(CoreId a, CoreId b) const;

    /// Directed link from `from` to adjacent node `to`. Requires adjacency.
    LinkId link_between(CoreId from, CoreId to) const;

    /// Endpoints of a link: (from, to).
    std::pair<CoreId, CoreId> link_ends(LinkId link) const;

    /// XY route: travel along X first, then along Y. Returns the list of
    /// directed links traversed; empty when src == dst.
    std::vector<LinkId> xy_route(CoreId src, CoreId dst) const;

    /// Number of hops (= links) on the XY route.
    int hop_count(CoreId src, CoreId dst) const { return manhattan(src, dst); }

private:
    void check_node(CoreId n) const;

    int width_;
    int height_;
    std::size_t link_count_;
    // Link id layout: [east | west | south | north] blocks; see .cpp.
    std::size_t east_count_;
    std::size_t vert_count_;
};

}  // namespace mcs
