#pragma once

#include <optional>
#include <vector>

#include "noc/topology.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace mcs {

/// NoC online-testing parameters (extension: the interconnect wears out
/// like the cores do, and its links can be tested in their idle windows
/// under the same power budget).
struct NocTestParams {
    /// Latent link-fault arrival rate per link-second (0 disables wear).
    double fault_rate_per_link_s = 0.0;
    /// Test-pattern volume pushed across a link per test session.
    std::uint64_t test_bytes = 8192;
    /// P(detect | faulty link) for one session (pattern coverage).
    double test_coverage = 0.95;
    /// Extra router power while a link test runs.
    double test_power_w = 0.05;
    /// P(corrupt message | message crosses a faulty link).
    double message_corruption_prob = 0.1;
    /// Target test period per link; criticality = elapsed / target.
    SimDuration test_period_target = 2 * kSecond;
    /// Links busier than this (smoothed utilization) are not tested.
    double max_test_utilization = 0.3;
    /// Cap on simultaneously running link tests.
    int max_concurrent_tests = 8;
};

/// A permanent fault in one directed mesh link.
struct LinkFault {
    LinkId link = 0;
    SimTime injected = 0;
    bool detected = false;
    SimTime detected_at = 0;
};

/// Injects link faults and adjudicates link-test sessions. Detected faults
/// are repaired in place (spare-wire swap, the standard NoC link-repair
/// mechanism), so a link can fail again later.
class LinkTester {
public:
    LinkTester(std::size_t link_count, NocTestParams params,
               std::uint64_t seed);

    /// Advances fault arrivals over `dt_s`. At most one latent fault per
    /// link. Returns links that acquired a fault.
    std::vector<LinkId> step(SimTime now, double dt_s);

    bool has_latent_fault(LinkId link) const;

    /// A test session finished on `link`: detection roll; on success the
    /// fault is marked detected and repaired (cleared).
    std::optional<LinkFault> attempt_detection(LinkId link, SimTime now);

    /// A message crossed `link`: rolls silent corruption if faulty.
    bool roll_message_corruption(LinkId link);

    const std::vector<LinkFault>& history() const noexcept {
        return history_;
    }
    std::uint64_t injected_count() const noexcept { return history_.size(); }
    std::uint64_t detected_count() const noexcept { return detected_; }
    std::uint64_t escaped_tests() const noexcept { return escaped_; }
    std::uint64_t corrupted_messages() const noexcept { return corrupted_; }

    const NocTestParams& params() const noexcept { return params_; }

    // ---- snapshot support ----
    const Rng& rng() const noexcept { return rng_; }
    /// Per-link index into history() of the latent fault, if any.
    const std::vector<std::optional<std::size_t>>& latent_slots()
        const noexcept {
        return latent_;
    }
    void load_state(const Rng& rng,
                    std::vector<std::optional<std::size_t>> latent,
                    std::vector<LinkFault> history, std::uint64_t detected,
                    std::uint64_t escaped, std::uint64_t corrupted);

private:
    NocTestParams params_;
    Rng rng_;
    std::vector<std::optional<std::size_t>> latent_;  ///< index into history_
    std::vector<LinkFault> history_;
    std::uint64_t detected_ = 0;
    std::uint64_t escaped_ = 0;
    std::uint64_t corrupted_ = 0;
};

}  // namespace mcs
