#include "power/power_budget.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace mcs {

PowerBudget::PowerBudget(double tdp_w, double violation_margin_w)
    : tdp_w_(tdp_w), margin_w_(violation_margin_w) {
    MCS_REQUIRE(tdp_w_ > 0.0, "TDP must be positive");
    MCS_REQUIRE(margin_w_ >= 0.0, "violation margin must be non-negative");
}

void PowerBudget::set_tdp(double tdp_w) {
    MCS_REQUIRE(tdp_w > 0.0, "TDP must be positive");
    tdp_w_ = tdp_w;
}

void PowerBudget::record(SimTime, double power_w) {
    last_power_w_ = power_w;
    ++samples_;
    stats_.add(power_w);
    if (power_w > tdp_w_ + margin_w_) {
        ++violations_;
        worst_overshoot_w_ = std::max(worst_overshoot_w_, power_w - tdp_w_);
    }
}

double PowerBudget::slack_w() const noexcept {
    return std::max(0.0, tdp_w_ - last_power_w_);
}

double PowerBudget::violation_rate() const noexcept {
    if (samples_ == 0) {
        return 0.0;
    }
    return static_cast<double>(violations_) / static_cast<double>(samples_);
}

}  // namespace mcs
