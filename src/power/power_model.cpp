#include "power/power_model.hpp"

#include <cmath>

#include "util/require.hpp"

namespace mcs {

PowerModel::PowerModel(const TechnologyParams& tech,
                       const std::vector<VfLevel>& table,
                       ActivityFactors activity)
    : tech_(tech), table_(&table), activity_(activity) {
    MCS_REQUIRE(!table.empty(), "power model needs a non-empty VF table");
}

const VfLevel& PowerModel::level(int vf_level) const {
    MCS_REQUIRE(vf_level >= 0 &&
                    vf_level < static_cast<int>(table_->size()),
                "VF level out of range");
    return (*table_)[static_cast<std::size_t>(vf_level)];
}

double PowerModel::dynamic_w(int vf_level, double activity) const {
    const VfLevel& l = level(vf_level);
    return activity * tech_.switched_cap_f * l.voltage_v * l.voltage_v *
           l.freq_hz;
}

double PowerModel::leakage_w(int vf_level, double temp_c) const {
    const VfLevel& l = level(vf_level);
    const double volt_scale = l.voltage_v / tech_.nominal_vdd_v;
    const double temp_scale =
        std::exp((temp_c - tech_.leak_ref_temp_c) / tech_.leak_temp_slope_c);
    return tech_.leak_current_a * volt_scale * l.voltage_v * temp_scale;
}

double PowerModel::activity_of(CoreState state) const {
    switch (state) {
        case CoreState::Idle: return activity_.idle;
        case CoreState::Busy: return activity_.busy;
        case CoreState::Testing: return activity_.test;
        case CoreState::Dark:
        case CoreState::Faulty: return 0.0;
    }
    return 0.0;
}

double PowerModel::core_power_w(CoreState state, int vf_level,
                                double temp_c) const {
    if (state == CoreState::Dark || state == CoreState::Faulty) {
        // Power-gated: no dynamic power, tiny residual leakage.
        return activity_.gated_leak_fraction * leakage_w(0, temp_c);
    }
    return dynamic_w(vf_level, activity_of(state)) +
           leakage_w(vf_level, temp_c);
}

double PowerModel::test_power_w(int vf_level, double temp_c) const {
    return core_power_w(CoreState::Testing, vf_level, temp_c);
}

double PowerModel::chip_power_w(const Chip& chip,
                                std::span<const double> temps_c) const {
    double total = 0.0;
    for (const Core& c : chip.cores()) {
        const double temp = temps_c.empty()
                                ? tech_.leak_ref_temp_c
                                : temps_c[c.id()];
        total += core_power_w(c.state(), c.vf_level(), temp);
    }
    return total;
}

}  // namespace mcs
