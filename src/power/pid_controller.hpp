#pragma once

namespace mcs {

/// PID gains and output clamps. Output is a dimensionless actuation signal;
/// the power manager interprets it as "fraction of busy cores to step up or
/// down one DVFS level this epoch".
/// Defaults are tuned for a normalized error ((TDP - P)/TDP) sampled every
/// ~100 us: proportional-dominant, a slow integral to remove steady-state
/// offset, and a tiny derivative (the raw derivative is error/dt, so kd must
/// be of order dt to contribute O(1)).
struct PidParams {
    double kp = 0.8;
    double ki = 25.0;
    double kd = 5.0e-5;
    double out_min = -1.0;
    double out_max = 1.0;
    /// Integral state clamp (anti-windup); ki * integral_limit bounds the
    /// integral contribution to the output.
    double integral_limit = 0.04;
};

/// Textbook discrete PID controller with clamped integral (anti-windup).
/// Reproduces the ICCD'14 dark-silicon power-capping substrate: the error
/// fed in is (TDP - measured chip power), normalized by TDP.
class PidController {
public:
    explicit PidController(PidParams params);

    /// Advances the controller by `dt_s` seconds with the given error and
    /// returns the clamped actuation output.
    double update(double error, double dt_s);

    void reset();

    double last_output() const noexcept { return last_output_; }

    // ---- snapshot support ----
    double integral() const noexcept { return integral_; }
    double prev_error() const noexcept { return prev_error_; }
    bool has_prev() const noexcept { return has_prev_; }
    void load_state(double integral, double prev_error, bool has_prev,
                    double last_output) noexcept {
        integral_ = integral;
        prev_error_ = prev_error;
        has_prev_ = has_prev;
        last_output_ = last_output;
    }

private:
    PidParams params_;
    double integral_ = 0.0;
    double prev_error_ = 0.0;
    bool has_prev_ = false;
    double last_output_ = 0.0;
};

}  // namespace mcs
