#pragma once

#include <span>

#include "arch/chip.hpp"
#include "arch/core.hpp"
#include "arch/technology.hpp"

namespace mcs {

/// Switching-activity factors per core state, relative to typical workload
/// activity (= 1.0). SBST routines deliberately toggle every functional
/// unit, so their activity exceeds typical workload -- that is exactly why
/// the paper needs power-aware test admission.
struct ActivityFactors {
    double idle = 0.06;    ///< clock-gated
    double busy = 1.00;    ///< typical workload
    double test = 1.30;    ///< SBST stress routines
    /// Residual leakage fraction that power gating cannot remove.
    double gated_leak_fraction = 0.03;
};

/// Per-core power model: dynamic alpha*C*V^2*f plus temperature-dependent
/// leakage I0 * (V/Vnom) * V * exp((T - Tref)/Tslope).
class PowerModel {
public:
    PowerModel(const TechnologyParams& tech, const std::vector<VfLevel>& table,
               ActivityFactors activity = {});

    double dynamic_w(int vf_level, double activity) const;
    double leakage_w(int vf_level, double temp_c) const;

    /// Power of a core in `state` at `vf_level` and temperature `temp_c`.
    /// Dark/Faulty cores burn only residual gated leakage.
    double core_power_w(CoreState state, int vf_level, double temp_c) const;

    /// Power drawn by an SBST test session at the given level/temperature.
    double test_power_w(int vf_level, double temp_c) const;

    /// Total power of a chip given per-core temperatures (span indexed by
    /// CoreId; may be empty, in which case the leakage reference temperature
    /// is used for every core).
    double chip_power_w(const Chip& chip,
                        std::span<const double> temps_c) const;

    const ActivityFactors& activity() const noexcept { return activity_; }
    double activity_of(CoreState state) const;

private:
    const VfLevel& level(int vf_level) const;

    TechnologyParams tech_;
    const std::vector<VfLevel>* table_;
    ActivityFactors activity_;
};

}  // namespace mcs
