#include "power/pid_controller.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace mcs {

PidController::PidController(PidParams params) : params_(params) {
    MCS_REQUIRE(params_.out_min < params_.out_max,
                "PID output range must be non-empty");
    MCS_REQUIRE(params_.integral_limit >= 0.0,
                "integral limit must be non-negative");
}

double PidController::update(double error, double dt_s) {
    MCS_REQUIRE(dt_s > 0.0, "PID step must be positive");
    integral_ = std::clamp(integral_ + error * dt_s,
                           -params_.integral_limit, params_.integral_limit);
    double derivative = 0.0;
    if (has_prev_) {
        derivative = (error - prev_error_) / dt_s;
    }
    prev_error_ = error;
    has_prev_ = true;
    const double raw = params_.kp * error + params_.ki * integral_ +
                       params_.kd * derivative;
    last_output_ = std::clamp(raw, params_.out_min, params_.out_max);
    return last_output_;
}

void PidController::reset() {
    integral_ = 0.0;
    prev_error_ = 0.0;
    has_prev_ = false;
    last_output_ = 0.0;
}

}  // namespace mcs
