#include "power/power_manager.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace mcs {

PowerManager::PowerManager(Chip& chip, const PowerModel& model,
                           PowerBudget& budget, PowerManagerParams params)
    : chip_(chip),
      model_(model),
      budget_(budget),
      params_(params),
      pid_(params.pid),
      last_active_(chip.core_count(), 0) {
    MCS_REQUIRE(params_.deadband >= 0.0, "deadband must be non-negative");
    MCS_REQUIRE(params_.setpoint_fraction > 0.0 &&
                    params_.setpoint_fraction <= 1.0,
                "setpoint fraction must be in (0,1]");
    MCS_REQUIRE(params_.boost_fraction > 0.0 && params_.boost_fraction <= 1.0,
                "boost fraction must be in (0,1]");
    // Power-on conformance: cores boot at the top DVFS level, which for a
    // very tight budget can put even the *idle* chip over the cap. Bring
    // idle cores down to the highest level whose chip-wide idle power fits
    // under the setpoint (a no-op for ordinary budgets).
    const double ref_temp = chip_.tech().leak_ref_temp_c;
    const auto cores = static_cast<double>(chip_.core_count());
    int boot_level = chip_.max_vf_level();
    while (boot_level > 0 &&
           model_.core_power_w(CoreState::Idle, boot_level, ref_temp) *
                   cores >
               setpoint_w()) {
        --boot_level;
    }
    if (boot_level < chip_.max_vf_level()) {
        for (Core& c : chip_.cores()) {
            if (c.is_idle()) {
                c.set_vf_level(0, boot_level);
            }
        }
    }
    // Anchor the admission ledger to the boot-state power so grants made
    // before the first control epoch see honest headroom.
    committed_power_w_ = model_.chip_power_w(chip_, {});
}

void PowerManager::set_vf_change_listener(
    std::function<void(CoreId, int, int)> listener) {
    vf_listener_ = std::move(listener);
}

void PowerManager::set_priority_lookup(std::function<int(CoreId)> lookup) {
    priority_lookup_ = std::move(lookup);
}

void PowerManager::set_telemetry(telemetry::Tracer* tracer,
                                 telemetry::MetricsRegistry* registry) {
    tracer_ = tracer;
    if (registry != nullptr) {
        c_throttle_ = &registry->counter("power.dvfs_throttle_steps");
        c_boost_ = &registry->counter("power.dvfs_boost_steps");
        c_gated_ = &registry->counter("power.cores_gated");
        c_actuations_ = &registry->counter("power.capping_actuations");
    } else {
        c_throttle_ = nullptr;
        c_boost_ = nullptr;
        c_gated_ = nullptr;
        c_actuations_ = nullptr;
    }
}

double PowerManager::setpoint_w() const {
    return params_.setpoint_fraction * budget_.tdp_w();
}

void PowerManager::change_vf(SimTime now, Core& core, int new_level) {
    const int old_level = core.vf_level();
    if (old_level == new_level) {
        return;
    }
    core.set_vf_level(now, new_level);
    if (tracer_ != nullptr) {
        tracer_->record(now, telemetry::TraceCategory::Dvfs,
                        telemetry::TracePhase::Instant, "vf_change",
                        core.id(), old_level, new_level);
    }
    if (vf_listener_) {
        vf_listener_(core.id(), old_level, new_level);
    }
}

void PowerManager::control_epoch(SimTime now, std::span<const double> temps_c,
                                 double extra_power_w) {
    measured_power_w_ = model_.chip_power_w(chip_, temps_c) + extra_power_w;
    committed_power_w_ = measured_power_w_;  // ledger resets to ground truth
    budget_.record(now, measured_power_w_);

    double dt_s = 1e-4;  // nominal epoch on the very first call
    if (has_epoch_ && now > last_epoch_) {
        dt_s = to_seconds(now - last_epoch_);
    }
    last_epoch_ = now;
    has_epoch_ = true;

    if (params_.mode == CappingMode::BangBang) {
        // Naive capping: full-chip step in whichever direction the sign of
        // the instantaneous error points, with no ledger or proportionality.
        if (measured_power_w_ > budget_.tdp_w()) {
            bang_step(now, -1);
        } else if (measured_power_w_ < budget_.tdp_w()) {
            bang_step(now, +1);
        }
    } else {
        const double error =
            (setpoint_w() - measured_power_w_) / budget_.tdp_w();
        const double signal = pid_.update(error, dt_s);
        if (std::abs(signal) > params_.deadband) {
            if (c_actuations_ != nullptr) {
                c_actuations_->inc();
            }
            if (tracer_ != nullptr) {
                // a/b carry the signed control signal and the measured
                // power, both in milli-units (the trace stores integers).
                tracer_->record(
                    now, telemetry::TraceCategory::Power,
                    telemetry::TracePhase::Instant, "cap_actuate", 0,
                    static_cast<std::int64_t>(signal * 1e3),
                    static_cast<std::int64_t>(measured_power_w_ * 1e3));
            }
            actuate(now, signal, temps_c);
        }
    }
    if (params_.enable_power_gating) {
        apply_power_gating(now);
    }
}

void PowerManager::bang_step(SimTime now, int direction) {
    const int max_level = chip_.max_vf_level();
    for (Core& c : chip_.cores()) {
        if (!c.is_busy()) {
            continue;
        }
        const int target = c.vf_level() + direction;
        if (target < 0 || target > max_level) {
            continue;
        }
        change_vf(now, c, target);
        if (direction < 0) {
            ++throttle_steps_;
            if (c_throttle_ != nullptr) {
                c_throttle_->inc();
            }
        } else {
            ++boost_steps_;
            if (c_boost_ != nullptr) {
                c_boost_->inc();
            }
        }
    }
}

void PowerManager::actuate(SimTime now, double signal,
                           std::span<const double> temps_c) {
    // Collect busy cores eligible for stepping. Testing cores are left
    // alone: their power was admitted at a fixed V/F by the test scheduler.
    std::vector<Core*> busy;
    busy.reserve(chip_.core_count());
    for (Core& c : chip_.cores()) {
        if (c.is_busy()) {
            busy.push_back(&c);
        }
    }
    if (busy.empty()) {
        return;
    }
    const double scale = signal < 0.0 ? 1.0 : params_.boost_fraction;
    const auto steps = static_cast<std::size_t>(std::ceil(
        std::abs(signal) * scale * static_cast<double>(busy.size())));

    auto priority = [this](const Core* c) {
        return priority_lookup_ ? priority_lookup_(c->id()) : 0;
    };
    // Fairness rotation must not defeat the priority/level ordering, so it
    // is the final tie-break of the sort, not an offset into the sorted
    // array.
    auto rotated_id = [this, &busy](const Core* c) {
        return (static_cast<std::size_t>(c->id()) + rotate_) % busy.size();
    };
    if (signal < 0.0) {
        // Over the setpoint: throttle low-priority work first, within a
        // priority the highest-level cores, rotating among equals so the
        // same core is not always the victim.
        std::stable_sort(busy.begin(), busy.end(),
                         [&](const Core* a, const Core* b) {
                             const int pa = priority(a);
                             const int pb = priority(b);
                             if (pa != pb) {
                                 return pa < pb;
                             }
                             if (a->vf_level() != b->vf_level()) {
                                 return a->vf_level() > b->vf_level();
                             }
                             return rotated_id(a) < rotated_id(b);
                         });
        std::size_t done = 0;
        for (std::size_t i = 0; i < busy.size() && done < steps; ++i) {
            Core& c = *busy[i];
            if (c.vf_level() > 0) {
                change_vf(now, c, c.vf_level() - 1);
                ++throttle_steps_;
                if (c_throttle_ != nullptr) {
                    c_throttle_->inc();
                }
                ++done;
            }
        }
    } else {
        // Headroom: boost high-priority work first, and within a priority
        // the lowest-level cores. Each step's power
        // increment is charged to the ledger and boosting stops when the
        // next step would push committed power past the setpoint -- this is
        // what keeps boost ramps from overshooting the cap.
        std::stable_sort(busy.begin(), busy.end(),
                         [&](const Core* a, const Core* b) {
                             const int pa = priority(a);
                             const int pb = priority(b);
                             if (pa != pb) {
                                 return pa > pb;
                             }
                             if (a->vf_level() != b->vf_level()) {
                                 return a->vf_level() < b->vf_level();
                             }
                             return rotated_id(a) < rotated_id(b);
                         });
        const int max_level = chip_.max_vf_level();
        std::size_t done = 0;
        for (std::size_t i = 0; i < busy.size() && done < steps; ++i) {
            Core& c = *busy[i];
            if (c.vf_level() >= max_level) {
                continue;
            }
            const double temp = temps_c.empty()
                                    ? chip_.tech().leak_ref_temp_c
                                    : temps_c[c.id()];
            const double delta =
                model_.core_power_w(CoreState::Busy, c.vf_level() + 1, temp) -
                model_.core_power_w(CoreState::Busy, c.vf_level(), temp);
            if (committed_power_w_ + delta > setpoint_w()) {
                break;
            }
            committed_power_w_ += delta;
            change_vf(now, c, c.vf_level() + 1);
            ++boost_steps_;
            if (c_boost_ != nullptr) {
                c_boost_->inc();
            }
            ++done;
        }
    }
    ++rotate_;
}

int PowerManager::grant_task_level(CoreId core, double temp_c) {
    if (params_.mode == CappingMode::BangBang) {
        return chip_.max_vf_level();  // naive: no admission control
    }
    const Core& c = chip_.core(core);
    const double idle_now =
        model_.core_power_w(c.state(), c.vf_level(), temp_c);
    const double headroom = setpoint_w() - committed_power_w_;
    const int max_level = chip_.max_vf_level();
    for (int level = max_level; level > 0; --level) {
        const double delta =
            model_.core_power_w(CoreState::Busy, level, temp_c) - idle_now;
        if (delta <= headroom) {
            committed_power_w_ += delta;
            return level;
        }
    }
    // Level 0 is always granted: workload admission is never power-blocked,
    // only slowed (the core still adds its minimum power to the ledger).
    committed_power_w_ +=
        model_.core_power_w(CoreState::Busy, 0, temp_c) - idle_now;
    return 0;
}

double PowerManager::headroom_w() const {
    return std::max(0.0, setpoint_w() - committed_power_w_);
}

void PowerManager::reserve_power(double watts) {
    MCS_REQUIRE(watts >= 0.0, "cannot reserve negative power");
    committed_power_w_ += watts;
}

void PowerManager::apply_power_gating(SimTime now) {
    for (Core& c : chip_.cores()) {
        if (c.is_idle() && !c.reserved()) {
            if (now - last_active_[c.id()] >= params_.gate_delay) {
                c.power_gate(now);
                ++cores_gated_;
                if (c_gated_ != nullptr) {
                    c_gated_->inc();
                }
                if (tracer_ != nullptr) {
                    tracer_->record(now, telemetry::TraceCategory::Power,
                                    telemetry::TracePhase::Instant,
                                    "power_gate", c.id());
                }
            }
        } else if (c.state() != CoreState::Dark) {
            last_active_[c.id()] = now;
        }
    }
}

void PowerManager::wake_core(SimTime now, CoreId id, double temp_c) {
    Core& c = chip_.core(id);
    MCS_REQUIRE(c.state() == CoreState::Dark, "wake_core on non-dark core");
    const double temp =
        temp_c == kDefaultWakeTemp ? chip_.tech().leak_ref_temp_c : temp_c;
    const double gated = model_.core_power_w(CoreState::Dark, 0, temp);
    c.wake(now);
    // Wake frugally: the core idles at the bottom level until granted work.
    c.set_vf_level(now, 0);
    committed_power_w_ +=
        model_.core_power_w(CoreState::Idle, 0, temp) - gated;
    last_active_[id] = now;
}

void PowerManager::touch(SimTime now, CoreId id) {
    MCS_REQUIRE(id < last_active_.size(), "core id out of range");
    last_active_[id] = now;
}

void PowerManager::force_vf(SimTime now, CoreId id, int level) {
    Core& c = chip_.core(id);
    MCS_REQUIRE(c.state() == CoreState::Idle ||
                    c.state() == CoreState::Busy,
                "force_vf targets an Idle or Busy core");
    MCS_REQUIRE(level >= 0 &&
                    static_cast<std::size_t>(level) < c.vf_level_count(),
                "force_vf level out of range");
    change_vf(now, c, level);
}


PowerManager::PersistedState PowerManager::save_state() const {
    PersistedState st;
    st.last_active = last_active_;
    st.last_epoch = last_epoch_;
    st.has_epoch = has_epoch_;
    st.measured_power_w = measured_power_w_;
    st.committed_power_w = committed_power_w_;
    st.throttle_steps = throttle_steps_;
    st.boost_steps = boost_steps_;
    st.cores_gated = cores_gated_;
    st.rotate = rotate_;
    st.pid_integral = pid_.integral();
    st.pid_prev_error = pid_.prev_error();
    st.pid_has_prev = pid_.has_prev();
    st.pid_last_output = pid_.last_output();
    return st;
}

void PowerManager::load_state(const PersistedState& s) {
    MCS_REQUIRE(s.last_active.size() == last_active_.size(),
                "power manager state: core count mismatch");
    last_active_ = s.last_active;
    last_epoch_ = s.last_epoch;
    has_epoch_ = s.has_epoch;
    measured_power_w_ = s.measured_power_w;
    committed_power_w_ = s.committed_power_w;
    throttle_steps_ = s.throttle_steps;
    boost_steps_ = s.boost_steps;
    cores_gated_ = s.cores_gated;
    rotate_ = static_cast<std::size_t>(s.rotate);
    pid_.load_state(s.pid_integral, s.pid_prev_error, s.pid_has_prev,
                    s.pid_last_output);
}

}  // namespace mcs
