#pragma once

#include <functional>
#include <span>
#include <vector>

#include "arch/chip.hpp"
#include "power/pid_controller.hpp"
#include "power/power_budget.hpp"
#include "power/power_model.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/tracer.hpp"

namespace mcs {

/// How the capping loop turns the power error into DVFS actions.
enum class CappingMode {
    Pid,       ///< PID + committed-power ledger (the ICCD'14 substrate)
    BangBang,  ///< naive baseline: all busy cores step down when over the
               ///< cap, all step up when under -- no ledger checks
};

struct PowerManagerParams {
    CappingMode mode = CappingMode::Pid;
    PidParams pid;
    /// The controller regulates to setpoint_fraction * TDP, leaving margin
    /// for actuation lag so dithering stays under the cap itself.
    double setpoint_fraction = 0.97;
    /// Normalized-error deadband inside which no DVFS action is taken.
    double deadband = 0.01;
    /// Boost steps are scaled by this factor relative to throttle steps
    /// (fast down, slow up).
    double boost_fraction = 0.5;
    /// Idle, unreserved cores are power-gated (Dark) after this long idle.
    SimDuration gate_delay = 2 * kMillisecond;
    bool enable_power_gating = true;
};

/// Dark-silicon dynamic power capping (the ICCD'14 substrate the paper
/// builds on), with a committed-power ledger for spike-free admission:
///
///  * every control epoch the chip power is measured through the power
///    model and a PID regulates it to setpoint_fraction * TDP by stepping
///    the DVFS level of a proportional share of busy cores (down when over,
///    up -- more slowly -- when under);
///  * between epochs, task starts ask grant_task_level() for the highest
///    DVFS level whose power increment still fits under the setpoint, and
///    the test scheduler reserves admitted test power via
///    reserve_power() -- both against the same ledger, so concurrent
///    admissions cannot jointly overshoot;
///  * long-idle unreserved cores are power-gated, which is where the
///    dark-silicon fraction physically shows up.
class PowerManager {
public:
    /// All references must outlive the manager.
    PowerManager(Chip& chip, const PowerModel& model, PowerBudget& budget,
                 PowerManagerParams params = {});

    /// Observer invoked as (core, old_level, new_level) whenever the manager
    /// changes a busy core's DVFS level; the system uses it to reschedule
    /// task completions.
    void set_vf_change_listener(
        std::function<void(CoreId, int, int)> listener);

    /// Attaches run telemetry (both optional, non-owning, may be null):
    /// DVFS transitions, capping actuations, and power gating are traced,
    /// and the "power.*" counters are registered and incremented live.
    void set_telemetry(telemetry::Tracer* tracer,
                       telemetry::MetricsRegistry* registry);

    /// Optional QoS hook (ICCD'14: hard/soft/best-effort priorities):
    /// returns the priority of the work on a busy core (higher = more
    /// important). When set, throttling victimizes low-priority cores first
    /// and boosting favors high-priority ones.
    void set_priority_lookup(std::function<int(CoreId)> lookup);

    /// One control epoch: measure power (plus `extra_power_w`, e.g. NoC
    /// routers), record it against the budget, reset the ledger to the
    /// measurement, run the PID, actuate DVFS, and apply power gating.
    /// `temps_c` is indexed by CoreId (may be empty).
    void control_epoch(SimTime now, std::span<const double> temps_c,
                       double extra_power_w = 0.0);

    /// DVFS level for a task about to start on `core`: the highest level
    /// whose busy-power increment over the core's current idle power fits
    /// in the ledger headroom (level 0 is always granted -- workload
    /// admission is never blocked, only slowed). Charges the ledger.
    int grant_task_level(CoreId core, double temp_c);

    /// Headroom available to the test scheduler under the setpoint.
    double headroom_w() const;

    /// Charges admitted (test) power to the ledger until the next epoch.
    void reserve_power(double watts);

    /// Wakes a Dark core (used by the mapper / test scheduler): the core
    /// comes back at the lowest DVFS level, the idle-power increment over
    /// the gated residual is charged to the ledger (waking a batch of cores
    /// must not overshoot the cap), and the idle stamp is refreshed so the
    /// core is not immediately re-gated.
    void wake_core(SimTime now, CoreId id,
                   double temp_c = kDefaultWakeTemp);

    static constexpr double kDefaultWakeTemp = -1.0;  ///< "use leak ref"

    /// Marks activity on a core (mapping reservation, task, test) so power
    /// gating leaves it alone this epoch.
    void touch(SimTime now, CoreId id);

    /// Externally imposed DVFS transition (scenario directive): moves an
    /// Idle/Busy core to `level` through the same path the capping
    /// controller uses, so the transition is traced, busy tasks are
    /// rescheduled via the listener, and the next control epoch simply
    /// continues from the new operating point.
    void force_vf(SimTime now, CoreId id, int level);

    double setpoint_w() const;
    double measured_power_w() const noexcept { return measured_power_w_; }
    double committed_power_w() const noexcept { return committed_power_w_; }
    double last_pid_output() const noexcept { return pid_.last_output(); }
    std::uint64_t throttle_steps() const noexcept { return throttle_steps_; }
    std::uint64_t boost_steps() const noexcept { return boost_steps_; }
    std::uint64_t cores_gated() const noexcept { return cores_gated_; }

    // ---- snapshot support ----
    /// Complete mutable control state (the cached telemetry pointers, the
    /// listeners, and the chip/model/budget references are rebuilt by the
    /// owning system and stay out of the snapshot).
    struct PersistedState {
        std::vector<SimTime> last_active;
        SimTime last_epoch = 0;
        bool has_epoch = false;
        double measured_power_w = 0.0;
        double committed_power_w = 0.0;
        std::uint64_t throttle_steps = 0;
        std::uint64_t boost_steps = 0;
        std::uint64_t cores_gated = 0;
        std::uint64_t rotate = 0;
        double pid_integral = 0.0;
        double pid_prev_error = 0.0;
        bool pid_has_prev = false;
        double pid_last_output = 0.0;
    };
    PersistedState save_state() const;
    void load_state(const PersistedState& s);

private:
    void actuate(SimTime now, double signal, std::span<const double> temps_c);
    void bang_step(SimTime now, int direction);
    void apply_power_gating(SimTime now);
    void change_vf(SimTime now, Core& core, int new_level);

    Chip& chip_;
    const PowerModel& model_;
    PowerBudget& budget_;
    PowerManagerParams params_;
    PidController pid_;
    telemetry::Tracer* tracer_ = nullptr;
    telemetry::Counter* c_throttle_ = nullptr;
    telemetry::Counter* c_boost_ = nullptr;
    telemetry::Counter* c_gated_ = nullptr;
    telemetry::Counter* c_actuations_ = nullptr;
    std::function<void(CoreId, int, int)> vf_listener_;
    std::function<int(CoreId)> priority_lookup_;
    std::vector<SimTime> last_active_;
    SimTime last_epoch_ = 0;
    bool has_epoch_ = false;
    double measured_power_w_ = 0.0;
    double committed_power_w_ = 0.0;
    std::uint64_t throttle_steps_ = 0;
    std::uint64_t boost_steps_ = 0;
    std::uint64_t cores_gated_ = 0;
    std::size_t rotate_ = 0;
};

}  // namespace mcs
