#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace mcs {

/// Tracks the chip power budget (TDP), the instantaneous slack available to
/// the test scheduler, and any budget violations observed over a run.
class PowerBudget {
public:
    explicit PowerBudget(double tdp_w, double violation_margin_w = 0.0);

    double tdp_w() const noexcept { return tdp_w_; }

    /// Retargets the budget mid-run (scenario directive: a rack-level power
    /// cut or thermal derating changes the chip's allowance). Violation
    /// accounting simply continues against the new cap; the PID setpoint
    /// follows automatically because it is derived from tdp_w() per epoch.
    void set_tdp(double tdp_w);

    /// Records a power sample at `now`; updates violation accounting.
    void record(SimTime now, double power_w);

    /// Budget headroom for the last recorded sample (>= 0).
    double slack_w() const noexcept;
    double last_power_w() const noexcept { return last_power_w_; }

    std::uint64_t samples() const noexcept { return samples_; }
    std::uint64_t violations() const noexcept { return violations_; }
    double violation_rate() const noexcept;
    /// Worst overshoot above TDP seen so far, in watts (0 if never violated).
    double worst_overshoot_w() const noexcept { return worst_overshoot_w_; }
    /// Time-weighted statistics of recorded power.
    const RunningStats& power_stats() const noexcept { return stats_; }

    // ---- snapshot support ----
    void load_state(double last_power_w, std::uint64_t samples,
                    std::uint64_t violations, double worst_overshoot_w,
                    const RunningStats& stats) noexcept {
        last_power_w_ = last_power_w;
        samples_ = samples;
        violations_ = violations;
        worst_overshoot_w_ = worst_overshoot_w;
        stats_ = stats;
    }

private:
    double tdp_w_;
    double margin_w_;
    double last_power_w_ = 0.0;
    std::uint64_t samples_ = 0;
    std::uint64_t violations_ = 0;
    double worst_overshoot_w_ = 0.0;
    RunningStats stats_;
};

}  // namespace mcs
