#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "telemetry/tracer.hpp"

namespace mcs {

/// Discrete-event simulator: a clock plus an event queue plus periodic
/// processes. Single-threaded by design; all model state is advanced from
/// event callbacks.
class Simulator {
public:
    Simulator() = default;
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    SimTime now() const noexcept { return now_; }

    /// Schedules `cb` at absolute simulated time `when >= now()`.
    EventId schedule_at(SimTime when, EventQueue::Callback cb);

    /// Schedules `cb` after `delay` from now.
    EventId schedule_in(SimDuration delay, EventQueue::Callback cb);

    bool cancel(EventId id) { return queue_.cancel(id); }
    bool is_pending(EventId id) const { return queue_.is_pending(id); }

    /// Registers a periodic process firing every `period` starting at
    /// `first_at` (defaults to `period` from now). The callback receives the
    /// current time. Returns a handle usable with stop_periodic().
    struct PeriodicHandle {
        std::uint64_t id = 0;
        bool valid() const noexcept { return id != 0; }
    };
    PeriodicHandle every(SimDuration period,
                         std::function<void(SimTime)> cb);
    PeriodicHandle every(SimDuration period, SimTime first_at,
                         std::function<void(SimTime)> cb);
    void stop_periodic(PeriodicHandle handle);

    /// Runs events until the queue is empty or the clock would pass `until`.
    /// The clock is left at min(until, last event time). Returns the number
    /// of events executed.
    std::uint64_t run_until(SimTime until);

    /// run_until without the run_until_begin/run_until_end trace markers.
    /// ManycoreSystem::run advances in segments (checkpoint boundaries) but
    /// must emit exactly one marker pair per logical run, so the markers
    /// live with the caller there.
    std::uint64_t advance_until(SimTime until);

    /// Executes the single next event if there is one and it is at or before
    /// `until`. Returns whether an event ran.
    bool step(SimTime until);

    bool idle() const noexcept { return queue_.empty(); }
    std::size_t pending_events() const noexcept { return queue_.pending(); }
    std::uint64_t events_executed() const noexcept { return executed_; }
    /// Lifetime count of cancelled events (exported to the metrics
    /// registry as `sim.events_cancelled` at finalize).
    std::uint64_t events_cancelled() const noexcept {
        return queue_.cancelled_count();
    }

    // ---- snapshot support -------------------------------------------------
    // Capture reads pending-event identities; restore rebuilds the queue in
    // the captured relative order, then fast-forwards the clock.

    /// Absolute time of a pending event. Requires is_pending(id).
    SimTime event_time(EventId id) const { return queue_.time_of(id); }

    /// Sequence number the next schedule_at/schedule_in call will assign.
    std::uint64_t next_event_seq() const noexcept { return queue_.next_seq(); }

    /// Next firing time of a live periodic. Requires a valid, live handle.
    SimTime periodic_due(PeriodicHandle handle) const;

    /// Pending event carrying the next firing of a live periodic.
    EventId periodic_event(PeriodicHandle handle) const;

    /// Fast-forwards a freshly constructed simulator to a checkpointed
    /// clock. Requires that nothing has been scheduled or executed yet.
    void restore_clock(SimTime now, std::uint64_t executed);

    /// Restores the lifetime cancellation count from a checkpoint (kept
    /// separate from restore_clock: older snapshots lack the field).
    void restore_cancelled(std::uint64_t cancelled) {
        queue_.restore_cancelled_count(cancelled);
    }

    /// Attaches an (optional, non-owning) event tracer: its clock is bound
    /// to this simulator's `now()` and run_until() marks its span. Pass
    /// nullptr to detach.
    void set_tracer(telemetry::Tracer* tracer);
    telemetry::Tracer* tracer() const noexcept { return tracer_; }

private:
    struct Periodic;
    void fire_periodic(std::uint64_t periodic_id);

    EventQueue queue_;
    telemetry::Tracer* tracer_ = nullptr;
    SimTime now_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t next_periodic_id_ = 1;
    // Periodic bookkeeping: id -> (period, callback, next EventId).
    struct PeriodicState {
        SimDuration period;
        std::function<void(SimTime)> cb;
        EventId pending_event;
    };
    std::unordered_map<std::uint64_t, PeriodicState> periodics_;
};

}  // namespace mcs
