#include "sim/time.hpp"

#include <cmath>

#include "util/require.hpp"

namespace mcs {

SimDuration duration_for_cycles(std::uint64_t cycles, double hz) {
    MCS_REQUIRE(hz > 0.0, "frequency must be positive");
    const double ns =
        static_cast<double>(cycles) / hz * static_cast<double>(kSecond);
    return static_cast<SimDuration>(std::ceil(ns));
}

}  // namespace mcs
