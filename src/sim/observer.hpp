#pragma once

// Generic observer fan-out used by the hook layers above the simulator.
// Observers are non-owning raw pointers; dispatch is a plain loop so a
// single registered observer costs one indirect call per event and an
// empty list costs one branch.

#include <algorithm>
#include <vector>

#include "util/require.hpp"

namespace mcs {

template <typename Observer>
class ObserverList {
public:
    void add(Observer* observer) {
        MCS_REQUIRE(observer != nullptr, "observer must not be null");
        MCS_REQUIRE(std::find(observers_.begin(), observers_.end(),
                              observer) == observers_.end(),
                    "observer already registered");
        observers_.push_back(observer);
    }

    void remove(Observer* observer) {
        observers_.erase(std::remove(observers_.begin(), observers_.end(),
                                     observer),
                         observers_.end());
    }

    bool empty() const noexcept { return observers_.empty(); }
    std::size_t size() const noexcept { return observers_.size(); }

    /// Invokes `fn(observer)` for every registered observer, in
    /// registration order (deterministic dispatch).
    template <typename Fn>
    void notify(Fn&& fn) const {
        for (Observer* o : observers_) {
            fn(*o);
        }
    }

    /// True if `fn(observer)` is true for any registered observer.
    template <typename Fn>
    bool any(Fn&& fn) const {
        for (Observer* o : observers_) {
            if (fn(*o)) {
                return true;
            }
        }
        return false;
    }

private:
    std::vector<Observer*> observers_;
};

}  // namespace mcs
