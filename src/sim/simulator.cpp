#include "sim/simulator.hpp"

#include "util/require.hpp"

namespace mcs {

EventId Simulator::schedule_at(SimTime when, EventQueue::Callback cb) {
    MCS_REQUIRE(when >= now_, "cannot schedule into the past");
    return queue_.schedule(when, std::move(cb));
}

EventId Simulator::schedule_in(SimDuration delay, EventQueue::Callback cb) {
    return queue_.schedule(now_ + delay, std::move(cb));
}

Simulator::PeriodicHandle Simulator::every(SimDuration period,
                                           std::function<void(SimTime)> cb) {
    return every(period, now_ + period, std::move(cb));
}

Simulator::PeriodicHandle Simulator::every(SimDuration period, SimTime first_at,
                                           std::function<void(SimTime)> cb) {
    MCS_REQUIRE(period > 0, "periodic period must be positive");
    MCS_REQUIRE(static_cast<bool>(cb), "periodic callback must be callable");
    MCS_REQUIRE(first_at >= now_, "first firing cannot be in the past");
    const std::uint64_t id = next_periodic_id_++;
    auto [it, inserted] = periodics_.emplace(
        id, PeriodicState{period, std::move(cb), EventId{}});
    MCS_REQUIRE(inserted, "periodic id collision");
    it->second.pending_event =
        schedule_at(first_at, [this, id] { fire_periodic(id); });
    return PeriodicHandle{id};
}

void Simulator::fire_periodic(std::uint64_t periodic_id) {
    auto it = periodics_.find(periodic_id);
    if (it == periodics_.end()) {
        return;  // stopped between scheduling and firing
    }
    // Reschedule before invoking so the callback may stop_periodic() itself.
    it->second.pending_event = schedule_at(
        now_ + it->second.period, [this, periodic_id] {
            fire_periodic(periodic_id);
        });
    // Copy the callback: the callback may stop this periodic, erasing the
    // map entry (and the std::function we'd otherwise be executing from).
    auto cb = it->second.cb;
    cb(now_);
}

void Simulator::stop_periodic(PeriodicHandle handle) {
    auto it = periodics_.find(handle.id);
    if (it == periodics_.end()) {
        return;
    }
    queue_.cancel(it->second.pending_event);
    periodics_.erase(it);
}

void Simulator::set_tracer(telemetry::Tracer* tracer) {
    tracer_ = tracer;
    if (tracer_ != nullptr) {
        tracer_->set_clock([this] { return now_; });
    }
}

std::uint64_t Simulator::run_until(SimTime until) {
    if (tracer_ != nullptr) {
        tracer_->record(now_, telemetry::TraceCategory::Sim,
                        telemetry::TracePhase::Instant, "run_until_begin", 0,
                        static_cast<std::int64_t>(until));
    }
    const std::uint64_t ran = advance_until(until);
    if (tracer_ != nullptr) {
        tracer_->record(now_, telemetry::TraceCategory::Sim,
                        telemetry::TracePhase::Instant, "run_until_end", 0,
                        static_cast<std::int64_t>(ran));
    }
    return ran;
}

std::uint64_t Simulator::advance_until(SimTime until) {
    std::uint64_t ran = 0;
    while (step(until)) {
        ++ran;
    }
    if (now_ < until) {
        now_ = until;
    }
    return ran;
}

SimTime Simulator::periodic_due(PeriodicHandle handle) const {
    const auto it = periodics_.find(handle.id);
    MCS_REQUIRE(it != periodics_.end(), "periodic_due on a stopped periodic");
    return queue_.time_of(it->second.pending_event);
}

EventId Simulator::periodic_event(PeriodicHandle handle) const {
    const auto it = periodics_.find(handle.id);
    MCS_REQUIRE(it != periodics_.end(), "periodic_event on a stopped periodic");
    return it->second.pending_event;
}

void Simulator::restore_clock(SimTime now, std::uint64_t executed) {
    MCS_REQUIRE(queue_.empty() && periodics_.empty() && now_ == 0 &&
                    executed_ == 0,
                "restore_clock requires a pristine simulator");
    now_ = now;
    executed_ = executed;
}

bool Simulator::step(SimTime until) {
    if (queue_.empty() || queue_.next_time() > until) {
        return false;
    }
    auto [when, cb] = queue_.pop();
    MCS_REQUIRE(when >= now_, "event queue produced a past event");
    now_ = when;
    ++executed_;
    cb();
    return true;
}

}  // namespace mcs
