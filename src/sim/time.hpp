#pragma once

#include <cstdint>

namespace mcs {

/// Simulated time in integer nanoseconds. All subsystems share this clock.
using SimTime = std::uint64_t;

/// Duration in nanoseconds (same representation, separate name for intent).
using SimDuration = std::uint64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1'000;
inline constexpr SimDuration kMillisecond = 1'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000;

constexpr SimDuration nanoseconds(std::uint64_t n) { return n; }
constexpr SimDuration microseconds(std::uint64_t n) { return n * kMicrosecond; }
constexpr SimDuration milliseconds(std::uint64_t n) { return n * kMillisecond; }
constexpr SimDuration seconds(std::uint64_t n) { return n * kSecond; }

constexpr double to_seconds(SimDuration d) {
    return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double to_milliseconds(SimDuration d) {
    return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double to_microseconds(SimDuration d) {
    return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Converts a duration in (fractional) seconds to SimDuration, rounding to
/// the nearest nanosecond.
constexpr SimDuration from_seconds(double s) {
    return static_cast<SimDuration>(s * static_cast<double>(kSecond) + 0.5);
}

/// Number of clock cycles executed in `d` at frequency `hz`, rounded down.
constexpr std::uint64_t cycles_in(SimDuration d, double hz) {
    return static_cast<std::uint64_t>(to_seconds(d) * hz);
}

/// Time needed to execute `cycles` at frequency `hz`, rounded up to a whole
/// nanosecond so completion never lands before the work is truly done.
SimDuration duration_for_cycles(std::uint64_t cycles, double hz);

}  // namespace mcs
