#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/require.hpp"

namespace mcs {

namespace {

constexpr std::size_t kMinBuckets = 16;
constexpr std::uint32_t kMaxWidthShift = 40;  // 2^40 ns ~ 18 minutes

/// Strict (when, seq) order: the pop order contract.
bool earlier(SimTime aw, std::uint64_t as, SimTime bw,
             std::uint64_t bs) noexcept {
    return aw != bw ? aw < bw : as < bs;
}

}  // namespace

EventQueue::EventQueue() : buckets_(kMinBuckets) {}

std::size_t EventQueue::stored_entries() const noexcept {
    std::size_t n = 0;
    for (const auto& b : buckets_) {
        n += b.size();
    }
    return n;
}

EventId EventQueue::schedule(SimTime when, Callback cb) {
    MCS_REQUIRE(static_cast<bool>(cb), "event callback must be callable");
    const std::uint64_t seq = next_seq_++;
    if (index_.empty()) {
        floor_ = when;
    } else if (when < floor_) {
        floor_ = when;
    }
    buckets_[bucket_of(when)].push_back(Entry{when, seq, std::move(cb)});
    index_.emplace(seq, when);
    if (min_valid_) {
        // A fresh seq is larger than every live one, so ties keep the
        // cached minimum (FIFO at equal timestamps).
        if (when < min_when_) {
            min_when_ = when;
            min_seq_ = seq;
            min_bucket_ = bucket_of(when);
        }
    } else if (index_.size() == 1) {
        min_valid_ = true;
        min_when_ = when;
        min_seq_ = seq;
        min_bucket_ = bucket_of(when);
    }
    maybe_grow();
    return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
    if (!id.valid()) {
        return false;
    }
    const auto it = index_.find(id.seq);
    if (it == index_.end()) {
        return false;
    }
    extract(bucket_of(it->second), id.seq);
    index_.erase(it);
    ++cancelled_;
    if (min_valid_ && id.seq == min_seq_) {
        min_valid_ = false;
    }
    maybe_shrink();
    return true;
}

bool EventQueue::is_pending(EventId id) const {
    return id.valid() && index_.count(id.seq) != 0;
}

SimTime EventQueue::time_of(EventId id) const {
    const auto it = id.valid() ? index_.find(id.seq) : index_.end();
    MCS_REQUIRE(it != index_.end(), "time_of on a non-pending event");
    return it->second;
}

void EventQueue::ensure_min() const {
    if (min_valid_ || index_.empty()) {
        return;
    }
    // Walk consecutive day windows from the floor: the first window holding
    // any entry holds the global minimum (all entries of an earlier window
    // would live in an earlier-visited bucket, and same-window entries share
    // one bucket).
    const std::size_t nb = buckets_.size();
    const SimTime first_day = floor_ >> width_shift_;
    for (std::size_t lap = 0; lap < nb; ++lap) {
        const SimTime day = first_day + static_cast<SimTime>(lap);
        const std::size_t b = static_cast<std::size_t>(day) & (nb - 1);
        bool found = false;
        SimTime bw = 0;
        std::uint64_t bs = 0;
        for (const Entry& e : buckets_[b]) {
            if ((e.when >> width_shift_) != day) {
                continue;  // a later lap of this bucket
            }
            if (!found || earlier(e.when, e.seq, bw, bs)) {
                found = true;
                bw = e.when;
                bs = e.seq;
            }
        }
        if (found) {
            min_valid_ = true;
            min_when_ = bw;
            min_seq_ = bs;
            min_bucket_ = b;
            return;
        }
    }
    // Sparse tail: everything lives beyond one full calendar year from the
    // floor. One direct scan finds the minimum.
    bool found = false;
    for (std::size_t b = 0; b < nb; ++b) {
        for (const Entry& e : buckets_[b]) {
            if (!found || earlier(e.when, e.seq, min_when_, min_seq_)) {
                found = true;
                min_when_ = e.when;
                min_seq_ = e.seq;
                min_bucket_ = b;
            }
        }
    }
    MCS_REQUIRE(found, "calendar queue lost a pending entry");
    min_valid_ = true;
}

SimTime EventQueue::next_time() const {
    MCS_REQUIRE(!empty(), "next_time on empty event queue");
    ensure_min();
    return min_when_;
}

EventQueue::Entry EventQueue::extract(std::size_t b, std::uint64_t seq) {
    std::vector<Entry>& bucket = buckets_[b];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i].seq == seq) {
            Entry out = std::move(bucket[i]);
            bucket[i] = std::move(bucket.back());
            bucket.pop_back();
            return out;
        }
    }
    MCS_REQUIRE(false, "calendar queue entry missing from its bucket");
    return Entry{};
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
    MCS_REQUIRE(!empty(), "pop on empty event queue");
    ensure_min();
    Entry e = extract(min_bucket_, min_seq_);
    index_.erase(e.seq);
    floor_ = e.when;  // remaining entries are all >= the popped minimum
    min_valid_ = false;
    maybe_shrink();
    return {e.when, std::move(e.cb)};
}

void EventQueue::maybe_grow() {
    if (index_.size() > 2 * buckets_.size()) {
        rebuild(std::bit_ceil(index_.size()));
    }
}

void EventQueue::maybe_shrink() {
    if (buckets_.size() > kMinBuckets &&
        index_.size() < buckets_.size() / 8) {
        rebuild(std::max(kMinBuckets, std::bit_ceil(index_.size() * 2)));
    }
}

void EventQueue::rebuild(std::size_t want_buckets) {
    std::vector<Entry> all;
    all.reserve(index_.size());
    SimTime lo = std::numeric_limits<SimTime>::max();
    SimTime hi = 0;
    for (auto& bucket : buckets_) {
        for (Entry& e : bucket) {
            lo = std::min(lo, e.when);
            hi = std::max(hi, e.when);
            all.push_back(std::move(e));
        }
        bucket.clear();
    }
    // Bucket width ~ the mean inter-event gap of the pending set (span /
    // population), rounded to a power of two: one day window then holds
    // O(1) events on the epoch-quantized mix. Both inputs are functions of
    // the pending set alone, so the layout is deterministic.
    const SimTime span = all.empty() ? 0 : hi - lo;
    const SimTime gap = span / std::max<std::size_t>(std::size_t{1}, all.size());
    width_shift_ = gap == 0
                       ? 0
                       : std::min<std::uint32_t>(
                             kMaxWidthShift,
                             static_cast<std::uint32_t>(
                                 std::bit_width(static_cast<std::uint64_t>(gap))));
    buckets_.assign(want_buckets, {});
    for (Entry& e : all) {
        buckets_[bucket_of(e.when)].push_back(std::move(e));
    }
    if (min_valid_) {
        min_bucket_ = bucket_of(min_when_);
    }
}

}  // namespace mcs
