#include "sim/event_queue.hpp"

#include "util/require.hpp"

namespace mcs {

EventId EventQueue::schedule(SimTime when, Callback cb) {
    MCS_REQUIRE(static_cast<bool>(cb), "event callback must be callable");
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{when, seq, std::move(cb)});
    pending_.emplace(seq, when);
    return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
    if (!id.valid()) {
        return false;
    }
    // Cancelled entries stay in the heap and are discarded lazily by skim();
    // `pending_` is the ground truth for what is still live.
    return pending_.erase(id.seq) != 0;
}

bool EventQueue::is_pending(EventId id) const {
    return id.valid() && pending_.count(id.seq) != 0;
}

void EventQueue::skim() const {
    while (!heap_.empty() && pending_.count(heap_.top().seq) == 0) {
        heap_.pop();
    }
}

SimTime EventQueue::time_of(EventId id) const {
    const auto it = id.valid() ? pending_.find(id.seq) : pending_.end();
    MCS_REQUIRE(it != pending_.end(), "time_of on a non-pending event");
    return it->second;
}

SimTime EventQueue::next_time() const {
    MCS_REQUIRE(!empty(), "next_time on empty event queue");
    skim();
    return heap_.top().when;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
    MCS_REQUIRE(!empty(), "pop on empty event queue");
    skim();
    // const_cast is confined here: priority_queue::top() is const, but the
    // entry is about to be popped so moving its callback out is safe.
    auto& top = const_cast<Entry&>(heap_.top());
    std::pair<SimTime, Callback> out{top.when, std::move(top.cb)};
    pending_.erase(top.seq);
    heap_.pop();
    return out;
}

}  // namespace mcs
