#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace mcs {

/// Handle to a scheduled event; can be used to cancel it.
struct EventId {
    std::uint64_t seq = 0;
    bool valid() const noexcept { return seq != 0; }
};

/// Time-ordered event queue backed by a bucketed calendar (Brown-style
/// calendar queue) instead of a binary heap. Ties break in scheduling order
/// (FIFO at equal timestamps: pop order is ascending (when, seq)), which
/// keeps simulations deterministic, and `next_seq()` exposes the sequence
/// number the next schedule() call will assign so callers can register
/// bookkeeping for an event before creating it (the snapshot manifest keys
/// in-flight work by event sequence).
///
/// Layout: events hash into `buckets_` by `(when >> width_shift_) & mask`.
/// The bucket width is a power of two re-derived at every resize from the
/// pending set's time span divided by its population -- i.e. sized to the
/// mean inter-event gap of the epoch-quantized event mix, so one "day"
/// window usually holds O(1) events. The minimum is found by walking
/// consecutive day windows from a floor that lower-bounds every pending
/// timestamp; a full fruitless lap (a sparse far-future tail) falls back to
/// one direct scan. Resizes trigger on population thresholds only, so the
/// structure's shape is a pure function of the pending set and never
/// depends on wall clock or callers' identities.
///
/// Cancellation is eager: cancel() removes the entry from its bucket
/// immediately (the old heap kept cancelled entries until they surfaced),
/// so cancel-heavy workloads no longer grow the backing storage.
/// `cancelled_count()` reports lifetime cancellations for telemetry.
class EventQueue {
public:
    using Callback = std::function<void()>;

    EventQueue();

    /// Schedules `cb` at absolute time `when`. Returns a cancellation handle.
    EventId schedule(SimTime when, Callback cb);

    /// Cancels a pending event, reclaiming its slot immediately. Cancelling
    /// an already-fired or already-cancelled event is a no-op. Returns true
    /// if the event was pending.
    bool cancel(EventId id);

    /// True if the given event is still pending (scheduled, not fired, not
    /// cancelled).
    bool is_pending(EventId id) const;

    bool empty() const noexcept { return index_.empty(); }
    std::size_t pending() const noexcept { return index_.size(); }

    /// Time of the earliest pending event. Requires !empty().
    SimTime next_time() const;

    /// Absolute time of a pending event. Requires is_pending(id).
    SimTime time_of(EventId id) const;

    /// Sequence number the NEXT schedule() call will assign.
    std::uint64_t next_seq() const noexcept { return next_seq_; }

    /// Pops the earliest pending event and returns (time, callback).
    /// Requires !empty().
    std::pair<SimTime, Callback> pop();

    /// Lifetime count of successful cancel() calls.
    std::uint64_t cancelled_count() const noexcept { return cancelled_; }
    /// Overwrites the cancellation count from a checkpoint.
    void restore_cancelled_count(std::uint64_t n) noexcept { cancelled_ = n; }

    /// Entries physically stored across all buckets. Equals pending() --
    /// exposed so tests can assert that cancellation reclaims eagerly.
    std::size_t stored_entries() const noexcept;

    /// Current bucket count (introspection for tests/benches).
    std::size_t bucket_count() const noexcept { return buckets_.size(); }

private:
    struct Entry {
        SimTime when;
        std::uint64_t seq;
        Callback cb;
    };

    std::size_t bucket_of(SimTime when) const noexcept {
        return static_cast<std::size_t>(when >> width_shift_) &
               (buckets_.size() - 1);
    }
    /// Recomputes the cached minimum (lap scan + direct-search fallback).
    void ensure_min() const;
    /// Removes the entry `seq` from bucket `b` (swap-remove) and returns it.
    Entry extract(std::size_t b, std::uint64_t seq);
    /// Rebuilds into `want_buckets` buckets with a width re-derived from the
    /// pending set (span / population, rounded to a power of two).
    void rebuild(std::size_t want_buckets);
    void maybe_grow();
    void maybe_shrink();

    std::vector<std::vector<Entry>> buckets_;
    std::uint32_t width_shift_ = 0;
    // seq -> scheduled time: liveness ground truth, O(1) time_of for the
    // snapshot manifest, and the bucket locator for eager cancellation.
    std::unordered_map<std::uint64_t, SimTime> index_;
    std::uint64_t next_seq_ = 1;
    std::uint64_t cancelled_ = 0;
    /// Lower bound on every pending timestamp (start of the min search).
    SimTime floor_ = 0;
    // Cached minimum: valid until the next mutation that can move it.
    mutable bool min_valid_ = false;
    mutable SimTime min_when_ = 0;
    mutable std::uint64_t min_seq_ = 0;
    mutable std::size_t min_bucket_ = 0;
};

}  // namespace mcs
