#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace mcs {

/// Handle to a scheduled event; can be used to cancel it.
struct EventId {
    std::uint64_t seq = 0;
    bool valid() const noexcept { return seq != 0; }
};

/// Time-ordered event queue with O(log n) schedule/pop and O(1) (amortized)
/// cancellation. Ties break in scheduling order (FIFO at equal timestamps),
/// which keeps simulations deterministic.
class EventQueue {
public:
    using Callback = std::function<void()>;

    /// Schedules `cb` at absolute time `when`. Returns a cancellation handle.
    EventId schedule(SimTime when, Callback cb);

    /// Cancels a pending event. Cancelling an already-fired or already-
    /// cancelled event is a no-op. Returns true if the event was pending.
    bool cancel(EventId id);

    /// True if the given event is still pending (scheduled, not fired, not
    /// cancelled).
    bool is_pending(EventId id) const;

    bool empty() const noexcept { return pending_.empty(); }
    std::size_t pending() const noexcept { return pending_.size(); }

    /// Time of the earliest pending event. Requires !empty().
    SimTime next_time() const;

    /// Absolute time of a pending event. Requires is_pending(id).
    SimTime time_of(EventId id) const;

    /// Sequence number the NEXT schedule() call will assign. Lets callers
    /// register bookkeeping for an event before creating it (the snapshot
    /// manifest keys in-flight work by event sequence).
    std::uint64_t next_seq() const noexcept { return next_seq_; }

    /// Pops the earliest pending event and returns (time, callback).
    /// Requires !empty().
    std::pair<SimTime, Callback> pop();

private:
    struct Entry {
        SimTime when;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.when != b.when) {
                return a.when > b.when;
            }
            return a.seq > b.seq;
        }
    };

    /// Drops cancelled entries from the front of the heap.
    void skim() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    // seq -> scheduled time; the ground truth for liveness, and the index
    // snapshot capture uses to read pending-event times in O(1).
    std::unordered_map<std::uint64_t, SimTime> pending_;
    std::uint64_t next_seq_ = 1;
};

}  // namespace mcs
