#include "telemetry/metrics_registry.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace mcs::telemetry {

void Gauge::merge(const Gauge& other) {
    MCS_REQUIRE(merge_ == other.merge_,
                "cannot merge gauges with different merge policies");
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    switch (merge_) {
        case GaugeMerge::Sum:
        case GaugeMerge::Mean:
            value_ += other.value_;
            break;
        case GaugeMerge::Max:
            value_ = std::max(value_, other.value_);
            break;
        case GaugeMerge::Min:
            value_ = std::min(value_, other.value_);
            break;
    }
    count_ += other.count_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
        return it->second;
    }
    return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, GaugeMerge merge) {
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) {
        MCS_REQUIRE(it->second.merge_policy() == merge,
                    "gauge re-registered with a different merge policy: " +
                        std::string(name));
        return it->second;
    }
    return gauges_.emplace(std::string(name), Gauge{merge}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                      double hi, std::size_t bins) {
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
        MCS_REQUIRE(it->second.same_layout(Histogram(lo, hi, bins)),
                    "histogram re-registered with a different layout: " +
                        std::string(name));
        return it->second;
    }
    return histograms_.emplace(std::string(name), Histogram(lo, hi, bins))
        .first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
    for (const auto& [name, c] : other.counters_) {
        counter(name).inc(c.value());
    }
    for (const auto& [name, g] : other.gauges_) {
        gauge(name, g.merge_policy()).merge(g);
    }
    for (const auto& [name, h] : other.histograms_) {
        const auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            histograms_.emplace(name, h);
        } else {
            it->second.merge(h);
        }
    }
}

void MetricsRegistry::write_json(JsonWriter& w) const {
    w.begin_object();
    w.key("counters");
    w.begin_object();
    for (const auto& [name, c] : counters_) {
        w.field(name, c.value());
    }
    w.end_object();
    w.key("gauges");
    w.begin_object();
    for (const auto& [name, g] : gauges_) {
        w.field(name, g.value());
    }
    w.end_object();
    w.key("histograms");
    w.begin_object();
    for (const auto& [name, h] : histograms_) {
        w.key(name);
        w.begin_object();
        w.field("lo", h.bins() > 0 ? h.bin_lo(0) : 0.0);
        w.field("hi", h.bins() > 0 ? h.bin_hi(h.bins() - 1) : 0.0);
        w.field("underflow", h.underflow());
        w.field("overflow", h.overflow());
        w.field("total", h.total());
        w.key("counts");
        w.begin_array();
        for (std::size_t i = 0; i < h.bins(); ++i) {
            w.value(h.bin_count(i));
        }
        w.end_array();
        w.end_object();
    }
    w.end_object();
    w.end_object();
}

}  // namespace mcs::telemetry
