#include "telemetry/metrics_registry.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace mcs::telemetry {

void Gauge::merge(const Gauge& other) {
    MCS_REQUIRE(merge_ == other.merge_,
                "cannot merge gauges with different merge policies");
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    switch (merge_) {
        case GaugeMerge::Sum:
        case GaugeMerge::Mean:
            value_ += other.value_;
            break;
        case GaugeMerge::Max:
            value_ = std::max(value_, other.value_);
            break;
        case GaugeMerge::Min:
            value_ = std::min(value_, other.value_);
            break;
    }
    count_ += other.count_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
        return it->second;
    }
    return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, GaugeMerge merge) {
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) {
        MCS_REQUIRE(it->second.merge_policy() == merge,
                    "gauge re-registered with a different merge policy: " +
                        std::string(name));
        return it->second;
    }
    return gauges_.emplace(std::string(name), Gauge{merge}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                      double hi, std::size_t bins) {
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
        MCS_REQUIRE(it->second.same_layout(Histogram(lo, hi, bins)),
                    "histogram re-registered with a different layout: " +
                        std::string(name));
        return it->second;
    }
    return histograms_.emplace(std::string(name), Histogram(lo, hi, bins))
        .first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
    for (const auto& [name, c] : other.counters_) {
        counter(name).inc(c.value());
    }
    for (const auto& [name, g] : other.gauges_) {
        gauge(name, g.merge_policy()).merge(g);
    }
    for (const auto& [name, h] : other.histograms_) {
        const auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            histograms_.emplace(name, h);
        } else {
            it->second.merge(h);
        }
    }
}

void MetricsRegistry::write_json(JsonWriter& w) const {
    w.begin_object();
    w.key("counters");
    w.begin_object();
    for (const auto& [name, c] : counters_) {
        w.field(name, c.value());
    }
    w.end_object();
    w.key("gauges");
    w.begin_object();
    for (const auto& [name, g] : gauges_) {
        w.field(name, g.value());
    }
    w.end_object();
    w.key("histograms");
    w.begin_object();
    for (const auto& [name, h] : histograms_) {
        w.key(name);
        w.begin_object();
        w.field("lo", h.bins() > 0 ? h.bin_lo(0) : 0.0);
        w.field("hi", h.bins() > 0 ? h.bin_hi(h.bins() - 1) : 0.0);
        w.field("underflow", h.underflow());
        w.field("overflow", h.overflow());
        w.field("total", h.total());
        w.key("counts");
        w.begin_array();
        for (std::size_t i = 0; i < h.bins(); ++i) {
            w.value(h.bin_count(i));
        }
        w.end_array();
        w.end_object();
    }
    w.end_object();
    w.end_object();
}

namespace {

std::string_view merge_name(GaugeMerge m) {
    switch (m) {
        case GaugeMerge::Sum: return "sum";
        case GaugeMerge::Max: return "max";
        case GaugeMerge::Min: return "min";
        case GaugeMerge::Mean: return "mean";
    }
    return "sum";
}

GaugeMerge merge_from(std::string_view name) {
    if (name == "sum") {
        return GaugeMerge::Sum;
    }
    if (name == "max") {
        return GaugeMerge::Max;
    }
    if (name == "min") {
        return GaugeMerge::Min;
    }
    if (name == "mean") {
        return GaugeMerge::Mean;
    }
    MCS_REQUIRE(false, "unknown gauge merge policy: " + std::string(name));
    return GaugeMerge::Sum;
}

}  // namespace

void MetricsRegistry::save_state(JsonWriter& w) const {
    w.begin_object();
    w.key("counters");
    w.begin_object();
    for (const auto& [name, c] : counters_) {
        w.field(name, c.value());
    }
    w.end_object();
    w.key("gauges");
    w.begin_object();
    for (const auto& [name, g] : gauges_) {
        w.key(name);
        w.begin_object();
        w.field("merge", merge_name(g.merge_policy()));
        w.field("value", g.raw_value());
        w.field("count", g.observation_count());
        w.end_object();
    }
    w.end_object();
    w.key("histograms");
    w.begin_object();
    for (const auto& [name, h] : histograms_) {
        w.key(name);
        w.begin_object();
        w.field("lo", h.bins() > 0 ? h.bin_lo(0) : 0.0);
        w.field("hi", h.bins() > 0 ? h.bin_hi(h.bins() - 1) : 0.0);
        w.field("underflow", h.underflow());
        w.field("overflow", h.overflow());
        w.field("total", h.total());
        w.key("counts");
        w.begin_array();
        for (std::size_t i = 0; i < h.bins(); ++i) {
            w.value(h.bin_count(i));
        }
        w.end_array();
        w.end_object();
    }
    w.end_object();
    w.end_object();
}

void MetricsRegistry::load_state(const JsonValue& doc) {
    MCS_REQUIRE(doc.is_object(), "registry state must be a JSON object");
    for (const auto& [name, v] : doc.at("counters").object) {
        counter(name).restore(v.u64());
    }
    for (const auto& [name, v] : doc.at("gauges").object) {
        const GaugeMerge policy = merge_from(v.at("merge").string);
        gauge(name, policy).restore(v.at("value").number,
                                    v.at("count").u64());
    }
    for (const auto& [name, v] : doc.at("histograms").object) {
        const auto& counts_json = v.at("counts").array;
        MCS_REQUIRE(!counts_json.empty(),
                    "histogram state needs at least one bin: " + name);
        Histogram& h = histogram(name, v.at("lo").number, v.at("hi").number,
                                 counts_json.size());
        std::vector<std::uint64_t> counts;
        counts.reserve(counts_json.size());
        for (const auto& c : counts_json) {
            counts.push_back(c.u64());
        }
        h.restore_counts(counts, v.at("underflow").u64(),
                         v.at("overflow").u64(), v.at("total").u64());
    }
}

}  // namespace mcs::telemetry
