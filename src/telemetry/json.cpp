#include "telemetry/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <system_error>

#include "util/require.hpp"

namespace mcs::telemetry {

std::string json_number(double v) {
    if (!std::isfinite(v)) {
        return "null";  // JSON has no NaN/inf literal
    }
    // std::to_chars emits the shortest decimal that round-trips and is
    // locale-independent (snprintf honours LC_NUMERIC, which would break
    // the byte-determinism contract inside a setlocale()d host process).
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    MCS_REQUIRE(res.ec == std::errc{}, "json_number: to_chars failed");
    return std::string(buf, res.ptr);
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

// ------------------------------------------------------------- JsonWriter

void JsonWriter::separate() {
    if (pending_key_) {
        pending_key_ = false;
        return;  // the key already emitted its separator
    }
    if (!has_item_.empty()) {
        if (has_item_.back()) {
            out_ << ',';
        }
        has_item_.back() = true;
    }
}

void JsonWriter::begin_object() {
    separate();
    out_ << '{';
    has_item_.push_back(false);
}

void JsonWriter::end_object() {
    MCS_REQUIRE(!has_item_.empty(), "end_object without begin_object");
    has_item_.pop_back();
    out_ << '}';
}

void JsonWriter::begin_array() {
    separate();
    out_ << '[';
    has_item_.push_back(false);
}

void JsonWriter::end_array() {
    MCS_REQUIRE(!has_item_.empty(), "end_array without begin_array");
    has_item_.pop_back();
    out_ << ']';
}

void JsonWriter::key(std::string_view name) {
    MCS_REQUIRE(!has_item_.empty(), "key outside an object");
    if (has_item_.back()) {
        out_ << ',';
    }
    has_item_.back() = true;
    out_ << '"' << json_escape(name) << "\":";
    pending_key_ = true;
}

void JsonWriter::value(double v) {
    separate();
    out_ << json_number(v);
}

void JsonWriter::value(std::int64_t v) {
    separate();
    out_ << v;
}

void JsonWriter::value(std::uint64_t v) {
    separate();
    out_ << v;
}

void JsonWriter::value(bool v) {
    separate();
    out_ << (v ? "true" : "false");
}

void JsonWriter::value(std::string_view v) {
    separate();
    out_ << '"' << json_escape(v) << '"';
}

void JsonWriter::null() {
    separate();
    out_ << "null";
}

// ------------------------------------------------------------- JsonValue

const JsonValue& JsonValue::at(const std::string& name) const {
    MCS_REQUIRE(kind == Kind::Object, "JsonValue::at on a non-object");
    const auto it = object.find(name);
    MCS_REQUIRE(it != object.end(), "missing JSON member: " + name);
    return it->second;
}

bool JsonValue::has(const std::string& name) const {
    return kind == Kind::Object && object.find(name) != object.end();
}

std::uint64_t JsonValue::u64() const {
    MCS_REQUIRE(kind == Kind::Number, "JsonValue::u64 on a non-number");
    MCS_REQUIRE(!raw.empty(), "JsonValue::u64 without a raw number token");
    std::uint64_t v = 0;
    const char* begin = raw.data();
    const char* end = raw.data() + raw.size();
    const auto res = std::from_chars(begin, end, v);
    MCS_REQUIRE(res.ec == std::errc{} && res.ptr == end,
                "JsonValue::u64: not an unsigned 64-bit integer: " + raw);
    return v;
}

std::int64_t JsonValue::i64() const {
    MCS_REQUIRE(kind == Kind::Number, "JsonValue::i64 on a non-number");
    MCS_REQUIRE(!raw.empty(), "JsonValue::i64 without a raw number token");
    std::int64_t v = 0;
    const char* begin = raw.data();
    const char* end = raw.data() + raw.size();
    const auto res = std::from_chars(begin, end, v);
    MCS_REQUIRE(res.ec == std::errc{} && res.ptr == end,
                "JsonValue::i64: not a signed 64-bit integer: " + raw);
    return v;
}

namespace {

class Parser {
public:
    Parser(std::string_view text, const JsonLimits& limits)
        : text_(text), limits_(limits) {}

    JsonValue parse_document() {
        JsonValue v = parse_value();
        skip_ws();
        MCS_REQUIRE(pos_ == text_.size(), "trailing bytes after JSON value");
        return v;
    }

private:
    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        skip_ws();
        MCS_REQUIRE(pos_ < text_.size(), "unexpected end of JSON input");
        return text_[pos_];
    }

    void expect(char c) {
        MCS_REQUIRE(peek() == c, std::string("expected '") + c + "' in JSON");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) == lit) {
            pos_ += lit.size();
            return true;
        }
        return false;
    }

    JsonValue parse_value() {
        const char c = peek();
        JsonValue v;
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"':
                v.kind = JsonValue::Kind::String;
                v.string = parse_string();
                return v;
            case 't':
                MCS_REQUIRE(consume_literal("true"), "bad JSON literal");
                v.kind = JsonValue::Kind::Bool;
                v.boolean = true;
                return v;
            case 'f':
                MCS_REQUIRE(consume_literal("false"), "bad JSON literal");
                v.kind = JsonValue::Kind::Bool;
                v.boolean = false;
                return v;
            case 'n':
                MCS_REQUIRE(consume_literal("null"), "bad JSON literal");
                v.kind = JsonValue::Kind::Null;
                return v;
            default: return parse_number();
        }
    }

    /// Container guard: depth counts every open object/array, so a deep
    /// bomb like "[[[[..." fails with a clean error long before the
    /// recursive descent can exhaust the stack.
    struct DepthGuard {
        explicit DepthGuard(Parser& parser) : p(parser) {
            ++p.depth_;
            MCS_REQUIRE(
                p.limits_.max_depth == 0 || p.depth_ <= p.limits_.max_depth,
                "JSON nesting exceeds max depth " +
                    std::to_string(p.limits_.max_depth));
        }
        ~DepthGuard() { --p.depth_; }
        DepthGuard(const DepthGuard&) = delete;
        DepthGuard& operator=(const DepthGuard&) = delete;
        Parser& p;
    };

    JsonValue parse_object() {
        const DepthGuard guard(*this);
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            MCS_REQUIRE(peek() == '"', "JSON object key must be a string");
            std::string key = parse_string();
            expect(':');
            v.object.emplace(std::move(key), parse_value());
            const char c = peek();
            ++pos_;
            if (c == '}') {
                return v;
            }
            MCS_REQUIRE(c == ',', "expected ',' or '}' in JSON object");
        }
    }

    JsonValue parse_array() {
        const DepthGuard guard(*this);
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parse_value());
            const char c = peek();
            ++pos_;
            if (c == ']') {
                return v;
            }
            MCS_REQUIRE(c == ',', "expected ',' or ']' in JSON array");
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            MCS_REQUIRE(pos_ < text_.size(), "unterminated JSON string");
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            MCS_REQUIRE(pos_ < text_.size(), "unterminated JSON escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    MCS_REQUIRE(pos_ + 4 <= text_.size(),
                                "truncated \\u escape");
                    const std::string hex(text_.substr(pos_, 4));
                    pos_ += 4;
                    const auto cp = static_cast<unsigned>(
                        std::strtoul(hex.c_str(), nullptr, 16));
                    // The writer only emits \u00xx control escapes; decode
                    // the Latin-1 range and refuse the rest.
                    MCS_REQUIRE(cp < 0x80, "unsupported \\u escape");
                    out += static_cast<char>(cp);
                    break;
                }
                default: MCS_REQUIRE(false, "bad JSON escape");
            }
        }
    }

    JsonValue parse_number() {
        skip_ws();
        const char* begin = text_.data() + pos_;
        const char* end = text_.data() + text_.size();
        double d = 0.0;
        // std::from_chars is locale-independent, unlike strtod, which
        // would misparse "1.5" under a comma-decimal LC_NUMERIC.
        const auto res = std::from_chars(begin, end, d);
        MCS_REQUIRE(res.ec == std::errc{}, "malformed JSON number");
        pos_ += static_cast<std::size_t>(res.ptr - begin);
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = d;
        v.raw.assign(begin, res.ptr);
        return v;
    }

    std::string_view text_;
    JsonLimits limits_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text, const JsonLimits& limits) {
    MCS_REQUIRE(limits.max_bytes == 0 || text.size() <= limits.max_bytes,
                "JSON document exceeds max size (" +
                    std::to_string(text.size()) + " > " +
                    std::to_string(limits.max_bytes) + " bytes)");
    return Parser(text, limits).parse_document();
}

}  // namespace mcs::telemetry
