#pragma once

// Single source of truth for mcs.* JSON schema versions.
//
// Every JSON document this repo emits carries a "schema" field like
// "mcs.run_report.v1". The version numbers live in tools/schemas.json; the
// build embeds that file here (see src/telemetry/CMakeLists.txt) and
// tools/check_bench.py reads it directly, so a future v2 bump edits exactly
// one file and every producer, loader, and gate fails loudly together
// instead of drifting apart.

#include <string>
#include <string_view>

namespace mcs::telemetry {

struct JsonValue;

/// Versioned schema tag for a family, e.g. schema_tag("mcs.run_report")
/// == "mcs.run_report.v1". Throws RequireError for families missing from
/// tools/schemas.json.
std::string schema_tag(std::string_view family);

/// Validates that `doc` is a JSON object whose "schema" member equals
/// schema_tag(family); throws RequireError with a diagnostic naming both
/// tags otherwise.
void require_schema(const JsonValue& doc, std::string_view family);

}  // namespace mcs::telemetry
