#include "telemetry/run_report.hpp"

#include <cstdint>
#include <fstream>
#include <vector>

#include "core/metric_catalog.hpp"
#include "telemetry/json.hpp"
#include "telemetry/schema.hpp"
#include "util/require.hpp"

namespace mcs::telemetry {

namespace {

void write_stat(JsonWriter& w, std::string_view name,
                const RunningStats& s) {
    w.key(name);
    w.begin_object();
    w.field("count", static_cast<std::uint64_t>(s.count()));
    w.field("mean", s.mean());
    w.field("stddev", s.stddev());
    w.field("min", s.min());
    w.field("max", s.max());
    w.end_object();
}

void write_u64_vector(JsonWriter& w, std::string_view name,
                      const std::vector<std::uint64_t>& values) {
    w.key(name);
    w.begin_array();
    for (const std::uint64_t v : values) {
        w.value(v);
    }
    w.end_array();
}

}  // namespace

void write_run_report(const RunMetrics& m, const MetricsRegistry* registry,
                      std::ostream& out) {
    JsonWriter w(out);
    w.begin_object();
    w.field("schema", schema_tag("mcs.run_report"));

    w.key("metrics");
    w.begin_object();
    for (const MetricDef& def : metric_catalog()) {
        w.field(def.name, def.get(m));
    }
    w.end_object();

    w.key("vectors");
    w.begin_object();
    write_u64_vector(w, "tests_per_vf_level", m.tests_per_vf_level);
    write_u64_vector(w, "apps_completed_by_class",
                     m.apps_completed_by_class);
    write_u64_vector(w, "deadlines_met_by_class", m.deadlines_met_by_class);
    write_u64_vector(w, "deadlines_missed_by_class",
                     m.deadlines_missed_by_class);
    w.end_object();

    w.key("stats");
    w.begin_object();
    write_stat(w, "app_latency_ms", m.app_latency_ms);
    write_stat(w, "app_queue_wait_ms", m.app_queue_wait_ms);
    write_stat(w, "test_interval_s", m.test_interval_s);
    write_stat(w, "detection_latency_s", m.detection_latency_s);
    write_stat(w, "link_detection_latency_s", m.link_detection_latency_s);
    write_stat(w, "mapping_dispersion_hops", m.mapping_dispersion_hops);
    w.end_object();

    if (registry != nullptr) {
        w.key("registry");
        registry->write_json(w);
    }
    w.end_object();
    out << '\n';
}

void write_run_report_file(const RunMetrics& m,
                           const MetricsRegistry* registry,
                           const std::string& path) {
    std::ofstream out(path);
    MCS_REQUIRE(out.good(), "cannot open report file: " + path);
    write_run_report(m, registry, out);
}

}  // namespace mcs::telemetry
