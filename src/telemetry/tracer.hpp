#pragma once

// Deterministic run tracing: a fixed-capacity ring buffer of simulator
// events (test sessions, DVFS transitions, capping interventions, mapping
// decisions, ...) exportable as Chrome-trace JSON (chrome://tracing,
// https://ui.perfetto.dev) or as JSONL for ad-hoc tooling.
//
// Overhead contract: a disabled tracer costs one predictable branch per
// call site; an enabled tracer costs one ring-buffer store (no allocation
// after construction, no locking -- the simulator is single-threaded).
// Event names must be string literals (the buffer stores the pointer).

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace mcs::telemetry {

class JsonWriter;
struct JsonValue;

enum class TraceCategory : std::uint8_t {
    Sim,       ///< simulator lifecycle (run begin/end)
    Workload,  ///< application arrival / mapping / completion
    Session,   ///< SBST test-session lifecycle
    Dvfs,      ///< per-core V/F transitions
    Power,     ///< capping interventions, power gating
    Noc,       ///< link-test lifecycle
};

/// Chrome-trace phases (the subset this tracer emits).
enum class TracePhase : std::uint8_t {
    Instant,  ///< "i": a point event
    Begin,    ///< "B": opens a duration slice on (pid 0, tid)
    End,      ///< "E": closes the innermost slice on (pid 0, tid)
};

std::string_view to_string(TraceCategory cat);

/// One recorded event. `tid` is the Chrome-trace track -- this repo uses
/// the core id (or 0 for chip-level events). `a`/`b` are small integer
/// arguments whose meaning is event-specific (documented per event in
/// docs/telemetry.md).
struct TraceEvent {
    SimTime time = 0;
    const char* name = "";
    std::int64_t a = 0;
    std::int64_t b = 0;
    std::uint32_t tid = 0;
    TraceCategory cat = TraceCategory::Sim;
    TracePhase phase = TracePhase::Instant;
};

class Tracer {
public:
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    explicit Tracer(std::size_t capacity = kDefaultCapacity);

    bool enabled() const noexcept { return enabled_; }
    void set_enabled(bool on) noexcept { enabled_ = on; }

    /// Clock used by the scope/instant conveniences (the wiring point for
    /// Simulator::now). record() takes explicit times and works without it.
    void set_clock(std::function<SimTime()> clock) {
        clock_ = std::move(clock);
    }
    SimTime clock_now() const { return clock_ ? clock_() : 0; }

    void record(SimTime time, TraceCategory cat, TracePhase phase,
                const char* name, std::uint32_t tid = 0, std::int64_t a = 0,
                std::int64_t b = 0) {
        if (!enabled_) {
            return;
        }
        store(TraceEvent{time, name, a, b, tid, cat, phase});
    }

    /// Point event stamped with the attached clock.
    void instant(TraceCategory cat, const char* name, std::uint32_t tid = 0,
                 std::int64_t a = 0, std::int64_t b = 0) {
        if (!enabled_) {
            return;
        }
        store(TraceEvent{clock_now(), name, a, b, tid, cat,
                         TracePhase::Instant});
    }

    std::size_t capacity() const noexcept { return buf_.size(); }
    /// Events currently retained (<= capacity()).
    std::size_t size() const noexcept { return count_; }
    /// Events overwritten because the buffer wrapped.
    std::uint64_t dropped() const noexcept { return dropped_; }
    void clear() noexcept;

    /// Visits retained events oldest-first.
    void for_each(const std::function<void(const TraceEvent&)>& fn) const;

    /// Chrome-trace JSON object ({"traceEvents":[...]}); `ts` is simulated
    /// microseconds. Byte-deterministic for identical event sequences.
    void write_chrome_json(std::ostream& out) const;

    /// One compact JSON object per line, schema-stable for stream tooling.
    void write_jsonl(std::ostream& out) const;

    /// Exact ring state (events oldest-first plus the drop count), for the
    /// snapshot document. Restoring it via load_state reproduces identical
    /// write_chrome_json/write_jsonl bytes.
    void save_state(JsonWriter& w) const;

    /// Replaces the ring contents with a save_state() document. Capacity
    /// must match the capacity the state was captured with. Event names are
    /// re-interned into a pool owned by this tracer (live call sites store
    /// string-literal pointers; restored events cannot).
    void load_state(const JsonValue& doc);

private:
    void store(const TraceEvent& e) noexcept;
    const char* intern(const std::string& name);

    std::vector<TraceEvent> buf_;
    std::size_t next_ = 0;   ///< slot the next event lands in
    std::size_t count_ = 0;  ///< retained events
    std::uint64_t dropped_ = 0;
    bool enabled_ = true;
    std::function<SimTime()> clock_;
    // Owned storage for names restored from a snapshot. A deque never
    // reallocates existing elements, so the c_str() pointers stay stable.
    std::deque<std::string> name_pool_;
    std::map<std::string, const char*, std::less<>> interned_;
};

/// RAII Begin/End pair on one track, stamped with the tracer clock:
///
///     TraceScope scope(tracer, TraceCategory::Session, "test_session",
///                      core, vf_level);
class TraceScope {
public:
    TraceScope(Tracer& tracer, TraceCategory cat, const char* name,
               std::uint32_t tid = 0, std::int64_t a = 0, std::int64_t b = 0)
        : tracer_(tracer), name_(name), tid_(tid), cat_(cat) {
        tracer_.record(tracer_.clock_now(), cat_, TracePhase::Begin, name_,
                       tid_, a, b);
    }
    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;
    ~TraceScope() {
        tracer_.record(tracer_.clock_now(), cat_, TracePhase::End, name_,
                       tid_);
    }

private:
    Tracer& tracer_;
    const char* name_;
    std::uint32_t tid_;
    TraceCategory cat_;
};

}  // namespace mcs::telemetry
