#include "telemetry/tracer.hpp"

#include "telemetry/json.hpp"
#include "util/require.hpp"

namespace mcs::telemetry {

std::string_view to_string(TraceCategory cat) {
    switch (cat) {
        case TraceCategory::Sim: return "sim";
        case TraceCategory::Workload: return "workload";
        case TraceCategory::Session: return "session";
        case TraceCategory::Dvfs: return "dvfs";
        case TraceCategory::Power: return "power";
        case TraceCategory::Noc: return "noc";
    }
    return "?";
}

namespace {

std::string_view phase_text(TracePhase phase) {
    switch (phase) {
        case TracePhase::Instant: return "i";
        case TracePhase::Begin: return "B";
        case TracePhase::End: return "E";
    }
    return "?";
}

}  // namespace

Tracer::Tracer(std::size_t capacity) : buf_(capacity) {
    MCS_REQUIRE(capacity > 0, "tracer capacity must be positive");
}

void Tracer::store(const TraceEvent& e) noexcept {
    if (count_ == buf_.size()) {
        ++dropped_;  // overwrite the oldest event
    } else {
        ++count_;
    }
    buf_[next_] = e;
    next_ = (next_ + 1) % buf_.size();
}

void Tracer::clear() noexcept {
    next_ = 0;
    count_ = 0;
    dropped_ = 0;
}

void Tracer::for_each(
    const std::function<void(const TraceEvent&)>& fn) const {
    const std::size_t first = (next_ + buf_.size() - count_) % buf_.size();
    for (std::size_t i = 0; i < count_; ++i) {
        fn(buf_[(first + i) % buf_.size()]);
    }
}

void Tracer::write_chrome_json(std::ostream& out) const {
    JsonWriter w(out);
    w.begin_object();
    w.field("displayTimeUnit", "ms");
    w.key("otherData");
    w.begin_object();
    w.field("dropped_events", dropped_);
    w.end_object();
    w.key("traceEvents");
    w.begin_array();
    for_each([&](const TraceEvent& e) {
        w.begin_object();
        w.field("name", e.name);
        w.field("cat", to_string(e.cat));
        w.field("ph", phase_text(e.phase));
        // Chrome-trace timestamps are microseconds; SimTime is integer
        // nanoseconds, so this division is exact to 1/1000 us.
        w.field("ts", static_cast<double>(e.time) / 1e3);
        w.field("pid", std::int64_t{0});
        w.field("tid", static_cast<std::int64_t>(e.tid));
        if (e.phase != TracePhase::End) {
            w.key("args");
            w.begin_object();
            w.field("a", e.a);
            w.field("b", e.b);
            w.end_object();
        }
        w.end_object();
    });
    w.end_array();
    w.end_object();
    out << '\n';
}

void Tracer::write_jsonl(std::ostream& out) const {
    for_each([&](const TraceEvent& e) {
        JsonWriter w(out);
        w.begin_object();
        w.field("t_ns", static_cast<std::uint64_t>(e.time));
        w.field("cat", to_string(e.cat));
        w.field("ph", phase_text(e.phase));
        w.field("name", e.name);
        w.field("tid", static_cast<std::int64_t>(e.tid));
        w.field("a", e.a);
        w.field("b", e.b);
        w.end_object();
        out << '\n';
    });
}

void Tracer::save_state(JsonWriter& w) const {
    w.begin_object();
    w.field("capacity", static_cast<std::uint64_t>(buf_.size()));
    w.field("dropped", dropped_);
    w.key("events");
    w.begin_array();
    for_each([&](const TraceEvent& e) {
        w.begin_object();
        w.field("t", static_cast<std::uint64_t>(e.time));
        w.field("name", e.name);
        w.field("a", e.a);
        w.field("b", e.b);
        w.field("tid", static_cast<std::uint64_t>(e.tid));
        w.field("cat", static_cast<std::uint64_t>(e.cat));
        w.field("ph", static_cast<std::uint64_t>(e.phase));
        w.end_object();
    });
    w.end_array();
    w.end_object();
}

const char* Tracer::intern(const std::string& name) {
    const auto it = interned_.find(name);
    if (it != interned_.end()) {
        return it->second;
    }
    name_pool_.push_back(name);
    const char* stable = name_pool_.back().c_str();
    interned_.emplace(name, stable);
    return stable;
}

void Tracer::load_state(const JsonValue& doc) {
    MCS_REQUIRE(doc.is_object(), "tracer state must be a JSON object");
    MCS_REQUIRE(doc.at("capacity").u64() == buf_.size(),
                "tracer state capacity mismatch: snapshot has " +
                    doc.at("capacity").raw);
    clear();
    const auto& events = doc.at("events").array;
    MCS_REQUIRE(events.size() <= buf_.size(),
                "tracer state holds more events than its capacity");
    for (const auto& e : events) {
        const std::uint64_t cat = e.at("cat").u64();
        const std::uint64_t ph = e.at("ph").u64();
        MCS_REQUIRE(cat <= static_cast<std::uint64_t>(TraceCategory::Noc),
                    "tracer state: unknown trace category");
        MCS_REQUIRE(ph <= static_cast<std::uint64_t>(TracePhase::End),
                    "tracer state: unknown trace phase");
        store(TraceEvent{static_cast<SimTime>(e.at("t").u64()),
                         intern(e.at("name").string), e.at("a").i64(),
                         e.at("b").i64(),
                         static_cast<std::uint32_t>(e.at("tid").u64()),
                         static_cast<TraceCategory>(cat),
                         static_cast<TracePhase>(ph)});
    }
    dropped_ = doc.at("dropped").u64();
}

}  // namespace mcs::telemetry
