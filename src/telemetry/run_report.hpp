#pragma once

// RunReport: the machine-readable end-of-run artifact. Serializes every
// RunMetrics scalar (via core/metric_catalog.hpp), the vector-valued
// metrics, distribution summaries, and -- when attached -- the full
// MetricsRegistry contents as one JSON document.
//
// Determinism contract: the bytes are a pure function of the metrics and
// registry contents (sorted keys, shortest round-trip numbers); a fixed
// seed therefore produces identical report bytes across runs and worker
// counts. Wall-clock quantities are deliberately excluded.

#include <ostream>
#include <string>

#include "core/metrics.hpp"
#include "telemetry/metrics_registry.hpp"

namespace mcs::telemetry {

/// Writes the report JSON ("mcs.run_report.v1") to `out`. `registry` may
/// be null (the "registry" member is then omitted).
void write_run_report(const RunMetrics& m, const MetricsRegistry* registry,
                      std::ostream& out);

/// Same, to a file. Throws RequireError if the file cannot be opened.
void write_run_report_file(const RunMetrics& m,
                           const MetricsRegistry* registry,
                           const std::string& path);

}  // namespace mcs::telemetry
