#include "telemetry/observer_adapter.hpp"

namespace mcs::telemetry {

TelemetryObserver::TelemetryObserver(MetricsRegistry& registry)
    : tests_started_(registry.counter("system.test_sessions_started")),
      tests_completed_(registry.counter("system.tests_completed")),
      tests_aborted_(registry.counter("system.tests_aborted")),
      apps_mapped_(registry.counter("system.apps_mapped")),
      apps_completed_(registry.counter("system.apps_completed")),
      app_latency_ms_(
          registry.histogram("system.app_latency_ms", 0.0, 500.0, 50)) {}

void TelemetryObserver::on_app_arrival(SimTime now, std::size_t app_index,
                                       std::size_t tasks) {
    if (tracer_ != nullptr) {
        tracer_->record(now, TraceCategory::Workload, TracePhase::Instant,
                        "app_arrival", 0,
                        static_cast<std::int64_t>(app_index),
                        static_cast<std::int64_t>(tasks));
    }
}

void TelemetryObserver::on_app_mapped(SimTime now, std::size_t app_index,
                                      CoreId first_core, std::size_t cores) {
    if (tracer_ != nullptr) {
        tracer_->record(now, TraceCategory::Workload, TracePhase::Instant,
                        "app_mapped", cores == 0 ? 0 : first_core,
                        static_cast<std::int64_t>(app_index),
                        static_cast<std::int64_t>(cores));
    }
    apps_mapped_.inc();
}

void TelemetryObserver::on_app_complete(SimTime now, std::size_t app_index,
                                        bool corrupted, double latency_ms) {
    if (tracer_ != nullptr) {
        tracer_->record(now, TraceCategory::Workload, TracePhase::Instant,
                        "app_complete", 0,
                        static_cast<std::int64_t>(app_index),
                        corrupted ? 1 : 0);
    }
    apps_completed_.inc();
    app_latency_ms_.add(latency_ms);
}

void TelemetryObserver::on_test_session_begin(SimTime now, CoreId core,
                                              int vf_level) {
    tests_started_.inc();
    if (tracer_ != nullptr) {
        // Begin/End pairs keyed on the core id render as per-core test
        // spans in the Chrome trace viewer.
        tracer_->record(now, TraceCategory::Session, TracePhase::Begin,
                        "test_session", core, vf_level);
    }
}

void TelemetryObserver::on_test_session_complete(SimTime now, CoreId core,
                                                 int vf_level) {
    tests_completed_.inc();
    if (tracer_ != nullptr) {
        tracer_->record(now, TraceCategory::Session, TracePhase::End,
                        "test_session", core, vf_level);
    }
}

void TelemetryObserver::on_test_session_abort(SimTime now, CoreId core,
                                              int vf_level) {
    tests_aborted_.inc();
    if (tracer_ != nullptr) {
        // Close the session span and mark the abort distinctly.
        tracer_->record(now, TraceCategory::Session, TracePhase::End,
                        "test_session", core, vf_level);
        tracer_->record(now, TraceCategory::Session, TracePhase::Instant,
                        "test_abort", core, vf_level);
    }
}

void TelemetryObserver::on_trace_sample(const TraceSample& sample) {
    if (sink_) {
        sink_(sample);
    }
}

}  // namespace mcs::telemetry
