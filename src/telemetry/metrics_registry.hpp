#pragma once

// Low-overhead metrics registry: named counters, gauges, and fixed-bucket
// histograms. Intended use: resolve the metric once (the returned reference
// is stable for the registry's lifetime) and update it from hot paths with
// a plain increment -- no name lookup, no locking, no allocation.
//
// Determinism contract: iteration and JSON export are sorted by name, and
// merge() is associative and commutative (counters add, gauges combine
// per their declared GaugeMerge policy, histograms add bin-wise), so
// aggregating per-replica registries yields the same bytes regardless of
// merge order or worker count.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "telemetry/json.hpp"
#include "util/stats.hpp"

namespace mcs::telemetry {

/// Monotonic event count.
class Counter {
public:
    void inc(std::uint64_t n = 1) noexcept { value_ += n; }
    std::uint64_t value() const noexcept { return value_; }
    /// Overwrites the count from a checkpoint (not for live accounting).
    void restore(std::uint64_t value) noexcept { value_ = value; }

private:
    std::uint64_t value_ = 0;
};

/// How a gauge combines across registries (campaign aggregation). Every
/// policy is associative and commutative, so the merged value is
/// independent of merge order and worker count. Last-value gauges must
/// declare Max/Min/Mean -- blindly summing a peak temperature or a mean
/// power across replicas would be meaningless.
enum class GaugeMerge {
    Sum,   ///< accumulations (energy, time shares): merge adds
    Max,   ///< peaks (e.g. system.peak_temp_c): merge takes the max
    Min,   ///< troughs: merge takes the min
    Mean,  ///< per-run averages (e.g. system.mean_power_w): merge yields
           ///< the observation-count-weighted mean
};

/// Last-written scalar (plus an add() for accumulation) with a merge
/// policy fixed at construction.
class Gauge {
public:
    explicit Gauge(GaugeMerge merge = GaugeMerge::Sum) noexcept
        : merge_(merge) {}
    /// Replaces the value (last write wins within one run).
    void set(double v) noexcept {
        value_ = v;
        count_ = 1;
    }
    /// Accumulates into the current value.
    void add(double v) noexcept {
        value_ += v;
        count_ = count_ == 0 ? 1 : count_;
    }
    double value() const noexcept {
        if (merge_ == GaugeMerge::Mean && count_ > 1) {
            return value_ / static_cast<double>(count_);
        }
        return value_;
    }
    GaugeMerge merge_policy() const noexcept { return merge_; }
    /// Policy-directed merge; a never-written gauge is the identity
    /// element for every policy.
    void merge(const Gauge& other);

    /// Raw internals for exact checkpointing (value() folds Mean gauges,
    /// which would lose the running sum / observation count split).
    double raw_value() const noexcept { return value_; }
    std::uint64_t observation_count() const noexcept { return count_; }
    void restore(double value, std::uint64_t count) noexcept {
        value_ = value;
        count_ = count;
    }

private:
    GaugeMerge merge_ = GaugeMerge::Sum;
    double value_ = 0.0;          ///< Mean policy: running sum
    std::uint64_t count_ = 0;     ///< observations folded into value_
};

/// Name-addressed metric store. Metric names use dotted lowercase paths
/// ("system.tests_completed", "power.dvfs_throttle_steps"); see
/// docs/telemetry.md for the naming scheme.
class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Returns the metric with this name, creating it on first use. The
    /// reference stays valid for the registry's lifetime.
    Counter& counter(std::string_view name);
    /// A gauge's merge policy is fixed at first registration;
    /// re-registering with a different policy throws RequireError.
    Gauge& gauge(std::string_view name, GaugeMerge merge = GaugeMerge::Sum);
    /// Histogram layout (lo, hi, bins) is fixed at first registration;
    /// re-registering with a different layout throws RequireError.
    Histogram& histogram(std::string_view name, double lo, double hi,
                         std::size_t bins);

    const Counter* find_counter(std::string_view name) const;
    const Gauge* find_gauge(std::string_view name) const;
    const Histogram* find_histogram(std::string_view name) const;

    std::size_t size() const noexcept {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /// Deterministic merge: counters add, gauges combine per their
    /// declared policy (policies must match), histograms merge bin-wise
    /// (layouts must match). Metrics present only in `other` are created
    /// here.
    void merge(const MetricsRegistry& other);

    /// Emits {"counters":{...},"gauges":{...},"histograms":{...}} sorted
    /// by name (byte-deterministic for equal contents).
    void write_json(JsonWriter& w) const;

    /// Exact checkpoint of every metric, including gauge merge policies
    /// and Mean-gauge observation counts that write_json folds away.
    void save_state(JsonWriter& w) const;

    /// Restores a save_state() document by mutating metrics IN PLACE:
    /// references and pointers cached by hot paths (PowerManager,
    /// TelemetryObserver) stay valid. Metrics absent from the document are
    /// left untouched; policy/layout conflicts throw RequireError.
    void load_state(const JsonValue& doc);

private:
    std::map<std::string, Counter, std::less<>> counters_;
    std::map<std::string, Gauge, std::less<>> gauges_;
    std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace mcs::telemetry
