#pragma once

// TelemetryObserver: the SystemObserver implementation that feeds the
// telemetry backends. It owns the translation from typed system events to
//
//   * the (optional, non-owning) event Tracer — same event names, tracks
//     and arguments as the pre-observer wiring, so traces stay
//     byte-identical;
//   * the MetricsRegistry "system.*" counters/histograms (references
//     resolved once at construction; inc() on the hot path);
//   * the user-facing TraceSink sample callback (E2's power trace).
//
// The ManycoreSystem façade installs one instance by default; additional
// SystemObservers (user scenario hooks) ride the same hub without touching
// telemetry.

#include "core/metrics.hpp"
#include "core/system_observer.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/tracer.hpp"

namespace mcs::telemetry {

class TelemetryObserver final : public SystemObserver {
public:
    /// Registers the "system.*" metrics in `registry` (unconditionally, so
    /// reports always carry them). The registry must outlive the adapter.
    explicit TelemetryObserver(MetricsRegistry& registry);

    /// Attaches / detaches the event tracer (may be null).
    void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }

    /// Attaches the periodic power/state sample sink (may be empty).
    void set_trace_sink(TraceSink sink) { sink_ = std::move(sink); }

    void on_app_arrival(SimTime now, std::size_t app_index,
                        std::size_t tasks) override;
    void on_app_mapped(SimTime now, std::size_t app_index, CoreId first_core,
                       std::size_t cores) override;
    void on_app_complete(SimTime now, std::size_t app_index, bool corrupted,
                         double latency_ms) override;
    void on_test_session_begin(SimTime now, CoreId core,
                               int vf_level) override;
    void on_test_session_complete(SimTime now, CoreId core,
                                  int vf_level) override;
    void on_test_session_abort(SimTime now, CoreId core,
                               int vf_level) override;
    void on_trace_sample(const TraceSample& sample) override;
    bool wants_trace_samples() const override {
        return static_cast<bool>(sink_);
    }

private:
    Tracer* tracer_ = nullptr;
    TraceSink sink_;
    Counter& tests_started_;
    Counter& tests_completed_;
    Counter& tests_aborted_;
    Counter& apps_mapped_;
    Counter& apps_completed_;
    Histogram& app_latency_ms_;
};

}  // namespace mcs::telemetry
