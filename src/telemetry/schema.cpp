#include "telemetry/schema.hpp"

#include <map>

#include "schema_data.hpp"  // generated from tools/schemas.json
#include "telemetry/json.hpp"
#include "util/require.hpp"

namespace mcs::telemetry {

namespace {

const std::map<std::string, std::uint64_t, std::less<>>& schema_versions() {
    static const auto* versions = [] {
        auto* m = new std::map<std::string, std::uint64_t, std::less<>>();
        const JsonValue doc = parse_json(kSchemasJson);
        MCS_REQUIRE(doc.is_object(), "tools/schemas.json must be an object");
        for (const auto& [family, version] : doc.object) {
            (*m)[family] = version.u64();
        }
        return m;
    }();
    return *versions;
}

}  // namespace

std::string schema_tag(std::string_view family) {
    const auto& versions = schema_versions();
    const auto it = versions.find(family);
    MCS_REQUIRE(it != versions.end(),
                "unknown schema family (add it to tools/schemas.json): " +
                    std::string(family));
    return it->first + ".v" + std::to_string(it->second);
}

void require_schema(const JsonValue& doc, std::string_view family) {
    const std::string expected = schema_tag(family);
    MCS_REQUIRE(doc.is_object() && doc.has("schema"),
                "document has no schema tag; expected " + expected);
    const JsonValue& tag = doc.at("schema");
    MCS_REQUIRE(tag.is_string() && tag.string == expected,
                "schema mismatch: document has \"" + tag.string +
                    "\", this build expects \"" + expected + "\"");
}

}  // namespace mcs::telemetry
