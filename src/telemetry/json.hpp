#pragma once

// Minimal deterministic JSON support for the telemetry subsystem.
//
// The writer produces byte-stable output: numbers are rendered with the
// shortest locale-independent decimal text that round-trips (so the bytes
// depend only on the values, never on locale or formatting state), and all
// container contents are emitted in the order the caller provides them.
// The parser covers the subset this repo emits (objects, arrays, strings,
// finite numbers, booleans, null). Since the serve subsystem exposes it to
// network input it enforces resource limits -- a maximum document size and
// a maximum container nesting depth -- and rejects violations with clean
// RequireErrors instead of exhausting stack or memory. Callers parsing
// untrusted bytes should pass a JsonLimits tightened to their use case.

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mcs::telemetry {

/// Shortest decimal text that strtod round-trips to exactly `v`;
/// locale-independent. NaN/inf (not valid JSON numbers) render as null.
std::string json_number(double v);

/// JSON string escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

/// Streaming JSON writer with explicit structure calls. Produces compact
/// one-line output; the caller is responsible for calling begin/end pairs
/// in a well-formed order (checked with assertions in debug builds).
class JsonWriter {
public:
    explicit JsonWriter(std::ostream& out) : out_(out) {}

    void begin_object();
    void end_object();
    void begin_array();
    void end_array();

    /// Emits `"name":` inside an object (with any needed comma).
    void key(std::string_view name);

    void value(double v);
    void value(std::int64_t v);
    void value(std::uint64_t v);
    void value(bool v);
    void value(std::string_view v);
    void value(const char* v) { value(std::string_view(v)); }
    void null();

    // Convenience: `key(name); value(v);`
    template <typename T>
    void field(std::string_view name, T v) {
        key(name);
        value(v);
    }

private:
    void separate();

    std::ostream& out_;
    // One entry per open container: whether a value has been written.
    std::vector<bool> has_item_;
    bool pending_key_ = false;
};

/// Parsed JSON value (round-trip tests and report tooling).
struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /// Raw token text for numbers. `number` is a double, which cannot
    /// represent every 64-bit integer (precision ends at 2^53); u64()
    /// reparses this token so checkpoint fields like RNG state words and
    /// event sequence numbers round-trip exactly.
    std::string raw;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool is_object() const { return kind == Kind::Object; }
    bool is_array() const { return kind == Kind::Array; }
    bool is_number() const { return kind == Kind::Number; }
    bool is_string() const { return kind == Kind::String; }

    /// Object member access; throws RequireError if absent or not an
    /// object.
    const JsonValue& at(const std::string& name) const;
    bool has(const std::string& name) const;

    /// Exact unsigned 64-bit value of a non-negative integer number token.
    /// Throws RequireError for non-numbers, negatives, or fractions.
    std::uint64_t u64() const;

    /// Exact signed 64-bit value of an integer number token.
    std::int64_t i64() const;
};

/// Resource limits for parse_json. The defaults accommodate every mcs.*
/// artifact (snapshots included) while still bounding hostile input; the
/// serve request path uses much tighter limits (serve/query.cpp).
struct JsonLimits {
    /// Maximum document size in bytes (0 disables the check).
    std::size_t max_bytes = std::size_t{1} << 30;
    /// Maximum depth of nested containers; the document value itself is
    /// depth 1, so `{"a":[1]}` needs max_depth >= 2.
    std::size_t max_depth = 96;
};

/// Parses a complete JSON document. Throws RequireError on malformed
/// input, trailing garbage, or a limit violation.
JsonValue parse_json(std::string_view text, const JsonLimits& limits = {});

}  // namespace mcs::telemetry
