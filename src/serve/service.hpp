#pragma once

// The socket-free core of mcs_serve: routes one parsed HttpRequest to a
// response. Keeping this layer free of I/O makes the whole query surface
// unit-testable (tests/test_serve.cpp) and benchable (bench_serve,
// bench_serve_load) in process; serve/server.hpp is only the event loop
// around it.
//
// Routes:
//   POST /whatif        what-if query (mcs.whatif_query.v1 body) ->
//                       mcs.run_report.v1 bytes, served from the result
//                       cache when the canonical key hits (positive and
//                       negative results alike)
//   GET  /healthz       {"status":"ok",...} liveness + pool summary
//   GET  /metrics       the MetricsRegistry as JSON (counters/gauges/
//                       histograms, sorted -- the repo-wide format)
//   GET  /snapshots     pool listing with fingerprints and captured window
//   POST /admin/reload  swap in a freshly loaded SnapshotPool (RCU-style:
//                       in-flight queries finish against the old pool)
//
// Observability (names under "serve."): request/response counters per
// status class, cache hits/misses (positive and negative), reload
// counters, queue depth gauges (fed by the server), and a request-latency
// histogram in microseconds.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "serve/http.hpp"
#include "serve/query.hpp"
#include "serve/result_cache.hpp"
#include "serve/snapshot_pool.hpp"
#include "telemetry/metrics_registry.hpp"

namespace mcs::serve {

struct ServiceOptions {
    std::size_t cache_entries = 256;
    /// Optional path for result-cache persistence: loaded at construction,
    /// written by save_cache() on graceful shutdown. Safe across restarts
    /// and reloads because keys embed the snapshot fingerprints.
    std::string cache_file;
};

class ServeService {
public:
    /// Rebuilds the SnapshotPool from configuration; invoked by
    /// POST /admin/reload and the daemon's SIGHUP path. Must either return
    /// a fresh pool or throw (the old pool stays live on failure).
    using PoolLoader = std::function<SnapshotPool()>;

    ServeService(SnapshotPool pool, ServiceOptions opts,
                 telemetry::MetricsRegistry& registry);

    /// Handles one request; never throws (failures become 4xx/5xx
    /// responses).
    HttpResponse handle(const HttpRequest& request);

    /// Enables POST /admin/reload and reload(); without a loader the
    /// route answers 409 (a from_document pool has nothing to re-read).
    void set_pool_loader(PoolLoader loader);

    /// Loads a fresh pool via the loader and publishes it atomically.
    /// Readers that already grabbed the old pool finish against it
    /// (RCU-style grace via shared_ptr). Throws on loader failure; the
    /// old pool stays published.
    void reload();

    /// Writes the result cache to opts.cache_file (no-op when unset).
    void save_cache() const;

    /// Server-side hooks: admission-queue telemetry lives in the same
    /// registry so /metrics shows one coherent picture.
    void note_queue_depth(std::size_t depth);
    void note_rejected();

    /// The currently published pool (shared: holding the pointer keeps a
    /// reloaded-away generation alive until the last query drops it).
    std::shared_ptr<const SnapshotPool> pool() const;
    ResultCache& cache() noexcept { return cache_; }
    telemetry::MetricsRegistry& registry() noexcept { return registry_; }

private:
    HttpResponse handle_whatif(const HttpRequest& request);
    HttpResponse handle_healthz() const;
    HttpResponse handle_metrics();
    HttpResponse handle_snapshots() const;
    HttpResponse handle_reload();
    void count_response(const HttpResponse& response);

    mutable std::mutex pool_mutex_;  ///< guards the published pool pointer
    std::shared_ptr<const SnapshotPool> pool_;
    PoolLoader pool_loader_;
    ServiceOptions opts_;
    ResultCache cache_;
    telemetry::MetricsRegistry& registry_;
    /// The registry is single-threaded by design; one mutex serializes
    /// all serve-side updates (the heavy work -- the simulation itself --
    /// runs outside it).
    std::mutex metrics_mutex_;
};

}  // namespace mcs::serve
