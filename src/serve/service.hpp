#pragma once

// The socket-free core of mcs_serve: routes one parsed HttpRequest to a
// response. Keeping this layer free of I/O makes the whole query surface
// unit-testable (tests/test_serve.cpp) and benchable (bench_serve) in
// process; serve/server.hpp is only the socket pump around it.
//
// Routes:
//   POST /whatif     what-if query (mcs.whatif_query.v1 body) ->
//                    mcs.run_report.v1 bytes, served from the result cache
//                    when the canonical key hits
//   GET  /healthz    {"status":"ok",...} liveness + pool summary
//   GET  /metrics    the MetricsRegistry as JSON (counters/gauges/
//                    histograms, sorted -- the repo-wide format)
//   GET  /snapshots  pool listing with fingerprints and captured window
//
// Observability (names under "serve."): request/response counters per
// status class, cache hits/misses, queue depth gauges (fed by the server),
// and a request-latency histogram in microseconds.

#include <cstdint>
#include <mutex>
#include <string>

#include "serve/http.hpp"
#include "serve/query.hpp"
#include "serve/result_cache.hpp"
#include "serve/snapshot_pool.hpp"
#include "telemetry/metrics_registry.hpp"

namespace mcs::serve {

struct ServiceOptions {
    std::size_t cache_entries = 256;
};

class ServeService {
public:
    ServeService(SnapshotPool pool, ServiceOptions opts,
                 telemetry::MetricsRegistry& registry);

    /// Handles one request; never throws (failures become 4xx/5xx
    /// responses).
    HttpResponse handle(const HttpRequest& request);

    /// Server-side hooks: admission-queue telemetry lives in the same
    /// registry so /metrics shows one coherent picture.
    void note_queue_depth(std::size_t depth);
    void note_rejected();

    const SnapshotPool& pool() const noexcept { return pool_; }
    ResultCache& cache() noexcept { return cache_; }
    telemetry::MetricsRegistry& registry() noexcept { return registry_; }

private:
    HttpResponse handle_whatif(const HttpRequest& request);
    HttpResponse handle_healthz() const;
    HttpResponse handle_metrics();
    HttpResponse handle_snapshots() const;
    void count_response(const HttpResponse& response);

    SnapshotPool pool_;
    ResultCache cache_;
    telemetry::MetricsRegistry& registry_;
    /// The registry is single-threaded by design; one mutex serializes
    /// all serve-side updates (the heavy work -- the simulation itself --
    /// runs outside it).
    std::mutex metrics_mutex_;
};

}  // namespace mcs::serve
