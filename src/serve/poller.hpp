#pragma once

// Readiness multiplexer behind the serve event loop: level-triggered
// epoll on Linux, a plain poll() set elsewhere -- one interface, so
// server.cpp contains exactly one event loop. Level-triggered semantics
// are deliberate: the loop may consume only part of a readable buffer
// (e.g. one pipelined request) and relies on being woken again.

#include <cstddef>
#include <vector>

namespace mcs::serve {

class Poller {
public:
    struct Event {
        int fd = -1;
        bool readable = false;
        bool writable = false;
        bool hangup = false;  ///< error or peer hangup (EPOLLERR/HUP)
    };

    Poller();
    ~Poller();
    Poller(const Poller&) = delete;
    Poller& operator=(const Poller&) = delete;

    /// Registers `fd`; `fd` must not already be registered.
    void add(int fd, bool want_read, bool want_write);
    /// Changes the interest set of a registered `fd`.
    void mod(int fd, bool want_read, bool want_write);
    /// Unregisters `fd` (call before closing it).
    void del(int fd);

    /// Blocks up to `timeout_ms` (< 0 = indefinitely) and appends ready
    /// events to `out` (cleared first). Returns the number of events; 0 on
    /// timeout. EINTR is reported as 0 events, not an error.
    std::size_t wait(std::vector<Event>& out, int timeout_ms);

private:
#ifdef __linux__
    int epoll_fd_ = -1;
#else
    struct Interest {
        int fd;
        bool want_read;
        bool want_write;
    };
    std::vector<Interest> interests_;
#endif
};

}  // namespace mcs::serve
