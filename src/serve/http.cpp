#include "serve/http.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "telemetry/json.hpp"

namespace mcs::serve {

namespace {

std::string to_lower(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
        s.remove_prefix(1);
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
        s.remove_suffix(1);
    }
    return s;
}

}  // namespace

bool request_keep_alive(const HttpRequest& request) {
    std::string connection;
    if (const auto it = request.headers.find("connection");
        it != request.headers.end()) {
        connection = to_lower(it->second);
    }
    if (request.version == "HTTP/1.0") {
        return connection == "keep-alive";
    }
    return connection != "close";
}

HttpRequestParser::State HttpRequestParser::fail(int status,
                                                 std::string message) {
    state_ = State::Error;
    error_status_ = status;
    error_ = std::move(message);
    return state_;
}

HttpRequestParser::State HttpRequestParser::feed(std::string_view bytes) {
    if (state_ != State::NeedMore) {
        return state_;
    }
    buffer_.append(bytes);
    return advance();
}

HttpRequestParser::State HttpRequestParser::next_request() {
    if (state_ != State::Done) {
        return state_;
    }
    request_ = HttpRequest{};
    body_expected_ = 0;
    head_done_ = false;
    state_ = State::NeedMore;
    // Whatever the client pipelined behind the consumed request is already
    // in buffer_; parse as far as it goes.
    return advance();
}

HttpRequestParser::State HttpRequestParser::advance() {
    if (!head_done_) {
        const std::size_t head_end = buffer_.find("\r\n\r\n");
        if (head_end == std::string::npos) {
            if (buffer_.size() > limits_.max_head_bytes) {
                return fail(431, "request head exceeds " +
                                     std::to_string(limits_.max_head_bytes) +
                                     " bytes");
            }
            return state_;
        }
        if (head_end + 4 > limits_.max_head_bytes) {
            return fail(431, "request head exceeds " +
                                 std::to_string(limits_.max_head_bytes) +
                                 " bytes");
        }
        if (const State s = parse_head(); s != State::NeedMore) {
            return s;
        }
        head_done_ = true;
    }
    return check_body();
}

HttpRequestParser::State HttpRequestParser::parse_head() {
    const std::size_t head_end = buffer_.find("\r\n\r\n");
    const std::string head = buffer_.substr(0, head_end);
    buffer_.erase(0, head_end + 4);  // leave any body bytes in the buffer

    // Request line: METHOD SP TARGET SP HTTP/x.y
    std::size_t line_end = head.find("\r\n");
    const std::string_view line =
        std::string_view(head).substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        line.find(' ', sp2 + 1) != std::string_view::npos) {
        return fail(400, "malformed request line");
    }
    request_.method = std::string(line.substr(0, sp1));
    request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
    request_.version = std::string(line.substr(sp2 + 1));
    if (request_.method.empty() || request_.target.empty() ||
        request_.target.front() != '/') {
        return fail(400, "malformed request line");
    }
    if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
        return fail(400, "unsupported HTTP version: " + request_.version);
    }
    const std::size_t qmark = request_.target.find('?');
    request_.path = request_.target.substr(0, qmark);
    request_.query = qmark == std::string::npos
                         ? std::string()
                         : request_.target.substr(qmark + 1);

    // Header lines.
    std::size_t pos = line_end == std::string::npos ? head.size()
                                                    : line_end + 2;
    while (pos < head.size()) {
        std::size_t next = head.find("\r\n", pos);
        if (next == std::string::npos) {
            next = head.size();
        }
        const std::string_view raw =
            std::string_view(head).substr(pos, next - pos);
        pos = next + 2;
        const std::size_t colon = raw.find(':');
        if (colon == std::string_view::npos || colon == 0) {
            return fail(400, "malformed header line");
        }
        if (request_.headers.size() >= limits_.max_headers) {
            return fail(431, "too many headers (> " +
                                 std::to_string(limits_.max_headers) + ")");
        }
        const std::string name = to_lower(trim(raw.substr(0, colon)));
        const std::string value(trim(raw.substr(colon + 1)));
        // Last occurrence wins; the daemon only reads singleton headers.
        request_.headers[name] = value;
    }

    if (request_.headers.count("transfer-encoding") != 0) {
        return fail(501, "chunked transfer encoding is not supported");
    }
    body_expected_ = 0;
    if (const auto it = request_.headers.find("content-length");
        it != request_.headers.end()) {
        const std::string& text = it->second;
        std::size_t n = 0;
        const auto res =
            std::from_chars(text.data(), text.data() + text.size(), n);
        if (res.ec != std::errc{} || res.ptr != text.data() + text.size()) {
            return fail(400, "malformed Content-Length");
        }
        if (n > limits_.max_body_bytes) {
            return fail(413, "request body exceeds " +
                                 std::to_string(limits_.max_body_bytes) +
                                 " bytes");
        }
        body_expected_ = n;
    }
    return State::NeedMore;
}

HttpRequestParser::State HttpRequestParser::check_body() {
    if (buffer_.size() < body_expected_) {
        return state_;
    }
    // Bytes past the body belong to the next pipelined request; they stay
    // in the buffer until next_request() rolls the parser forward.
    request_.body = buffer_.substr(0, body_expected_);
    buffer_.erase(0, body_expected_);
    state_ = State::Done;
    return state_;
}

std::string serialize_response(const HttpResponse& response,
                               bool keep_alive) {
    std::string out;
    out.reserve(response.body.size() + 256);
    out += "HTTP/1.1 " + std::to_string(response.status) + " " +
           status_reason(response.status) + "\r\n";
    out += "Content-Type: " + response.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(response.body.size()) +
           "\r\n";
    for (const auto& [name, value] : response.extra_headers) {
        out += name + ": " + value + "\r\n";
    }
    out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                      : "Connection: close\r\n\r\n";
    out += response.body;
    return out;
}

const char* status_reason(int status) {
    switch (status) {
        case 200: return "OK";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 408: return "Request Timeout";
        case 409: return "Conflict";
        case 413: return "Payload Too Large";
        case 429: return "Too Many Requests";
        case 431: return "Request Header Fields Too Large";
        case 500: return "Internal Server Error";
        case 501: return "Not Implemented";
        case 503: return "Service Unavailable";
        default: return "Unknown";
    }
}

HttpResponse error_response(int status, std::string_view message) {
    HttpResponse r;
    r.status = status;
    r.body = "{\"error\":\"" + telemetry::json_escape(message) + "\"}\n";
    return r;
}

}  // namespace mcs::serve
