#include "serve/poller.hpp"

#include <cerrno>

#include "util/require.hpp"

#ifdef __linux__
#include <sys/epoll.h>
#include <unistd.h>
#else
#include <poll.h>
#endif

namespace mcs::serve {

#ifdef __linux__

namespace {

std::uint32_t epoll_mask(bool want_read, bool want_write) {
    std::uint32_t events = 0;
    if (want_read) {
        events |= EPOLLIN;
    }
    if (want_write) {
        events |= EPOLLOUT;
    }
    return events;
}

}  // namespace

Poller::Poller() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    MCS_REQUIRE(epoll_fd_ >= 0, "epoll_create1 failed");
}

Poller::~Poller() {
    if (epoll_fd_ >= 0) {
        ::close(epoll_fd_);
    }
}

void Poller::add(int fd, bool want_read, bool want_write) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    MCS_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                "epoll_ctl(ADD) failed");
}

void Poller::mod(int fd, bool want_read, bool want_write) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    MCS_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
                "epoll_ctl(MOD) failed");
}

void Poller::del(int fd) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

std::size_t Poller::wait(std::vector<Event>& out, int timeout_ms) {
    out.clear();
    epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
        MCS_REQUIRE(errno == EINTR, "epoll_wait failed");
        return 0;
    }
    for (int i = 0; i < n; ++i) {
        Event e;
        e.fd = events[i].data.fd;
        e.readable = (events[i].events & EPOLLIN) != 0;
        e.writable = (events[i].events & EPOLLOUT) != 0;
        e.hangup = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
        out.push_back(e);
    }
    return out.size();
}

#else  // poll() fallback for non-Linux hosts

Poller::Poller() = default;
Poller::~Poller() = default;

void Poller::add(int fd, bool want_read, bool want_write) {
    for (const Interest& i : interests_) {
        MCS_REQUIRE(i.fd != fd, "fd already registered with Poller");
    }
    interests_.push_back({fd, want_read, want_write});
}

void Poller::mod(int fd, bool want_read, bool want_write) {
    for (Interest& i : interests_) {
        if (i.fd == fd) {
            i.want_read = want_read;
            i.want_write = want_write;
            return;
        }
    }
    MCS_REQUIRE(false, "Poller::mod on unregistered fd");
}

void Poller::del(int fd) {
    for (std::size_t i = 0; i < interests_.size(); ++i) {
        if (interests_[i].fd == fd) {
            interests_.erase(interests_.begin() +
                             static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
}

std::size_t Poller::wait(std::vector<Event>& out, int timeout_ms) {
    out.clear();
    std::vector<pollfd> fds;
    fds.reserve(interests_.size());
    for (const Interest& i : interests_) {
        short events = 0;
        if (i.want_read) {
            events |= POLLIN;
        }
        if (i.want_write) {
            events |= POLLOUT;
        }
        fds.push_back({i.fd, events, 0});
    }
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n < 0) {
        MCS_REQUIRE(errno == EINTR, "poll failed");
        return 0;
    }
    for (const pollfd& p : fds) {
        if (p.revents == 0) {
            continue;
        }
        Event e;
        e.fd = p.fd;
        e.readable = (p.revents & POLLIN) != 0;
        e.writable = (p.revents & POLLOUT) != 0;
        e.hangup = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
        out.push_back(e);
    }
    return out.size();
}

#endif

}  // namespace mcs::serve
