#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/require.hpp"

namespace mcs::serve {

namespace {

void set_io_timeout(int fd, int seconds) {
    timeval tv{};
    tv.tv_sec = seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/// Writes the whole buffer; false on any socket error/timeout.
bool send_all(int fd, std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                                 MSG_NOSIGNAL);
        if (n <= 0) {
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

void send_response_and_close(int fd, const HttpResponse& response) {
    send_all(fd, serialize_response(response));
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
}

}  // namespace

HttpServer::HttpServer(ServeService& service, ServerOptions opts)
    : service_(service),
      opts_(std::move(opts)),
      pool_(opts_.workers, opts_.queue_limit) {
    MCS_REQUIRE(::pipe(wake_pipe_) == 0, "cannot create wake pipe");

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    MCS_REQUIRE(listen_fd_ >= 0, "cannot create listen socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
    MCS_REQUIRE(::inet_pton(AF_INET, opts_.listen.c_str(), &addr.sin_addr) ==
                    1,
                "invalid listen address: " + opts_.listen);
    MCS_REQUIRE(::bind(listen_fd_,
                       reinterpret_cast<const sockaddr*>(&addr),
                       sizeof addr) == 0,
                "cannot bind " + opts_.listen + ":" +
                    std::to_string(opts_.port) + ": " +
                    std::strerror(errno));
    MCS_REQUIRE(::listen(listen_fd_, 128) == 0, "listen failed");

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    MCS_REQUIRE(::getsockname(listen_fd_,
                              reinterpret_cast<sockaddr*>(&bound),
                              &len) == 0,
                "getsockname failed");
    port_ = static_cast<int>(ntohs(bound.sin_port));
}

HttpServer::~HttpServer() {
    stop();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
    }
    for (const int fd : wake_pipe_) {
        if (fd >= 0) {
            ::close(fd);
        }
    }
}

void HttpServer::stop() noexcept {
    if (stopping_.exchange(true)) {
        return;
    }
    const char byte = 's';
    // Best-effort, async-signal-safe wakeup of the accept loop.
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void HttpServer::run() {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    while (!stopping_.load()) {
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR) {
                continue;
            }
            break;
        }
        if ((fds[1].revents & POLLIN) != 0 || stopping_.load()) {
            break;
        }
        if ((fds[0].revents & POLLIN) == 0) {
            continue;
        }
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            continue;
        }
        set_io_timeout(fd, opts_.io_timeout_s);
        // Bounded admission: a full queue (or a closing pool) sheds the
        // connection immediately with 429 instead of queueing unbounded
        // work behind slow simulations.
        if (!pool_.submit([this, fd] { handle_connection(fd); })) {
            service_.note_rejected();
            HttpResponse overload =
                error_response(429, "admission queue full, retry shortly");
            overload.extra_headers.emplace_back("Retry-After", "1");
            send_response_and_close(fd, overload);
            continue;
        }
        service_.note_queue_depth(pool_.queue_depth());
    }
    // Graceful drain: no new connections (the loop is done), every
    // accepted connection finishes, workers join.
    pool_.shutdown();
    if (!opts_.quiet) {
        std::fprintf(stderr,
                     "mcs_serve: drained (%llu served, %llu failed)\n",
                     static_cast<unsigned long long>(
                         pool_.completed_tasks()),
                     static_cast<unsigned long long>(pool_.failed_tasks()));
    }
}

void HttpServer::handle_connection(int fd) {
    HttpRequestParser parser(opts_.http);
    char buf[4096];
    while (parser.state() == HttpRequestParser::State::NeedMore) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) {
            // Peer vanished or timed out mid-request; nothing to answer.
            ::close(fd);
            return;
        }
        parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
    if (parser.state() == HttpRequestParser::State::Error) {
        send_response_and_close(
            fd, error_response(parser.error_status(), parser.error()));
        return;
    }
    send_response_and_close(fd, service_.handle(parser.request()));
}

}  // namespace mcs::serve
