#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/require.hpp"

namespace mcs::serve {

namespace {

using Clock = std::chrono::steady_clock;

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) {
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
}

}  // namespace

HttpServer::HttpServer(ServeService& service, ServerOptions opts)
    : service_(service),
      opts_(std::move(opts)),
      pool_(opts_.workers, opts_.queue_limit) {
    MCS_REQUIRE(::pipe(wake_pipe_) == 0, "cannot create wake pipe");
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(wake_pipe_[1]);

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    MCS_REQUIRE(listen_fd_ >= 0, "cannot create listen socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    set_nonblocking(listen_fd_);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
    MCS_REQUIRE(::inet_pton(AF_INET, opts_.listen.c_str(), &addr.sin_addr) ==
                    1,
                "invalid listen address: " + opts_.listen);
    MCS_REQUIRE(::bind(listen_fd_,
                       reinterpret_cast<const sockaddr*>(&addr),
                       sizeof addr) == 0,
                "cannot bind " + opts_.listen + ":" +
                    std::to_string(opts_.port) + ": " +
                    std::strerror(errno));
    MCS_REQUIRE(::listen(listen_fd_, 128) == 0, "listen failed");

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    MCS_REQUIRE(::getsockname(listen_fd_,
                              reinterpret_cast<sockaddr*>(&bound),
                              &len) == 0,
                "getsockname failed");
    port_ = static_cast<int>(ntohs(bound.sin_port));
}

HttpServer::~HttpServer() {
    stop();
    for (auto& [id, conn] : conns_) {
        if (conn.fd >= 0) {
            ::close(conn.fd);
        }
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
    }
    for (const int fd : wake_pipe_) {
        if (fd >= 0) {
            ::close(fd);
        }
    }
}

void HttpServer::stop() noexcept {
    if (stopping_.exchange(true)) {
        return;
    }
    const char byte = 's';
    // Best-effort, async-signal-safe wakeup of the event loop.
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void HttpServer::request_reload() noexcept {
    const char byte = 'h';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void HttpServer::run() {
    poller_.add(listen_fd_, true, false);
    poller_.add(wake_pipe_[0], true, false);
    std::vector<Poller::Event> events;
    while (true) {
        if (stopping_.load() && !draining_) {
            begin_drain();
        }
        if (draining_ && conns_.empty()) {
            break;
        }
        const int timeout = next_timeout_ms(Clock::now());
        poller_.wait(events, timeout);
        drain_wake_pipe();
        for (const Poller::Event& ev : events) {
            if (ev.fd == wake_pipe_[0]) {
                continue;
            }
            if (ev.fd == listen_fd_) {
                if (!draining_) {
                    accept_ready();
                }
                continue;
            }
            const auto it = fd_to_id_.find(ev.fd);
            if (it == fd_to_id_.end()) {
                continue;  // closed earlier in this batch
            }
            Conn& conn = conns_.at(it->second);
            if (ev.readable) {
                on_readable(conn);
            } else if (ev.hangup) {
                conn.peer_closed = true;
            }
            if (ev.writable) {
                on_writable(conn);
            }
        }
        drain_completions();
        sweep();
    }
    // Graceful drain epilogue: every connection has been answered and
    // closed; the pool has no queued work left to reject.
    pool_.shutdown();
    if (!opts_.quiet) {
        std::fprintf(stderr,
                     "mcs_serve: drained (%llu served, %llu failed)\n",
                     static_cast<unsigned long long>(
                         pool_.completed_tasks()),
                     static_cast<unsigned long long>(pool_.failed_tasks()));
    }
}

void HttpServer::begin_drain() {
    draining_ = true;
    poller_.del(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
}

void HttpServer::accept_ready() {
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            return;  // EAGAIN: accepted everything pending
        }
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        const std::uint64_t id = next_conn_id_++;
        const auto [it, inserted] = conns_.emplace(id, Conn(opts_.http));
        Conn& conn = it->second;
        conn.id = id;
        conn.fd = fd;
        conn.last_activity = Clock::now();
        fd_to_id_[fd] = id;
        poller_.add(fd, true, false);
        conn.want_read = true;
        conn.want_write = false;
    }
}

void HttpServer::on_readable(Conn& conn) {
    char buf[16384];
    // Stop consuming once a full request is buffered and undispatched:
    // level-triggered readiness re-delivers the event, and the kernel
    // socket buffer backpressures an over-eager pipeliner.
    while (conn.parser.state() == HttpRequestParser::State::NeedMore) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
        if (n > 0) {
            conn.last_activity = Clock::now();
            conn.parser.feed(
                std::string_view(buf, static_cast<std::size_t>(n)));
            if (static_cast<std::size_t>(n) < sizeof buf) {
                return;
            }
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            return;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        conn.peer_closed = true;  // orderly EOF or a hard socket error
        return;
    }
}

void HttpServer::on_writable(Conn& conn) { flush(conn); }

void HttpServer::try_dispatch(Conn& conn) {
    while (!conn.in_flight && !conn.close_after_write) {
        const HttpRequestParser::State state = conn.parser.state();
        if (state == HttpRequestParser::State::NeedMore) {
            return;
        }
        if (state == HttpRequestParser::State::Error) {
            enqueue_response(conn,
                             error_response(conn.parser.error_status(),
                                            conn.parser.error()),
                             false);
            return;
        }
        // Done: hand the request to a worker; the response comes back
        // through the completion queue. Responses stay in request order
        // because at most one request per connection is in flight.
        HttpRequest request = conn.parser.request();
        conn.parser.next_request();
        const bool keep_alive =
            request_keep_alive(request) &&
            conn.served + 1 < opts_.max_requests_per_conn && !draining_;
        const std::uint64_t id = conn.id;
        const bool submitted = pool_.submit(
            [this, id, keep_alive, request = std::move(request)] {
                Completion done;
                done.conn_id = id;
                done.client_keep_alive = keep_alive;
                done.response = service_.handle(request);
                {
                    std::lock_guard<std::mutex> lock(completions_mutex_);
                    completions_.push_back(std::move(done));
                }
                const char byte = 'c';
                [[maybe_unused]] const ssize_t n =
                    ::write(wake_pipe_[1], &byte, 1);
            });
        if (submitted) {
            conn.in_flight = true;
            service_.note_queue_depth(pool_.queue_depth());
            return;
        }
        // Bounded admission: a full queue sheds this request immediately
        // with 429 -- on the still-open connection, so the client can
        // retry over the same socket after Retry-After.
        service_.note_rejected();
        HttpResponse overload =
            error_response(429, "admission queue full, retry shortly");
        overload.extra_headers.emplace_back("Retry-After", "1");
        enqueue_response(conn, overload, keep_alive);
    }
}

void HttpServer::enqueue_response(Conn& conn, const HttpResponse& response,
                                  bool keep_alive) {
    const bool keep = keep_alive && !conn.close_after_write;
    conn.out += serialize_response(response, keep);
    ++conn.served;
    conn.last_activity = Clock::now();
    if (!keep) {
        conn.close_after_write = true;
    }
}

void HttpServer::flush(Conn& conn) {
    while (conn.out_off < conn.out.size()) {
        const ssize_t n =
            ::send(conn.fd, conn.out.data() + conn.out_off,
                   conn.out.size() - conn.out_off, MSG_NOSIGNAL);
        if (n > 0) {
            conn.out_off += static_cast<std::size_t>(n);
            conn.last_activity = Clock::now();
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            return;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        conn.peer_closed = true;
        return;
    }
    if (conn.out_off != 0) {
        conn.out.clear();
        conn.out_off = 0;
    }
}

void HttpServer::update_interest(Conn& conn) {
    if (!conn.registered) {
        return;
    }
    if (conn.peer_closed) {
        // Nothing more to exchange; deregister so a level-triggered HUP
        // does not spin the loop while a handler is still in flight.
        poller_.del(conn.fd);
        conn.registered = false;
        return;
    }
    const bool want_read =
        conn.parser.state() == HttpRequestParser::State::NeedMore &&
        !conn.close_after_write;
    const bool want_write = conn.out_off < conn.out.size();
    if (want_read != conn.want_read || want_write != conn.want_write) {
        poller_.mod(conn.fd, want_read, want_write);
        conn.want_read = want_read;
        conn.want_write = want_write;
    }
}

void HttpServer::close_conn(Conn& conn) {
    if (conn.registered) {
        poller_.del(conn.fd);
    }
    fd_to_id_.erase(conn.fd);
    ::close(conn.fd);
    conns_.erase(conn.id);  // invalidates `conn`
}

void HttpServer::drain_wake_pipe() {
    char bytes[64];
    bool reload = false;
    for (;;) {
        const ssize_t n = ::read(wake_pipe_[0], bytes, sizeof bytes);
        if (n <= 0) {
            break;
        }
        for (ssize_t i = 0; i < n; ++i) {
            if (bytes[i] == 'h') {
                reload = true;
            }
        }
    }
    if (reload && !draining_) {
        // Reload reads snapshot files and re-derives fingerprints; run it
        // on a worker so the loop keeps serving. RCU swap in the service
        // means in-flight queries finish against the old pool.
        const bool submitted = pool_.submit([this] {
            try {
                service_.reload();
                if (!opts_.quiet) {
                    std::fprintf(stderr,
                                 "mcs_serve: snapshot pool reloaded\n");
                }
            } catch (const std::exception& e) {
                std::fprintf(stderr, "mcs_serve: reload failed: %s\n",
                             e.what());
            }
        });
        if (!submitted) {
            try {
                service_.reload();
            } catch (const std::exception& e) {
                std::fprintf(stderr, "mcs_serve: reload failed: %s\n",
                             e.what());
            }
        }
    }
}

void HttpServer::drain_completions() {
    std::vector<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(completions_mutex_);
        batch.swap(completions_);
    }
    for (Completion& done : batch) {
        const auto it = conns_.find(done.conn_id);
        if (it == conns_.end()) {
            continue;  // connection died while the handler ran
        }
        Conn& conn = it->second;
        conn.in_flight = false;
        enqueue_response(conn, done.response,
                         done.client_keep_alive && !draining_);
    }
}

void HttpServer::sweep() {
    const Clock::time_point now = Clock::now();
    std::vector<std::uint64_t> dead;
    for (auto& [id, conn] : conns_) {
        if (!conn.in_flight && !conn.close_after_write &&
            !conn.peer_closed) {
            if (draining_) {
                // The drain contract: dispatched requests finish; every
                // other connection -- idle keep-alive, accepted-but-
                // unparsed, half-read -- is told to go away cleanly.
                enqueue_response(
                    conn, error_response(503, "server is draining"),
                    false);
            } else if (conn.parser.state() !=
                       HttpRequestParser::State::NeedMore) {
                try_dispatch(conn);
            } else if (idle_expired(conn, now)) {
                enqueue_response(
                    conn,
                    error_response(408, "connection idle past " +
                                            std::to_string(
                                                opts_.idle_timeout_ms) +
                                            " ms"),
                    false);
            }
        }
        flush(conn);
        const bool flushed = conn.out_off >= conn.out.size();
        if (!conn.in_flight &&
            (conn.peer_closed || (conn.close_after_write && flushed))) {
            dead.push_back(id);
            continue;
        }
        update_interest(conn);
    }
    for (const std::uint64_t id : dead) {
        close_conn(conns_.at(id));
    }
}

bool HttpServer::idle_expired(const Conn& conn,
                              Clock::time_point now) const {
    if (opts_.idle_timeout_ms <= 0) {
        return false;
    }
    return now - conn.last_activity >=
           std::chrono::milliseconds(opts_.idle_timeout_ms);
}

int HttpServer::next_timeout_ms(Clock::time_point now) const {
    if (draining_) {
        return 100;  // re-check drain progress promptly
    }
    if (opts_.idle_timeout_ms <= 0) {
        return -1;
    }
    bool any = false;
    Clock::time_point earliest{};
    for (const auto& [id, conn] : conns_) {
        if (conn.in_flight || conn.close_after_write) {
            continue;
        }
        const Clock::time_point deadline =
            conn.last_activity +
            std::chrono::milliseconds(opts_.idle_timeout_ms);
        if (!any || deadline < earliest) {
            earliest = deadline;
            any = true;
        }
    }
    if (!any) {
        return -1;
    }
    const auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(
                           earliest - now)
                           .count();
    return delta <= 0 ? 0 : static_cast<int>(delta) + 1;
}

}  // namespace mcs::serve
