#include "serve/result_cache.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "telemetry/json.hpp"
#include "util/require.hpp"

namespace mcs::serve {

std::shared_ptr<const CachedResponse> ResultCache::find(
    const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.value;
}

void ResultCache::insert(const std::string& key,
                         std::shared_ptr<const CachedResponse> value) {
    if (max_entries_ == 0) {
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
        // Concurrent misses on one key both compute (identical bytes);
        // keep the first value, just refresh recency.
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        return;
    }
    lru_.push_front(key);
    entries_.emplace(key, Entry{std::move(value), lru_.begin()});
    while (entries_.size() > max_entries_) {
        entries_.erase(lru_.back());
        lru_.pop_back();
        ++evictions_;
    }
}

std::size_t ResultCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::uint64_t ResultCache::evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

std::size_t ResultCache::negative_size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto& [key, entry] : entries_) {
        if (entry.value->status != 200) {
            ++n;
        }
    }
    return n;
}

void ResultCache::save(const std::string& path) const {
    std::vector<std::pair<std::string, std::shared_ptr<const CachedResponse>>>
        snapshot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snapshot.reserve(entries_.size());
        for (const auto& [key, entry] : entries_) {
            snapshot.emplace_back(key, entry.value);
        }
    }
    std::sort(snapshot.begin(), snapshot.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    MCS_REQUIRE(out.is_open(), "cannot write cache file: " + path);
    for (const auto& [key, value] : snapshot) {
        out << "{\"key\":\"" << telemetry::json_escape(key)
            << "\",\"status\":" << value->status << ",\"body\":\""
            << telemetry::json_escape(value->body) << "\"}\n";
    }
    MCS_REQUIRE(out.good(), "write failed: " + path);
}

std::size_t ResultCache::load(const std::string& path) {
    if (!std::filesystem::exists(path)) {
        return 0;
    }
    std::ifstream in(path, std::ios::binary);
    MCS_REQUIRE(in.is_open(), "cannot read cache file: " + path);
    std::size_t loaded = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        const telemetry::JsonValue doc = telemetry::parse_json(line);
        MCS_REQUIRE(doc.is_object() && doc.has("key") &&
                        doc.has("status") && doc.has("body"),
                    "malformed cache file entry in " + path);
        auto value = std::make_shared<const CachedResponse>(CachedResponse{
            static_cast<int>(doc.at("status").number),
            doc.at("body").string});
        insert(doc.at("key").string, std::move(value));
        ++loaded;
    }
    return loaded;
}

}  // namespace mcs::serve
