#include "serve/result_cache.hpp"

namespace mcs::serve {

std::shared_ptr<const std::string> ResultCache::find(
    const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.value;
}

void ResultCache::insert(const std::string& key,
                         std::shared_ptr<const std::string> value) {
    if (max_entries_ == 0) {
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
        // Concurrent misses on one key both compute (identical bytes);
        // keep the first value, just refresh recency.
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        return;
    }
    lru_.push_front(key);
    entries_.emplace(key, Entry{std::move(value), lru_.begin()});
    while (entries_.size() > max_entries_) {
        entries_.erase(lru_.back());
        lru_.pop_back();
        ++evictions_;
    }
}

std::size_t ResultCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::uint64_t ResultCache::evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

}  // namespace mcs::serve
