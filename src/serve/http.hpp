#pragma once

// Minimal HTTP/1.1 message layer for the mcs_serve daemon, implemented on
// plain strings so it is unit-testable without sockets. The parser is
// incremental (feed() bytes as they arrive) and hardened for untrusted
// input: the request head, the header count, and the body size are all
// bounded, and every violation maps to a definite HTTP status instead of
// unbounded buffering.
//
// Scope is deliberately small -- exactly what the what-if service needs:
// GET/POST, Content-Length bodies (no chunked transfer), HTTP/1.1
// keep-alive with pipelining: bytes past one request's body stay buffered
// and next_request() rolls the parser forward onto them, so a client may
// write several requests back to back and read the responses in order.

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcs::serve {

/// Input bounds for one request (all enforced with clean rejections).
struct HttpLimits {
    std::size_t max_head_bytes = 8 * 1024;  ///< request line + headers
    std::size_t max_body_bytes = 1 << 20;   ///< Content-Length ceiling
    std::size_t max_headers = 64;
};

/// One parsed request. Header names are lower-cased; `path` and `query`
/// split `target` at the first '?'.
struct HttpRequest {
    std::string method;
    std::string target;
    std::string path;
    std::string query;
    std::string version;
    std::map<std::string, std::string> headers;
    std::string body;
};

/// Connection persistence the client asked for: HTTP/1.1 defaults to
/// keep-alive unless "Connection: close"; HTTP/1.0 requires an explicit
/// "Connection: keep-alive".
bool request_keep_alive(const HttpRequest& request);

/// Incremental request parser. Feed bytes until Done or Error; on Error,
/// `error_status()` / `error()` describe the rejection (400 malformed,
/// 413 body too large, 431 head too large, 501 unsupported framing).
///
/// Pipelining: bytes beyond the current request's body are retained; once
/// a request has been consumed, next_request() resets the per-request
/// state and immediately parses as much of the buffered remainder as it
/// can (possibly straight to Done again).
class HttpRequestParser {
public:
    enum class State { NeedMore, Done, Error };

    explicit HttpRequestParser(HttpLimits limits = {})
        : limits_(limits) {}

    State feed(std::string_view bytes);
    State state() const noexcept { return state_; }

    /// Valid once state() == Done.
    const HttpRequest& request() const noexcept { return request_; }

    /// After Done: drops the current request and re-parses any buffered
    /// pipelined bytes. Returns the new state (Done again if a complete
    /// further request was already buffered).
    State next_request();

    /// True while bytes of a partially received request sit in the parser
    /// (distinguishes "mid-request" from "idle between requests" for the
    /// 408/503 paths).
    bool mid_request() const noexcept {
        return head_done_ || !buffer_.empty();
    }

    int error_status() const noexcept { return error_status_; }
    const std::string& error() const noexcept { return error_; }

private:
    State fail(int status, std::string message);
    State advance();  ///< runs the state machine over buffer_
    State parse_head();
    State check_body();

    HttpLimits limits_;
    HttpRequest request_;
    std::string buffer_;
    std::size_t body_expected_ = 0;
    bool head_done_ = false;
    State state_ = State::NeedMore;
    int error_status_ = 400;
    std::string error_;
};

/// One response; serialize_response renders the status line, the standard
/// headers (Content-Type, Content-Length, Connection), any extras
/// (e.g. Retry-After), and the body. `keep_alive` selects the Connection
/// header; the default (close) matches the one-shot clients and every
/// error path that tears the connection down.
struct HttpResponse {
    int status = 200;
    std::string content_type = "application/json";
    std::string body;
    std::vector<std::pair<std::string, std::string>> extra_headers;
};

std::string serialize_response(const HttpResponse& response,
                               bool keep_alive = false);

/// Canonical reason phrase ("OK", "Too Many Requests", ...); "Unknown" for
/// statuses the daemon never emits.
const char* status_reason(int status);

/// Convenience: a JSON error body {"error": message} with the given status.
HttpResponse error_response(int status, std::string_view message);

}  // namespace mcs::serve
