#include "serve/query.hpp"

#include <array>
#include <cctype>
#include <sstream>

#include "core/config_bridge.hpp"
#include "core/system.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/schema.hpp"
#include "util/require.hpp"

namespace mcs::serve {

namespace {

/// Policy knobs a fork may vary. Structural keys (geometry, node,
/// occupancy / arrival rate, task-graph shape, QoS mix, subsystem
/// enables) are absent on purpose: they change the meaning of the
/// captured state vectors and the restore would reject them anyway --
/// rejecting here gives the client a precise error instead of a
/// fingerprint mismatch.
constexpr std::array<std::string_view, 13> kAllowedOverrides = {
    "abort_tests",   "capping",      "criticality_mode",
    "criticality_threshold", "gate_delay_ms", "guard_band",
    "mapper",        "scheduler",    "segmented",
    "sessions",      "tdp_scale",    "test_period_ms",
    "vf_policy",
};

/// Request-body limits: a what-if query is a small flat object; anything
/// deeper or larger is hostile or confused.
constexpr telemetry::JsonLimits kBodyLimits{64 * 1024, 8};

std::string trim_copy(const std::string& s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && (std::isspace(static_cast<unsigned char>(s[b])) != 0)) {
        ++b;
    }
    while (e > b &&
           (std::isspace(static_cast<unsigned char>(s[e - 1])) != 0)) {
        --e;
    }
    return s.substr(b, e - b);
}

/// Canonical text of a scalar override value. Numbers go through
/// json_number (shortest round-trip form: 0.80, 8e-1 and 0.8 all
/// canonicalize to "0.8"); strings are whitespace-trimmed.
std::string canonical_value(const std::string& key,
                            const telemetry::JsonValue& v) {
    using Kind = telemetry::JsonValue::Kind;
    switch (v.kind) {
        case Kind::Number: return telemetry::json_number(v.number);
        case Kind::String: return trim_copy(v.string);
        case Kind::Bool: return v.boolean ? "true" : "false";
        default:
            MCS_REQUIRE(false, "override '" + key +
                                   "' must be a scalar (number, string, "
                                   "or boolean)");
            return {};
    }
}

WhatIfQuery parse_query_doc(const telemetry::JsonValue& doc) {
    telemetry::require_schema(doc, "mcs.whatif_query");
    WhatIfQuery q;
    MCS_REQUIRE(doc.has("snapshot") && doc.at("snapshot").is_string(),
                "query needs a string 'snapshot' member");
    q.snapshot = trim_copy(doc.at("snapshot").string);
    MCS_REQUIRE(!q.snapshot.empty(), "query 'snapshot' must not be empty");
    if (doc.has("overrides")) {
        const telemetry::JsonValue& ov = doc.at("overrides");
        MCS_REQUIRE(ov.is_object(), "query 'overrides' must be an object");
        for (const auto& [key, value] : ov.object) {
            MCS_REQUIRE(is_allowed_override(key),
                        "override '" + key +
                            "' is not an allowed policy knob");
            q.overrides.emplace(key, canonical_value(key, value));
        }
    }
    if (doc.has("seconds")) {
        MCS_REQUIRE(doc.at("seconds").is_number(),
                    "query 'seconds' must be a number");
        const double s = doc.at("seconds").number;
        MCS_REQUIRE(s > 0.0, "query 'seconds' must be positive");
        q.horizon = from_seconds(s);
    }
    for (const auto& [key, value] : doc.object) {
        MCS_REQUIRE(key == "schema" || key == "snapshot" ||
                        key == "overrides" || key == "seconds",
                    "unknown query member '" + key + "'");
    }
    return q;
}

}  // namespace

bool is_allowed_override(std::string_view key) {
    for (const std::string_view allowed : kAllowedOverrides) {
        if (key == allowed) {
            return true;
        }
    }
    return false;
}

WhatIfQuery parse_whatif_query(std::string_view body) {
    const telemetry::JsonValue doc = telemetry::parse_json(body, kBodyLimits);
    MCS_REQUIRE(doc.is_object(), "query body must be a JSON object");
    return parse_query_doc(doc);
}

std::string cache_key(const SnapshotEntry& entry, const WhatIfQuery& query) {
    // The fingerprints pin the snapshot identity (its captured config AND
    // structure), the tick count pins the horizon, and the sorted
    // canonical overrides pin the fork. '\x1f' (unit separator) cannot
    // appear in canonical values' config grammar, keeping the key
    // injective.
    const SimDuration horizon =
        query.horizon.value_or(entry.captured_horizon);
    std::string key;
    key.reserve(128);
    key += entry.config_fingerprint;
    key += '+';
    key += entry.structural_fingerprint;
    key += "|h=";
    key += std::to_string(horizon);
    for (const auto& [name, value] : query.overrides) {
        key += '\x1f';
        key += name;
        key += '=';
        key += value;
    }
    return key;
}

std::string compute_whatif(const SnapshotEntry& entry,
                           const WhatIfQuery& query) {
    const SimDuration horizon =
        query.horizon.value_or(entry.captured_horizon);
    MCS_REQUIRE(horizon > entry.captured_now,
                "query horizon " + std::to_string(horizon) +
                    " ns does not lie after the snapshot's capture point " +
                    std::to_string(entry.captured_now) + " ns");
    MCS_REQUIRE(horizon <= entry.captured_horizon,
                "query horizon " + std::to_string(horizon) +
                    " ns exceeds the captured horizon " +
                    std::to_string(entry.captured_horizon) +
                    " ns (the arrival trace ends there)");

    Config merged = entry.base;
    for (const auto& [key, value] : query.overrides) {
        merged.set(key, value);
    }
    ManycoreSystem sys(system_config_from(merged));
    RestoreOptions opts;
    opts.relax_config = true;  // forks vary policy knobs by design
    sys.restore(entry.doc, opts);
    const RunMetrics m = sys.run(horizon);
    std::ostringstream os;
    telemetry::write_run_report(m, &sys.registry(), os);
    return os.str();
}

}  // namespace mcs::serve
