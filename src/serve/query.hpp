#pragma once

// The what-if query layer: one query names a warmed snapshot, a set of
// policy overrides (the paper's design-space axes: scheduler choice, power
// budget via tdp_scale, capping mode, guard band, ...) and an optional
// shorter horizon, and evaluates to the deterministic mcs.run_report.v1
// bytes of the forked run.
//
// Canonicalization is the contract that makes the result cache sound: two
// queries that mean the same thing -- overrides in any order, numbers
// spelled 0.80 vs 8e-1, strings with stray whitespace -- canonicalize to
// the same cache key, and the report bytes are a pure function of
// (snapshot fingerprints, canonical overrides, horizon), so a cache hit is
// byte-identical to a fresh computation.
//
// Request schema ("mcs.whatif_query.v1", POST /whatif):
//   {"schema":"mcs.whatif_query.v1","snapshot":"<name>",
//    "overrides":{"scheduler":"greedy","tdp_scale":0.8,...},
//    "seconds":1.5}
// `overrides` (optional) admits only whitelisted policy keys -- structural
// keys would invalidate the captured state and are rejected up front.
// `seconds` (optional) must land in (captured_now, captured_horizon];
// omitted means the captured horizon.

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "serve/snapshot_pool.hpp"
#include "sim/time.hpp"

namespace mcs::serve {

/// A parsed, canonicalized query. `overrides` values are in canonical
/// text form (shortest round-trip numbers, trimmed strings, true/false).
struct WhatIfQuery {
    std::string snapshot;
    std::map<std::string, std::string> overrides;
    std::optional<SimDuration> horizon;
};

/// Override keys a query may vary: exactly the policy knobs a relaxed
/// restore supports (the structural fingerprint still has to match).
bool is_allowed_override(std::string_view key);

/// Parses and canonicalizes a request body. Throws RequireError on
/// malformed JSON (tight depth/size limits -- this is network input), a
/// wrong/missing schema tag, non-whitelisted override keys, or
/// non-scalar override values.
WhatIfQuery parse_whatif_query(std::string_view body);

/// Deterministic cache key: snapshot config+structural fingerprints, the
/// resolved horizon in ticks, and the canonical override list. Equal keys
/// imply byte-identical responses.
std::string cache_key(const SnapshotEntry& entry, const WhatIfQuery& query);

/// Evaluates the query against the entry: forks the warmed snapshot under
/// the overridden policy (restore_relax semantics) and runs it to the
/// requested horizon. Returns the mcs.run_report.v1 bytes. Throws
/// RequireError for an invalid horizon or a structurally incompatible
/// override (both map to HTTP 400 in the service layer).
std::string compute_whatif(const SnapshotEntry& entry,
                           const WhatIfQuery& query);

}  // namespace mcs::serve
