#pragma once

// The warmed-snapshot pool behind mcs_serve: every "mcs.snapshot" document
// named in the server configuration is parsed into memory once at startup,
// validated against its base run configuration (fail fast, not per
// request), and then shared read-only by all workers -- answering a
// what-if query only pays system construction + restore + run, never
// process startup or disk I/O.
//
// Configuration grammar (key=value, the repo-wide Config format):
//   snapshot.<name> = <path to an mcs.snapshot JSON document>
//   snapshot.<name>.config = <path to that run's key=value config file>
// Run keys given alongside (occupancy=..., scheduler=..., ...) form the
// shared base configuration; a per-snapshot config file overrides it.
// <name> is [A-Za-z0-9_-]+ and is the handle queries use.

#include <string>
#include <vector>

#include "core/system.hpp"
#include "telemetry/json.hpp"
#include "util/config.hpp"

namespace mcs::serve {

/// One pool entry: the parsed snapshot document plus everything the query
/// layer needs without re-reading it (fingerprints for cache keys, the
/// captured window for horizon validation, the base run config forks
/// derive from).
struct SnapshotEntry {
    std::string name;
    std::string path;
    telemetry::JsonValue doc;
    Config base;  ///< run config the snapshot was captured under
    std::string config_fingerprint;
    std::string structural_fingerprint;
    SimTime captured_now = 0;          ///< clock at capture
    SimDuration captured_horizon = 0;  ///< horizon of the captured run
};

class SnapshotPool {
public:
    /// Loads every `snapshot.<name>` entry of `serve_cfg`; `shared_base`
    /// holds the run keys shared by all snapshots. Each entry's base
    /// config must rebuild the captured structure: the entry's structural
    /// fingerprint is checked against the snapshot document and a mismatch
    /// throws RequireError naming the snapshot (startup failure, not a
    /// per-request surprise).
    static SnapshotPool load(const Config& serve_cfg,
                             const Config& shared_base);

    const SnapshotEntry* find(const std::string& name) const;
    const std::vector<SnapshotEntry>& entries() const noexcept {
        return entries_;
    }
    std::size_t size() const noexcept { return entries_.size(); }

    /// Testing/bench hook: build a single-entry pool from an in-memory
    /// snapshot document.
    static SnapshotPool from_document(std::string name,
                                      telemetry::JsonValue doc,
                                      Config base);

private:
    static SnapshotEntry make_entry(std::string name, std::string path,
                                    telemetry::JsonValue doc, Config base);

    std::vector<SnapshotEntry> entries_;  ///< sorted by name
};

}  // namespace mcs::serve
