#pragma once

// The socket front end of mcs_serve: a single-threaded event loop
// (level-triggered epoll on Linux, poll elsewhere -- serve/poller.hpp)
// owning nonblocking sockets with per-connection read/write buffers,
// HTTP/1.1 keep-alive with pipelining, idle/header timeouts (408), and a
// per-connection request cap. The heavy work -- the simulation behind a
// /whatif -- still runs on a bounded TaskPool: the loop parses a request,
// submits it, and keeps multiplexing; workers hand the finished response
// back through a completion queue plus a wake pipe.
//
// Admission control is unchanged in spirit: a full worker queue answers
// 429 + Retry-After immediately (on the still-open connection -- the
// client may retry over the same socket). Graceful stop (SIGTERM in the
// daemon, stop() in tests) closes the listener, finishes every dispatched
// request, answers 503 + Connection: close on every connection without a
// request in flight (accepted-but-unparsed included), flushes, joins,
// exits 0. SIGHUP (request_reload()) swaps the service's snapshot pool
// without dropping a single connection.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/http.hpp"
#include "serve/poller.hpp"
#include "serve/service.hpp"
#include "util/thread_pool.hpp"

namespace mcs::serve {

struct ServerOptions {
    std::string listen = "127.0.0.1";
    int port = 8077;          ///< 0 = ephemeral (tests read port())
    int workers = 0;          ///< <= 0: hardware concurrency
    std::size_t queue_limit = 64;      ///< admission queue bound
    int idle_timeout_ms = 10'000;      ///< idle/partial-header timeout (408)
    int max_requests_per_conn = 1000;  ///< keep-alive request cap
    HttpLimits http{};
    bool quiet = false;
};

class HttpServer {
public:
    /// Binds and listens immediately (throws RequireError on failure) so
    /// a bad listen address is a startup error, not a runtime surprise.
    HttpServer(ServeService& service, ServerOptions opts);
    ~HttpServer();
    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /// Event loop; blocks until stop() is called, then drains (every
    /// dispatched request is answered, everything else gets 503) and
    /// returns. Call at most once.
    void run();

    /// Requests a graceful shutdown. Async-signal-safe (writes one byte
    /// to an internal pipe); callable from any thread or signal handler.
    void stop() noexcept;

    /// Requests a snapshot-pool hot reload (the SIGHUP path). Async-
    /// signal-safe; the actual reload runs on a worker so the loop never
    /// blocks on disk I/O. In-flight queries finish against the old pool.
    void request_reload() noexcept;

    /// The actually bound port (after an ephemeral bind).
    int port() const noexcept { return port_; }
    int worker_count() const noexcept { return pool_.worker_count(); }

private:
    struct Conn {
        std::uint64_t id = 0;
        int fd = -1;
        HttpRequestParser parser;
        std::string out;            ///< serialized responses pending write
        std::size_t out_off = 0;
        int served = 0;             ///< responses sent on this connection
        bool in_flight = false;     ///< a handler task is running
        bool close_after_write = false;
        bool peer_closed = false;
        bool registered = true;     ///< fd is registered with the poller
        bool want_read = true;      ///< cached poller interest
        bool want_write = false;
        std::chrono::steady_clock::time_point last_activity;

        explicit Conn(HttpLimits limits) : parser(limits) {}
    };

    struct Completion {
        std::uint64_t conn_id = 0;
        HttpResponse response;
        bool client_keep_alive = true;
    };

    void accept_ready();
    void on_readable(Conn& conn);
    void on_writable(Conn& conn);
    void try_dispatch(Conn& conn);
    void enqueue_response(Conn& conn, const HttpResponse& response,
                          bool keep_alive);
    void flush(Conn& conn);
    void update_interest(Conn& conn);
    void close_conn(Conn& conn);
    void drain_wake_pipe();
    void drain_completions();
    /// Per-iteration bookkeeping over every connection: dispatch parsed
    /// requests, apply drain/idle policy, flush, close, refresh poller
    /// interest. Centralizing the close decision here keeps the event
    /// handlers free of iterator-invalidation traps.
    void sweep();
    bool idle_expired(const Conn& conn,
                      std::chrono::steady_clock::time_point now) const;
    int next_timeout_ms(std::chrono::steady_clock::time_point now) const;
    void begin_drain();

    ServeService& service_;
    ServerOptions opts_;
    TaskPool pool_;
    Poller poller_;
    int listen_fd_ = -1;
    int wake_pipe_[2] = {-1, -1};
    int port_ = 0;
    std::atomic<bool> stopping_{false};
    bool draining_ = false;
    std::uint64_t next_conn_id_ = 1;
    std::map<std::uint64_t, Conn> conns_;    ///< id -> connection
    std::map<int, std::uint64_t> fd_to_id_;  ///< socket fd -> id

    std::mutex completions_mutex_;
    std::vector<Completion> completions_;
};

}  // namespace mcs::serve
