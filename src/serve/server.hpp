#pragma once

// The socket pump of mcs_serve: a plain-POSIX TCP listener, a bounded
// admission queue with explicit overload rejection (429 + Retry-After),
// a worker pool (runner/thread_pool's TaskPool) draining it, and a
// graceful stop path (SIGTERM in the daemon, stop() in tests): close
// admission, finish every connection already accepted, join, exit 0.
//
// One request per connection, response carries Connection: close -- the
// simplest protocol that serves the what-if workload, whose cost is the
// simulation, not the handshake.

#include <atomic>
#include <string>
#include <thread>

#include "runner/thread_pool.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"

namespace mcs::serve {

struct ServerOptions {
    std::string listen = "127.0.0.1";
    int port = 8077;          ///< 0 = ephemeral (tests read port())
    int workers = 0;          ///< <= 0: hardware concurrency
    std::size_t queue_limit = 64;   ///< admission queue bound
    int io_timeout_s = 10;    ///< per-connection socket read/write timeout
    HttpLimits http{};
    bool quiet = false;
};

class HttpServer {
public:
    /// Binds and listens immediately (throws RequireError on failure) so
    /// a bad listen address is a startup error, not a runtime surprise.
    HttpServer(ServeService& service, ServerOptions opts);
    ~HttpServer();
    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /// Accept loop; blocks until stop() is called, then drains the worker
    /// pool and returns. Call at most once.
    void run();

    /// Requests a graceful shutdown. Async-signal-safe (writes one byte
    /// to an internal pipe); callable from any thread or signal handler.
    void stop() noexcept;

    /// The actually bound port (after an ephemeral bind).
    int port() const noexcept { return port_; }
    int worker_count() const noexcept { return pool_.worker_count(); }

private:
    void handle_connection(int fd);

    ServeService& service_;
    ServerOptions opts_;
    TaskPool pool_;
    int listen_fd_ = -1;
    int wake_pipe_[2] = {-1, -1};
    int port_ = 0;
    std::atomic<bool> stopping_{false};
};

}  // namespace mcs::serve
