#pragma once

// Bounded LRU cache from canonical query keys to response bytes. Because
// every cached value is the byte-deterministic mcs.run_report.v1 of its
// key (serve/query.hpp), a hit is guaranteed byte-identical to a fresh
// computation -- the cache can only save time, never change an answer.
//
// Thread-safe; values are shared_ptr<const string> so a response being
// streamed out survives concurrent eviction.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace mcs::serve {

class ResultCache {
public:
    /// `max_entries` == 0 disables caching entirely (every lookup misses).
    explicit ResultCache(std::size_t max_entries)
        : max_entries_(max_entries) {}
    ResultCache(const ResultCache&) = delete;
    ResultCache& operator=(const ResultCache&) = delete;

    /// Returns the cached bytes and refreshes recency, or nullptr.
    std::shared_ptr<const std::string> find(const std::string& key);

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entries beyond capacity.
    void insert(const std::string& key,
                std::shared_ptr<const std::string> value);

    std::size_t size() const;
    std::size_t capacity() const noexcept { return max_entries_; }
    std::uint64_t evictions() const;

private:
    struct Entry {
        std::shared_ptr<const std::string> value;
        std::list<std::string>::iterator lru_pos;
    };

    mutable std::mutex mutex_;
    std::size_t max_entries_;
    std::uint64_t evictions_ = 0;
    std::list<std::string> lru_;  ///< front = most recently used
    std::unordered_map<std::string, Entry> entries_;
};

}  // namespace mcs::serve
