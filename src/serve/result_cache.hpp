#pragma once

// Bounded LRU cache from canonical query keys to response envelopes.
// Because every cached value is the deterministic answer of its key
// (serve/query.hpp) -- the byte-exact mcs.run_report.v1 on success, the
// byte-exact error envelope on a deterministic failure such as an invalid
// horizon -- a hit is guaranteed byte-identical to a fresh computation:
// the cache can only save time, never change an answer. Negative results
// (status != 200) share the same LRU as positive ones.
//
// Thread-safe; values are shared_ptr<const CachedResponse> so a response
// being streamed out survives concurrent eviction.
//
// Persistence: keys embed the snapshot's config AND structural
// fingerprints, so a cache file written by one daemon generation is safe
// to load into the next -- entries for changed snapshots simply never hit.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace mcs::serve {

/// One cached answer: the HTTP status it resolved to and the exact body
/// bytes (run report or error envelope).
struct CachedResponse {
    int status = 200;
    std::string body;
};

class ResultCache {
public:
    /// `max_entries` == 0 disables caching entirely (every lookup misses).
    explicit ResultCache(std::size_t max_entries)
        : max_entries_(max_entries) {}
    ResultCache(const ResultCache&) = delete;
    ResultCache& operator=(const ResultCache&) = delete;

    /// Returns the cached envelope and refreshes recency, or nullptr.
    std::shared_ptr<const CachedResponse> find(const std::string& key);

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entries beyond capacity.
    void insert(const std::string& key,
                std::shared_ptr<const CachedResponse> value);

    std::size_t size() const;
    std::size_t capacity() const noexcept { return max_entries_; }
    std::uint64_t evictions() const;
    /// Entries currently held whose status != 200.
    std::size_t negative_size() const;

    /// Writes every entry as one JSON object per line (sorted by key, so
    /// a given cache state always serializes to identical bytes). Throws
    /// RequireError if the file cannot be written.
    void save(const std::string& path) const;

    /// Loads entries previously written by save() (missing file is a
    /// no-op; a malformed file throws RequireError). Entries load in file
    /// order and count as most-recently-used in that order; existing keys
    /// are kept, not overwritten. Returns the number of entries loaded.
    std::size_t load(const std::string& path);

private:
    struct Entry {
        std::shared_ptr<const CachedResponse> value;
        std::list<std::string>::iterator lru_pos;
    };

    mutable std::mutex mutex_;
    std::size_t max_entries_;
    std::uint64_t evictions_ = 0;
    std::list<std::string> lru_;  ///< front = most recently used
    std::unordered_map<std::string, Entry> entries_;
};

}  // namespace mcs::serve
