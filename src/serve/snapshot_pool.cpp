#include "serve/snapshot_pool.hpp"

#include <algorithm>
#include <cctype>

#include "core/config_bridge.hpp"
#include "core/system_factory.hpp"
#include "telemetry/schema.hpp"
#include "util/require.hpp"

namespace mcs::serve {

namespace {

constexpr std::string_view kPrefix = "snapshot.";
constexpr std::string_view kConfigSuffix = ".config";

bool valid_name(std::string_view name) {
    if (name.empty()) {
        return false;
    }
    return std::all_of(name.begin(), name.end(), [](unsigned char c) {
        return std::isalnum(c) != 0 || c == '_' || c == '-';
    });
}

}  // namespace

SnapshotEntry SnapshotPool::make_entry(std::string name, std::string path,
                                       telemetry::JsonValue doc,
                                       Config base) {
    telemetry::require_schema(doc, "mcs.snapshot");
    SnapshotEntry e;
    e.name = std::move(name);
    e.path = std::move(path);
    e.config_fingerprint = doc.at("config_fingerprint").string;
    e.structural_fingerprint = doc.at("structural_fingerprint").string;
    e.captured_now = doc.at("now").u64();
    e.captured_horizon = doc.at("horizon").u64();
    MCS_REQUIRE(e.captured_now > 0 && e.captured_now < e.captured_horizon,
                "snapshot '" + e.name + "': captured clock/horizon invalid");

    // Fail fast: the base config must rebuild the captured structure, or
    // every query against this entry would 400 at restore time.
    const SystemConfig cfg = system_config_from(base);
    MCS_REQUIRE(structural_fingerprint(cfg) == e.structural_fingerprint,
                "snapshot '" + e.name +
                    "': base config does not match the captured structure "
                    "(structural fingerprint mismatch)");
    e.doc = std::move(doc);
    e.base = std::move(base);
    return e;
}

SnapshotPool SnapshotPool::load(const Config& serve_cfg,
                                const Config& shared_base) {
    SnapshotPool pool;
    for (const auto& [key, value] : serve_cfg.entries()) {
        if (key.rfind(kPrefix, 0) != 0 || key.ends_with(kConfigSuffix)) {
            continue;
        }
        const std::string name = key.substr(kPrefix.size());
        MCS_REQUIRE(valid_name(name),
                    "invalid snapshot name in key '" + key +
                        "' (use [A-Za-z0-9_-]+)");
        Config base = shared_base;
        const std::string cfg_key = key + std::string(kConfigSuffix);
        if (serve_cfg.has(cfg_key)) {
            Config file = Config::from_file(serve_cfg.get_string(cfg_key, ""));
            base.merge(file);
        }
        pool.entries_.push_back(make_entry(
            name, value, load_snapshot_file(value), std::move(base)));
    }
    // A dangling per-snapshot config is a typo, not dead weight.
    for (const auto& [key, value] : serve_cfg.entries()) {
        if (key.rfind(kPrefix, 0) == 0 && key.ends_with(kConfigSuffix)) {
            const std::string base_key =
                key.substr(0, key.size() - kConfigSuffix.size());
            MCS_REQUIRE(serve_cfg.has(base_key),
                        "config key '" + key + "' has no matching '" +
                            base_key + "' snapshot entry");
        }
    }
    MCS_REQUIRE(!pool.entries_.empty(),
                "no snapshots configured (need at least one "
                "snapshot.<name>=<path> entry)");
    std::sort(pool.entries_.begin(), pool.entries_.end(),
              [](const SnapshotEntry& a, const SnapshotEntry& b) {
                  return a.name < b.name;
              });
    return pool;
}

SnapshotPool SnapshotPool::from_document(std::string name,
                                         telemetry::JsonValue doc,
                                         Config base) {
    SnapshotPool pool;
    pool.entries_.push_back(make_entry(std::move(name), "<memory>",
                                       std::move(doc), std::move(base)));
    return pool;
}

const SnapshotEntry* SnapshotPool::find(const std::string& name) const {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), name,
        [](const SnapshotEntry& e, const std::string& n) {
            return e.name < n;
        });
    return it != entries_.end() && it->name == name ? &*it : nullptr;
}

}  // namespace mcs::serve
