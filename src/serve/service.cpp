#include "serve/service.hpp"

#include <chrono>
#include <exception>
#include <sstream>

#include "telemetry/json.hpp"
#include "util/require.hpp"

namespace mcs::serve {

namespace {

/// Request-latency histogram layout: 0..500 ms in 1 ms bins. Cache hits
/// land in the first bin; cold computations spread across the range (and
/// beyond, into the overflow bucket, for long horizons).
constexpr double kLatencyLoUs = 0.0;
constexpr double kLatencyHiUs = 500'000.0;
constexpr std::size_t kLatencyBins = 500;

double elapsed_us(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

}  // namespace

ServeService::ServeService(SnapshotPool pool, ServiceOptions opts,
                           telemetry::MetricsRegistry& registry)
    : pool_(std::move(pool)),
      cache_(opts.cache_entries),
      registry_(registry) {
    // Register everything up front so /metrics is fully shaped from the
    // first scrape (counters at 0, not absent).
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    registry_.counter("serve.requests");
    registry_.counter("serve.whatif_requests");
    registry_.counter("serve.cache_hits");
    registry_.counter("serve.cache_misses");
    registry_.counter("serve.cache_evictions");
    registry_.counter("serve.queue_rejections");
    registry_.counter("serve.responses_2xx");
    registry_.counter("serve.responses_4xx");
    registry_.counter("serve.responses_5xx");
    registry_.gauge("serve.queue_depth", telemetry::GaugeMerge::Max);
    registry_.gauge("serve.queue_depth_peak", telemetry::GaugeMerge::Max);
    registry_.gauge("serve.snapshots", telemetry::GaugeMerge::Max)
        .set(static_cast<double>(pool_.size()));
    registry_.histogram("serve.latency_us", kLatencyLoUs, kLatencyHiUs,
                        kLatencyBins);
}

HttpResponse ServeService::handle(const HttpRequest& request) {
    const auto start = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        registry_.counter("serve.requests").inc();
    }
    HttpResponse response;
    try {
        if (request.path == "/whatif") {
            response = request.method == "POST"
                           ? handle_whatif(request)
                           : error_response(405, "use POST /whatif");
        } else if (request.path == "/healthz") {
            response = request.method == "GET"
                           ? handle_healthz()
                           : error_response(405, "use GET /healthz");
        } else if (request.path == "/metrics") {
            response = request.method == "GET"
                           ? handle_metrics()
                           : error_response(405, "use GET /metrics");
        } else if (request.path == "/snapshots") {
            response = request.method == "GET"
                           ? handle_snapshots()
                           : error_response(405, "use GET /snapshots");
        } else {
            response = error_response(404, "no route for " + request.path);
        }
    } catch (const RequireError& e) {
        response = error_response(400, e.what());
    } catch (const std::exception& e) {
        response = error_response(500, e.what());
    }
    {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        registry_
            .histogram("serve.latency_us", kLatencyLoUs, kLatencyHiUs,
                       kLatencyBins)
            .add(elapsed_us(start));
    }
    count_response(response);
    return response;
}

HttpResponse ServeService::handle_whatif(const HttpRequest& request) {
    {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        registry_.counter("serve.whatif_requests").inc();
    }
    const WhatIfQuery query = parse_whatif_query(request.body);
    const SnapshotEntry* entry = pool_.find(query.snapshot);
    if (entry == nullptr) {
        return error_response(404,
                              "unknown snapshot '" + query.snapshot + "'");
    }
    const std::string key = cache_key(*entry, query);
    std::shared_ptr<const std::string> bytes = cache_.find(key);
    const bool hit = bytes != nullptr;
    if (!hit) {
        // The simulation runs outside the metrics lock: concurrent
        // queries on different snapshots/overrides proceed in parallel.
        bytes = std::make_shared<const std::string>(
            compute_whatif(*entry, query));
        cache_.insert(key, bytes);
    }
    {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        registry_.counter(hit ? "serve.cache_hits" : "serve.cache_misses")
            .inc();
        registry_.counter("serve.cache_evictions")
            .restore(cache_.evictions());
    }
    HttpResponse response;
    response.status = 200;
    response.body = *bytes;
    response.extra_headers.emplace_back("X-Cache", hit ? "hit" : "miss");
    return response;
}

HttpResponse ServeService::handle_healthz() const {
    std::ostringstream os;
    telemetry::JsonWriter w(os);
    w.begin_object();
    w.field("status", "ok");
    w.field("snapshots", static_cast<std::uint64_t>(pool_.size()));
    w.end_object();
    os << '\n';
    HttpResponse r;
    r.body = os.str();
    return r;
}

HttpResponse ServeService::handle_metrics() {
    std::ostringstream os;
    {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        telemetry::JsonWriter w(os);
        registry_.write_json(w);
    }
    os << '\n';
    HttpResponse r;
    r.body = os.str();
    return r;
}

HttpResponse ServeService::handle_snapshots() const {
    std::ostringstream os;
    telemetry::JsonWriter w(os);
    w.begin_object();
    w.key("snapshots");
    w.begin_array();
    for (const SnapshotEntry& e : pool_.entries()) {
        w.begin_object();
        w.field("name", e.name);
        w.field("config_fingerprint", e.config_fingerprint);
        w.field("structural_fingerprint", e.structural_fingerprint);
        w.field("captured_now_s", to_seconds(e.captured_now));
        w.field("captured_horizon_s", to_seconds(e.captured_horizon));
        w.end_object();
    }
    w.end_array();
    w.end_object();
    os << '\n';
    HttpResponse r;
    r.body = os.str();
    return r;
}

void ServeService::count_response(const HttpResponse& response) {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    if (response.status < 300) {
        registry_.counter("serve.responses_2xx").inc();
    } else if (response.status < 500) {
        registry_.counter("serve.responses_4xx").inc();
    } else {
        registry_.counter("serve.responses_5xx").inc();
    }
}

void ServeService::note_queue_depth(std::size_t depth) {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    const double d = static_cast<double>(depth);
    registry_.gauge("serve.queue_depth", telemetry::GaugeMerge::Max).set(d);
    telemetry::Gauge& peak =
        registry_.gauge("serve.queue_depth_peak", telemetry::GaugeMerge::Max);
    if (d > peak.value()) {
        peak.set(d);
    }
}

void ServeService::note_rejected() {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    registry_.counter("serve.queue_rejections").inc();
    registry_.counter("serve.responses_4xx").inc();
}

}  // namespace mcs::serve
