#include "serve/service.hpp"

#include <chrono>
#include <exception>
#include <sstream>

#include "telemetry/json.hpp"
#include "util/require.hpp"

namespace mcs::serve {

namespace {

/// Request-latency histogram layout: 0..500 ms in 1 ms bins. Cache hits
/// land in the first bin; cold computations spread across the range (and
/// beyond, into the overflow bucket, for long horizons).
constexpr double kLatencyLoUs = 0.0;
constexpr double kLatencyHiUs = 500'000.0;
constexpr std::size_t kLatencyBins = 500;

double elapsed_us(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

}  // namespace

ServeService::ServeService(SnapshotPool pool, ServiceOptions opts,
                           telemetry::MetricsRegistry& registry)
    : pool_(std::make_shared<const SnapshotPool>(std::move(pool))),
      opts_(std::move(opts)),
      cache_(opts_.cache_entries),
      registry_(registry) {
    // Register everything up front so /metrics is fully shaped from the
    // first scrape (counters at 0, not absent).
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    registry_.counter("serve.requests");
    registry_.counter("serve.whatif_requests");
    registry_.counter("serve.cache_hits");
    registry_.counter("serve.cache_misses");
    registry_.counter("serve.cache_evictions");
    registry_.counter("serve.negative_cache_hits");
    registry_.counter("serve.cache_preloaded");
    registry_.counter("serve.pool_reloads");
    registry_.counter("serve.pool_reload_failures");
    registry_.counter("serve.queue_rejections");
    registry_.counter("serve.responses_2xx");
    registry_.counter("serve.responses_4xx");
    registry_.counter("serve.responses_5xx");
    registry_.gauge("serve.queue_depth", telemetry::GaugeMerge::Max);
    registry_.gauge("serve.queue_depth_peak", telemetry::GaugeMerge::Max);
    registry_.gauge("serve.snapshots", telemetry::GaugeMerge::Max)
        .set(static_cast<double>(pool_->size()));
    registry_.histogram("serve.latency_us", kLatencyLoUs, kLatencyHiUs,
                        kLatencyBins);
    if (!opts_.cache_file.empty()) {
        const std::size_t n = cache_.load(opts_.cache_file);
        registry_.counter("serve.cache_preloaded").restore(n);
    }
}

std::shared_ptr<const SnapshotPool> ServeService::pool() const {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    return pool_;
}

void ServeService::set_pool_loader(PoolLoader loader) {
    pool_loader_ = std::move(loader);
}

void ServeService::reload() {
    MCS_REQUIRE(pool_loader_ != nullptr,
                "this service has no pool loader (reload unsupported)");
    std::shared_ptr<const SnapshotPool> fresh;
    try {
        fresh = std::make_shared<const SnapshotPool>(pool_loader_());
    } catch (...) {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        registry_.counter("serve.pool_reload_failures").inc();
        throw;
    }
    {
        std::lock_guard<std::mutex> lock(pool_mutex_);
        pool_.swap(fresh);
    }
    // `fresh` now holds the old generation; queries that grabbed it keep
    // it alive until they finish (the RCU grace period is the shared_ptr
    // refcount). The cache stays: its keys embed fingerprints, so stale
    // entries can never answer a query against the new pool.
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    registry_.counter("serve.pool_reloads").inc();
    registry_.gauge("serve.snapshots", telemetry::GaugeMerge::Max)
        .set(static_cast<double>(pool()->size()));
}

void ServeService::save_cache() const {
    if (!opts_.cache_file.empty()) {
        cache_.save(opts_.cache_file);
    }
}

HttpResponse ServeService::handle(const HttpRequest& request) {
    const auto start = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        registry_.counter("serve.requests").inc();
    }
    HttpResponse response;
    try {
        if (request.path == "/whatif") {
            response = request.method == "POST"
                           ? handle_whatif(request)
                           : error_response(405, "use POST /whatif");
        } else if (request.path == "/healthz") {
            response = request.method == "GET"
                           ? handle_healthz()
                           : error_response(405, "use GET /healthz");
        } else if (request.path == "/metrics") {
            response = request.method == "GET"
                           ? handle_metrics()
                           : error_response(405, "use GET /metrics");
        } else if (request.path == "/snapshots") {
            response = request.method == "GET"
                           ? handle_snapshots()
                           : error_response(405, "use GET /snapshots");
        } else if (request.path == "/admin/reload") {
            response = request.method == "POST"
                           ? handle_reload()
                           : error_response(405, "use POST /admin/reload");
        } else {
            response = error_response(404, "no route for " + request.path);
        }
    } catch (const RequireError& e) {
        response = error_response(400, e.what());
    } catch (const std::exception& e) {
        response = error_response(500, e.what());
    }
    {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        registry_
            .histogram("serve.latency_us", kLatencyLoUs, kLatencyHiUs,
                       kLatencyBins)
            .add(elapsed_us(start));
    }
    count_response(response);
    return response;
}

HttpResponse ServeService::handle_whatif(const HttpRequest& request) {
    {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        registry_.counter("serve.whatif_requests").inc();
    }
    const WhatIfQuery query = parse_whatif_query(request.body);
    // Pin this query's pool generation: a concurrent reload publishes a
    // new pool without touching this one.
    const std::shared_ptr<const SnapshotPool> pool = this->pool();
    const SnapshotEntry* entry = pool->find(query.snapshot);
    if (entry == nullptr) {
        return error_response(404,
                              "unknown snapshot '" + query.snapshot + "'");
    }
    const std::string key = cache_key(*entry, query);
    std::shared_ptr<const CachedResponse> cached = cache_.find(key);
    const bool hit = cached != nullptr;
    if (!hit) {
        // The simulation runs outside the metrics lock: concurrent
        // queries on different snapshots/overrides proceed in parallel.
        // Deterministic failures (invalid horizon, incompatible override)
        // are answers too: the error envelope is cached under the same
        // canonical key so repeat offenders stop paying the restore.
        CachedResponse result;
        try {
            result.body = compute_whatif(*entry, query);
        } catch (const RequireError& e) {
            result.status = 400;
            result.body = error_response(400, e.what()).body;
        }
        cached = std::make_shared<const CachedResponse>(std::move(result));
        cache_.insert(key, cached);
    }
    {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        if (!hit) {
            registry_.counter("serve.cache_misses").inc();
        } else if (cached->status == 200) {
            registry_.counter("serve.cache_hits").inc();
        } else {
            registry_.counter("serve.negative_cache_hits").inc();
        }
        registry_.counter("serve.cache_evictions")
            .restore(cache_.evictions());
    }
    HttpResponse response;
    response.status = cached->status;
    response.body = cached->body;
    response.extra_headers.emplace_back("X-Cache", hit ? "hit" : "miss");
    return response;
}

HttpResponse ServeService::handle_healthz() const {
    std::ostringstream os;
    telemetry::JsonWriter w(os);
    w.begin_object();
    w.field("status", "ok");
    w.field("snapshots", static_cast<std::uint64_t>(pool()->size()));
    w.end_object();
    os << '\n';
    HttpResponse r;
    r.body = os.str();
    return r;
}

HttpResponse ServeService::handle_metrics() {
    std::ostringstream os;
    {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        telemetry::JsonWriter w(os);
        registry_.write_json(w);
    }
    os << '\n';
    HttpResponse r;
    r.body = os.str();
    return r;
}

HttpResponse ServeService::handle_snapshots() const {
    const std::shared_ptr<const SnapshotPool> pool = this->pool();
    std::ostringstream os;
    telemetry::JsonWriter w(os);
    w.begin_object();
    w.key("snapshots");
    w.begin_array();
    for (const SnapshotEntry& e : pool->entries()) {
        w.begin_object();
        w.field("name", e.name);
        w.field("config_fingerprint", e.config_fingerprint);
        w.field("structural_fingerprint", e.structural_fingerprint);
        w.field("captured_now_s", to_seconds(e.captured_now));
        w.field("captured_horizon_s", to_seconds(e.captured_horizon));
        w.end_object();
    }
    w.end_array();
    w.end_object();
    os << '\n';
    HttpResponse r;
    r.body = os.str();
    return r;
}

HttpResponse ServeService::handle_reload() {
    if (pool_loader_ == nullptr) {
        return error_response(
            409, "reload unsupported: the pool was built in memory, not "
                 "from configuration");
    }
    try {
        reload();
    } catch (const std::exception& e) {
        return error_response(500, std::string("reload failed (old pool "
                                               "kept): ") +
                                       e.what());
    }
    std::ostringstream os;
    telemetry::JsonWriter w(os);
    w.begin_object();
    w.field("status", "reloaded");
    w.field("snapshots", static_cast<std::uint64_t>(pool()->size()));
    w.end_object();
    os << '\n';
    HttpResponse r;
    r.body = os.str();
    return r;
}

void ServeService::count_response(const HttpResponse& response) {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    if (response.status < 300) {
        registry_.counter("serve.responses_2xx").inc();
    } else if (response.status < 500) {
        registry_.counter("serve.responses_4xx").inc();
    } else {
        registry_.counter("serve.responses_5xx").inc();
    }
}

void ServeService::note_queue_depth(std::size_t depth) {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    const double d = static_cast<double>(depth);
    registry_.gauge("serve.queue_depth", telemetry::GaugeMerge::Max).set(d);
    telemetry::Gauge& peak =
        registry_.gauge("serve.queue_depth_peak", telemetry::GaugeMerge::Max);
    if (d > peak.value()) {
        peak.set(d);
    }
}

void ServeService::note_rejected() {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    registry_.counter("serve.queue_rejections").inc();
    registry_.counter("serve.responses_4xx").inc();
}

}  // namespace mcs::serve
