#include "core/system.hpp"

#include <algorithm>
#include <fstream>
#include <utility>

#include "core/platform_engine.hpp"
#include "core/scenario_hook.hpp"
#include "core/system_context.hpp"
#include "core/test_engine.hpp"
#include "core/workload_engine.hpp"
#include "telemetry/observer_adapter.hpp"
#include "util/require.hpp"

namespace mcs {

const char* to_string(SchedulerKind kind) {
    switch (kind) {
        case SchedulerKind::PowerAware: return "power-aware";
        case SchedulerKind::Periodic: return "periodic";
        case SchedulerKind::Greedy: return "greedy";
        case SchedulerKind::None: return "none";
        case SchedulerKind::DeadlineAware: return "deadline";
    }
    return "?";
}

const char* to_string(MapperKind kind) {
    switch (kind) {
        case MapperKind::TestAware: return "test-aware (TAUM)";
        case MapperKind::ThermalAware: return "thermal-aware";
        case MapperKind::UtilizationOriented: return "util-oriented";
        case MapperKind::Contiguous: return "contiguous";
        case MapperKind::Random: return "random";
        case MapperKind::FirstFit: return "first-fit";
        case MapperKind::ReliabilityWeighted: return "reliability-weighted";
    }
    return "?";
}

// Composition order matters: the context owns the substrate, the platform
// engine registers the power/thermal/aging components the other two
// engines resolve through the context, and the telemetry adapter joins the
// observer hub last (it is the first -- and usually only -- observer).
ManycoreSystem::ManycoreSystem(SystemConfig cfg)
    : cfg_(std::move(cfg)),
      ctx_(std::make_unique<SystemContext>(cfg_)),
      platform_(std::make_unique<PlatformEngine>(*ctx_)),
      workload_(std::make_unique<WorkloadEngine>(*ctx_)),
      test_(std::make_unique<TestEngine>(*ctx_)),
      telemetry_obs_(std::make_unique<telemetry::TelemetryObserver>(
          ctx_->registry)) {
    ctx_->observers.add(telemetry_obs_.get());
}

ManycoreSystem::~ManycoreSystem() = default;

void ManycoreSystem::set_trace_sink(TraceSink sink) {
    telemetry_obs_->set_trace_sink(std::move(sink));
}

void ManycoreSystem::set_tracer(telemetry::Tracer* tracer) {
    MCS_REQUIRE(!ran_, "set_tracer must precede run()");
    ctx_->tracer = tracer;
    ctx_->sim.set_tracer(tracer);
    ctx_->power_mgr->set_telemetry(tracer, &ctx_->registry);
    telemetry_obs_->set_tracer(tracer);
}

void ManycoreSystem::attach_scenario(std::unique_ptr<ScenarioDriver> driver) {
    MCS_REQUIRE(!ran_ && !restored_,
                "attach_scenario must precede restore()/run()");
    MCS_REQUIRE(driver != nullptr, "scenario driver must not be null");
    MCS_REQUIRE(scenario_ == nullptr, "a scenario is already attached");
    driver->bind(*this);
    scenario_ = std::move(driver);
}

void ManycoreSystem::add_observer(SystemObserver* observer) {
    ctx_->observers.add(observer);
}

void ManycoreSystem::remove_observer(SystemObserver* observer) {
    ctx_->observers.remove(observer);
}

telemetry::MetricsRegistry& ManycoreSystem::registry() noexcept {
    return ctx_->registry;
}

const telemetry::MetricsRegistry& ManycoreSystem::registry() const noexcept {
    return ctx_->registry;
}

void ManycoreSystem::set_priority_blind(bool blind) {
    MCS_REQUIRE(!ran_, "set_priority_blind must precede run()");
    ctx_->priority_blind = blind;
}

void ManycoreSystem::checkpoint_at(SimTime when, std::string path) {
    MCS_REQUIRE(!ran_, "checkpoint_at must precede run()");
    MCS_REQUIRE(when > 0, "checkpoint time must be positive");
    MCS_REQUIRE(when % cfg_.power_epoch == 0,
                "checkpoints must lie on a power-epoch boundary");
    MCS_REQUIRE(!path.empty(), "checkpoint path must not be empty");
    checkpoints_.push_back({when, std::move(path)});
}

namespace {

SimDuration epoch_period(const SystemConfig& cfg, std::size_t slot) {
    switch (slot) {
        case 0: return cfg.power_epoch;
        case 1: return cfg.thermal_epoch;
        case 2: return cfg.test_epoch;
        case 3: return cfg.wear_epoch;
        case 4: return cfg.trace_epoch;
    }
    MCS_REQUIRE(false, "epoch slot out of range");
    return 0;
}

}  // namespace

void ManycoreSystem::register_epoch(std::size_t slot, SimTime first_at) {
    MCS_REQUIRE(slot < epoch_ids_.size(), "epoch slot out of range");
    MCS_REQUIRE(epoch_ids_[slot] == 0, "epoch already registered");
    std::function<void(SimTime)> cb;
    switch (slot) {
        case 0: cb = [this](SimTime) { platform_->power_epoch(); }; break;
        case 1: cb = [this](SimTime) { platform_->thermal_epoch(); }; break;
        case 2: cb = [this](SimTime) { test_->test_epoch(); }; break;
        case 3: cb = [this](SimTime) { platform_->wear_epoch(); }; break;
        case 4: cb = [this](SimTime) { platform_->trace_epoch(); }; break;
    }
    epoch_ids_[slot] = ctx_->sim.every(epoch_period(cfg_, slot), first_at,
                                       std::move(cb)).id;
}

RunMetrics ManycoreSystem::run(SimDuration horizon) {
    MCS_REQUIRE(!ran_, "ManycoreSystem::run may only be called once");
    MCS_REQUIRE(horizon > 0, "run horizon must be positive");
    ran_ = true;
    if (restored_) {
        // The captured arrival trace only extends to the captured horizon,
        // so a longer run would starve; any horizon inside (now, captured]
        // is a valid truncation (the what-if service's horizon axis).
        // Byte-identical continuation still requires the captured horizon.
        MCS_REQUIRE(horizon <= restored_horizon_,
                    "a restored system cannot run past the snapshot's "
                    "horizon (the captured arrival trace ends there)");
        MCS_REQUIRE(horizon > ctx_->sim.now(),
                    "a restored system's horizon must lie after the "
                    "capture point");
    } else {
        workload_->admit_workload(horizon);
        // Epoch registration order is part of the behavioral contract: at a
        // shared timestamp the event queue breaks ties by insertion order.
        for (std::size_t slot = 0; slot < epoch_ids_.size(); ++slot) {
            register_epoch(slot,
                           ctx_->sim.now() + epoch_period(cfg_, slot));
        }
        // The scenario's first directive event enters the queue after the
        // epochs (part of the registration-order contract; directive times
        // are validated against the horizon here).
        if (scenario_ != nullptr) {
            scenario_->begin(horizon);
        }
        if (ctx_->sim.tracer() != nullptr) {
            ctx_->sim.tracer()->record(
                ctx_->sim.now(), telemetry::TraceCategory::Sim,
                telemetry::TracePhase::Instant, "run_until_begin", 0,
                static_cast<std::int64_t>(horizon));
        }
    }
    // Advance in checkpoint segments. advance_until is marker-free and a
    // clock bump between events is unobservable, so the segmented run is
    // event-for-event (and byte-for-byte) the uninterrupted run.
    std::stable_sort(checkpoints_.begin(), checkpoints_.end(),
                     [](const Checkpoint& a, const Checkpoint& b) {
                         return a.at < b.at;
                     });
    for (const Checkpoint& cp : checkpoints_) {
        MCS_REQUIRE(cp.at > ctx_->sim.now(),
                    "checkpoint time must be ahead of the clock");
        MCS_REQUIRE(cp.at < horizon,
                    "checkpoints must precede the run horizon");
        ctx_->sim.advance_until(cp.at);
        std::ofstream out(cp.path, std::ios::binary);
        MCS_REQUIRE(out.good(), "cannot open checkpoint file for writing");
        write_snapshot(out, horizon);
        out << '\n';
        out.flush();
        MCS_REQUIRE(out.good(), "checkpoint write failed");
    }
    ctx_->sim.advance_until(horizon);
    if (ctx_->sim.tracer() != nullptr) {
        ctx_->sim.tracer()->record(
            ctx_->sim.now(), telemetry::TraceCategory::Sim,
            telemetry::TracePhase::Instant, "run_until_end", 0,
            static_cast<std::int64_t>(ctx_->sim.events_executed()));
    }
    return finalize();
}

RunMetrics ManycoreSystem::finalize() {
    const SimTime end = ctx_->sim.now();
    ctx_->chip.checkpoint_all(end);
    platform_->accumulate_energy(end);

    RunMetrics& m = ctx_->metrics;
    m.sim_time = end;
    m.core_count = ctx_->chip.core_count();
    MCS_REQUIRE(to_seconds(end) > 0.0, "finalize before any simulated time");

    workload_->finalize_into(m, end);
    test_->finalize_into(m, end);
    platform_->finalize_into(m, end);

    ctx_->registry.counter("sim.events_cancelled")
        .inc(ctx_->sim.events_cancelled());
    ctx_->registry.gauge("system.peak_temp_c", telemetry::GaugeMerge::Max)
        .set(platform_->peak_temp_c());
    ctx_->registry.gauge("system.mean_power_w", telemetry::GaugeMerge::Mean)
        .set(m.mean_power_w);
    ctx_->registry
        .gauge("system.mean_chip_utilization", telemetry::GaugeMerge::Mean)
        .set(m.mean_chip_utilization);
    return m;
}

// --------------------------------------------------------- introspection

Chip& ManycoreSystem::chip() noexcept { return ctx_->chip; }
const Chip& ManycoreSystem::chip() const noexcept { return ctx_->chip; }
Simulator& ManycoreSystem::simulator() noexcept { return ctx_->sim; }
const Network& ManycoreSystem::network() const noexcept { return ctx_->noc; }
const PowerBudget& ManycoreSystem::budget() const noexcept {
    return ctx_->budget;
}
PowerBudget& ManycoreSystem::budget() noexcept { return ctx_->budget; }
const FaultInjector* ManycoreSystem::fault_injector() const noexcept {
    return platform_->fault_injector();
}
const LinkTester* ManycoreSystem::link_tester() const noexcept {
    return test_->link_tester();
}
const AgingTracker& ManycoreSystem::aging() const noexcept {
    return platform_->aging_tracker();
}
const TestSuite& ManycoreSystem::suite() const noexcept {
    return ctx_->suite;
}
const TestScheduler& ManycoreSystem::scheduler() const noexcept {
    return test_->scheduler();
}
const Mapper& ManycoreSystem::mapper() const noexcept {
    return workload_->mapper();
}
int ManycoreSystem::tests_running() const noexcept {
    return test_->tests_running();
}
WorkloadEngine& ManycoreSystem::workload_engine() noexcept {
    return *workload_;
}
TestEngine& ManycoreSystem::test_engine() noexcept { return *test_; }
PlatformEngine& ManycoreSystem::platform_engine() noexcept {
    return *platform_;
}

double rate_for_occupancy(double target_occupancy,
                          const TaskGraphGenParams& graphs,
                          double chip_cycles_per_s, std::uint64_t seed) {
    MCS_REQUIRE(target_occupancy > 0.0, "target occupancy must be positive");
    MCS_REQUIRE(chip_cycles_per_s > 0.0, "chip capacity must be positive");
    TaskGraphGenerator gen(graphs);
    Rng rng(seed);
    double reserved_core_cycles = 0.0;
    constexpr int kSamples = 1000;
    for (int i = 0; i < kSamples; ++i) {
        const TaskGraph g = gen.generate(rng);
        // A mapped app reserves graph.size() cores for roughly its critical
        // path; dependency stalls inflate reservation beyond busy cycles.
        reserved_core_cycles += static_cast<double>(g.size()) *
                                static_cast<double>(g.critical_path_cycles());
    }
    reserved_core_cycles /= kSamples;
    return target_occupancy * chip_cycles_per_s / reserved_core_cycles;
}

}  // namespace mcs
