#include "core/system.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace mcs {

const char* to_string(SchedulerKind kind) {
    switch (kind) {
        case SchedulerKind::PowerAware: return "power-aware";
        case SchedulerKind::Periodic: return "periodic";
        case SchedulerKind::Greedy: return "greedy";
        case SchedulerKind::None: return "none";
    }
    return "?";
}

const char* to_string(MapperKind kind) {
    switch (kind) {
        case MapperKind::TestAware: return "test-aware (TAUM)";
        case MapperKind::ThermalAware: return "thermal-aware";
        case MapperKind::UtilizationOriented: return "util-oriented";
        case MapperKind::Contiguous: return "contiguous";
        case MapperKind::Random: return "random";
        case MapperKind::FirstFit: return "first-fit";
    }
    return "?";
}

namespace {

std::unique_ptr<Mapper> make_mapper(const SystemConfig& cfg) {
    if (cfg.mapper_factory) {
        auto mapper = cfg.mapper_factory();
        MCS_REQUIRE(mapper != nullptr, "mapper factory returned null");
        return mapper;
    }
    switch (cfg.mapper) {
        case MapperKind::TestAware:
            return std::make_unique<ContiguousMapper>(
                ContiguousMapper::test_aware());
        case MapperKind::ThermalAware:
            return std::make_unique<ContiguousMapper>(
                ContiguousMapper::thermal_aware());
        case MapperKind::UtilizationOriented:
            return std::make_unique<ContiguousMapper>(
                ContiguousMapper::utilization_oriented());
        case MapperKind::Contiguous:
            return std::make_unique<ContiguousMapper>(
                ContiguousMapper::plain());
        case MapperKind::Random:
            return std::make_unique<RandomMapper>();
        case MapperKind::FirstFit:
            return std::make_unique<FirstFitMapper>();
    }
    MCS_REQUIRE(false, "unknown mapper kind");
    return nullptr;
}

std::unique_ptr<TestScheduler> make_scheduler(const SystemConfig& cfg) {
    if (cfg.scheduler_factory) {
        auto scheduler = cfg.scheduler_factory();
        MCS_REQUIRE(scheduler != nullptr, "scheduler factory returned null");
        return scheduler;
    }
    switch (cfg.scheduler) {
        case SchedulerKind::PowerAware:
            return std::make_unique<PowerAwareTestScheduler>(cfg.power_aware);
        case SchedulerKind::Periodic:
            return std::make_unique<PeriodicTestScheduler>(
                cfg.periodic_test_period);
        case SchedulerKind::Greedy:
            return std::make_unique<GreedyTestScheduler>();
        case SchedulerKind::None:
            return std::make_unique<NullTestScheduler>();
    }
    MCS_REQUIRE(false, "unknown scheduler kind");
    return nullptr;
}

ActivityFactors activity_with_suite(ActivityFactors base,
                                    const TestSuite& suite) {
    // Keep the power model's test activity consistent with the SBST library
    // actually executed.
    base.test = suite.mean_activity();
    return base;
}

NocParams noc_synced(NocParams noc, SimDuration power_epoch) {
    // The utilization window rolls at the power epoch.
    noc.util_window = power_epoch;
    return noc;
}

TechnologyParams scaled_tech(TechNode node, double tdp_scale) {
    MCS_REQUIRE(tdp_scale > 0.0, "tdp_scale must be positive");
    TechnologyParams t = technology(node);
    t.tdp_fraction *= tdp_scale;
    return t;
}

}  // namespace

ManycoreSystem::ManycoreSystem(SystemConfig cfg)
    : cfg_(std::move(cfg)),
      chip_(cfg_.width, cfg_.height, scaled_tech(cfg_.node, cfg_.tdp_scale)),
      noc_(cfg_.width, cfg_.height, noc_synced(cfg_.noc, cfg_.power_epoch)),
      suite_(cfg_.suite ? *cfg_.suite : TestSuite::standard()),
      power_model_(chip_.tech(), chip_.vf_table(),
                   activity_with_suite(cfg_.activity, suite_)),
      budget_(chip_.tdp_w()),
      power_mgr_(chip_, power_model_, budget_, cfg_.power),
      thermal_(cfg_.width, cfg_.height, cfg_.thermal),
      aging_(chip_.core_count(), cfg_.aging),
      crit_eval_(cfg_.criticality),
      mapper_(make_mapper(cfg_)),
      scheduler_(make_scheduler(cfg_)),
      idle_predictor_(chip_.core_count()),
      map_rng_(cfg_.seed ^ 0xa02bdbf7bb3c0a7ULL) {
    if (cfg_.enable_fault_injection) {
        faults_.emplace(chip_.core_count(), cfg_.faults,
                        cfg_.seed ^ 0x94d049bb133111ebULL);
    }
    if (cfg_.enable_noc_testing) {
        link_tester_.emplace(noc_.topology().link_count(), cfg_.noc_test,
                             cfg_.seed ^ 0xd1b54a32d192ed03ULL);
        last_link_test_.assign(noc_.topology().link_count(), 0);
        link_test_active_.assign(noc_.topology().link_count(), 0);
    }
    power_mgr_.set_vf_change_listener(
        [this](CoreId core, int old_level, int new_level) {
            on_vf_change(core, old_level, new_level);
        });
    power_mgr_.set_priority_lookup([this](CoreId core) {
        const CoreExec& ex = core_exec_[core];
        return ex.active && !priority_blind_
                   ? static_cast<int>(apps_[ex.app_index].spec.qos)
                   : 0;
    });
    core_exec_.resize(chip_.core_count());
    test_exec_.resize(chip_.core_count());
    last_test_done_.assign(chip_.core_count(), 0);
    last_test_abort_.assign(chip_.core_count(), 0);
    test_progress_.assign(chip_.core_count(), 0);
    alloc_buf_.assign(chip_.core_count(), 0);
    testing_buf_.assign(chip_.core_count(), 0);
    util_buf_.assign(chip_.core_count(), 0.0);
    crit_buf_.assign(chip_.core_count(), 0.0);
    metrics_.tests_per_vf_level.assign(chip_.vf_level_count(), 0);
    metrics_.apps_completed_by_class.assign(kQosClassCount, 0);
    metrics_.deadlines_met_by_class.assign(kQosClassCount, 0);
    metrics_.deadlines_missed_by_class.assign(kQosClassCount, 0);
    for (const Core& c : chip_.cores()) {
        idle_predictor_.notify_available(c.id(), 0);
    }
    // Resolve hot-path metrics once; the references are stable for the
    // registry's lifetime.
    c_tests_started_ = &registry_.counter("system.test_sessions_started");
    c_tests_completed_ = &registry_.counter("system.tests_completed");
    c_tests_aborted_ = &registry_.counter("system.tests_aborted");
    c_apps_mapped_ = &registry_.counter("system.apps_mapped");
    c_apps_completed_ = &registry_.counter("system.apps_completed");
    h_app_latency_ms_ =
        &registry_.histogram("system.app_latency_ms", 0.0, 500.0, 50);
    power_mgr_.set_telemetry(nullptr, &registry_);
}

void ManycoreSystem::set_tracer(telemetry::Tracer* tracer) {
    MCS_REQUIRE(!ran_, "set_tracer must precede run()");
    tracer_ = tracer;
    sim_.set_tracer(tracer);
    power_mgr_.set_telemetry(tracer, &registry_);
}

RunMetrics ManycoreSystem::run(SimDuration horizon) {
    MCS_REQUIRE(!ran_, "ManycoreSystem::run may only be called once");
    MCS_REQUIRE(horizon > 0, "run horizon must be positive");
    ran_ = true;
    prepare(horizon);
    sim_.run_until(horizon);
    return finalize();
}

void ManycoreSystem::prepare(SimDuration horizon) {
    WorkloadGenerator wg(cfg_.workload, cfg_.seed ^ 0xbf58476d1ce4e5b9ULL);
    auto specs = wg.generate(horizon);
    apps_.reserve(specs.size());
    for (auto& spec : specs) {
        const std::size_t index = apps_.size();
        const SimTime arrival = spec.arrival;
        apps_.emplace_back(std::move(spec));
        sim_.schedule_at(arrival, [this, index] { on_arrival(index); });
    }
    metrics_.apps_arrived = apps_.size();

    sim_.every(cfg_.power_epoch, [this](SimTime) { power_epoch_fn(); });
    sim_.every(cfg_.thermal_epoch, [this](SimTime) { thermal_epoch_fn(); });
    sim_.every(cfg_.test_epoch, [this](SimTime) { test_epoch_fn(); });
    sim_.every(cfg_.wear_epoch, [this](SimTime) { wear_epoch_fn(); });
    sim_.every(cfg_.trace_epoch, [this](SimTime) { trace_epoch_fn(); });
}

// ---------------------------------------------------------------- workload

void ManycoreSystem::set_priority_blind(bool blind) {
    MCS_REQUIRE(!ran_, "set_priority_blind must precede run()");
    priority_blind_ = blind;
}

void ManycoreSystem::on_arrival(std::size_t app_index) {
    if (tracer_ != nullptr) {
        tracer_->record(sim_.now(), telemetry::TraceCategory::Workload,
                        telemetry::TracePhase::Instant, "app_arrival",
                        0, static_cast<std::int64_t>(app_index),
                        static_cast<std::int64_t>(
                            apps_[app_index].spec.graph.size()));
    }
    const auto cls =
        priority_blind_
            ? std::size_t{0}
            : static_cast<std::size_t>(apps_[app_index].spec.qos);
    pending_[cls].push_back(app_index);
    ++pending_total_;
    try_map_pending();
}

PlatformView ManycoreSystem::build_view() {
    const SimTime now = sim_.now();
    for (const Core& c : chip_.cores()) {
        bool ok = !c.reserved();
        switch (c.state()) {
            case CoreState::Idle:
            case CoreState::Dark:
                break;
            case CoreState::Testing:
                ok = ok && cfg_.abort_tests_for_mapping;
                break;
            case CoreState::Busy:
            case CoreState::Faulty:
                ok = false;
                break;
        }
        alloc_buf_[c.id()] = ok ? 1 : 0;
        testing_buf_[c.id()] = c.is_testing() ? 1 : 0;
        util_buf_[c.id()] = c.busy_fraction(now);
    }
    refresh_criticality();
    PlatformView view;
    view.width = cfg_.width;
    view.height = cfg_.height;
    view.allocatable = alloc_buf_;
    view.utilization = util_buf_;
    view.criticality = crit_buf_;
    view.testing = testing_buf_;
    view.temperature_c = thermal_.temps_c();
    return view;
}

void ManycoreSystem::refresh_criticality() {
    crit_buf_ = crit_eval_.evaluate_chip(chip_, sim_.now(),
                                         aging_.damage_all());
}

void ManycoreSystem::try_map_pending() {
    if (mapping_in_progress_) {
        return;
    }
    mapping_in_progress_ = true;
    // Serve classes in priority order (hard RT first). Within a class the
    // queue is FIFO with head-of-line blocking; a blocked head of a higher
    // class does not stall lower classes (work-conserving).
    for (std::size_t cls = kQosClassCount; cls-- > 0;) {
        auto& queue = pending_[cls];
        while (!queue.empty()) {
            const std::size_t index = queue.front();
            AppRun& app = apps_[index];
            const PlatformView view = build_view();
            MapRequest request{app.spec.id, app.spec.graph.size()};
            const auto result = mapper_->map(request, view, map_rng_);
            if (!result) {
                break;
            }
            metrics_.mapping_dispersion_hops.add(
                mapping_dispersion(view, result->cores));
            queue.pop_front();
            --pending_total_;
            commit_mapping(index, *result);
        }
    }
    mapping_in_progress_ = false;
}

void ManycoreSystem::commit_mapping(std::size_t app_index,
                                    const MappingResult& result) {
    const SimTime now = sim_.now();
    AppRun& app = apps_[app_index];
    MCS_REQUIRE(result.cores.size() == app.spec.graph.size(),
                "mapping result size mismatch");
    for (CoreId id : result.cores) {
        Core& c = chip_.core(id);
        if (c.is_testing()) {
            // Testing cores are only allocatable when aborts are allowed;
            // a mapper handing one over otherwise broke its contract.
            MCS_REQUIRE(cfg_.abort_tests_for_mapping,
                        "mapper claimed a testing core with aborts disabled");
            abort_test(id);
        }
        if (c.state() == CoreState::Dark) {
            power_mgr_.wake_core(now, id, thermal_.temp_c(id));
        }
        MCS_REQUIRE(c.is_idle() && !c.reserved(),
                    "mapper selected an unavailable core");
        c.set_reserved(true);
        idle_predictor_.notify_unavailable(id, now);
        power_mgr_.touch(now, id);
    }
    if (tracer_ != nullptr) {
        tracer_->record(now, telemetry::TraceCategory::Workload,
                        telemetry::TracePhase::Instant, "app_mapped",
                        result.cores.empty() ? 0 : result.cores.front(),
                        static_cast<std::int64_t>(app_index),
                        static_cast<std::int64_t>(result.cores.size()));
    }
    if (c_apps_mapped_ != nullptr) {
        c_apps_mapped_->inc();
    }
    app.task_core = result.cores;
    const auto n = static_cast<TaskIndex>(app.spec.graph.size());
    app.waiting.resize(n);
    for (TaskIndex t = 0; t < n; ++t) {
        app.waiting[t] = app.spec.graph.pred_count(t);
    }
    metrics_.app_queue_wait_ms.add(to_milliseconds(now - app.spec.arrival));
    for (TaskIndex t : app.spec.graph.sources()) {
        start_task(app_index, t);
    }
}

void ManycoreSystem::start_task(std::size_t app_index, TaskIndex task) {
    const SimTime now = sim_.now();
    AppRun& app = apps_[app_index];
    const CoreId id = app.task_core[task];
    Core& c = chip_.core(id);
    MCS_REQUIRE(c.is_idle() && c.reserved(), "task core not ready");
    c.set_vf_level(now,
                   power_mgr_.grant_task_level(id, thermal_.temp_c(id)));
    c.start_task(now);
    CoreExec& ex = core_exec_[id];
    MCS_REQUIRE(!ex.active, "core already executing a task");
    ex.active = true;
    ex.app_index = app_index;
    ex.task = task;
    ex.remaining_cycles =
        static_cast<double>(app.spec.graph.task(task).cycles);
    ex.last_progress = now;
    const SimDuration dur = std::max<SimDuration>(
        1, duration_for_cycles(app.spec.graph.task(task).cycles, c.freq_hz()));
    ex.completion = sim_.schedule_in(dur, [this, id] {
        on_task_complete(id);
    });
}

void ManycoreSystem::on_task_complete(CoreId core) {
    const SimTime now = sim_.now();
    CoreExec& ex = core_exec_[core];
    MCS_REQUIRE(ex.active, "completion for inactive core");
    const std::size_t app_index = ex.app_index;
    const TaskIndex task = ex.task;
    ex.active = false;
    Core& c = chip_.core(core);
    c.finish_task(now);
    ++metrics_.tasks_completed;

    AppRun& app = apps_[app_index];
    if (faults_ && faults_->roll_task_corruption(core)) {
        app.corrupted = true;
    }
    for (const TaskEdge& e : app.spec.graph.task(task).successors) {
        const CoreId dst_core = app.task_core[e.dst];
        const Transfer t = noc_.send(core, dst_core, e.bytes);
        if (link_tester_) {
            for (LinkId link : noc_.last_route()) {
                if (link_tester_->roll_message_corruption(link)) {
                    app.corrupted = true;
                    break;
                }
            }
        }
        const TaskIndex dst = e.dst;
        sim_.schedule_in(std::max<SimDuration>(1, t.latency),
                         [this, app_index, dst] {
                             deliver_edge(app_index, dst);
                         });
    }
    ++app.tasks_done;
    if (app.tasks_done == app.spec.graph.size()) {
        release_app(app_index);
    }
}

void ManycoreSystem::deliver_edge(std::size_t app_index, TaskIndex dst) {
    AppRun& app = apps_[app_index];
    MCS_REQUIRE(app.waiting[dst] > 0, "duplicate edge delivery");
    if (--app.waiting[dst] == 0) {
        start_task(app_index, dst);
    }
}

void ManycoreSystem::release_app(std::size_t app_index) {
    const SimTime now = sim_.now();
    AppRun& app = apps_[app_index];
    MCS_REQUIRE(!app.done, "double app release");
    app.done = true;
    for (CoreId id : app.task_core) {
        Core& c = chip_.core(id);
        c.set_reserved(false);
        idle_predictor_.notify_available(id, now);
        power_mgr_.touch(now, id);
    }
    ++metrics_.apps_completed;
    if (app.corrupted) {
        ++metrics_.corrupted_apps;
    }
    if (tracer_ != nullptr) {
        tracer_->record(now, telemetry::TraceCategory::Workload,
                        telemetry::TracePhase::Instant, "app_complete", 0,
                        static_cast<std::int64_t>(app_index),
                        app.corrupted ? 1 : 0);
    }
    c_apps_completed_->inc();
    const double latency_ms = to_milliseconds(now - app.spec.arrival);
    h_app_latency_ms_->add(latency_ms);
    metrics_.app_latency_ms.add(latency_ms);
    const auto cls = static_cast<std::size_t>(app.spec.qos);
    ++metrics_.apps_completed_by_class[cls];
    if (app.spec.relative_deadline > 0) {
        const bool met =
            now - app.spec.arrival <= app.spec.relative_deadline;
        if (met) {
            ++metrics_.deadlines_met_by_class[cls];
        } else {
            ++metrics_.deadlines_missed_by_class[cls];
        }
    }
    try_map_pending();
}

void ManycoreSystem::on_vf_change(CoreId core, int old_level, int new_level) {
    CoreExec& ex = core_exec_[core];
    if (!ex.active) {
        return;
    }
    const SimTime now = sim_.now();
    const double old_freq =
        chip_.vf_table()[static_cast<std::size_t>(old_level)].freq_hz;
    const double new_freq =
        chip_.vf_table()[static_cast<std::size_t>(new_level)].freq_hz;
    const SimDuration elapsed = now - ex.last_progress;
    ex.remaining_cycles -= to_seconds(elapsed) * old_freq;
    ex.remaining_cycles = std::max(0.0, ex.remaining_cycles);
    ex.last_progress = now;
    sim_.cancel(ex.completion);
    const auto cycles = static_cast<std::uint64_t>(
        std::ceil(ex.remaining_cycles));
    const SimDuration dur =
        std::max<SimDuration>(1, duration_for_cycles(cycles, new_freq));
    ex.completion = sim_.schedule_in(dur, [this, core] {
        on_task_complete(core);
    });
}

// ----------------------------------------------------------------- testing

void ManycoreSystem::test_epoch_fn() {
    refresh_criticality();
    SchedulerContext ctx;
    ctx.now = sim_.now();
    ctx.tdp_w = budget_.tdp_w();
    ctx.power_slack_w = power_mgr_.headroom_w();
    ctx.tests_running = tests_running_;
    ctx.vf_table = &chip_.vf_table();
    for (const Core& c : chip_.cores()) {
        if (c.reserved()) {
            continue;
        }
        if (c.state() == CoreState::Idle || c.state() == CoreState::Dark) {
            if (last_test_abort_[c.id()] != 0 &&
                ctx.now - last_test_abort_[c.id()] <
                    cfg_.test_retry_backoff) {
                continue;  // cool down after an aborted session
            }
            ctx.candidates.push_back(
                TestCandidate{c.id(), crit_buf_[c.id()],
                              c.state() == CoreState::Dark,
                              ctx.now - c.last_state_change(),
                              thermal_.temp_c(c.id()),
                              idle_predictor_.predict_remaining(c.id(),
                                                                ctx.now)});
        }
    }
    ctx.test_power_w = [this](CoreId core, int level) {
        const Core& c = chip_.core(core);
        const double temp = thermal_.temp_c(core);
        const double now_w =
            power_model_.core_power_w(c.state(), c.vf_level(), temp);
        return std::max(
            0.0, power_model_.test_power_w(level, temp) - now_w);
    };
    ctx.test_duration = [this](int level) {
        return duration_for_cycles(
            suite_.total_cycles(),
            chip_.vf_table()[static_cast<std::size_t>(level)].freq_hz);
    };
    ctx.start_test = [this](CoreId core, int level) {
        start_test_session(core, level);
    };
    ctx.tracer = tracer_;
    scheduler_->epoch(ctx);
    if (link_tester_) {
        schedule_link_tests(ctx.now);
    }
}

void ManycoreSystem::schedule_link_tests(SimTime now) {
    const NocTestParams& p = cfg_.noc_test;
    // Rank overdue links by how far past their target period they are.
    std::vector<std::pair<double, LinkId>> overdue;
    const std::size_t links = noc_.topology().link_count();
    for (std::size_t l = 0; l < links; ++l) {
        if (link_test_active_[l]) {
            continue;
        }
        if (noc_.link_utilization(static_cast<LinkId>(l)) >
            p.max_test_utilization) {
            continue;  // busy link: testing would congest real traffic
        }
        const double crit =
            static_cast<double>(now - last_link_test_[l]) /
            static_cast<double>(p.test_period_target);
        if (crit >= 1.0) {
            overdue.push_back({crit, static_cast<LinkId>(l)});
        }
    }
    std::sort(overdue.begin(), overdue.end(),
              [](const auto& a, const auto& b) {
                  if (a.first != b.first) {
                      return a.first > b.first;
                  }
                  return a.second < b.second;
              });
    for (const auto& [crit, link] : overdue) {
        if (link_tests_running_ >= p.max_concurrent_tests) {
            break;
        }
        if (power_mgr_.headroom_w() < p.test_power_w) {
            break;  // link tests ride the same budget as core tests
        }
        power_mgr_.reserve_power(p.test_power_w);
        noc_.inject_link_load(link, p.test_bytes);
        link_test_active_[link] = 1;
        ++link_tests_running_;
        const SimDuration dur = std::max<SimDuration>(
            1, noc_.link_transfer_time(p.test_bytes));
        const LinkId id = link;
        sim_.schedule_in(dur, [this, id] { on_link_test_complete(id); });
    }
}

void ManycoreSystem::on_link_test_complete(LinkId link) {
    const SimTime now = sim_.now();
    link_test_active_[link] = 0;
    --link_tests_running_;
    last_link_test_[link] = now;
    ++metrics_.link_tests_completed;
    if (auto detected = link_tester_->attempt_detection(link, now)) {
        metrics_.link_detection_latency_s.add(
            to_seconds(now - detected->injected));
    }
}

void ManycoreSystem::start_test_session(CoreId core, int vf_level) {
    const SimTime now = sim_.now();
    Core& c = chip_.core(core);
    MCS_REQUIRE(!c.reserved(), "cannot test a reserved core");
    if (c.state() == CoreState::Dark) {
        power_mgr_.wake_core(now, core, thermal_.temp_c(core));
    }
    MCS_REQUIRE(c.is_idle(), "test target must be idle");
    // Charge the test's power increment (over the idle power the core was
    // already burning) to the power ledger.
    const double temp = thermal_.temp_c(core);
    const double idle_before =
        power_model_.core_power_w(c.state(), c.vf_level(), temp);
    c.set_vf_level(now, vf_level);
    c.start_test(now);
    power_mgr_.reserve_power(std::max(
        0.0, power_model_.test_power_w(vf_level, temp) - idle_before));
    power_mgr_.touch(now, core);
    TestExec& ex = test_exec_[core];
    MCS_REQUIRE(!ex.active, "test already running on core");
    ex.active = true;
    ex.vf_level = vf_level;
    ++tests_running_;
    c_tests_started_->inc();
    if (tracer_ != nullptr) {
        // Begin/End pairs keyed on the core id render as per-core test
        // spans in the Chrome trace viewer.
        tracer_->record(now, telemetry::TraceCategory::Session,
                        telemetry::TracePhase::Begin, "test_session", core,
                        vf_level);
    }
    if (cfg_.segmented_tests) {
        const auto& routine = suite_.routines()[test_progress_[core]];
        const SimDuration dur = std::max<SimDuration>(
            1, duration_for_cycles(routine.cycles, c.freq_hz()));
        ex.completion = sim_.schedule_in(dur, [this, core] {
            on_routine_complete(core);
        });
    } else {
        const SimDuration dur = std::max<SimDuration>(
            1, duration_for_cycles(suite_.total_cycles(), c.freq_hz()));
        ex.completion = sim_.schedule_in(dur, [this, core] {
            on_test_complete(core);
        });
    }
}

void ManycoreSystem::on_routine_complete(CoreId core) {
    TestExec& ex = test_exec_[core];
    MCS_REQUIRE(ex.active, "routine completion for inactive core");
    if (++test_progress_[core] == suite_.routine_count()) {
        test_progress_[core] = 0;
        on_test_complete(core);
        return;
    }
    const auto& routine = suite_.routines()[test_progress_[core]];
    const SimDuration dur = std::max<SimDuration>(
        1, duration_for_cycles(routine.cycles,
                               chip_.core(core).freq_hz()));
    ex.completion = sim_.schedule_in(dur, [this, core] {
        on_routine_complete(core);
    });
}

void ManycoreSystem::on_test_complete(CoreId core) {
    const SimTime now = sim_.now();
    TestExec& ex = test_exec_[core];
    MCS_REQUIRE(ex.active, "test completion for inactive core");
    ex.active = false;
    --tests_running_;
    Core& c = chip_.core(core);
    c.finish_test(now, /*completed=*/true);
    // Return to the frugal idle point; a task grant or the capping loop
    // decides the next operating level.
    c.set_vf_level(now, 0);
    power_mgr_.touch(now, core);
    ++metrics_.tests_completed;
    c_tests_completed_->inc();
    if (tracer_ != nullptr) {
        tracer_->record(now, telemetry::TraceCategory::Session,
                        telemetry::TracePhase::End, "test_session", core,
                        ex.vf_level);
    }
    // The histogram counts *completed* suites per level (aborted sessions
    // are tracked separately via tests_aborted).
    ++metrics_.tests_per_vf_level[static_cast<std::size_t>(ex.vf_level)];
    // Only closed test-to-test gaps enter the interval statistic (the
    // boot-to-first-test gap is a different quantity; the worst open gap
    // is reported separately as max_open_test_gap_s).
    if (last_test_done_[core] != 0) {
        metrics_.test_interval_s.add(
            to_seconds(now - last_test_done_[core]));
    }
    last_test_done_[core] = now;

    if (faults_) {
        // Approximation: a segmented suite assembled across several
        // sessions rolls detection at the level of its final session.
        if (auto detected = faults_->attempt_detection(
                core, now, suite_, ex.vf_level,
                static_cast<int>(chip_.vf_level_count()))) {
            c.mark_faulty(now);
            idle_predictor_.notify_unavailable(core, now);
            const double latency_s = to_seconds(now - detected->injected);
            metrics_.detection_latency_s.add(latency_s);
            metrics_.detection_latency_samples.add(latency_s);
        }
    }
    try_map_pending();
}

void ManycoreSystem::abort_test(CoreId core) {
    const SimTime now = sim_.now();
    TestExec& ex = test_exec_[core];
    MCS_REQUIRE(ex.active, "abort for inactive test");
    sim_.cancel(ex.completion);
    ex.active = false;
    --tests_running_;
    Core& c = chip_.core(core);
    c.finish_test(now, /*completed=*/false);
    c.set_vf_level(now, 0);  // frugal idle until reassigned
    last_test_abort_[core] = now;
    ++metrics_.tests_aborted;
    c_tests_aborted_->inc();
    if (tracer_ != nullptr) {
        // Close the session span and mark the abort distinctly.
        tracer_->record(now, telemetry::TraceCategory::Session,
                        telemetry::TracePhase::End, "test_session", core,
                        ex.vf_level);
        tracer_->record(now, telemetry::TraceCategory::Session,
                        telemetry::TracePhase::Instant, "test_abort", core,
                        ex.vf_level);
    }
}

// -------------------------------------------------------------- controllers

double ManycoreSystem::core_power_now(const Core& core) const {
    return power_model_.core_power_w(core.state(), core.vf_level(),
                                     thermal_.temp_c(core.id()));
}

void ManycoreSystem::accumulate_energy(SimTime now) {
    MCS_REQUIRE(now >= energy_clock_, "energy clock going backwards");
    const double dt_s = to_seconds(now - energy_clock_);
    energy_clock_ = now;
    if (dt_s <= 0.0) {
        return;
    }
    link_test_energy_j_ += static_cast<double>(link_tests_running_) *
                           cfg_.noc_test.test_power_w * dt_s;
    for (const Core& c : chip_.cores()) {
        const double p = core_power_now(c);
        switch (c.state()) {
            case CoreState::Busy:
                metrics_.energy_busy_j += p * dt_s;
                break;
            case CoreState::Testing:
                metrics_.energy_test_j += p * dt_s;
                break;
            default:
                metrics_.energy_idle_j += p * dt_s;
                break;
        }
    }
}

double ManycoreSystem::noc_power_w() const {
    return noc_.routers_idle_power_w() +
           static_cast<double>(link_tests_running_) *
               cfg_.noc_test.test_power_w;
}

void ManycoreSystem::power_epoch_fn() {
    accumulate_energy(sim_.now());
    noc_.roll_window();
    power_mgr_.control_epoch(sim_.now(), thermal_.temps_c(), noc_power_w());
}

void ManycoreSystem::thermal_epoch_fn() {
    power_buf_.resize(chip_.core_count());
    for (const Core& c : chip_.cores()) {
        power_buf_[c.id()] = core_power_now(c);
    }
    thermal_.step(power_buf_, to_seconds(cfg_.thermal_epoch));
    peak_temp_c_ = std::max(peak_temp_c_, thermal_.max_temp_c());
}

void ManycoreSystem::wear_epoch_fn() {
    const SimTime now = sim_.now();
    chip_.checkpoint_all(now);
    for (const Core& c : chip_.cores()) {
        ++state_samples_;
        dark_samples_ += c.state() == CoreState::Dark ? 1 : 0;
        testing_samples_ += c.state() == CoreState::Testing ? 1 : 0;
        reserved_samples_ += c.reserved() ? 1 : 0;
    }
    aging_.update(now, chip_, thermal_.temps_c());
    if (faults_) {
        accel_buf_.resize(chip_.core_count());
        for (std::size_t i = 0; i < accel_buf_.size(); ++i) {
            accel_buf_[i] =
                aging_.fault_acceleration(static_cast<CoreId>(i));
        }
        const auto fresh = faults_->step(now, to_seconds(cfg_.wear_epoch),
                                         chip_, accel_buf_);
        // A new fault invalidates any partial segmented-suite progress on
        // the core: those routines ran on a then-healthy core.
        for (CoreId id : fresh) {
            test_progress_[id] = 0;
        }
    }
    if (link_tester_) {
        link_tester_->step(now, to_seconds(cfg_.wear_epoch));
    }
}

void ManycoreSystem::trace_epoch_fn() {
    if (!trace_sink_) {
        return;
    }
    TraceSample s;
    s.time = sim_.now();
    s.tdp_w = budget_.tdp_w();
    for (const Core& c : chip_.cores()) {
        const double p = core_power_now(c);
        s.total_power_w += p;
        switch (c.state()) {
            case CoreState::Busy:
                s.workload_power_w += p;
                ++s.cores_busy;
                break;
            case CoreState::Testing:
                s.test_power_w += p;
                ++s.cores_testing;
                break;
            case CoreState::Dark:
                s.other_power_w += p;
                ++s.cores_dark;
                break;
            default:
                s.other_power_w += p;
                break;
        }
    }
    const double noc_now = noc_power_w();
    s.total_power_w += noc_now;
    s.other_power_w += noc_now;
    s.max_temp_c = thermal_.max_temp_c();
    trace_sink_(s);
}

// ----------------------------------------------------------------- results

RunMetrics ManycoreSystem::finalize() {
    const SimTime end = sim_.now();
    chip_.checkpoint_all(end);
    accumulate_energy(end);

    RunMetrics& m = metrics_;
    m.sim_time = end;
    m.core_count = chip_.core_count();
    const double secs = to_seconds(end);
    MCS_REQUIRE(secs > 0.0, "finalize before any simulated time");

    m.apps_rejected = pending_total_;
    m.throughput_tasks_per_s =
        static_cast<double>(m.tasks_completed) / secs;
    m.throughput_apps_per_s =
        static_cast<double>(m.apps_completed) / secs;

    std::uint64_t busy_cycles = 0;
    double util_sum = 0.0;
    std::size_t untested = 0;
    double max_open_gap = 0.0;
    for (const Core& c : chip_.cores()) {
        busy_cycles += c.total_busy_cycles();
        util_sum += c.busy_fraction(end);
        if (c.state() == CoreState::Faulty) {
            continue;  // decommissioned: no longer a test target
        }
        if (c.tests_completed() == 0) {
            ++untested;
        }
        max_open_gap = std::max(
            max_open_gap, to_seconds(end - last_test_done_[c.id()]));
    }
    m.work_cycles_per_s = static_cast<double>(busy_cycles) / secs;
    m.mean_chip_utilization =
        util_sum / static_cast<double>(chip_.core_count());
    if (state_samples_ > 0) {
        m.mean_dark_fraction = static_cast<double>(dark_samples_) /
                               static_cast<double>(state_samples_);
        m.mean_testing_fraction = static_cast<double>(testing_samples_) /
                                  static_cast<double>(state_samples_);
        m.mean_reserved_fraction = static_cast<double>(reserved_samples_) /
                                   static_cast<double>(state_samples_);
    }
    m.untested_core_fraction = static_cast<double>(untested) /
                               static_cast<double>(chip_.core_count());
    m.max_open_test_gap_s = max_open_gap;
    m.tests_per_core_per_s = static_cast<double>(m.tests_completed) /
                             static_cast<double>(chip_.core_count()) / secs;

    m.tdp_w = budget_.tdp_w();
    m.mean_power_w = budget_.power_stats().mean();
    m.max_power_w = budget_.power_stats().max();
    m.power_samples = budget_.samples();
    m.tdp_violations = budget_.violations();
    m.tdp_violation_rate = budget_.violation_rate();
    m.worst_overshoot_w = budget_.worst_overshoot_w();

    m.energy_noc_j = noc_.total_energy_j() +
                     noc_.routers_idle_power_w() * secs +
                     link_test_energy_j_;
    m.energy_total_j = m.energy_busy_j + m.energy_test_j + m.energy_idle_j +
                       m.energy_noc_j;
    m.test_energy_share =
        m.energy_total_j > 0.0 ? m.energy_test_j / m.energy_total_j : 0.0;

    if (faults_) {
        m.faults_injected = faults_->injected_count();
        m.faults_detected = faults_->detected_count();
        m.test_escapes = faults_->escaped_tests();
        m.corrupted_tasks = faults_->corrupted_tasks();
    }

    if (link_tester_) {
        m.link_faults_injected = link_tester_->injected_count();
        m.link_faults_detected = link_tester_->detected_count();
        m.link_test_escapes = link_tester_->escaped_tests();
        m.corrupted_messages = link_tester_->corrupted_messages();
        double max_gap = 0.0;
        for (SimTime t : last_link_test_) {
            max_gap = std::max(max_gap, to_seconds(end - t));
        }
        m.max_open_link_test_gap_s = max_gap;
    }

    m.noc_mean_utilization = noc_.mean_utilization();
    m.noc_peak_utilization = noc_.peak_utilization();
    m.noc_messages = noc_.messages_sent();

    m.peak_temp_c = peak_temp_c_;
    m.mean_damage = aging_.mean_damage();
    m.max_damage = aging_.max_damage();
    m.damage_imbalance =
        m.mean_damage > 0.0
            ? (m.max_damage - aging_.min_damage()) / m.mean_damage
            : 0.0;

    m.dvfs_throttle_steps = power_mgr_.throttle_steps();
    m.dvfs_boost_steps = power_mgr_.boost_steps();

    scheduler_->export_telemetry(registry_);
    registry_.gauge("system.peak_temp_c", telemetry::GaugeMerge::Max)
        .set(peak_temp_c_);
    registry_.gauge("system.mean_power_w", telemetry::GaugeMerge::Mean)
        .set(m.mean_power_w);
    registry_.gauge("system.mean_chip_utilization", telemetry::GaugeMerge::Mean)
        .set(m.mean_chip_utilization);
    return m;
}

double rate_for_occupancy(double target_occupancy,
                          const TaskGraphGenParams& graphs,
                          double chip_cycles_per_s, std::uint64_t seed) {
    MCS_REQUIRE(target_occupancy > 0.0, "target occupancy must be positive");
    MCS_REQUIRE(chip_cycles_per_s > 0.0, "chip capacity must be positive");
    TaskGraphGenerator gen(graphs);
    Rng rng(seed);
    double reserved_core_cycles = 0.0;
    constexpr int kSamples = 1000;
    for (int i = 0; i < kSamples; ++i) {
        const TaskGraph g = gen.generate(rng);
        // A mapped app reserves graph.size() cores for roughly its critical
        // path; dependency stalls inflate reservation beyond busy cycles.
        reserved_core_cycles += static_cast<double>(g.size()) *
                                static_cast<double>(g.critical_path_cycles());
    }
    reserved_core_cycles /= kSamples;
    return target_occupancy * chip_cycles_per_s / reserved_core_cycles;
}

}  // namespace mcs
