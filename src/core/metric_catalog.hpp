#pragma once

// The canonical catalog of scalar run metrics: one (name, getter) pair per
// exported RunMetrics scalar. Every serializer (core/report CSV,
// telemetry/run_report JSON, runner/result_sink campaign CSVs) draws from
// this list so metric names stay consistent across formats; vector-valued
// metrics (per-V/F, per-QoS-class) are expanded by each serializer.
//
// Header-only on purpose: telemetry serializes RunMetrics but must not
// link against mcs_core (which itself links telemetry).

#include <span>

#include "core/metrics.hpp"

namespace mcs {

/// One scalar metric extracted from RunMetrics.
struct MetricDef {
    const char* name;
    double (*get)(const RunMetrics&);
};

namespace detail {

inline constexpr MetricDef kMetricCatalog[] = {
    {"sim_time_s", [](const RunMetrics& m) { return to_seconds(m.sim_time); }},
    {"core_count",
     [](const RunMetrics& m) { return static_cast<double>(m.core_count); }},
    {"apps_arrived",
     [](const RunMetrics& m) { return static_cast<double>(m.apps_arrived); }},
    {"apps_completed",
     [](const RunMetrics& m) {
         return static_cast<double>(m.apps_completed);
     }},
    {"apps_rejected",
     [](const RunMetrics& m) { return static_cast<double>(m.apps_rejected); }},
    {"tasks_completed",
     [](const RunMetrics& m) {
         return static_cast<double>(m.tasks_completed);
     }},
    {"throughput_tasks_per_s",
     [](const RunMetrics& m) { return m.throughput_tasks_per_s; }},
    {"throughput_apps_per_s",
     [](const RunMetrics& m) { return m.throughput_apps_per_s; }},
    {"work_cycles_per_s",
     [](const RunMetrics& m) { return m.work_cycles_per_s; }},
    {"app_latency_ms_mean",
     [](const RunMetrics& m) { return m.app_latency_ms.mean(); }},
    {"app_queue_wait_ms_mean",
     [](const RunMetrics& m) { return m.app_queue_wait_ms.mean(); }},
    {"chip_utilization",
     [](const RunMetrics& m) { return m.mean_chip_utilization; }},
    {"reserved_fraction",
     [](const RunMetrics& m) { return m.mean_reserved_fraction; }},
    {"dark_fraction",
     [](const RunMetrics& m) { return m.mean_dark_fraction; }},
    {"testing_fraction",
     [](const RunMetrics& m) { return m.mean_testing_fraction; }},
    {"tdp_w", [](const RunMetrics& m) { return m.tdp_w; }},
    {"mean_power_w", [](const RunMetrics& m) { return m.mean_power_w; }},
    {"max_power_w", [](const RunMetrics& m) { return m.max_power_w; }},
    {"tdp_violation_rate",
     [](const RunMetrics& m) { return m.tdp_violation_rate; }},
    {"worst_overshoot_w",
     [](const RunMetrics& m) { return m.worst_overshoot_w; }},
    {"energy_total_j", [](const RunMetrics& m) { return m.energy_total_j; }},
    {"energy_busy_j", [](const RunMetrics& m) { return m.energy_busy_j; }},
    {"energy_test_j", [](const RunMetrics& m) { return m.energy_test_j; }},
    {"energy_idle_j", [](const RunMetrics& m) { return m.energy_idle_j; }},
    {"energy_noc_j", [](const RunMetrics& m) { return m.energy_noc_j; }},
    {"test_energy_share",
     [](const RunMetrics& m) { return m.test_energy_share; }},
    {"tests_completed",
     [](const RunMetrics& m) {
         return static_cast<double>(m.tests_completed);
     }},
    {"tests_aborted",
     [](const RunMetrics& m) { return static_cast<double>(m.tests_aborted); }},
    {"tests_per_core_per_s",
     [](const RunMetrics& m) { return m.tests_per_core_per_s; }},
    {"test_interval_s_mean",
     [](const RunMetrics& m) { return m.test_interval_s.mean(); }},
    {"test_interval_s_max",
     [](const RunMetrics& m) { return m.test_interval_s.max(); }},
    {"max_open_test_gap_s",
     [](const RunMetrics& m) { return m.max_open_test_gap_s; }},
    {"untested_core_fraction",
     [](const RunMetrics& m) { return m.untested_core_fraction; }},
    {"faults_injected",
     [](const RunMetrics& m) {
         return static_cast<double>(m.faults_injected);
     }},
    {"faults_detected",
     [](const RunMetrics& m) {
         return static_cast<double>(m.faults_detected);
     }},
    {"test_escapes",
     [](const RunMetrics& m) { return static_cast<double>(m.test_escapes); }},
    {"corrupted_tasks",
     [](const RunMetrics& m) {
         return static_cast<double>(m.corrupted_tasks);
     }},
    {"corrupted_apps",
     [](const RunMetrics& m) {
         return static_cast<double>(m.corrupted_apps);
     }},
    {"detection_latency_s_mean",
     [](const RunMetrics& m) { return m.detection_latency_s.mean(); }},
    {"link_tests_completed",
     [](const RunMetrics& m) {
         return static_cast<double>(m.link_tests_completed);
     }},
    {"link_faults_injected",
     [](const RunMetrics& m) {
         return static_cast<double>(m.link_faults_injected);
     }},
    {"link_faults_detected",
     [](const RunMetrics& m) {
         return static_cast<double>(m.link_faults_detected);
     }},
    {"link_test_escapes",
     [](const RunMetrics& m) {
         return static_cast<double>(m.link_test_escapes);
     }},
    {"corrupted_messages",
     [](const RunMetrics& m) {
         return static_cast<double>(m.corrupted_messages);
     }},
    {"link_detection_latency_s_mean",
     [](const RunMetrics& m) { return m.link_detection_latency_s.mean(); }},
    {"max_open_link_test_gap_s",
     [](const RunMetrics& m) { return m.max_open_link_test_gap_s; }},
    {"mapping_dispersion_hops_mean",
     [](const RunMetrics& m) { return m.mapping_dispersion_hops.mean(); }},
    {"noc_mean_utilization",
     [](const RunMetrics& m) { return m.noc_mean_utilization; }},
    {"noc_peak_utilization",
     [](const RunMetrics& m) { return m.noc_peak_utilization; }},
    {"noc_messages",
     [](const RunMetrics& m) { return static_cast<double>(m.noc_messages); }},
    {"peak_temp_c", [](const RunMetrics& m) { return m.peak_temp_c; }},
    {"mean_damage", [](const RunMetrics& m) { return m.mean_damage; }},
    {"max_damage", [](const RunMetrics& m) { return m.max_damage; }},
    {"damage_imbalance",
     [](const RunMetrics& m) { return m.damage_imbalance; }},
    {"dvfs_throttle_steps",
     [](const RunMetrics& m) {
         return static_cast<double>(m.dvfs_throttle_steps);
     }},
    {"dvfs_boost_steps",
     [](const RunMetrics& m) {
         return static_cast<double>(m.dvfs_boost_steps);
     }},
};

}  // namespace detail

/// Every exported scalar metric, in the fixed serialization order.
inline std::span<const MetricDef> metric_catalog() {
    return detail::kMetricCatalog;
}

}  // namespace mcs
