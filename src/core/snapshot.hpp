#pragma once

// Versioned run snapshots (family "mcs.snapshot"): capture a ManycoreSystem
// at an epoch boundary and resume it later -- in another process, under a
// different policy sweep -- with byte-identical continuation. The document
// is written through the telemetry JSON writer, so snapshot bytes are as
// deterministic as every other mcs.* artifact.
//
// Layout (one JSON object, schema "mcs.snapshot.v1"):
//   fingerprints  -- config/structural FNV-1a hashes guarding restore
//   substrate     -- clock, chip cores, NoC, budget, map RNG, metrics,
//                    registry, tracer ring (when one is attached)
//   engines       -- workload / test / platform component state
//   events        -- typed manifest of every pending simulator event
//
// The std::function callbacks inside the event queue cannot be serialized;
// instead each engine contributes typed manifest entries (kind + time +
// original sequence number + small args) and restore re-schedules them in
// ascending original-sequence order. Scheduling order determines sequence
// numbers, so ties at equal timestamps replay in the captured order and the
// continuation is event-for-event identical. See docs/checkpoint.md.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace mcs {

namespace telemetry {
class JsonWriter;
struct JsonValue;
}  // namespace telemetry

struct SystemConfig;

/// Restore-time validation knobs.
struct RestoreOptions {
    /// Accept a snapshot whose *full* config fingerprint differs (seed,
    /// policy knobs, epochs). The *structural* fingerprint (chip geometry,
    /// workload model, suite, enabled subsystems) is always enforced: the
    /// fork-from-checkpoint campaign workflow varies policy knobs across
    /// replicas, but component state vectors must keep their meaning.
    bool relax_config = false;
};

/// One pending simulator event in the snapshot manifest. `kind` selects the
/// restore dispatcher; `a`/`b` are kind-specific small arguments (core id,
/// application index, task index, link id). `seq` is the event's sequence
/// number in the captured run and defines the replay order.
struct SnapshotEvent {
    std::string kind;
    SimTime when = 0;
    std::uint64_t seq = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

/// FNV-1a hash (16 lowercase hex digits) over the structure-defining
/// configuration: chip geometry and node, the full workload model, the SBST
/// suite, and which optional subsystems exist. Two configs with equal
/// structural fingerprints have state vectors of identical shape/meaning.
std::string structural_fingerprint(const SystemConfig& cfg);

/// FNV-1a hash over the complete configuration (structural fields plus
/// seed, policy knobs, controller epochs, model constants). Equal full
/// fingerprints mean the restored run continues the captured run exactly.
std::string config_fingerprint(const SystemConfig& cfg);

/// Shared JSON helpers for the engine save/load implementations: exact
/// round-trips for RNG engine state (4 x u64) and the per-entity latent
/// fault slots of the injector components (-1 encodes "no latent fault").
namespace snapshot {

void write_rng(telemetry::JsonWriter& w, std::string_view key,
               const Rng& rng);
Rng read_rng(const telemetry::JsonValue& doc, const std::string& key);

void write_latent_slots(telemetry::JsonWriter& w, std::string_view key,
                        const std::vector<std::optional<std::size_t>>& slots);
/// Every stored slot must index into a history of `history_size` entries.
std::vector<std::optional<std::size_t>> read_latent_slots(
    const telemetry::JsonValue& doc, const std::string& key,
    std::size_t history_size);

}  // namespace snapshot

}  // namespace mcs
