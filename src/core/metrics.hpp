#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace mcs {

/// One sample of the periodically sampled power/state trace (E2's figure).
struct TraceSample {
    SimTime time = 0;
    double total_power_w = 0.0;
    double workload_power_w = 0.0;  ///< busy cores
    double test_power_w = 0.0;      ///< testing cores
    double other_power_w = 0.0;     ///< idle + gated + NoC
    double tdp_w = 0.0;
    int cores_busy = 0;
    int cores_testing = 0;
    int cores_dark = 0;
    double max_temp_c = 0.0;
};

/// End-of-run summary; every experiment table is assembled from these.
struct RunMetrics {
    // --- run shape ---
    SimDuration sim_time = 0;
    std::size_t core_count = 0;

    // --- workload / throughput ---
    std::uint64_t apps_arrived = 0;
    std::uint64_t apps_completed = 0;
    std::uint64_t apps_rejected = 0;  ///< still queued at end
    std::uint64_t tasks_completed = 0;
    double throughput_tasks_per_s = 0.0;
    double throughput_apps_per_s = 0.0;
    /// Work throughput: busy cycles retired per second (the penalty metric:
    /// invariant to which tasks happen to finish near the horizon).
    double work_cycles_per_s = 0.0;
    RunningStats app_latency_ms;      ///< arrival -> completion
    RunningStats app_queue_wait_ms;   ///< arrival -> mapped
    // Per-QoS-class accounting (index = QosClass value; all zero when the
    // workload is best-effort only).
    std::vector<std::uint64_t> apps_completed_by_class;
    std::vector<std::uint64_t> deadlines_met_by_class;
    std::vector<std::uint64_t> deadlines_missed_by_class;
    double mean_chip_utilization = 0.0;  ///< avg busy fraction over cores
    /// Time-averaged fraction of cores that are power-gated (dark silicon).
    double mean_dark_fraction = 0.0;
    /// Time-averaged fraction of cores reserved by mapped applications.
    double mean_reserved_fraction = 0.0;
    /// Time-averaged fraction of cores running SBST sessions.
    double mean_testing_fraction = 0.0;

    // --- power ---
    double tdp_w = 0.0;
    double mean_power_w = 0.0;
    double max_power_w = 0.0;
    std::uint64_t power_samples = 0;
    std::uint64_t tdp_violations = 0;
    double tdp_violation_rate = 0.0;
    double worst_overshoot_w = 0.0;
    // Energy split by consumer (J).
    double energy_total_j = 0.0;
    double energy_busy_j = 0.0;
    double energy_test_j = 0.0;
    double energy_idle_j = 0.0;
    double energy_noc_j = 0.0;
    double test_energy_share = 0.0;  ///< energy_test / energy_total

    // --- testing ---
    std::uint64_t tests_completed = 0;
    std::uint64_t tests_aborted = 0;
    double tests_per_core_per_s = 0.0;
    /// Closed test-to-test gaps (per core, seconds).
    RunningStats test_interval_s;
    /// Worst open gap at the end of the run (censored intervals included).
    double max_open_test_gap_s = 0.0;
    /// Fraction of cores never tested during the run.
    double untested_core_fraction = 0.0;
    /// Tests per V/F level (index = level).
    std::vector<std::uint64_t> tests_per_vf_level;

    // --- faults ---
    std::uint64_t faults_injected = 0;
    std::uint64_t faults_detected = 0;
    std::uint64_t test_escapes = 0;
    std::uint64_t corrupted_tasks = 0;
    /// Applications that completed with at least one silently corrupted
    /// task or message (latent core/link faults).
    std::uint64_t corrupted_apps = 0;
    RunningStats detection_latency_s;
    SampleSet detection_latency_samples;

    // --- NoC online testing (extension; all zero when disabled) ---
    std::uint64_t link_tests_completed = 0;
    std::uint64_t link_faults_injected = 0;
    std::uint64_t link_faults_detected = 0;
    std::uint64_t link_test_escapes = 0;
    std::uint64_t corrupted_messages = 0;
    RunningStats link_detection_latency_s;
    double max_open_link_test_gap_s = 0.0;

    // --- mapping / NoC ---
    RunningStats mapping_dispersion_hops;
    double noc_mean_utilization = 0.0;
    double noc_peak_utilization = 0.0;
    std::uint64_t noc_messages = 0;

    // --- thermal / aging ---
    double peak_temp_c = 0.0;
    double mean_damage = 0.0;
    double max_damage = 0.0;
    /// Damage imbalance: (max - min) / mean (wear-leveling quality).
    double damage_imbalance = 0.0;

    // --- power manager ---
    std::uint64_t dvfs_throttle_steps = 0;
    std::uint64_t dvfs_boost_steps = 0;
};

/// Optional observer receiving trace samples during a run.
using TraceSink = std::function<void(const TraceSample&)>;

}  // namespace mcs
