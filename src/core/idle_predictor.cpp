#include "core/idle_predictor.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace mcs {

IdlePredictor::IdlePredictor(std::size_t core_count, double ewma_alpha,
                             SimDuration initial_guess)
    : alpha_(ewma_alpha),
      ewma_ns_(core_count, static_cast<double>(initial_guess)),
      period_start_(core_count, 0),
      in_period_(core_count, false) {
    MCS_REQUIRE(core_count > 0, "predictor needs cores");
    MCS_REQUIRE(ewma_alpha > 0.0 && ewma_alpha <= 1.0,
                "EWMA alpha must be in (0,1]");
}

void IdlePredictor::notify_available(CoreId core, SimTime now) {
    MCS_REQUIRE(core < in_period_.size(), "core id out of range");
    if (in_period_[core]) {
        return;  // already in a period
    }
    in_period_[core] = true;
    period_start_[core] = now;
}

void IdlePredictor::notify_unavailable(CoreId core, SimTime now) {
    MCS_REQUIRE(core < in_period_.size(), "core id out of range");
    if (!in_period_[core]) {
        return;
    }
    MCS_REQUIRE(now >= period_start_[core], "period ends before it starts");
    const auto length = static_cast<double>(now - period_start_[core]);
    ewma_ns_[core] = alpha_ * length + (1.0 - alpha_) * ewma_ns_[core];
    in_period_[core] = false;
    ++completed_;
}

SimDuration IdlePredictor::predict_remaining(CoreId core,
                                             SimTime now) const {
    MCS_REQUIRE(core < in_period_.size(), "core id out of range");
    if (!in_period_[core]) {
        return 0;
    }
    const double elapsed =
        static_cast<double>(now - period_start_[core]);
    return static_cast<SimDuration>(
        std::max(0.0, ewma_ns_[core] - elapsed));
}

SimDuration IdlePredictor::expected_period(CoreId core) const {
    MCS_REQUIRE(core < ewma_ns_.size(), "core id out of range");
    return static_cast<SimDuration>(ewma_ns_[core]);
}


void IdlePredictor::load_state(std::vector<double> ewma_ns,
                               std::vector<SimTime> period_start,
                               std::vector<bool> in_period,
                               std::uint64_t completed) {
    MCS_REQUIRE(ewma_ns.size() == ewma_ns_.size() &&
                    period_start.size() == period_start_.size() &&
                    in_period.size() == in_period_.size(),
                "idle predictor state: core count mismatch");
    ewma_ns_ = std::move(ewma_ns);
    period_start_ = std::move(period_start);
    in_period_ = std::move(in_period);
    completed_ = completed;
}

}  // namespace mcs
