#pragma once

#include <cstdint>
#include <vector>

#include "arch/core.hpp"
#include "arch/core_lanes.hpp"
#include "sim/time.hpp"

namespace mcs {

/// Patch-on-commit view of the test-candidate set (the analogue of
/// mapping/view_cache for the test engine).
///
/// Every test epoch used to rescan the whole chip to find candidates:
///
///   eligible(i, now) :=  !reserved[i]
///                     && (state[i] == Idle || state[i] == Dark)
///                     && !(last_abort[i] != 0
///                          && now - last_abort[i] < retry_backoff)
///
/// This view maintains {i : eligible(i, now)} incrementally instead.
///
/// Equivalence argument. The predicate depends on three inputs:
///   1. reserved[i] / state[i] -- every write funnels through
///      Core::transition / Core::set_reserved / Core::load_state, all of
///      which record the core in the CoreLanes membership journal. Draining
///      the journal and re-applying the predicate to exactly the dirty
///      cores therefore covers every state/reservation change.
///   2. last_abort[i] -- written only by TestEngine::abort_test, which
///      also finishes the test session (a journaled Testing->Idle
///      transition at the same timestamp), so an abort is always visible
///      through the journal too.
///   3. `now` -- the backoff term expires passively, with no event or
///      journal entry. Cores that pass (1)+(2) but are still inside their
///      backoff window are parked in a cooling set that refresh() rechecks
///      every epoch; expiry is monotone in `now` (last_abort only moves
///      forward, via another journaled abort), so a parked core is
///      promoted the first epoch its window has passed, exactly when the
///      full rescan would have admitted it.
/// A full rescan is performed only when the view is invalidated
/// (construction and snapshot restore); the rescans()/patches() counters
/// witness that steady-state epochs run on journal patches alone.
///
/// Members are kept sorted by core id, so the candidate list is pushed in
/// the same core order the full rescan produced.
class TestCandidacyView {
public:
    /// Binds the view to the chip's lanes (the journal's single consumer)
    /// and the engine's abort stamps. All must outlive the view.
    void bind(CoreLanes* lanes, const std::vector<SimTime>* last_abort,
              SimDuration retry_backoff);

    /// Forces a full rescan at the next members() call (snapshot restore,
    /// anything that mutates state without the journal).
    void invalidate() noexcept { valid_ = false; }

    /// The eligible cores at `now`, sorted by id.
    const std::vector<CoreId>& members(SimTime now);

    std::uint64_t rescans() const noexcept { return rescans_; }
    std::uint64_t patches() const noexcept { return patches_; }

private:
    bool eligible(CoreId id, SimTime now) const;
    /// True when the only failing predicate term is the abort backoff.
    bool cooling(CoreId id, SimTime now) const;
    void insert_member(CoreId id);
    void erase_member(CoreId id);
    void full_rescan(SimTime now);
    void apply_patches(SimTime now);

    CoreLanes* lanes_ = nullptr;
    const std::vector<SimTime>* last_abort_ = nullptr;
    SimDuration retry_backoff_ = 0;

    bool valid_ = false;
    std::vector<std::uint8_t> member_flag_;
    std::vector<CoreId> members_;  ///< sorted by id
    std::vector<std::uint8_t> cooling_flag_;
    std::vector<CoreId> cooling_;  ///< unsorted scratch; compacted in place

    std::uint64_t rescans_ = 0;
    std::uint64_t patches_ = 0;
};

}  // namespace mcs
