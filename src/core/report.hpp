#pragma once

#include <iosfwd>
#include <string>

#include "core/metrics.hpp"

namespace mcs {

/// Human-readable multi-line summary of a run (used by the examples and
/// the mcs_sim CLI).
std::string format_metrics(const RunMetrics& m);

/// Writes the metrics as a two-column (key,value) CSV for downstream
/// tooling. One metric per row; vector metrics are expanded per index.
void write_metrics_csv(const RunMetrics& m, const std::string& path);

}  // namespace mcs
