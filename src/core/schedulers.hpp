#pragma once

#include <limits>
#include <unordered_map>

#include "core/test_scheduler.hpp"

namespace mcs {

/// Parameters of the paper's power-aware online test scheduler.
struct PowerAwareParams {
    /// Fraction of TDP kept as a safety margin below the cap when admitting
    /// test power (guard band against measurement/actuation lag).
    double guard_band_fraction = 0.04;
    /// Optional cap on simultaneously running test sessions.
    int max_concurrent_tests = std::numeric_limits<int>::max();
    TestVfPolicy vf_policy = TestVfPolicy::RotateAll;
    /// Minimum criticality for a core to be considered for testing.
    double criticality_threshold = 0.5;
    /// A core must have been idle at least this long before it is tested;
    /// freshly freed cores are usually claimed back by the mapper within an
    /// epoch or two, and racing it only produces aborted (wasted) tests.
    SimDuration min_idle_age = 500 * kMicrosecond;
    /// Thermal guard: cores above this temperature are not tested (SBST
    /// activity is above workload level and would push a hot spot further).
    double max_test_temp_c = 90.0;
    /// Idle-period prediction (extension): admit a test only if the core's
    /// predicted remaining availability covers the session duration times
    /// `predicted_idle_margin`. Off by default (the DATE'15 policy).
    bool require_predicted_idle = false;
    double predicted_idle_margin = 1.2;
};

/// The paper's policy (PA-OTS): rank eligible idle cores by test
/// criticality, pick each test's V/F level (rotating across all levels),
/// and admit tests most-critical-first while their power fits inside the
/// remaining budget slack minus a guard band. Strictly non-intrusive: only
/// offered (idle) cores are ever used and workload power is never displaced.
class PowerAwareTestScheduler : public TestScheduler {
public:
    explicit PowerAwareTestScheduler(PowerAwareParams params = {});

    void epoch(SchedulerContext& ctx) override;
    std::string_view name() const override { return "power-aware"; }
    void export_telemetry(
        telemetry::MetricsRegistry& registry) const override;
    void save_state(telemetry::JsonWriter& w) const override;
    void load_state(const telemetry::JsonValue& doc) override;

    const PowerAwareParams& params() const noexcept { return params_; }
    std::uint64_t admitted() const noexcept { return admitted_; }
    std::uint64_t rejected_power() const noexcept { return rejected_power_; }

private:
    int next_vf_level(CoreId core, const SchedulerContext& ctx);
    /// The level next_vf_level would return, without advancing rotation.
    int next_vf_level_peek(CoreId core, const SchedulerContext& ctx) const;

    PowerAwareParams params_;
    std::unordered_map<CoreId, int> rotation_;
    std::uint64_t admitted_ = 0;
    std::uint64_t rejected_power_ = 0;
};

/// Power-oblivious baseline: every core is due for a test each `period`;
/// a due core is tested (at the top V/F level) as soon as it shows up idle,
/// regardless of the available power budget. Represents classic online-test
/// scheduling that predates dark-silicon power capping.
class PeriodicTestScheduler : public TestScheduler {
public:
    explicit PeriodicTestScheduler(SimDuration period);

    void epoch(SchedulerContext& ctx) override;
    std::string_view name() const override { return "periodic"; }
    void save_state(telemetry::JsonWriter& w) const override;
    void load_state(const telemetry::JsonValue& doc) override;

private:
    SimDuration period_;
    std::unordered_map<CoreId, SimTime> due_;
};

/// Power-oblivious upper bound: tests any eligible idle core immediately at
/// the top level (subject only to a small per-core re-test gap). Maximizes
/// test throughput at the worst power cost.
class GreedyTestScheduler : public TestScheduler {
public:
    explicit GreedyTestScheduler(SimDuration min_gap = 50 * kMillisecond);

    void epoch(SchedulerContext& ctx) override;
    std::string_view name() const override { return "greedy"; }
    void save_state(telemetry::JsonWriter& w) const override;
    void load_state(const telemetry::JsonValue& doc) override;

private:
    SimDuration min_gap_;
    std::unordered_map<CoreId, SimTime> last_start_;
};

/// Deadline-aware policy (policy zoo): every core carries a rolling test
/// deadline one period out; each epoch the earliest deadlines are served
/// first (EDF order), a core is started once its laxity is gone (waiting
/// another epoch would miss the deadline), and admission still respects the
/// power slack minus the same guard band the paper's policy uses. Sits
/// between the power-oblivious periodic baseline (hard cadence, no power
/// awareness) and PA-OTS (power-aware, no cadence guarantee).
class DeadlineAwareTestScheduler : public TestScheduler {
public:
    DeadlineAwareTestScheduler(
        SimDuration period, double guard_band_fraction,
        int max_concurrent_tests = std::numeric_limits<int>::max());

    void epoch(SchedulerContext& ctx) override;
    std::string_view name() const override { return "deadline"; }
    void export_telemetry(
        telemetry::MetricsRegistry& registry) const override;
    void save_state(telemetry::JsonWriter& w) const override;
    void load_state(const telemetry::JsonValue& doc) override;

    SimDuration period() const noexcept { return period_; }
    std::uint64_t admitted() const noexcept { return admitted_; }
    std::uint64_t rejected_power() const noexcept { return rejected_power_; }
    std::uint64_t deadline_misses() const noexcept { return misses_; }

private:
    /// Urgency margin: a test is started once `now + kLaxityEpochs *
    /// session duration` reaches the deadline, leaving a couple of epochs of
    /// slack for power-rejection retries before the deadline actually slips.
    static constexpr double kLaxityFactor = 2.0;

    SimDuration period_;
    double guard_band_fraction_;
    int max_concurrent_;
    std::unordered_map<CoreId, SimTime> deadline_;
    std::uint64_t admitted_ = 0;
    std::uint64_t rejected_power_ = 0;
    std::uint64_t misses_ = 0;
};

/// No online testing at all (throughput reference).
class NullTestScheduler : public TestScheduler {
public:
    void epoch(SchedulerContext&) override {}
    std::string_view name() const override { return "none"; }
};

}  // namespace mcs
