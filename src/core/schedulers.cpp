#include "core/schedulers.hpp"

#include <algorithm>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/tracer.hpp"
#include "util/require.hpp"

namespace mcs {

namespace {

// Checkpoint helper: emits an unordered per-core map as a sorted array of
// [core, value] pairs so the snapshot bytes are independent of hash order.
template <typename V>
void write_core_map(telemetry::JsonWriter& w, std::string_view key,
                    const std::unordered_map<CoreId, V>& map) {
    std::vector<std::pair<CoreId, V>> sorted(map.begin(), map.end());
    std::sort(sorted.begin(), sorted.end());
    w.key(key);
    w.begin_array();
    for (const auto& [core, value] : sorted) {
        w.begin_array();
        w.value(static_cast<std::uint64_t>(core));
        w.value(static_cast<std::int64_t>(value));
        w.end_array();
    }
    w.end_array();
}

template <typename V>
void read_core_map(const telemetry::JsonValue& doc, const std::string& key,
                   std::unordered_map<CoreId, V>& map) {
    map.clear();
    for (const telemetry::JsonValue& entry : doc.at(key).array) {
        MCS_REQUIRE(entry.is_array() && entry.array.size() == 2,
                    "scheduler state: malformed per-core entry");
        map[static_cast<CoreId>(entry.array[0].u64())] =
            static_cast<V>(entry.array[1].i64());
    }
}

}  // namespace

const char* to_string(TestVfPolicy policy) {
    switch (policy) {
        case TestVfPolicy::RotateAll: return "rotate-all";
        case TestVfPolicy::MaxOnly: return "max-only";
        case TestVfPolicy::MinOnly: return "min-only";
    }
    return "?";
}

PowerAwareTestScheduler::PowerAwareTestScheduler(PowerAwareParams params)
    : params_(params) {
    MCS_REQUIRE(params_.guard_band_fraction >= 0.0 &&
                    params_.guard_band_fraction < 1.0,
                "guard band must be in [0,1)");
    MCS_REQUIRE(params_.max_concurrent_tests > 0,
                "max concurrent tests must be positive");
}

int PowerAwareTestScheduler::next_vf_level(CoreId core,
                                           const SchedulerContext& ctx) {
    const int level = next_vf_level_peek(core, ctx);
    if (params_.vf_policy == TestVfPolicy::RotateAll) {
        // Advance the rotation. Sessions later aborted by the mapper keep
        // their advance: the rotation is cyclic, so no level is permanently
        // skipped, and coverage is measured by *completions* per level.
        ++rotation_[core];
    }
    return level;
}

int PowerAwareTestScheduler::next_vf_level_peek(
    CoreId core, const SchedulerContext& ctx) const {
    const int levels = static_cast<int>(ctx.vf_table->size());
    switch (params_.vf_policy) {
        case TestVfPolicy::MaxOnly:
            return levels - 1;
        case TestVfPolicy::MinOnly:
            return 0;
        case TestVfPolicy::RotateAll: {
            // Walk downwards from the top so early tests are short; the
            // per-core counter guarantees every level is eventually covered.
            const auto it = rotation_.find(core);
            const int counter = it == rotation_.end() ? 0 : it->second;
            return levels - 1 - (counter % levels);
        }
    }
    return levels - 1;
}

void PowerAwareTestScheduler::epoch(SchedulerContext& ctx) {
    if (ctx.candidates.empty()) {
        return;
    }
    // Most critical first; ties by core id for determinism.
    std::sort(ctx.candidates.begin(), ctx.candidates.end(),
              [](const TestCandidate& a, const TestCandidate& b) {
                  if (a.criticality != b.criticality) {
                      return a.criticality > b.criticality;
                  }
                  return a.core < b.core;
              });
    const double guard = params_.guard_band_fraction * ctx.tdp_w;
    double slack = ctx.power_slack_w;
    int running = ctx.tests_running;
    for (const TestCandidate& cand : ctx.candidates) {
        if (running >= params_.max_concurrent_tests) {
            break;
        }
        if (cand.criticality < params_.criticality_threshold) {
            break;  // candidates are sorted: the rest are below threshold too
        }
        if (!cand.dark && cand.idle_age < params_.min_idle_age) {
            continue;  // just freed: likely to be remapped immediately
        }
        if (cand.temp_c > params_.max_test_temp_c) {
            continue;  // thermal guard: testing would worsen a hot spot
        }
        if (params_.require_predicted_idle && ctx.test_duration) {
            const auto needed = static_cast<SimDuration>(
                params_.predicted_idle_margin *
                static_cast<double>(ctx.test_duration(
                    next_vf_level_peek(cand.core, ctx))));
            if (!cand.dark && cand.predicted_idle_remaining < needed) {
                continue;  // the mapper would likely abort this session
            }
        }
        const int level = next_vf_level(cand.core, ctx);
        const double power = ctx.test_power_w(cand.core, level);
        if (power + guard > slack) {
            // Roll the rotation back: this level was not actually covered.
            if (params_.vf_policy == TestVfPolicy::RotateAll) {
                --rotation_[cand.core];
            }
            ++rejected_power_;
            if (ctx.tracer != nullptr) {
                ctx.tracer->record(ctx.now,
                                   telemetry::TraceCategory::Session,
                                   telemetry::TracePhase::Instant,
                                   "test_reject_power", cand.core, level,
                                   static_cast<std::int64_t>(power * 1e3));
            }
            continue;  // a cheaper (lower-V/F) core might still fit
        }
        ctx.start_test(cand.core, level);
        slack -= power;
        ++running;
        ++admitted_;
    }
}

void PowerAwareTestScheduler::export_telemetry(
    telemetry::MetricsRegistry& registry) const {
    registry.counter("scheduler.tests_admitted").inc(admitted_);
    registry.counter("scheduler.tests_rejected_power").inc(rejected_power_);
}

void PowerAwareTestScheduler::save_state(telemetry::JsonWriter& w) const {
    write_core_map(w, "rotation", rotation_);
    w.field("admitted", admitted_);
    w.field("rejected_power", rejected_power_);
}

void PowerAwareTestScheduler::load_state(const telemetry::JsonValue& doc) {
    read_core_map(doc, "rotation", rotation_);
    admitted_ = doc.at("admitted").u64();
    rejected_power_ = doc.at("rejected_power").u64();
}

PeriodicTestScheduler::PeriodicTestScheduler(SimDuration period)
    : period_(period) {
    MCS_REQUIRE(period_ > 0, "test period must be positive");
}

void PeriodicTestScheduler::epoch(SchedulerContext& ctx) {
    const int top = static_cast<int>(ctx.vf_table->size()) - 1;
    for (const TestCandidate& cand : ctx.candidates) {
        auto [it, inserted] = due_.try_emplace(cand.core, 0);
        // Stagger initial due times across cores to avoid a thundering herd
        // at t = 0 (classic periodic-test practice).
        if (inserted) {
            it->second = period_ * (cand.core % 16) / 16;
        }
        if (ctx.now >= it->second) {
            ctx.start_test(cand.core, top);
            it->second = ctx.now + period_;
        }
    }
}

void PeriodicTestScheduler::save_state(telemetry::JsonWriter& w) const {
    write_core_map(w, "due", due_);
}

void PeriodicTestScheduler::load_state(const telemetry::JsonValue& doc) {
    read_core_map(doc, "due", due_);
}

DeadlineAwareTestScheduler::DeadlineAwareTestScheduler(
    SimDuration period, double guard_band_fraction, int max_concurrent_tests)
    : period_(period),
      guard_band_fraction_(guard_band_fraction),
      max_concurrent_(max_concurrent_tests) {
    MCS_REQUIRE(period_ > 0, "test period must be positive");
    MCS_REQUIRE(guard_band_fraction_ >= 0.0 && guard_band_fraction_ < 1.0,
                "guard band must be in [0,1)");
    MCS_REQUIRE(max_concurrent_ > 0, "max concurrent tests must be positive");
}

void DeadlineAwareTestScheduler::epoch(SchedulerContext& ctx) {
    if (ctx.candidates.empty()) {
        return;
    }
    const int top = static_cast<int>(ctx.vf_table->size()) - 1;
    // First-seen cores get a staggered first deadline (same thundering-herd
    // avoidance as the periodic baseline, shifted one period out).
    for (const TestCandidate& cand : ctx.candidates) {
        deadline_.try_emplace(cand.core,
                              period_ + period_ * (cand.core % 16) / 16);
    }
    // Earliest deadline first; ties by core id for determinism.
    std::sort(ctx.candidates.begin(), ctx.candidates.end(),
              [this](const TestCandidate& a, const TestCandidate& b) {
                  const SimTime da = deadline_.at(a.core);
                  const SimTime db = deadline_.at(b.core);
                  if (da != db) {
                      return da < db;
                  }
                  return a.core < b.core;
              });
    const double guard = guard_band_fraction_ * ctx.tdp_w;
    const SimDuration session = ctx.test_duration ? ctx.test_duration(top) : 0;
    const auto margin = static_cast<SimDuration>(
        kLaxityFactor * static_cast<double>(session));
    double slack = ctx.power_slack_w;
    int running = ctx.tests_running;
    for (const TestCandidate& cand : ctx.candidates) {
        if (running >= max_concurrent_) {
            break;
        }
        SimTime& dl = deadline_.at(cand.core);
        // Deadlines the core sailed past (busy, or every admission attempt
        // was power-rejected) are counted once per slipped period and the
        // cadence keeps its staggered grid.
        while (dl < ctx.now) {
            ++misses_;
            dl += period_;
        }
        if (ctx.now + margin < dl) {
            continue;  // laxity left: starting later still meets the deadline
        }
        const double power = ctx.test_power_w(cand.core, top);
        if (power + guard > slack) {
            ++rejected_power_;
            if (ctx.tracer != nullptr) {
                ctx.tracer->record(ctx.now,
                                   telemetry::TraceCategory::Session,
                                   telemetry::TracePhase::Instant,
                                   "test_reject_power", cand.core, top,
                                   static_cast<std::int64_t>(power * 1e3));
            }
            continue;  // a cheaper candidate might still fit under the guard
        }
        ctx.start_test(cand.core, top);
        dl += period_;
        slack -= power;
        ++running;
        ++admitted_;
    }
}

void DeadlineAwareTestScheduler::export_telemetry(
    telemetry::MetricsRegistry& registry) const {
    registry.counter("scheduler.tests_admitted").inc(admitted_);
    registry.counter("scheduler.tests_rejected_power").inc(rejected_power_);
    registry.counter("scheduler.deadline_misses").inc(misses_);
}

void DeadlineAwareTestScheduler::save_state(telemetry::JsonWriter& w) const {
    write_core_map(w, "deadline", deadline_);
    w.field("admitted", admitted_);
    w.field("rejected_power", rejected_power_);
    w.field("misses", misses_);
}

void DeadlineAwareTestScheduler::load_state(
    const telemetry::JsonValue& doc) {
    read_core_map(doc, "deadline", deadline_);
    admitted_ = doc.at("admitted").u64();
    rejected_power_ = doc.at("rejected_power").u64();
    misses_ = doc.at("misses").u64();
}

GreedyTestScheduler::GreedyTestScheduler(SimDuration min_gap)
    : min_gap_(min_gap) {}

void GreedyTestScheduler::epoch(SchedulerContext& ctx) {
    const int top = static_cast<int>(ctx.vf_table->size()) - 1;
    for (const TestCandidate& cand : ctx.candidates) {
        auto it = last_start_.find(cand.core);
        if (it != last_start_.end() && ctx.now - it->second < min_gap_) {
            continue;
        }
        ctx.start_test(cand.core, top);
        last_start_[cand.core] = ctx.now;
    }
}

void GreedyTestScheduler::save_state(telemetry::JsonWriter& w) const {
    write_core_map(w, "last_start", last_start_);
}

void GreedyTestScheduler::load_state(const telemetry::JsonValue& doc) {
    read_core_map(doc, "last_start", last_start_);
}

}  // namespace mcs
