#include "core/schedulers.hpp"

#include <algorithm>

#include "telemetry/metrics_registry.hpp"
#include "telemetry/tracer.hpp"
#include "util/require.hpp"

namespace mcs {

const char* to_string(TestVfPolicy policy) {
    switch (policy) {
        case TestVfPolicy::RotateAll: return "rotate-all";
        case TestVfPolicy::MaxOnly: return "max-only";
        case TestVfPolicy::MinOnly: return "min-only";
    }
    return "?";
}

PowerAwareTestScheduler::PowerAwareTestScheduler(PowerAwareParams params)
    : params_(params) {
    MCS_REQUIRE(params_.guard_band_fraction >= 0.0 &&
                    params_.guard_band_fraction < 1.0,
                "guard band must be in [0,1)");
    MCS_REQUIRE(params_.max_concurrent_tests > 0,
                "max concurrent tests must be positive");
}

int PowerAwareTestScheduler::next_vf_level(CoreId core,
                                           const SchedulerContext& ctx) {
    const int level = next_vf_level_peek(core, ctx);
    if (params_.vf_policy == TestVfPolicy::RotateAll) {
        // Advance the rotation. Sessions later aborted by the mapper keep
        // their advance: the rotation is cyclic, so no level is permanently
        // skipped, and coverage is measured by *completions* per level.
        ++rotation_[core];
    }
    return level;
}

int PowerAwareTestScheduler::next_vf_level_peek(
    CoreId core, const SchedulerContext& ctx) const {
    const int levels = static_cast<int>(ctx.vf_table->size());
    switch (params_.vf_policy) {
        case TestVfPolicy::MaxOnly:
            return levels - 1;
        case TestVfPolicy::MinOnly:
            return 0;
        case TestVfPolicy::RotateAll: {
            // Walk downwards from the top so early tests are short; the
            // per-core counter guarantees every level is eventually covered.
            const auto it = rotation_.find(core);
            const int counter = it == rotation_.end() ? 0 : it->second;
            return levels - 1 - (counter % levels);
        }
    }
    return levels - 1;
}

void PowerAwareTestScheduler::epoch(SchedulerContext& ctx) {
    if (ctx.candidates.empty()) {
        return;
    }
    // Most critical first; ties by core id for determinism.
    std::sort(ctx.candidates.begin(), ctx.candidates.end(),
              [](const TestCandidate& a, const TestCandidate& b) {
                  if (a.criticality != b.criticality) {
                      return a.criticality > b.criticality;
                  }
                  return a.core < b.core;
              });
    const double guard = params_.guard_band_fraction * ctx.tdp_w;
    double slack = ctx.power_slack_w;
    int running = ctx.tests_running;
    for (const TestCandidate& cand : ctx.candidates) {
        if (running >= params_.max_concurrent_tests) {
            break;
        }
        if (cand.criticality < params_.criticality_threshold) {
            break;  // candidates are sorted: the rest are below threshold too
        }
        if (!cand.dark && cand.idle_age < params_.min_idle_age) {
            continue;  // just freed: likely to be remapped immediately
        }
        if (cand.temp_c > params_.max_test_temp_c) {
            continue;  // thermal guard: testing would worsen a hot spot
        }
        if (params_.require_predicted_idle && ctx.test_duration) {
            const auto needed = static_cast<SimDuration>(
                params_.predicted_idle_margin *
                static_cast<double>(ctx.test_duration(
                    next_vf_level_peek(cand.core, ctx))));
            if (!cand.dark && cand.predicted_idle_remaining < needed) {
                continue;  // the mapper would likely abort this session
            }
        }
        const int level = next_vf_level(cand.core, ctx);
        const double power = ctx.test_power_w(cand.core, level);
        if (power + guard > slack) {
            // Roll the rotation back: this level was not actually covered.
            if (params_.vf_policy == TestVfPolicy::RotateAll) {
                --rotation_[cand.core];
            }
            ++rejected_power_;
            if (ctx.tracer != nullptr) {
                ctx.tracer->record(ctx.now,
                                   telemetry::TraceCategory::Session,
                                   telemetry::TracePhase::Instant,
                                   "test_reject_power", cand.core, level,
                                   static_cast<std::int64_t>(power * 1e3));
            }
            continue;  // a cheaper (lower-V/F) core might still fit
        }
        ctx.start_test(cand.core, level);
        slack -= power;
        ++running;
        ++admitted_;
    }
}

void PowerAwareTestScheduler::export_telemetry(
    telemetry::MetricsRegistry& registry) const {
    registry.counter("scheduler.tests_admitted").inc(admitted_);
    registry.counter("scheduler.tests_rejected_power").inc(rejected_power_);
}

PeriodicTestScheduler::PeriodicTestScheduler(SimDuration period)
    : period_(period) {
    MCS_REQUIRE(period_ > 0, "test period must be positive");
}

void PeriodicTestScheduler::epoch(SchedulerContext& ctx) {
    const int top = static_cast<int>(ctx.vf_table->size()) - 1;
    for (const TestCandidate& cand : ctx.candidates) {
        auto [it, inserted] = due_.try_emplace(cand.core, 0);
        // Stagger initial due times across cores to avoid a thundering herd
        // at t = 0 (classic periodic-test practice).
        if (inserted) {
            it->second = period_ * (cand.core % 16) / 16;
        }
        if (ctx.now >= it->second) {
            ctx.start_test(cand.core, top);
            it->second = ctx.now + period_;
        }
    }
}

GreedyTestScheduler::GreedyTestScheduler(SimDuration min_gap)
    : min_gap_(min_gap) {}

void GreedyTestScheduler::epoch(SchedulerContext& ctx) {
    const int top = static_cast<int>(ctx.vf_table->size()) - 1;
    for (const TestCandidate& cand : ctx.candidates) {
        auto it = last_start_.find(cand.core);
        if (it != last_start_.end() && ctx.now - it->second < min_gap_) {
            continue;
        }
        ctx.start_test(cand.core, top);
        last_start_[cand.core] = ctx.now;
    }
}

}  // namespace mcs
