#include "core/test_candidacy.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace mcs {

void TestCandidacyView::bind(CoreLanes* lanes,
                             const std::vector<SimTime>* last_abort,
                             SimDuration retry_backoff) {
    MCS_REQUIRE(lanes != nullptr && last_abort != nullptr,
                "candidacy view needs lanes and abort stamps");
    MCS_REQUIRE(last_abort->size() == lanes->size(),
                "candidacy view: abort stamp count mismatch");
    lanes_ = lanes;
    last_abort_ = last_abort;
    retry_backoff_ = retry_backoff;
    member_flag_.assign(lanes_->size(), 0);
    cooling_flag_.assign(lanes_->size(), 0);
    members_.clear();
    cooling_.clear();
    valid_ = false;
}

bool TestCandidacyView::eligible(CoreId id, SimTime now) const {
    if (lanes_->reserved[id] != 0) {
        return false;
    }
    const CoreState s = lanes_->state[id];
    if (s != CoreState::Idle && s != CoreState::Dark) {
        return false;
    }
    const SimTime abort = (*last_abort_)[id];
    return !(abort != 0 && now - abort < retry_backoff_);
}

bool TestCandidacyView::cooling(CoreId id, SimTime now) const {
    if (lanes_->reserved[id] != 0) {
        return false;
    }
    const CoreState s = lanes_->state[id];
    if (s != CoreState::Idle && s != CoreState::Dark) {
        return false;
    }
    const SimTime abort = (*last_abort_)[id];
    return abort != 0 && now - abort < retry_backoff_;
}

void TestCandidacyView::insert_member(CoreId id) {
    if (member_flag_[id]) {
        return;
    }
    member_flag_[id] = 1;
    members_.insert(std::lower_bound(members_.begin(), members_.end(), id),
                    id);
}

void TestCandidacyView::erase_member(CoreId id) {
    if (!member_flag_[id]) {
        return;
    }
    member_flag_[id] = 0;
    members_.erase(std::lower_bound(members_.begin(), members_.end(), id));
}

void TestCandidacyView::full_rescan(SimTime now) {
    ++rescans_;
    std::fill(member_flag_.begin(), member_flag_.end(), 0);
    std::fill(cooling_flag_.begin(), cooling_flag_.end(), 0);
    members_.clear();
    cooling_.clear();
    const std::size_t n = lanes_->size();
    for (CoreId id = 0; id < n; ++id) {
        if (eligible(id, now)) {
            member_flag_[id] = 1;
            members_.push_back(id);
        } else if (cooling(id, now)) {
            cooling_flag_[id] = 1;
            cooling_.push_back(id);
        }
    }
    lanes_->clear_dirty();
    valid_ = true;
}

void TestCandidacyView::apply_patches(SimTime now) {
    // Drain the membership journal: re-apply the predicate to exactly the
    // cores whose state or reservation changed since the last refresh.
    for (CoreId id : lanes_->dirty()) {
        ++patches_;
        if (eligible(id, now)) {
            insert_member(id);
            cooling_flag_[id] = 0;
        } else {
            erase_member(id);
            if (cooling(id, now)) {
                if (!cooling_flag_[id]) {
                    cooling_flag_[id] = 1;
                    cooling_.push_back(id);
                }
            } else {
                cooling_flag_[id] = 0;
            }
        }
    }
    lanes_->clear_dirty();
    // Promote cooling cores whose backoff window has passed. Compact the
    // list in place; entries whose flag was cleared by a patch above drop
    // out here, so each flagged core appears exactly once.
    std::size_t keep = 0;
    for (CoreId id : cooling_) {
        if (!cooling_flag_[id]) {
            continue;  // left the cooling set via a journal patch
        }
        if (eligible(id, now)) {
            cooling_flag_[id] = 0;
            insert_member(id);
            continue;
        }
        if (!cooling(id, now)) {
            cooling_flag_[id] = 0;  // no longer idle/dark or got reserved
            continue;
        }
        cooling_[keep++] = id;
    }
    cooling_.resize(keep);
}

const std::vector<CoreId>& TestCandidacyView::members(SimTime now) {
    MCS_REQUIRE(lanes_ != nullptr, "candidacy view used before bind");
    if (!valid_) {
        full_rescan(now);
    } else {
        apply_patches(now);
    }
    return members_;
}

}  // namespace mcs
