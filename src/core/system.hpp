#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "aging/aging_model.hpp"
#include "aging/criticality.hpp"
#include "app/workload.hpp"
#include "arch/technology.hpp"
#include "core/metrics.hpp"
#include "core/schedulers.hpp"
#include "core/snapshot.hpp"
#include "noc/link_test.hpp"
#include "noc/network.hpp"
#include "power/power_manager.hpp"
#include "power/power_model.hpp"
#include "sbst/fault_model.hpp"
#include "sbst/test_suite.hpp"
#include "sim/time.hpp"
#include "thermal/thermal_model.hpp"

namespace mcs {

class Mapper;
class ScenarioDriver;
class Simulator;
class SystemObserver;
struct SystemContext;
class PlatformEngine;
class WorkloadEngine;
class TestEngine;

namespace telemetry {
class TelemetryObserver;
}  // namespace telemetry

enum class SchedulerKind { PowerAware, Periodic, Greedy, None, DeadlineAware };
enum class MapperKind {
    TestAware,
    ThermalAware,
    UtilizationOriented,
    Contiguous,
    Random,
    FirstFit,
    ReliabilityWeighted,
};

const char* to_string(SchedulerKind kind);
const char* to_string(MapperKind kind);

/// Full configuration of one simulated system instance. Defaults reproduce
/// the paper's headline setup: 8x8 mesh at 16 nm, PID power capping to the
/// dark-silicon TDP, power-aware online testing, test-aware mapping.
struct SystemConfig {
    int width = 8;
    int height = 8;
    TechNode node = TechNode::nm16;
    std::uint64_t seed = 42;
    /// Scales the technology TDP (power-budget sweeps, E3).
    double tdp_scale = 1.0;

    WorkloadParams workload{};
    NocParams noc{};
    ActivityFactors activity{};
    PowerManagerParams power{};
    ThermalParams thermal{};
    AgingParams aging{};
    CriticalityParams criticality{};

    bool enable_fault_injection = false;
    FaultModelParams faults{};

    SchedulerKind scheduler = SchedulerKind::PowerAware;
    PowerAwareParams power_aware{};
    SimDuration periodic_test_period = 1 * kSecond;
    /// When set, overrides `scheduler`: the system installs the returned
    /// policy instead (plug-in point for user-defined schedulers).
    std::function<std::unique_ptr<TestScheduler>()> scheduler_factory;

    MapperKind mapper = MapperKind::TestAware;
    /// When set, overrides `mapper` (plug-in point for user mappers).
    std::function<std::unique_ptr<Mapper>()> mapper_factory;
    /// The mapper may claim a core that is mid-test (the test is aborted);
    /// keeps testing strictly non-intrusive to workload admission.
    bool abort_tests_for_mapping = true;
    /// After an aborted test the core is not offered to the test scheduler
    /// again for this long (prevents start/abort churn under contention).
    SimDuration test_retry_backoff = 20 * kMillisecond;
    /// Segmented sessions (extension): the SBST suite executes routine by
    /// routine and an aborted session resumes from the last completed
    /// routine instead of restarting, so under mapping contention only one
    /// routine's worth of work is ever lost. Detection still happens at
    /// full-suite completion.
    bool segmented_tests = false;

    /// SBST library; defaults to TestSuite::standard().
    std::optional<TestSuite> suite{};

    /// NoC online testing (extension): when enabled, idle links are tested
    /// under the same power budget; link wear is controlled by
    /// `noc_test.fault_rate_per_link_s`.
    bool enable_noc_testing = false;
    NocTestParams noc_test{};

    /// Worker threads sharding per-core epoch work (thermal, wear, trace,
    /// candidate assembly) between power-epoch barriers; 0 = one per
    /// hardware thread. Purely an execution knob: any value produces
    /// byte-identical traces, reports and registries (the commit phase is
    /// serial in core order), so it is deliberately excluded from the
    /// snapshot config fingerprints. See docs/parallelism.md.
    int epoch_workers = 1;

    // Controller / observer epochs.
    SimDuration power_epoch = 100 * kMicrosecond;
    SimDuration thermal_epoch = 500 * kMicrosecond;
    SimDuration test_epoch = 500 * kMicrosecond;
    SimDuration wear_epoch = 1 * kMillisecond;  ///< aging + fault arrivals
    SimDuration trace_epoch = 5 * kMillisecond;
};

/// The integrated manycore simulation: dynamic workload arrival, runtime
/// mapping, task execution over the NoC, PID power capping with DVFS and
/// power gating, thermal and aging tracking, and online test scheduling.
///
/// Structurally this is a façade: construction builds a SystemContext (the
/// shared substrate -- chip, NoC, clock, budget, RNG streams, observer
/// hub) and composes three engines over it -- PlatformEngine (power /
/// thermal / wear / trace epochs), WorkloadEngine (admission, mapping,
/// task execution) and TestEngine (core/link test sessions). run() wires
/// the engines onto the simulator and finalizes the metrics. See
/// docs/architecture.md for the layering.
///
/// Typical use:
///     ManycoreSystem sys(cfg);
///     RunMetrics m = sys.run(20 * kSecond);
class ManycoreSystem {
public:
    explicit ManycoreSystem(SystemConfig cfg);
    ~ManycoreSystem();
    ManycoreSystem(const ManycoreSystem&) = delete;
    ManycoreSystem& operator=(const ManycoreSystem&) = delete;

    /// Runs the system for `horizon` simulated time and returns the metrics.
    /// May only be called once per instance.
    RunMetrics run(SimDuration horizon);

    /// Registers a checkpoint: run() pauses at `when` (which must lie on a
    /// power-epoch boundary -- the capture invariant all components share)
    /// and writes an "mcs.snapshot" document to `path` before continuing.
    /// The checkpoint is unobservable to the simulation: the continued run
    /// produces byte-identical reports, traces, and metrics. Must be called
    /// before run(); multiple checkpoints are allowed.
    void checkpoint_at(SimTime when, std::string path);

    /// Rebuilds this (freshly constructed, not yet run) system from a
    /// snapshot document. The configuration must match the captured one:
    /// the structural fingerprint always, the full fingerprint unless
    /// `opts.relax_config` (fork-from-checkpoint sweeps). Attach the tracer
    /// BEFORE restoring so the captured trace ring can be reloaded. After
    /// restore, run() accepts any horizon in (capture point,
    /// restored_horizon()]; only the full captured horizon reproduces the
    /// uninterrupted run byte-for-byte.
    void restore(const telemetry::JsonValue& doc, RestoreOptions opts = {});

    bool restored() const noexcept { return restored_; }
    /// Horizon of the captured run (the latest horizon run() accepts after
    /// a restore, and the default continuation target).
    SimDuration restored_horizon() const noexcept {
        return restored_horizon_;
    }

    /// Streams power/state trace samples during run() (E2's figure).
    void set_trace_sink(TraceSink sink);

    /// Attaches an (optional, non-owning) event tracer recording the run's
    /// discrete events: app arrival/mapping/completion, test session
    /// begin/end/abort, DVFS transitions, capping actuations and power
    /// gating. Must be called before run(); pass nullptr to detach.
    void set_tracer(telemetry::Tracer* tracer);

    /// Registers an additional (non-owning) SystemObserver on the hook
    /// layer; it receives the run's typed events after the built-in
    /// telemetry adapter. The observer must outlive the system.
    void add_observer(SystemObserver* observer);
    void remove_observer(SystemObserver* observer);

    /// Attaches a declarative scenario driver (timed directives replayed
    /// through the engine seams; see src/scenario/ and docs/scenarios.md).
    /// The façade takes ownership, binds the driver to this system, starts
    /// it from run(), and carries its replay position through snapshots.
    /// Must be called before restore()/run(); at most one driver.
    void attach_scenario(std::unique_ptr<ScenarioDriver> driver);
    const ScenarioDriver* scenario() const noexcept { return scenario_.get(); }

    /// Live metrics registry for this run: "power.*" counters are bumped by
    /// the power manager as it actuates, "system.*" counters/histograms by
    /// the workload and test paths, and "scheduler.*" counters are exported
    /// by the policy at finalize().
    telemetry::MetricsRegistry& registry() noexcept;
    const telemetry::MetricsRegistry& registry() const noexcept;

    /// Makes capping and admission ignore QoS classes (deadlines are still
    /// measured); the baseline for the mixed-criticality experiments. Must
    /// be called before run().
    void set_priority_blind(bool blind);

    // --- introspection (tests, examples) ---
    const SystemConfig& config() const noexcept { return cfg_; }
    Chip& chip() noexcept;
    const Chip& chip() const noexcept;
    Simulator& simulator() noexcept;
    const Network& network() const noexcept;
    const PowerBudget& budget() const noexcept;
    /// Mutable budget access (scenario directives retarget the TDP mid-run).
    PowerBudget& budget() noexcept;
    const FaultInjector* fault_injector() const noexcept;
    const LinkTester* link_tester() const noexcept;
    const AgingTracker& aging() const noexcept;
    const TestSuite& suite() const noexcept;
    const TestScheduler& scheduler() const noexcept;
    const Mapper& mapper() const noexcept;
    int tests_running() const noexcept;

    // --- engine access (unit tests, scenario scripting) ---
    WorkloadEngine& workload_engine() noexcept;
    TestEngine& test_engine() noexcept;
    PlatformEngine& platform_engine() noexcept;

private:
    RunMetrics finalize();
    /// Serializes the complete system state (implemented in snapshot.cpp).
    void write_snapshot(std::ostream& out, SimDuration horizon) const;
    /// Registers epoch slot `slot` (0 = power .. 4 = trace) with its first
    /// firing at `first_at`; stores the periodic id in epoch_ids_.
    void register_epoch(std::size_t slot, SimTime first_at);

    struct Checkpoint {
        SimTime at = 0;
        std::string path;
    };

    SystemConfig cfg_;
    std::unique_ptr<SystemContext> ctx_;
    std::unique_ptr<PlatformEngine> platform_;
    std::unique_ptr<WorkloadEngine> workload_;
    std::unique_ptr<TestEngine> test_;
    std::unique_ptr<telemetry::TelemetryObserver> telemetry_obs_;
    std::unique_ptr<ScenarioDriver> scenario_;
    std::vector<Checkpoint> checkpoints_;
    /// Periodic ids of the five registered epochs, in the canonical
    /// registration order (0 = none; Simulator ids start at 1).
    std::array<std::uint64_t, 5> epoch_ids_{};
    bool ran_ = false;
    bool restored_ = false;
    SimDuration restored_horizon_ = 0;
};

/// Convenience: translate a target *occupancy* (fraction of core-time
/// reserved by mapped applications) into an arrival rate, accounting for
/// the reservation inflation of dependency stalls inside task graphs.
double rate_for_occupancy(double target_occupancy,
                          const TaskGraphGenParams& graphs,
                          double chip_cycles_per_s,
                          std::uint64_t seed = 1);

}  // namespace mcs
