#pragma once

#include <array>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "aging/aging_model.hpp"
#include "aging/criticality.hpp"
#include "app/workload.hpp"
#include "arch/chip.hpp"
#include "core/idle_predictor.hpp"
#include "core/metrics.hpp"
#include "core/schedulers.hpp"
#include "core/test_scheduler.hpp"
#include "mapping/contiguous_mapper.hpp"
#include "mapping/mapper.hpp"
#include "noc/link_test.hpp"
#include "noc/network.hpp"
#include "power/power_budget.hpp"
#include "power/power_manager.hpp"
#include "power/power_model.hpp"
#include "sbst/fault_model.hpp"
#include "sbst/test_suite.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/tracer.hpp"
#include "thermal/thermal_model.hpp"

namespace mcs {

enum class SchedulerKind { PowerAware, Periodic, Greedy, None };
enum class MapperKind {
    TestAware,
    ThermalAware,
    UtilizationOriented,
    Contiguous,
    Random,
    FirstFit,
};

const char* to_string(SchedulerKind kind);
const char* to_string(MapperKind kind);

/// Full configuration of one simulated system instance. Defaults reproduce
/// the paper's headline setup: 8x8 mesh at 16 nm, PID power capping to the
/// dark-silicon TDP, power-aware online testing, test-aware mapping.
struct SystemConfig {
    int width = 8;
    int height = 8;
    TechNode node = TechNode::nm16;
    std::uint64_t seed = 42;
    /// Scales the technology TDP (power-budget sweeps, E3).
    double tdp_scale = 1.0;

    WorkloadParams workload{};
    NocParams noc{};
    ActivityFactors activity{};
    PowerManagerParams power{};
    ThermalParams thermal{};
    AgingParams aging{};
    CriticalityParams criticality{};

    bool enable_fault_injection = false;
    FaultModelParams faults{};

    SchedulerKind scheduler = SchedulerKind::PowerAware;
    PowerAwareParams power_aware{};
    SimDuration periodic_test_period = 1 * kSecond;
    /// When set, overrides `scheduler`: the system installs the returned
    /// policy instead (plug-in point for user-defined schedulers).
    std::function<std::unique_ptr<TestScheduler>()> scheduler_factory;

    MapperKind mapper = MapperKind::TestAware;
    /// When set, overrides `mapper` (plug-in point for user mappers).
    std::function<std::unique_ptr<Mapper>()> mapper_factory;
    /// The mapper may claim a core that is mid-test (the test is aborted);
    /// keeps testing strictly non-intrusive to workload admission.
    bool abort_tests_for_mapping = true;
    /// After an aborted test the core is not offered to the test scheduler
    /// again for this long (prevents start/abort churn under contention).
    SimDuration test_retry_backoff = 20 * kMillisecond;
    /// Segmented sessions (extension): the SBST suite executes routine by
    /// routine and an aborted session resumes from the last completed
    /// routine instead of restarting, so under mapping contention only one
    /// routine's worth of work is ever lost. Detection still happens at
    /// full-suite completion.
    bool segmented_tests = false;

    /// SBST library; defaults to TestSuite::standard().
    std::optional<TestSuite> suite{};

    /// NoC online testing (extension): when enabled, idle links are tested
    /// under the same power budget; link wear is controlled by
    /// `noc_test.fault_rate_per_link_s`.
    bool enable_noc_testing = false;
    NocTestParams noc_test{};

    // Controller / observer epochs.
    SimDuration power_epoch = 100 * kMicrosecond;
    SimDuration thermal_epoch = 500 * kMicrosecond;
    SimDuration test_epoch = 500 * kMicrosecond;
    SimDuration wear_epoch = 1 * kMillisecond;  ///< aging + fault arrivals
    SimDuration trace_epoch = 5 * kMillisecond;
};

/// The integrated manycore simulation: dynamic workload arrival, runtime
/// mapping, task execution over the NoC, PID power capping with DVFS and
/// power gating, thermal and aging tracking, and online test scheduling.
///
/// Typical use:
///     ManycoreSystem sys(cfg);
///     RunMetrics m = sys.run(20 * kSecond);
class ManycoreSystem {
public:
    explicit ManycoreSystem(SystemConfig cfg);
    ManycoreSystem(const ManycoreSystem&) = delete;
    ManycoreSystem& operator=(const ManycoreSystem&) = delete;

    /// Runs the system for `horizon` simulated time and returns the metrics.
    /// May only be called once per instance.
    RunMetrics run(SimDuration horizon);

    /// Streams power/state trace samples during run() (E2's figure).
    void set_trace_sink(TraceSink sink) { trace_sink_ = std::move(sink); }

    /// Attaches an (optional, non-owning) event tracer recording the run's
    /// discrete events: app arrival/mapping/completion, test session
    /// begin/end/abort, DVFS transitions, capping actuations and power
    /// gating. Must be called before run(); pass nullptr to detach.
    void set_tracer(telemetry::Tracer* tracer);

    /// Live metrics registry for this run: "power.*" counters are bumped by
    /// the power manager as it actuates, "system.*" counters/histograms by
    /// the workload and test paths, and "scheduler.*" counters are exported
    /// by the policy at finalize().
    telemetry::MetricsRegistry& registry() noexcept { return registry_; }
    const telemetry::MetricsRegistry& registry() const noexcept {
        return registry_;
    }

    /// Makes capping and admission ignore QoS classes (deadlines are still
    /// measured); the baseline for the mixed-criticality experiments. Must
    /// be called before run().
    void set_priority_blind(bool blind);

    // --- introspection (tests, examples) ---
    const SystemConfig& config() const noexcept { return cfg_; }
    Chip& chip() noexcept { return chip_; }
    const Chip& chip() const noexcept { return chip_; }
    Simulator& simulator() noexcept { return sim_; }
    const Network& network() const noexcept { return noc_; }
    const PowerBudget& budget() const noexcept { return budget_; }
    const FaultInjector* fault_injector() const noexcept {
        return faults_ ? &*faults_ : nullptr;
    }
    const LinkTester* link_tester() const noexcept {
        return link_tester_ ? &*link_tester_ : nullptr;
    }
    const AgingTracker& aging() const noexcept { return aging_; }
    const TestSuite& suite() const noexcept { return suite_; }
    const TestScheduler& scheduler() const noexcept { return *scheduler_; }
    const Mapper& mapper() const noexcept { return *mapper_; }
    int tests_running() const noexcept { return tests_running_; }

private:
    // --- lifecycle of one application ---
    struct AppRun {
        explicit AppRun(ApplicationSpec s) : spec(std::move(s)) {}

        ApplicationSpec spec;
        bool done = false;
        bool corrupted = false;  ///< any task or message silently corrupted
        std::vector<CoreId> task_core;         ///< core of task i
        std::vector<std::uint32_t> waiting;    ///< undelivered preds of task i
        std::size_t tasks_done = 0;
    };

    /// Execution state of the task currently on a core.
    struct CoreExec {
        bool active = false;
        std::size_t app_index = 0;
        TaskIndex task = 0;
        double remaining_cycles = 0.0;
        SimTime last_progress = 0;
        EventId completion{};
    };

    /// State of a test session running on a core. In segmented mode the
    /// suite position lives in test_progress_ (it persists across aborted
    /// sessions).
    struct TestExec {
        bool active = false;
        int vf_level = 0;
        EventId completion{};
    };

    void prepare(SimDuration horizon);
    RunMetrics finalize();

    void on_arrival(std::size_t app_index);
    void try_map_pending();
    void commit_mapping(std::size_t app_index, const MappingResult& result);
    PlatformView build_view();
    void refresh_criticality();

    void start_task(std::size_t app_index, TaskIndex task);
    void on_task_complete(CoreId core);
    void deliver_edge(std::size_t app_index, TaskIndex dst);
    void release_app(std::size_t app_index);
    void on_vf_change(CoreId core, int old_level, int new_level);

    void test_epoch_fn();
    void schedule_link_tests(SimTime now);
    void on_link_test_complete(LinkId link);
    void start_test_session(CoreId core, int vf_level);
    void on_test_complete(CoreId core);
    void on_routine_complete(CoreId core);
    void abort_test(CoreId core);
    /// Remembers per-core suite progress across aborted segmented sessions.
    std::vector<std::size_t> test_progress_;

    void power_epoch_fn();
    void thermal_epoch_fn();
    void wear_epoch_fn();
    void trace_epoch_fn();
    void accumulate_energy(SimTime now);
    double core_power_now(const Core& core) const;
    /// NoC static power plus in-flight link-test power.
    double noc_power_w() const;

    SystemConfig cfg_;
    Simulator sim_;
    Chip chip_;
    Network noc_;
    TestSuite suite_;
    PowerModel power_model_;
    PowerBudget budget_;
    PowerManager power_mgr_;
    ThermalModel thermal_;
    AgingTracker aging_;
    CriticalityEvaluator crit_eval_;
    std::optional<FaultInjector> faults_;
    std::optional<LinkTester> link_tester_;
    std::vector<SimTime> last_link_test_;
    std::vector<std::uint8_t> link_test_active_;
    int link_tests_running_ = 0;
    std::unique_ptr<Mapper> mapper_;
    std::unique_ptr<TestScheduler> scheduler_;
    IdlePredictor idle_predictor_;
    Rng map_rng_;

    std::vector<AppRun> apps_;
    /// One FIFO admission queue per QoS class; higher classes are served
    /// first each mapping round (work-conserving: a blocked high-class head
    /// does not stall lower classes).
    std::array<std::deque<std::size_t>, kQosClassCount> pending_;
    std::size_t pending_total_ = 0;
    std::vector<CoreExec> core_exec_;
    std::vector<TestExec> test_exec_;
    int tests_running_ = 0;
    bool ran_ = false;
    bool mapping_in_progress_ = false;
    bool priority_blind_ = false;

    // scratch buffers (reused across periodic epochs)
    std::vector<double> power_buf_;
    std::vector<double> accel_buf_;
    std::vector<std::uint8_t> alloc_buf_;
    std::vector<std::uint8_t> testing_buf_;
    std::vector<double> util_buf_;
    std::vector<double> crit_buf_;

    // metrics accumulators
    RunMetrics metrics_;
    std::vector<SimTime> last_test_done_;
    std::vector<SimTime> last_test_abort_;
    std::uint64_t state_samples_ = 0;
    std::uint64_t dark_samples_ = 0;
    std::uint64_t testing_samples_ = 0;
    std::uint64_t reserved_samples_ = 0;
    SimTime energy_clock_ = 0;
    double link_test_energy_j_ = 0.0;
    double peak_temp_c_ = 0.0;
    TraceSink trace_sink_;

    // telemetry (registry is owned; tracer is optional and non-owning)
    telemetry::MetricsRegistry registry_;
    telemetry::Tracer* tracer_ = nullptr;
    telemetry::Counter* c_tests_started_ = nullptr;
    telemetry::Counter* c_tests_completed_ = nullptr;
    telemetry::Counter* c_tests_aborted_ = nullptr;
    telemetry::Counter* c_apps_mapped_ = nullptr;
    telemetry::Counter* c_apps_completed_ = nullptr;
    Histogram* h_app_latency_ms_ = nullptr;
};

/// Convenience: translate a target *occupancy* (fraction of core-time
/// reserved by mapped applications) into an arrival rate, accounting for
/// the reservation inflation of dependency stalls inside task graphs.
double rate_for_occupancy(double target_occupancy,
                          const TaskGraphGenParams& graphs,
                          double chip_cycles_per_s,
                          std::uint64_t seed = 1);

}  // namespace mcs
