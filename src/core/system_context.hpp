#pragma once

// SystemContext: the shared substrate the engine components compose over.
// It owns what every engine needs to see (chip, NoC, clock/simulator,
// power budget, SBST suite, RNG streams, metrics accumulators, observer
// hub) and carries non-owning registration slots for the components each
// engine contributes (power manager, thermal, aging, scheduler state, ...)
// so engines can reach one another without the façade brokering every
// call. Ownership rule: values here are owned by the context (and live as
// long as the ManycoreSystem façade); pointers are registered by the
// engine that owns the component and stay valid for the system's lifetime.

#include "app/workload.hpp"
#include "arch/chip.hpp"
#include "core/metrics.hpp"
#include "core/system_observer.hpp"
#include "noc/network.hpp"
#include "power/power_budget.hpp"
#include "sbst/test_suite.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mcs {

struct SystemConfig;
class PowerModel;
class PowerManager;
class ThermalModel;
class AgingTracker;
class CriticalityEvaluator;
class FaultInjector;
class LinkTester;
class IdlePredictor;
class WorkloadEngine;
class TestEngine;
class PlatformEngine;

namespace telemetry {
class Tracer;
}  // namespace telemetry

struct SystemContext {
    /// Builds the substrate from a validated configuration. `cfg` must
    /// outlive the context (the façade owns both).
    explicit SystemContext(const SystemConfig& cfg);
    SystemContext(const SystemContext&) = delete;
    SystemContext& operator=(const SystemContext&) = delete;

    const SystemConfig& cfg;

    // --- owned substrate ---
    Simulator sim;
    Chip chip;
    Network noc;
    TestSuite suite;
    PowerBudget budget;
    RunMetrics metrics;
    telemetry::MetricsRegistry registry;
    SystemObserverHub observers;
    /// Dedicated RNG stream for mapping decisions (seeded off cfg.seed so
    /// mapper randomness is independent of workload/fault streams).
    Rng map_rng;
    /// Worker team sharding per-core epoch work between power-epoch
    /// barriers (cfg.epoch_workers; scratch is always quiescent outside a
    /// for_slabs call, so checkpoints need no executor state).
    EpochExecutor epoch;
    /// When set, capping and admission ignore QoS classes.
    bool priority_blind = false;

    // --- run telemetry (optional, non-owning) ---
    telemetry::Tracer* tracer = nullptr;

    // --- components registered by PlatformEngine ---
    PowerModel* power_model = nullptr;
    PowerManager* power_mgr = nullptr;
    ThermalModel* thermal = nullptr;
    AgingTracker* aging = nullptr;
    CriticalityEvaluator* crit_eval = nullptr;
    FaultInjector* faults = nullptr;  ///< null unless fault injection is on

    // --- components registered by WorkloadEngine ---
    IdlePredictor* idle_predictor = nullptr;

    // --- components registered by TestEngine ---
    LinkTester* link_tester = nullptr;  ///< null unless NoC testing is on

    // --- engine cross-links (registered by each engine's constructor) ---
    WorkloadEngine* workload = nullptr;
    TestEngine* test = nullptr;
    PlatformEngine* platform = nullptr;
};

}  // namespace mcs
