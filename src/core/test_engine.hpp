#pragma once

// TestEngine: online testing of cores and NoC links. Owns the test
// scheduler policy, the per-core session state (including segmented-suite
// resume positions and abort backoff stamps) and the link tester; builds
// the SchedulerContext each test epoch and executes the sessions the
// policy starts. The power substrate and workload are reached through
// SystemContext.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/snapshot.hpp"
#include "core/system_context.hpp"
#include "core/test_candidacy.hpp"
#include "core/test_scheduler.hpp"
#include "noc/link_test.hpp"

namespace mcs {

class TestEngine {
public:
    /// Builds the scheduler policy (and the link tester, when NoC testing
    /// is on) from `ctx.cfg` and registers itself in `ctx`.
    explicit TestEngine(SystemContext& ctx);
    TestEngine(const TestEngine&) = delete;
    TestEngine& operator=(const TestEngine&) = delete;

    /// One test epoch: refresh criticality, assemble the SchedulerContext
    /// from the patched candidacy view (idle/dark candidates minus abort
    /// backoff -- maintained incrementally from the lanes membership
    /// journal, no per-epoch chip rescan), run the policy, then schedule
    /// link tests on overdue idle links.
    void test_epoch();

    /// Starts an SBST session on `core` at `vf_level` (wakes a dark core,
    /// charges the test power increment to the ledger). In segmented mode
    /// the session resumes from the core's saved routine position.
    void start_test_session(CoreId core, int vf_level);

    /// Aborts the in-flight session on `core` (the mapper claimed it) and
    /// stamps the retry backoff. Segmented progress is preserved.
    void abort_test(CoreId core);

    /// Drops any saved segmented-suite progress on `core` (a fresh fault
    /// invalidates routines that ran on a then-healthy core).
    void invalidate_progress(CoreId core) { test_progress_[core] = 0; }

    /// Wear-epoch hook: advances link-fault arrivals (called by
    /// PlatformEngine after core fault arrivals, preserving stream order).
    void wear_step(SimTime now, double dt_s);

    // --- introspection (tests, examples, scenario scripting) ---
    int tests_running() const noexcept { return tests_running_; }
    int link_tests_running() const noexcept { return link_tests_running_; }
    bool test_active(CoreId core) const { return test_exec_[core].active; }
    /// Completed routines of the (possibly paused) segmented suite.
    std::size_t suite_progress(CoreId core) const {
        return test_progress_[core];
    }
    SimTime last_abort(CoreId core) const { return last_test_abort_[core]; }
    std::span<const SimTime> last_test_done() const noexcept {
        return last_test_done_;
    }
    const TestScheduler& scheduler() const noexcept { return *scheduler_; }
    TestScheduler& scheduler() noexcept { return *scheduler_; }
    const LinkTester* link_tester() const noexcept {
        return link_tester_ ? &*link_tester_ : nullptr;
    }
    /// Candidacy maintenance counters (full chip rescans vs journal
    /// patches); accessor-only, gated by the hot-path bench.
    std::uint64_t candidacy_rescans() const noexcept {
        return candidacy_.rescans();
    }
    std::uint64_t candidacy_patches() const noexcept {
        return candidacy_.patches();
    }

    /// Writes the test-owned slice of the end-of-run metrics (coverage
    /// gaps, per-core test rates, link-test results) and exports the
    /// scheduler's telemetry.
    void finalize_into(RunMetrics& m, SimTime end);

    // ---- snapshot support ----
    /// Complete engine state as one JSON object, including the scheduler
    /// policy's state (tagged with the policy name; only loaded back into
    /// a matching policy).
    void save_state(telemetry::JsonWriter& w) const;
    void load_state(const telemetry::JsonValue& doc);
    /// Appends one manifest entry per pending test event:
    /// "test_session_complete" (a = core) and "link_test_complete"
    /// (a = link).
    void append_event_manifest(std::vector<SnapshotEvent>& out) const;
    void schedule_restored_session(CoreId core, SimTime when);
    void schedule_restored_link_test(LinkId link, SimTime when);

private:
    /// State of a test session running on a core. In segmented mode the
    /// suite position lives in test_progress_ (it persists across aborted
    /// sessions).
    struct TestExec {
        bool active = false;
        int vf_level = 0;
        EventId completion{};
    };

    void schedule_link_tests(SimTime now);
    void on_link_test_complete(LinkId link);
    void on_routine_complete(CoreId core);
    void on_test_complete(CoreId core);

    SystemContext& ctx_;
    std::unique_ptr<TestScheduler> scheduler_;
    std::optional<LinkTester> link_tester_;
    std::vector<SimTime> last_link_test_;
    std::vector<std::uint8_t> link_test_active_;
    /// Completion event of the in-flight test on each link (snapshot
    /// bookkeeping; meaningful only while link_test_active_[l]).
    std::vector<EventId> link_test_events_;
    int link_tests_running_ = 0;

    std::vector<TestExec> test_exec_;
    /// Remembers per-core suite progress across aborted segmented sessions.
    std::vector<std::size_t> test_progress_;
    std::vector<SimTime> last_test_done_;
    std::vector<SimTime> last_test_abort_;
    int tests_running_ = 0;

    /// Incrementally maintained candidate set (sorted by core id); the
    /// per-epoch work is draining the lanes membership journal instead of
    /// rescanning the chip. Mutable through members() only.
    TestCandidacyView candidacy_;
    /// Scratch for the sharded candidate-field fill: slot i holds the
    /// fields of the i-th member; the commit loop pushes the slots in
    /// member (= core) order. Quiescent between epochs (checkpoints never
    /// see a live fill).
    std::vector<TestCandidate> cand_buf_;
};

}  // namespace mcs
