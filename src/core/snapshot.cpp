#include "core/snapshot.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <ostream>
#include <string_view>
#include <utility>
#include <vector>

#include "core/platform_engine.hpp"
#include "core/scenario_hook.hpp"
#include "core/system.hpp"
#include "core/system_context.hpp"
#include "core/test_engine.hpp"
#include "core/workload_engine.hpp"
#include "telemetry/json.hpp"
#include "telemetry/schema.hpp"
#include "telemetry/tracer.hpp"
#include "util/require.hpp"

namespace mcs {

namespace {

// Manifest kinds of the five periodic epochs, indexed by the facade's
// canonical registration slot (the order is part of the behavioral
// contract -- see ManycoreSystem::run).
constexpr std::array<std::string_view, 5> kEpochKinds = {
    "power_epoch", "thermal_epoch", "test_epoch", "wear_epoch",
    "trace_epoch"};

// ------------------------------------------------------- fingerprinting

/// FNV-1a over a canonical byte stream: integers little-endian, doubles by
/// bit pattern (so the hash is exact, not round-trip-formatted), strings
/// length-prefixed.
class Fingerprint {
public:
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            byte(static_cast<unsigned char>(v >> (8 * i)));
        }
    }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void boolean(bool v) { byte(v ? 1 : 0); }
    void str(std::string_view s) {
        u64(s.size());
        for (char c : s) {
            byte(static_cast<unsigned char>(c));
        }
    }

    /// 16 lowercase hex digits.
    std::string hex() const {
        static constexpr char kDigits[] = "0123456789abcdef";
        std::string out(16, '0');
        for (int i = 0; i < 16; ++i) {
            out[static_cast<std::size_t>(i)] =
                kDigits[(h_ >> (60 - 4 * i)) & 0xF];
        }
        return out;
    }

private:
    void byte(unsigned char b) {
        h_ ^= b;
        h_ *= 1099511628211ULL;
    }

    std::uint64_t h_ = 14695981039346656037ULL;
};

void hash_graph(Fingerprint& fp, const TaskGraph& g) {
    fp.u64(g.size());
    for (TaskIndex t = 0; t < static_cast<TaskIndex>(g.size()); ++t) {
        const Task& task = g.task(t);
        fp.u64(task.cycles);
        fp.u64(task.successors.size());
        for (const TaskEdge& e : task.successors) {
            fp.u64(e.dst);
            fp.u64(e.bytes);
        }
    }
}

// Structure-defining configuration: everything that fixes the *shape and
// meaning* of the persisted state vectors (chip geometry, the workload
// model the arrival trace regenerates from, the SBST suite, which optional
// subsystems exist). Policy knobs stay out -- forked replicas vary them.
void hash_structural(Fingerprint& fp, const SystemConfig& cfg) {
    fp.i64(cfg.width);
    fp.i64(cfg.height);
    fp.i64(static_cast<int>(cfg.node));

    const WorkloadParams& wl = cfg.workload;
    fp.f64(wl.arrival_rate_hz);
    const TaskGraphGenParams& g = wl.graphs;
    fp.i64(g.min_tasks);
    fp.i64(g.max_tasks);
    fp.u64(g.min_cycles);
    fp.u64(g.max_cycles);
    fp.u64(g.min_edge_bytes);
    fp.u64(g.max_edge_bytes);
    fp.i64(g.max_fanin);
    fp.u64(wl.graph_library.size());
    for (const TaskGraph& graph : wl.graph_library) {
        hash_graph(fp, graph);
    }
    fp.f64(wl.best_effort_weight);
    fp.f64(wl.soft_rt_weight);
    fp.f64(wl.hard_rt_weight);
    fp.f64(wl.hard_deadline_factor);
    fp.f64(wl.soft_deadline_factor);
    fp.f64(wl.reference_freq_hz);

    const TestSuite suite = cfg.suite ? *cfg.suite : TestSuite::standard();
    fp.u64(suite.routine_count());
    for (const TestRoutine& r : suite.routines()) {
        fp.i64(static_cast<int>(r.unit));
        fp.str(r.name);
        fp.u64(r.cycles);
        fp.f64(r.coverage);
        fp.f64(r.activity);
    }

    fp.boolean(cfg.enable_fault_injection);
    fp.boolean(cfg.enable_noc_testing);
    fp.boolean(cfg.segmented_tests);
}

void hash_full(Fingerprint& fp, const SystemConfig& cfg) {
    hash_structural(fp, cfg);
    // cfg.epoch_workers is deliberately NOT hashed: it is a pure execution
    // knob (byte-identical output for any value), so snapshots captured at
    // one worker count restore at any other.
    fp.u64(cfg.seed);
    fp.f64(cfg.tdp_scale);

    const NocParams& n = cfg.noc;
    fp.f64(n.link_bandwidth_bytes_per_s);
    fp.u64(n.router_latency);
    fp.f64(n.energy_per_byte_hop_j);
    fp.f64(n.router_idle_power_w);
    fp.f64(n.util_ewma_alpha);
    fp.u64(n.util_window);
    fp.f64(n.max_effective_util);

    const ActivityFactors& a = cfg.activity;
    fp.f64(a.idle);
    fp.f64(a.busy);
    fp.f64(a.test);
    fp.f64(a.gated_leak_fraction);

    const PowerManagerParams& p = cfg.power;
    fp.i64(static_cast<int>(p.mode));
    fp.f64(p.pid.kp);
    fp.f64(p.pid.ki);
    fp.f64(p.pid.kd);
    fp.f64(p.pid.out_min);
    fp.f64(p.pid.out_max);
    fp.f64(p.pid.integral_limit);
    fp.f64(p.setpoint_fraction);
    fp.f64(p.deadband);
    fp.f64(p.boost_fraction);
    fp.u64(p.gate_delay);
    fp.boolean(p.enable_power_gating);

    const ThermalParams& t = cfg.thermal;
    fp.f64(t.ambient_c);
    fp.f64(t.heat_capacity_j_per_k);
    fp.f64(t.g_vertical_w_per_k);
    fp.f64(t.g_lateral_w_per_k);
    fp.f64(t.max_dt_s);

    const AgingParams& ag = cfg.aging;
    fp.f64(ag.nominal_lifetime_s);
    fp.f64(ag.ref_temp_c);
    fp.f64(ag.temp_accel_slope_c);
    fp.f64(ag.stress_busy);
    fp.f64(ag.stress_test);
    fp.f64(ag.stress_idle);

    const CriticalityParams& cr = cfg.criticality;
    fp.i64(static_cast<int>(cr.mode));
    fp.f64(cr.w_util);
    fp.f64(cr.w_time);
    fp.f64(cr.w_aging);
    fp.f64(cr.util_ref_cycles);
    fp.u64(cr.time_ref);
    fp.f64(cr.saturation);
    fp.f64(cr.threshold);

    const FaultModelParams& fm = cfg.faults;
    fp.f64(fm.base_rate_per_core_s);
    fp.f64(fm.task_corruption_prob);
    fp.f64(fm.stuck_at_weight);
    fp.f64(fm.delay_weight);
    fp.f64(fm.low_voltage_weight);
    fp.i64(fm.delay_visible_levels);
    fp.i64(fm.lowv_visible_levels);

    fp.i64(static_cast<int>(cfg.scheduler));
    const PowerAwareParams& pa = cfg.power_aware;
    fp.f64(pa.guard_band_fraction);
    fp.i64(pa.max_concurrent_tests);
    fp.i64(static_cast<int>(pa.vf_policy));
    fp.f64(pa.criticality_threshold);
    fp.u64(pa.min_idle_age);
    fp.f64(pa.max_test_temp_c);
    fp.boolean(pa.require_predicted_idle);
    fp.f64(pa.predicted_idle_margin);
    fp.u64(cfg.periodic_test_period);
    fp.boolean(static_cast<bool>(cfg.scheduler_factory));

    fp.i64(static_cast<int>(cfg.mapper));
    fp.boolean(static_cast<bool>(cfg.mapper_factory));
    fp.boolean(cfg.abort_tests_for_mapping);
    fp.u64(cfg.test_retry_backoff);

    const NocTestParams& nt = cfg.noc_test;
    fp.f64(nt.fault_rate_per_link_s);
    fp.u64(nt.test_bytes);
    fp.f64(nt.test_coverage);
    fp.f64(nt.test_power_w);
    fp.f64(nt.message_corruption_prob);
    fp.u64(nt.test_period_target);
    fp.f64(nt.max_test_utilization);
    fp.i64(nt.max_concurrent_tests);

    fp.u64(cfg.power_epoch);
    fp.u64(cfg.thermal_epoch);
    fp.u64(cfg.test_epoch);
    fp.u64(cfg.wear_epoch);
    fp.u64(cfg.trace_epoch);
}

// ------------------------------------------- stats / metrics round-trips

void write_running_stats(telemetry::JsonWriter& w, const RunningStats& s) {
    w.begin_object();
    w.field("n", static_cast<std::uint64_t>(s.count()));
    w.field("mean", s.mean());
    w.field("m2", s.m2());
    w.field("sum", s.sum());
    w.field("min", s.min());
    w.field("max", s.max());
    w.end_object();
}

RunningStats read_running_stats(const telemetry::JsonValue& doc) {
    RunningStats s;
    s.restore(static_cast<std::size_t>(doc.at("n").u64()),
              doc.at("mean").number, doc.at("m2").number,
              doc.at("sum").number, doc.at("min").number,
              doc.at("max").number);
    return s;
}

void write_u64_array(telemetry::JsonWriter& w, std::string_view key,
                     const std::vector<std::uint64_t>& values) {
    w.key(key);
    w.begin_array();
    for (std::uint64_t v : values) {
        w.value(v);
    }
    w.end_array();
}

void read_u64_array(const telemetry::JsonValue& doc, const std::string& key,
                    std::vector<std::uint64_t>& out) {
    const auto& arr = doc.at(key).array;
    MCS_REQUIRE(arr.size() == out.size(),
                "snapshot metrics: per-class/per-level array size mismatch");
    for (std::size_t i = 0; i < arr.size(); ++i) {
        out[i] = arr[i].u64();
    }
}

// Only the fields that *accumulate during the run* ride in the snapshot;
// everything finalize() derives (rates, fractions, component counters) is
// recomputed identically at the restored run's end.
void write_metrics(telemetry::JsonWriter& w, const RunMetrics& m) {
    w.begin_object();
    w.field("apps_arrived", m.apps_arrived);
    w.field("apps_completed", m.apps_completed);
    w.field("tasks_completed", m.tasks_completed);
    w.field("corrupted_apps", m.corrupted_apps);
    w.field("tests_completed", m.tests_completed);
    w.field("tests_aborted", m.tests_aborted);
    w.field("link_tests_completed", m.link_tests_completed);
    w.key("app_latency_ms");
    write_running_stats(w, m.app_latency_ms);
    w.key("app_queue_wait_ms");
    write_running_stats(w, m.app_queue_wait_ms);
    w.key("mapping_dispersion_hops");
    write_running_stats(w, m.mapping_dispersion_hops);
    w.key("test_interval_s");
    write_running_stats(w, m.test_interval_s);
    w.key("detection_latency_s");
    write_running_stats(w, m.detection_latency_s);
    w.key("link_detection_latency_s");
    write_running_stats(w, m.link_detection_latency_s);
    write_u64_array(w, "apps_completed_by_class", m.apps_completed_by_class);
    write_u64_array(w, "deadlines_met_by_class", m.deadlines_met_by_class);
    write_u64_array(w, "deadlines_missed_by_class",
                    m.deadlines_missed_by_class);
    write_u64_array(w, "tests_per_vf_level", m.tests_per_vf_level);
    w.key("detection_latency_samples");
    w.begin_array();
    for (double v : m.detection_latency_samples.samples()) {
        w.value(v);
    }
    w.end_array();
    w.field("energy_busy_j", m.energy_busy_j);
    w.field("energy_test_j", m.energy_test_j);
    w.field("energy_idle_j", m.energy_idle_j);
    w.end_object();
}

void read_metrics(const telemetry::JsonValue& doc, RunMetrics& m) {
    m.apps_arrived = doc.at("apps_arrived").u64();
    m.apps_completed = doc.at("apps_completed").u64();
    m.tasks_completed = doc.at("tasks_completed").u64();
    m.corrupted_apps = doc.at("corrupted_apps").u64();
    m.tests_completed = doc.at("tests_completed").u64();
    m.tests_aborted = doc.at("tests_aborted").u64();
    m.link_tests_completed = doc.at("link_tests_completed").u64();
    m.app_latency_ms = read_running_stats(doc.at("app_latency_ms"));
    m.app_queue_wait_ms = read_running_stats(doc.at("app_queue_wait_ms"));
    m.mapping_dispersion_hops =
        read_running_stats(doc.at("mapping_dispersion_hops"));
    m.test_interval_s = read_running_stats(doc.at("test_interval_s"));
    m.detection_latency_s = read_running_stats(doc.at("detection_latency_s"));
    m.link_detection_latency_s =
        read_running_stats(doc.at("link_detection_latency_s"));
    read_u64_array(doc, "apps_completed_by_class", m.apps_completed_by_class);
    read_u64_array(doc, "deadlines_met_by_class", m.deadlines_met_by_class);
    read_u64_array(doc, "deadlines_missed_by_class",
                   m.deadlines_missed_by_class);
    read_u64_array(doc, "tests_per_vf_level", m.tests_per_vf_level);
    SampleSet samples;
    for (const auto& v : doc.at("detection_latency_samples").array) {
        samples.add(v.number);
    }
    m.detection_latency_samples = samples;
    m.energy_busy_j = doc.at("energy_busy_j").number;
    m.energy_test_j = doc.at("energy_test_j").number;
    m.energy_idle_j = doc.at("energy_idle_j").number;
}

}  // namespace

std::string structural_fingerprint(const SystemConfig& cfg) {
    Fingerprint fp;
    hash_structural(fp, cfg);
    return fp.hex();
}

std::string config_fingerprint(const SystemConfig& cfg) {
    Fingerprint fp;
    hash_full(fp, cfg);
    return fp.hex();
}

// ------------------------------------------------ shared engine helpers

namespace snapshot {

void write_rng(telemetry::JsonWriter& w, std::string_view key,
               const Rng& rng) {
    w.key(key);
    w.begin_array();
    for (std::uint64_t word : rng.state()) {
        w.value(word);
    }
    w.end_array();
}

Rng read_rng(const telemetry::JsonValue& doc, const std::string& key) {
    const auto& words = doc.at(key).array;
    MCS_REQUIRE(words.size() == 4, "snapshot: RNG state must have 4 words");
    Rng rng;
    rng.set_state({words[0].u64(), words[1].u64(), words[2].u64(),
                   words[3].u64()});
    return rng;
}

void write_latent_slots(
    telemetry::JsonWriter& w, std::string_view key,
    const std::vector<std::optional<std::size_t>>& slots) {
    w.key(key);
    w.begin_array();
    for (const auto& slot : slots) {
        if (slot) {
            w.value(static_cast<std::uint64_t>(*slot));
        } else {
            w.value(std::int64_t{-1});
        }
    }
    w.end_array();
}

std::vector<std::optional<std::size_t>> read_latent_slots(
    const telemetry::JsonValue& doc, const std::string& key,
    std::size_t history_size) {
    std::vector<std::optional<std::size_t>> latent;
    for (const auto& v : doc.at(key).array) {
        const std::int64_t slot = v.i64();
        if (slot < 0) {
            latent.emplace_back(std::nullopt);
        } else {
            MCS_REQUIRE(static_cast<std::size_t>(slot) < history_size,
                        "snapshot: latent slot out of history range");
            latent.emplace_back(static_cast<std::size_t>(slot));
        }
    }
    return latent;
}

}  // namespace snapshot

// ----------------------------------------------------- capture (facade)

void ManycoreSystem::write_snapshot(std::ostream& out,
                                    SimDuration horizon) const {
    Simulator& sim = ctx_->sim;
    const SimTime now = sim.now();

    // Assemble the typed event manifest first: its invariants double as
    // capture-time checks that no pending event escaped serialization.
    std::vector<SnapshotEvent> events;
    for (std::size_t slot = 0; slot < epoch_ids_.size(); ++slot) {
        MCS_REQUIRE(epoch_ids_[slot] != 0,
                    "snapshot capture requires registered epochs");
        const EventId id =
            sim.periodic_event(Simulator::PeriodicHandle{epoch_ids_[slot]});
        events.push_back({std::string(kEpochKinds[slot]), sim.event_time(id),
                          id.seq, 0, 0});
    }
    workload_->append_event_manifest(events);
    test_->append_event_manifest(events);
    if (scenario_ != nullptr) {
        scenario_->append_event_manifest(events);
    }
    MCS_REQUIRE(events.size() == sim.pending_events(),
                "snapshot manifest does not cover every pending event");
    for (const SnapshotEvent& e : events) {
        MCS_REQUIRE(e.when > now,
                    "pending event at or before the capture point");
    }
    // Ascending original sequence = the captured scheduling order; restore
    // replays in this order so ties at equal timestamps stay identical.
    std::sort(events.begin(), events.end(),
              [](const SnapshotEvent& a, const SnapshotEvent& b) {
                  return a.seq < b.seq;
              });

    telemetry::JsonWriter w(out);
    w.begin_object();
    w.field("schema", telemetry::schema_tag("mcs.snapshot"));
    w.field("config_fingerprint", config_fingerprint(cfg_));
    w.field("structural_fingerprint", structural_fingerprint(cfg_));
    w.field("seed", cfg_.seed);
    w.field("scheduler", test_->scheduler().name());
    w.field("horizon", horizon);
    w.field("now", now);
    w.field("executed", sim.events_executed());
    w.field("cancelled", sim.events_cancelled());

    w.key("budget");
    w.begin_object();
    w.field("last_power_w", ctx_->budget.last_power_w());
    w.field("samples", ctx_->budget.samples());
    w.field("violations", ctx_->budget.violations());
    w.field("worst_overshoot_w", ctx_->budget.worst_overshoot_w());
    w.key("stats");
    write_running_stats(w, ctx_->budget.power_stats());
    w.end_object();

    snapshot::write_rng(w, "map_rng", ctx_->map_rng);

    w.key("cores");
    w.begin_array();
    for (const Core& c : ctx_->chip.cores()) {
        const Core::PersistedState s = c.save_state();
        w.begin_array();
        w.value(static_cast<std::uint64_t>(s.state));
        w.value(static_cast<std::int64_t>(s.vf_level));
        w.value(s.reserved);
        w.value(s.last_checkpoint);
        w.value(s.busy_cycles_since_test);
        w.value(s.total_busy_cycles);
        w.value(s.total_busy_time);
        w.value(s.total_test_time);
        w.value(s.birth);
        w.value(s.last_state_change);
        w.value(s.last_test_end);
        w.value(s.tests_completed);
        w.value(s.tests_aborted);
        w.value(s.tasks_executed);
        w.end_array();
    }
    w.end_array();

    w.key("noc");
    w.begin_object();
    w.key("window_bytes");
    w.begin_array();
    for (double v : ctx_->noc.window_bytes()) {
        w.value(v);
    }
    w.end_array();
    w.key("util");
    w.begin_array();
    for (double v : ctx_->noc.smoothed_util()) {
        w.value(v);
    }
    w.end_array();
    w.field("energy", ctx_->noc.total_energy_j());
    w.field("messages", ctx_->noc.messages_sent());
    w.field("bytes", ctx_->noc.bytes_sent());
    w.field("hop_bytes", ctx_->noc.total_hop_bytes());
    w.end_object();

    w.key("metrics");
    write_metrics(w, ctx_->metrics);
    w.key("registry");
    ctx_->registry.save_state(w);
    if (ctx_->tracer != nullptr) {
        w.key("tracer");
        ctx_->tracer->save_state(w);
    }

    w.key("workload");
    workload_->save_state(w);
    w.key("test");
    test_->save_state(w);
    w.key("platform");
    platform_->save_state(w);
    if (scenario_ != nullptr) {
        w.key("scenario");
        scenario_->save_state(w);
    }

    w.key("events");
    w.begin_array();
    for (const SnapshotEvent& e : events) {
        w.begin_object();
        w.field("kind", std::string_view(e.kind));
        w.field("when", e.when);
        w.field("seq", e.seq);
        w.field("a", e.a);
        w.field("b", e.b);
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

// ----------------------------------------------------- restore (facade)

void ManycoreSystem::restore(const telemetry::JsonValue& doc,
                             RestoreOptions opts) {
    telemetry::require_schema(doc, "mcs.snapshot");
    MCS_REQUIRE(!ran_, "restore must precede run()");
    MCS_REQUIRE(!restored_, "restore may only be called once");
    MCS_REQUIRE(
        doc.at("structural_fingerprint").string ==
            structural_fingerprint(cfg_),
        "snapshot structural fingerprint mismatch: chip geometry, workload "
        "model, suite, or enabled subsystems differ from the capture");
    if (!opts.relax_config) {
        MCS_REQUIRE(doc.at("config_fingerprint").string ==
                        config_fingerprint(cfg_),
                    "snapshot config fingerprint mismatch (use relax_config "
                    "to fork under different policy knobs)");
    }

    const SimTime now = doc.at("now").u64();
    const std::uint64_t executed = doc.at("executed").u64();
    restored_horizon_ = doc.at("horizon").u64();
    MCS_REQUIRE(now > 0 && now < restored_horizon_,
                "snapshot clock outside the captured run");

    // A snapshot of a scenario run only restores into a system with the
    // matching driver attached (and vice versa): the driver re-creates
    // injected applications and replays applied side effects below, which
    // a bare system cannot do.
    MCS_REQUIRE(doc.has("scenario") == (scenario_ != nullptr),
                doc.has("scenario")
                    ? "snapshot was captured with a scenario attached; "
                      "attach the same scenario before restore"
                    : "a scenario is attached but the snapshot was captured "
                      "without one");

    // 1. Regenerate the arrival trace under the *snapshot's* seed: the
    //    per-app runtime state loaded below indexes into it, and a forked
    //    replica must continue the captured workload, not invent a new one.
    workload_->restore_workload(restored_horizon_, doc.at("seed").u64());
    if (scenario_ != nullptr) {
        // The driver's replay position loads first so reinject_restored
        // knows which directives had fired; the injected applications must
        // be re-appended before the workload engine's per-app state loads
        // (load_state checks the app count).
        scenario_->load_state(doc.at("scenario"));
        scenario_->reinject_restored();
    }

    // 2. Substrate state.
    const telemetry::JsonValue& budget = doc.at("budget");
    ctx_->budget.load_state(
        budget.at("last_power_w").number, budget.at("samples").u64(),
        budget.at("violations").u64(), budget.at("worst_overshoot_w").number,
        read_running_stats(budget.at("stats")));
    ctx_->map_rng = snapshot::read_rng(doc, "map_rng");

    const auto& cores = doc.at("cores").array;
    MCS_REQUIRE(cores.size() == ctx_->chip.core_count(),
                "snapshot core count mismatch");
    for (std::size_t i = 0; i < cores.size(); ++i) {
        const auto& f = cores[i].array;
        MCS_REQUIRE(cores[i].is_array() && f.size() == 14,
                    "snapshot: malformed core state record");
        const std::uint64_t state = f[0].u64();
        MCS_REQUIRE(state <= 4, "snapshot: core state out of range");
        Core::PersistedState s;
        s.state = static_cast<CoreState>(state);
        s.vf_level = static_cast<int>(f[1].i64());
        MCS_REQUIRE(s.vf_level >= 0 &&
                        static_cast<std::size_t>(s.vf_level) <
                            ctx_->chip.vf_level_count(),
                    "snapshot: core DVFS level out of range");
        s.reserved = f[2].boolean;
        s.last_checkpoint = f[3].u64();
        s.busy_cycles_since_test = f[4].u64();
        s.total_busy_cycles = f[5].u64();
        s.total_busy_time = f[6].u64();
        s.total_test_time = f[7].u64();
        s.birth = f[8].u64();
        s.last_state_change = f[9].u64();
        s.last_test_end = f[10].u64();
        s.tests_completed = f[11].u64();
        s.tests_aborted = f[12].u64();
        s.tasks_executed = f[13].u64();
        ctx_->chip.core(static_cast<CoreId>(i)).load_state(s);
    }

    const telemetry::JsonValue& noc = doc.at("noc");
    std::vector<double> window_bytes;
    for (const auto& v : noc.at("window_bytes").array) {
        window_bytes.push_back(v.number);
    }
    std::vector<double> util;
    for (const auto& v : noc.at("util").array) {
        util.push_back(v.number);
    }
    MCS_REQUIRE(window_bytes.size() == ctx_->noc.link_count() &&
                    util.size() == ctx_->noc.link_count(),
                "snapshot NoC link count mismatch");
    ctx_->noc.load_state(std::move(window_bytes), std::move(util),
                         noc.at("energy").number, noc.at("messages").u64(),
                         noc.at("bytes").u64(), noc.at("hop_bytes").u64());

    read_metrics(doc.at("metrics"), ctx_->metrics);
    ctx_->registry.load_state(doc.at("registry"));
    // The captured trace ring reloads only into an attached tracer (attach
    // it BEFORE restore); restoring without one simply drops the history.
    if (ctx_->tracer != nullptr && doc.has("tracer")) {
        ctx_->tracer->load_state(doc.at("tracer"));
    }

    workload_->load_state(doc.at("workload"));
    test_->load_state(doc.at("test"));
    platform_->load_state(doc.at("platform"));
    if (scenario_ != nullptr) {
        // Applied side effects that live outside the persisted state (the
        // budget's TDP is constructed from config, so a mid-run set_budget
        // directive must be replayed onto the restored budget).
        scenario_->reapply_restored();
    }

    // 3. Clock, then the event manifest in ascending captured sequence.
    //    Each dispatch schedules exactly one event, so the rebuilt queue
    //    breaks timestamp ties exactly as the captured one did.
    ctx_->sim.restore_clock(now, executed);
    // Older snapshots predate the cancellation counter; they restore as 0.
    ctx_->sim.restore_cancelled(
        doc.has("cancelled") ? doc.at("cancelled").u64() : 0);
    const auto& events = doc.at("events").array;
    std::uint64_t prev_seq = 0;
    bool first = true;
    for (const auto& entry : events) {
        const std::string& kind = entry.at("kind").string;
        const SimTime when = entry.at("when").u64();
        const std::uint64_t seq = entry.at("seq").u64();
        MCS_REQUIRE(first || seq > prev_seq,
                    "snapshot events must be strictly ordered by sequence");
        first = false;
        prev_seq = seq;
        MCS_REQUIRE(when > now,
                    "snapshot event at or before the capture point");
        const std::uint64_t a = entry.at("a").u64();
        const std::uint64_t b = entry.at("b").u64();
        bool matched = false;
        for (std::size_t slot = 0; slot < kEpochKinds.size(); ++slot) {
            if (kind == kEpochKinds[slot]) {
                register_epoch(slot, when);
                matched = true;
                break;
            }
        }
        if (matched) {
            continue;
        }
        if (kind == "arrival") {
            workload_->schedule_restored_arrival(
                static_cast<std::size_t>(a), when);
        } else if (kind == "task_complete") {
            workload_->schedule_restored_completion(static_cast<CoreId>(a),
                                                    when);
        } else if (kind == "edge") {
            workload_->schedule_restored_edge(static_cast<std::size_t>(a),
                                              static_cast<TaskIndex>(b),
                                              when);
        } else if (kind == "test_session_complete") {
            test_->schedule_restored_session(static_cast<CoreId>(a), when);
        } else if (kind == "link_test_complete") {
            test_->schedule_restored_link_test(static_cast<LinkId>(a), when);
        } else if (kind == "scenario") {
            MCS_REQUIRE(scenario_ != nullptr,
                        "snapshot has a pending scenario directive but no "
                        "scenario is attached");
            scenario_->schedule_restored_directive(a, when);
        } else {
            MCS_REQUIRE(false, "unknown snapshot event kind");
        }
    }
    for (std::size_t slot = 0; slot < epoch_ids_.size(); ++slot) {
        MCS_REQUIRE(epoch_ids_[slot] != 0,
                    "snapshot is missing a periodic epoch event");
    }
    MCS_REQUIRE(ctx_->sim.pending_events() == events.size(),
                "restored pending events do not match the manifest");
    restored_ = true;
}

}  // namespace mcs
