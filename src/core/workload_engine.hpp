#pragma once

// WorkloadEngine: dynamic application admission and execution. Owns the
// QoS admission queues, the runtime mapper and its per-round platform-view
// cache, the per-core task execution state and the idle predictor; runs the
// mapping rounds, task starts/completions and NoC edge delivery. Testing
// and the power substrate are reached through SystemContext.

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "app/workload.hpp"
#include "core/idle_predictor.hpp"
#include "core/snapshot.hpp"
#include "core/system_context.hpp"
#include "mapping/mapper.hpp"
#include "mapping/view_cache.hpp"

namespace mcs {

class WorkloadEngine {
public:
    /// Builds the mapper from `ctx.cfg`, registers itself (and the idle
    /// predictor) in `ctx` and hooks the power manager's DVFS-change and
    /// QoS-priority callbacks.
    explicit WorkloadEngine(SystemContext& ctx);
    WorkloadEngine(const WorkloadEngine&) = delete;
    WorkloadEngine& operator=(const WorkloadEngine&) = delete;

    /// Generates the arrival trace for `horizon` and schedules one arrival
    /// event per application (called once by the façade before the run).
    void admit_workload(SimDuration horizon);

    /// Arrival event: enqueue into the QoS class queue and try to map.
    void on_arrival(std::size_t app_index);

    /// One mapping round: serve class queues in priority order, mapping
    /// queue heads until the mapper rejects. The platform view is scanned
    /// once per round and patched on each commit (see mapping/view_cache.hpp
    /// for the equivalence argument).
    void try_map_pending();

    /// DVFS transition on `core`: rescale the in-flight task's remaining
    /// cycles and reschedule its completion.
    void on_vf_change(CoreId core, int old_level, int new_level);

    /// QoS class of the work on `core` (0 when idle or priority-blind);
    /// the power manager's priority lookup.
    int priority_of(CoreId core) const;

    // --- seams for unit tests and scenario scripting ---
    /// Appends an application without scheduling an arrival event; drive it
    /// with on_arrival(returned index).
    std::size_t inject(ApplicationSpec spec);
    bool app_mapped(std::size_t app_index) const;
    bool app_done(std::size_t app_index) const;
    std::size_t pending_in_class(std::size_t cls) const;
    std::size_t pending_total() const noexcept { return pending_total_; }
    /// Full chip scans performed by mapping rounds (the view-cache
    /// counter: == rounds that consulted the mapper).
    std::uint64_t chip_scans() const noexcept {
        return view_cache_.chip_scans();
    }
    std::uint64_t mapping_rounds() const noexcept { return mapping_rounds_; }
    /// Individual mapper invocations (> chip_scans() whenever a round
    /// served more than one queued application off one scan).
    std::uint64_t mapping_attempts() const noexcept {
        return mapping_attempts_;
    }
    const Mapper& mapper() const noexcept { return *mapper_; }

    /// Writes the workload-owned slice of the end-of-run metrics
    /// (rejections, throughput, utilization).
    void finalize_into(RunMetrics& m, SimTime end);

    // ---- snapshot support ----
    /// Complete engine state as one JSON object. Application *specs* are
    /// not serialized: they regenerate deterministically from the snapshot
    /// seed (restore_workload), and only the per-app runtime state rides in
    /// the snapshot.
    void save_state(telemetry::JsonWriter& w) const;
    void load_state(const telemetry::JsonValue& doc);
    /// Appends one manifest entry per pending workload event: "arrival"
    /// (a = app index), "task_complete" (a = core) and "edge" (a = app
    /// index, b = destination task).
    void append_event_manifest(std::vector<SnapshotEvent>& out) const;
    /// Restore-path replacement for admit_workload(): regenerates the
    /// arrival trace for the snapshot's horizon and root seed WITHOUT
    /// scheduling arrival events -- the event manifest re-creates the ones
    /// still pending at capture. Must run on a fresh engine.
    void restore_workload(SimDuration horizon, std::uint64_t root_seed);
    void schedule_restored_arrival(std::size_t app_index, SimTime when);
    void schedule_restored_completion(CoreId core, SimTime when);
    void schedule_restored_edge(std::size_t app_index, TaskIndex dst,
                                SimTime when);

private:
    // --- lifecycle of one application ---
    struct AppRun {
        explicit AppRun(ApplicationSpec s) : spec(std::move(s)) {}

        ApplicationSpec spec;
        bool done = false;
        bool corrupted = false;  ///< any task or message silently corrupted
        std::vector<CoreId> task_core;       ///< core of task i
        std::vector<std::uint32_t> waiting;  ///< undelivered preds of task i
        std::size_t tasks_done = 0;
    };

    /// Execution state of the task currently on a core.
    struct CoreExec {
        bool active = false;
        std::size_t app_index = 0;
        TaskIndex task = 0;
        double remaining_cycles = 0.0;
        SimTime last_progress = 0;
        EventId completion{};
    };

    void commit_mapping(std::size_t app_index, const MappingResult& result);
    void rebuild_view(PlatformViewCache& cache);
    void start_task(std::size_t app_index, TaskIndex task);
    void on_task_complete(CoreId core);
    void deliver_edge(std::size_t app_index, TaskIndex dst);
    void release_app(std::size_t app_index);

    SystemContext& ctx_;
    std::unique_ptr<Mapper> mapper_;
    IdlePredictor idle_predictor_;
    PlatformViewCache view_cache_;
    PlatformViewCache::Rebuild rebuild_;

    std::vector<AppRun> apps_;
    /// One FIFO admission queue per QoS class; higher classes are served
    /// first each mapping round (work-conserving: a blocked high-class head
    /// does not stall lower classes).
    std::array<std::deque<std::size_t>, kQosClassCount> pending_;
    std::size_t pending_total_ = 0;
    std::vector<CoreExec> core_exec_;
    bool mapping_in_progress_ = false;
    std::uint64_t mapping_rounds_ = 0;
    std::uint64_t mapping_attempts_ = 0;
    /// Arrival event per app, parallel to apps_ (invalid once fired, and
    /// for injected apps, which never had one). Snapshot bookkeeping only.
    std::vector<EventId> arrival_events_;
    /// In-flight NoC edge deliveries keyed by their event sequence number
    /// (erased as each delivery fires). Snapshot bookkeeping only.
    std::map<std::uint64_t, std::pair<std::size_t, TaskIndex>>
        inflight_edges_;
};

}  // namespace mcs
