#include "core/test_engine.hpp"

#include <algorithm>
#include <utility>

#include "core/idle_predictor.hpp"
#include "core/platform_engine.hpp"
#include "core/schedulers.hpp"
#include "core/system.hpp"
#include "core/workload_engine.hpp"
#include "power/power_manager.hpp"
#include "power/power_model.hpp"
#include "thermal/thermal_model.hpp"
#include "util/require.hpp"

namespace mcs {

namespace {

std::unique_ptr<TestScheduler> make_scheduler(const SystemConfig& cfg) {
    if (cfg.scheduler_factory) {
        auto scheduler = cfg.scheduler_factory();
        MCS_REQUIRE(scheduler != nullptr, "scheduler factory returned null");
        return scheduler;
    }
    switch (cfg.scheduler) {
        case SchedulerKind::PowerAware:
            return std::make_unique<PowerAwareTestScheduler>(cfg.power_aware);
        case SchedulerKind::Periodic:
            return std::make_unique<PeriodicTestScheduler>(
                cfg.periodic_test_period);
        case SchedulerKind::Greedy:
            return std::make_unique<GreedyTestScheduler>();
        case SchedulerKind::None:
            return std::make_unique<NullTestScheduler>();
    }
    MCS_REQUIRE(false, "unknown scheduler kind");
    return nullptr;
}

}  // namespace

TestEngine::TestEngine(SystemContext& ctx)
    : ctx_(ctx), scheduler_(make_scheduler(ctx.cfg)) {
    if (ctx_.cfg.enable_noc_testing) {
        link_tester_.emplace(ctx_.noc.link_count(), ctx_.cfg.noc_test,
                             ctx_.cfg.seed ^ 0xd1b54a32d192ed03ULL);
        last_link_test_.assign(ctx_.noc.link_count(), 0);
        link_test_active_.assign(ctx_.noc.link_count(), 0);
    }
    test_exec_.resize(ctx_.chip.core_count());
    test_progress_.assign(ctx_.chip.core_count(), 0);
    last_test_done_.assign(ctx_.chip.core_count(), 0);
    last_test_abort_.assign(ctx_.chip.core_count(), 0);
    ctx_.link_tester = link_tester_ ? &*link_tester_ : nullptr;
    ctx_.test = this;
}

void TestEngine::test_epoch() {
    const SimTime now = ctx_.sim.now();
    const std::vector<double>& crit =
        ctx_.platform->refresh_criticality(now);
    SchedulerContext sctx;
    sctx.now = now;
    sctx.tdp_w = ctx_.budget.tdp_w();
    sctx.power_slack_w = ctx_.power_mgr->headroom_w();
    sctx.tests_running = tests_running_;
    sctx.vf_table = &ctx_.chip.vf_table();
    for (const Core& c : ctx_.chip.cores()) {
        if (c.reserved()) {
            continue;
        }
        if (c.state() == CoreState::Idle || c.state() == CoreState::Dark) {
            if (last_test_abort_[c.id()] != 0 &&
                now - last_test_abort_[c.id()] <
                    ctx_.cfg.test_retry_backoff) {
                continue;  // cool down after an aborted session
            }
            sctx.candidates.push_back(TestCandidate{
                c.id(), crit[c.id()], c.state() == CoreState::Dark,
                now - c.last_state_change(), ctx_.thermal->temp_c(c.id()),
                ctx_.idle_predictor->predict_remaining(c.id(), now)});
        }
    }
    sctx.test_power_w = [this](CoreId core, int level) {
        const Core& c = ctx_.chip.core(core);
        const double temp = ctx_.thermal->temp_c(core);
        const double now_w =
            ctx_.power_model->core_power_w(c.state(), c.vf_level(), temp);
        return std::max(
            0.0, ctx_.power_model->test_power_w(level, temp) - now_w);
    };
    sctx.test_duration = [this](int level) {
        return duration_for_cycles(
            ctx_.suite.total_cycles(),
            ctx_.chip.vf_table()[static_cast<std::size_t>(level)].freq_hz);
    };
    sctx.start_test = [this](CoreId core, int level) {
        start_test_session(core, level);
    };
    sctx.tracer = ctx_.tracer;
    scheduler_->epoch(sctx);
    if (link_tester_) {
        schedule_link_tests(now);
    }
}

void TestEngine::schedule_link_tests(SimTime now) {
    const NocTestParams& p = ctx_.cfg.noc_test;
    // Rank overdue links by how far past their target period they are.
    std::vector<std::pair<double, LinkId>> overdue;
    const std::size_t links = ctx_.noc.link_count();
    for (std::size_t l = 0; l < links; ++l) {
        if (link_test_active_[l]) {
            continue;
        }
        if (ctx_.noc.link_utilization(static_cast<LinkId>(l)) >
            p.max_test_utilization) {
            continue;  // busy link: testing would congest real traffic
        }
        const double crit =
            static_cast<double>(now - last_link_test_[l]) /
            static_cast<double>(p.test_period_target);
        if (crit >= 1.0) {
            overdue.push_back({crit, static_cast<LinkId>(l)});
        }
    }
    std::sort(overdue.begin(), overdue.end(),
              [](const auto& a, const auto& b) {
                  if (a.first != b.first) {
                      return a.first > b.first;
                  }
                  return a.second < b.second;
              });
    for (const auto& [crit, link] : overdue) {
        if (link_tests_running_ >= p.max_concurrent_tests) {
            break;
        }
        if (ctx_.power_mgr->headroom_w() < p.test_power_w) {
            break;  // link tests ride the same budget as core tests
        }
        ctx_.power_mgr->reserve_power(p.test_power_w);
        ctx_.noc.inject_link_load(link, p.test_bytes);
        link_test_active_[link] = 1;
        ++link_tests_running_;
        const SimDuration dur = std::max<SimDuration>(
            1, ctx_.noc.link_transfer_time(p.test_bytes));
        const LinkId id = link;
        ctx_.sim.schedule_in(dur, [this, id] { on_link_test_complete(id); });
    }
}

void TestEngine::on_link_test_complete(LinkId link) {
    const SimTime now = ctx_.sim.now();
    link_test_active_[link] = 0;
    --link_tests_running_;
    last_link_test_[link] = now;
    ++ctx_.metrics.link_tests_completed;
    if (auto detected = link_tester_->attempt_detection(link, now)) {
        ctx_.metrics.link_detection_latency_s.add(
            to_seconds(now - detected->injected));
    }
}

void TestEngine::start_test_session(CoreId core, int vf_level) {
    const SimTime now = ctx_.sim.now();
    Core& c = ctx_.chip.core(core);
    MCS_REQUIRE(!c.reserved(), "cannot test a reserved core");
    if (c.state() == CoreState::Dark) {
        ctx_.power_mgr->wake_core(now, core, ctx_.thermal->temp_c(core));
    }
    MCS_REQUIRE(c.is_idle(), "test target must be idle");
    // Charge the test's power increment (over the idle power the core was
    // already burning) to the power ledger.
    const double temp = ctx_.thermal->temp_c(core);
    const double idle_before =
        ctx_.power_model->core_power_w(c.state(), c.vf_level(), temp);
    c.set_vf_level(now, vf_level);
    c.start_test(now);
    ctx_.power_mgr->reserve_power(std::max(
        0.0, ctx_.power_model->test_power_w(vf_level, temp) - idle_before));
    ctx_.power_mgr->touch(now, core);
    TestExec& ex = test_exec_[core];
    MCS_REQUIRE(!ex.active, "test already running on core");
    ex.active = true;
    ex.vf_level = vf_level;
    ++tests_running_;
    ctx_.observers.test_session_begin(now, core, vf_level);
    if (ctx_.cfg.segmented_tests) {
        const auto& routine = ctx_.suite.routines()[test_progress_[core]];
        const SimDuration dur = std::max<SimDuration>(
            1, duration_for_cycles(routine.cycles, c.freq_hz()));
        ex.completion = ctx_.sim.schedule_in(dur, [this, core] {
            on_routine_complete(core);
        });
    } else {
        const SimDuration dur = std::max<SimDuration>(
            1, duration_for_cycles(ctx_.suite.total_cycles(), c.freq_hz()));
        ex.completion = ctx_.sim.schedule_in(dur, [this, core] {
            on_test_complete(core);
        });
    }
}

void TestEngine::on_routine_complete(CoreId core) {
    TestExec& ex = test_exec_[core];
    MCS_REQUIRE(ex.active, "routine completion for inactive core");
    if (++test_progress_[core] == ctx_.suite.routine_count()) {
        test_progress_[core] = 0;
        on_test_complete(core);
        return;
    }
    const auto& routine = ctx_.suite.routines()[test_progress_[core]];
    const SimDuration dur = std::max<SimDuration>(
        1, duration_for_cycles(routine.cycles,
                               ctx_.chip.core(core).freq_hz()));
    ex.completion = ctx_.sim.schedule_in(dur, [this, core] {
        on_routine_complete(core);
    });
}

void TestEngine::on_test_complete(CoreId core) {
    const SimTime now = ctx_.sim.now();
    TestExec& ex = test_exec_[core];
    MCS_REQUIRE(ex.active, "test completion for inactive core");
    ex.active = false;
    --tests_running_;
    Core& c = ctx_.chip.core(core);
    c.finish_test(now, /*completed=*/true);
    // Return to the frugal idle point; a task grant or the capping loop
    // decides the next operating level.
    c.set_vf_level(now, 0);
    ctx_.power_mgr->touch(now, core);
    ++ctx_.metrics.tests_completed;
    ctx_.observers.test_session_complete(now, core, ex.vf_level);
    // The histogram counts *completed* suites per level (aborted sessions
    // are tracked separately via tests_aborted).
    ++ctx_.metrics
          .tests_per_vf_level[static_cast<std::size_t>(ex.vf_level)];
    // Only closed test-to-test gaps enter the interval statistic (the
    // boot-to-first-test gap is a different quantity; the worst open gap
    // is reported separately as max_open_test_gap_s).
    if (last_test_done_[core] != 0) {
        ctx_.metrics.test_interval_s.add(
            to_seconds(now - last_test_done_[core]));
    }
    last_test_done_[core] = now;

    if (ctx_.faults != nullptr) {
        // Approximation: a segmented suite assembled across several
        // sessions rolls detection at the level of its final session.
        if (auto detected = ctx_.faults->attempt_detection(
                core, now, ctx_.suite, ex.vf_level,
                static_cast<int>(ctx_.chip.vf_level_count()))) {
            c.mark_faulty(now);
            ctx_.idle_predictor->notify_unavailable(core, now);
            const double latency_s = to_seconds(now - detected->injected);
            ctx_.metrics.detection_latency_s.add(latency_s);
            ctx_.metrics.detection_latency_samples.add(latency_s);
        }
    }
    ctx_.workload->try_map_pending();
}

void TestEngine::abort_test(CoreId core) {
    const SimTime now = ctx_.sim.now();
    TestExec& ex = test_exec_[core];
    MCS_REQUIRE(ex.active, "abort for inactive test");
    ctx_.sim.cancel(ex.completion);
    ex.active = false;
    --tests_running_;
    Core& c = ctx_.chip.core(core);
    c.finish_test(now, /*completed=*/false);
    c.set_vf_level(now, 0);  // frugal idle until reassigned
    last_test_abort_[core] = now;
    ++ctx_.metrics.tests_aborted;
    ctx_.observers.test_session_abort(now, core, ex.vf_level);
}

void TestEngine::wear_step(SimTime now, double dt_s) {
    if (link_tester_) {
        link_tester_->step(now, dt_s);
    }
}

void TestEngine::finalize_into(RunMetrics& m, SimTime end) {
    const double secs = to_seconds(end);
    std::size_t untested = 0;
    double max_open_gap = 0.0;
    for (const Core& c : ctx_.chip.cores()) {
        if (c.state() == CoreState::Faulty) {
            continue;  // decommissioned: no longer a test target
        }
        if (c.tests_completed() == 0) {
            ++untested;
        }
        max_open_gap = std::max(
            max_open_gap, to_seconds(end - last_test_done_[c.id()]));
    }
    m.untested_core_fraction = static_cast<double>(untested) /
                               static_cast<double>(ctx_.chip.core_count());
    m.max_open_test_gap_s = max_open_gap;
    m.tests_per_core_per_s = static_cast<double>(m.tests_completed) /
                             static_cast<double>(ctx_.chip.core_count()) /
                             secs;

    if (link_tester_) {
        m.link_faults_injected = link_tester_->injected_count();
        m.link_faults_detected = link_tester_->detected_count();
        m.link_test_escapes = link_tester_->escaped_tests();
        m.corrupted_messages = link_tester_->corrupted_messages();
        double max_gap = 0.0;
        for (SimTime t : last_link_test_) {
            max_gap = std::max(max_gap, to_seconds(end - t));
        }
        m.max_open_link_test_gap_s = max_gap;
    }

    scheduler_->export_telemetry(ctx_.registry);
}

}  // namespace mcs
