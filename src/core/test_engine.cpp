#include "core/test_engine.hpp"

#include <algorithm>
#include <utility>

#include "core/idle_predictor.hpp"
#include "core/platform_engine.hpp"
#include "core/schedulers.hpp"
#include "core/system.hpp"
#include "core/workload_engine.hpp"
#include "power/power_manager.hpp"
#include "power/power_model.hpp"
#include "telemetry/json.hpp"
#include "thermal/thermal_model.hpp"
#include "util/require.hpp"

namespace mcs {

namespace {

std::unique_ptr<TestScheduler> make_scheduler(const SystemConfig& cfg) {
    if (cfg.scheduler_factory) {
        auto scheduler = cfg.scheduler_factory();
        MCS_REQUIRE(scheduler != nullptr, "scheduler factory returned null");
        return scheduler;
    }
    switch (cfg.scheduler) {
        case SchedulerKind::PowerAware:
            return std::make_unique<PowerAwareTestScheduler>(cfg.power_aware);
        case SchedulerKind::Periodic:
            return std::make_unique<PeriodicTestScheduler>(
                cfg.periodic_test_period);
        case SchedulerKind::Greedy:
            return std::make_unique<GreedyTestScheduler>();
        case SchedulerKind::None:
            return std::make_unique<NullTestScheduler>();
        case SchedulerKind::DeadlineAware:
            return std::make_unique<DeadlineAwareTestScheduler>(
                cfg.periodic_test_period,
                cfg.power_aware.guard_band_fraction,
                cfg.power_aware.max_concurrent_tests);
    }
    MCS_REQUIRE(false, "unknown scheduler kind");
    return nullptr;
}

}  // namespace

TestEngine::TestEngine(SystemContext& ctx)
    : ctx_(ctx), scheduler_(make_scheduler(ctx.cfg)) {
    if (ctx_.cfg.enable_noc_testing) {
        link_tester_.emplace(ctx_.noc.link_count(), ctx_.cfg.noc_test,
                             ctx_.cfg.seed ^ 0xd1b54a32d192ed03ULL);
        last_link_test_.assign(ctx_.noc.link_count(), 0);
        link_test_active_.assign(ctx_.noc.link_count(), 0);
        link_test_events_.assign(ctx_.noc.link_count(), EventId{});
    }
    test_exec_.resize(ctx_.chip.core_count());
    test_progress_.assign(ctx_.chip.core_count(), 0);
    last_test_done_.assign(ctx_.chip.core_count(), 0);
    last_test_abort_.assign(ctx_.chip.core_count(), 0);
    candidacy_.bind(&ctx_.chip.lanes(), &last_test_abort_,
                    ctx_.cfg.test_retry_backoff);
    ctx_.link_tester = link_tester_ ? &*link_tester_ : nullptr;
    ctx_.test = this;
}

void TestEngine::test_epoch() {
    const SimTime now = ctx_.sim.now();
    const std::vector<double>& crit =
        ctx_.platform->refresh_criticality(now);
    SchedulerContext sctx;
    sctx.now = now;
    sctx.tdp_w = ctx_.budget.tdp_w();
    sctx.power_slack_w = ctx_.power_mgr->headroom_w();
    sctx.tests_running = tests_running_;
    sctx.vf_table = &ctx_.chip.vf_table();
    // Candidate ids come from the patched candidacy view (no chip rescan;
    // equivalence argument in core/test_candidacy.hpp). The per-candidate
    // field reads are pure, so the fill is sharded into per-member scratch
    // slots; the commit loop then pushes the slots in member (= core)
    // order, so the candidate list is identical for any worker count.
    const std::vector<CoreId>& members = candidacy_.members(now);
    const CoreLanes& lanes = ctx_.chip.lanes();
    cand_buf_.resize(members.size());
    ctx_.epoch.for_slabs(
        members.size(), [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                const CoreId id = members[i];
                cand_buf_[i] = TestCandidate{
                    id, crit[id], lanes.state[id] == CoreState::Dark,
                    now - lanes.last_state_change[id], lanes.temp_c[id],
                    ctx_.idle_predictor->predict_remaining(id, now)};
            }
        });
    sctx.candidates.assign(cand_buf_.begin(), cand_buf_.end());
    sctx.test_power_w = [this](CoreId core, int level) {
        const Core& c = ctx_.chip.core(core);
        const double temp = ctx_.thermal->temp_c(core);
        const double now_w =
            ctx_.power_model->core_power_w(c.state(), c.vf_level(), temp);
        return std::max(
            0.0, ctx_.power_model->test_power_w(level, temp) - now_w);
    };
    sctx.test_duration = [this](int level) {
        return duration_for_cycles(
            ctx_.suite.total_cycles(),
            ctx_.chip.vf_table()[static_cast<std::size_t>(level)].freq_hz);
    };
    sctx.start_test = [this](CoreId core, int level) {
        start_test_session(core, level);
    };
    sctx.tracer = ctx_.tracer;
    scheduler_->epoch(sctx);
    if (link_tester_) {
        schedule_link_tests(now);
    }
}

void TestEngine::schedule_link_tests(SimTime now) {
    const NocTestParams& p = ctx_.cfg.noc_test;
    // Rank overdue links by how far past their target period they are.
    std::vector<std::pair<double, LinkId>> overdue;
    const std::size_t links = ctx_.noc.link_count();
    for (std::size_t l = 0; l < links; ++l) {
        if (link_test_active_[l]) {
            continue;
        }
        if (ctx_.noc.link_utilization(static_cast<LinkId>(l)) >
            p.max_test_utilization) {
            continue;  // busy link: testing would congest real traffic
        }
        const double crit =
            static_cast<double>(now - last_link_test_[l]) /
            static_cast<double>(p.test_period_target);
        if (crit >= 1.0) {
            overdue.push_back({crit, static_cast<LinkId>(l)});
        }
    }
    std::sort(overdue.begin(), overdue.end(),
              [](const auto& a, const auto& b) {
                  if (a.first != b.first) {
                      return a.first > b.first;
                  }
                  return a.second < b.second;
              });
    for (const auto& [crit, link] : overdue) {
        if (link_tests_running_ >= p.max_concurrent_tests) {
            break;
        }
        if (ctx_.power_mgr->headroom_w() < p.test_power_w) {
            break;  // link tests ride the same budget as core tests
        }
        ctx_.power_mgr->reserve_power(p.test_power_w);
        ctx_.noc.inject_link_load(link, p.test_bytes);
        link_test_active_[link] = 1;
        ++link_tests_running_;
        const SimDuration dur = std::max<SimDuration>(
            1, ctx_.noc.link_transfer_time(p.test_bytes));
        const LinkId id = link;
        link_test_events_[link] = ctx_.sim.schedule_in(
            dur, [this, id] { on_link_test_complete(id); });
    }
}

void TestEngine::on_link_test_complete(LinkId link) {
    const SimTime now = ctx_.sim.now();
    link_test_active_[link] = 0;
    --link_tests_running_;
    last_link_test_[link] = now;
    ++ctx_.metrics.link_tests_completed;
    if (auto detected = link_tester_->attempt_detection(link, now)) {
        ctx_.metrics.link_detection_latency_s.add(
            to_seconds(now - detected->injected));
    }
}

void TestEngine::start_test_session(CoreId core, int vf_level) {
    const SimTime now = ctx_.sim.now();
    Core& c = ctx_.chip.core(core);
    MCS_REQUIRE(!c.reserved(), "cannot test a reserved core");
    if (c.state() == CoreState::Dark) {
        ctx_.power_mgr->wake_core(now, core, ctx_.thermal->temp_c(core));
    }
    MCS_REQUIRE(c.is_idle(), "test target must be idle");
    // Charge the test's power increment (over the idle power the core was
    // already burning) to the power ledger.
    const double temp = ctx_.thermal->temp_c(core);
    const double idle_before =
        ctx_.power_model->core_power_w(c.state(), c.vf_level(), temp);
    c.set_vf_level(now, vf_level);
    c.start_test(now);
    ctx_.power_mgr->reserve_power(std::max(
        0.0, ctx_.power_model->test_power_w(vf_level, temp) - idle_before));
    ctx_.power_mgr->touch(now, core);
    TestExec& ex = test_exec_[core];
    MCS_REQUIRE(!ex.active, "test already running on core");
    ex.active = true;
    ex.vf_level = vf_level;
    ++tests_running_;
    ctx_.observers.test_session_begin(now, core, vf_level);
    if (ctx_.cfg.segmented_tests) {
        const auto& routine = ctx_.suite.routines()[test_progress_[core]];
        const SimDuration dur = std::max<SimDuration>(
            1, duration_for_cycles(routine.cycles, c.freq_hz()));
        ex.completion = ctx_.sim.schedule_in(dur, [this, core] {
            on_routine_complete(core);
        });
    } else {
        const SimDuration dur = std::max<SimDuration>(
            1, duration_for_cycles(ctx_.suite.total_cycles(), c.freq_hz()));
        ex.completion = ctx_.sim.schedule_in(dur, [this, core] {
            on_test_complete(core);
        });
    }
}

void TestEngine::on_routine_complete(CoreId core) {
    TestExec& ex = test_exec_[core];
    MCS_REQUIRE(ex.active, "routine completion for inactive core");
    if (++test_progress_[core] == ctx_.suite.routine_count()) {
        test_progress_[core] = 0;
        on_test_complete(core);
        return;
    }
    const auto& routine = ctx_.suite.routines()[test_progress_[core]];
    const SimDuration dur = std::max<SimDuration>(
        1, duration_for_cycles(routine.cycles,
                               ctx_.chip.core(core).freq_hz()));
    ex.completion = ctx_.sim.schedule_in(dur, [this, core] {
        on_routine_complete(core);
    });
}

void TestEngine::on_test_complete(CoreId core) {
    const SimTime now = ctx_.sim.now();
    TestExec& ex = test_exec_[core];
    MCS_REQUIRE(ex.active, "test completion for inactive core");
    ex.active = false;
    --tests_running_;
    Core& c = ctx_.chip.core(core);
    c.finish_test(now, /*completed=*/true);
    // Return to the frugal idle point; a task grant or the capping loop
    // decides the next operating level.
    c.set_vf_level(now, 0);
    ctx_.power_mgr->touch(now, core);
    ++ctx_.metrics.tests_completed;
    ctx_.observers.test_session_complete(now, core, ex.vf_level);
    // The histogram counts *completed* suites per level (aborted sessions
    // are tracked separately via tests_aborted).
    ++ctx_.metrics
          .tests_per_vf_level[static_cast<std::size_t>(ex.vf_level)];
    // Only closed test-to-test gaps enter the interval statistic (the
    // boot-to-first-test gap is a different quantity; the worst open gap
    // is reported separately as max_open_test_gap_s).
    if (last_test_done_[core] != 0) {
        ctx_.metrics.test_interval_s.add(
            to_seconds(now - last_test_done_[core]));
    }
    last_test_done_[core] = now;

    if (ctx_.faults != nullptr) {
        // Approximation: a segmented suite assembled across several
        // sessions rolls detection at the level of its final session.
        if (auto detected = ctx_.faults->attempt_detection(
                core, now, ctx_.suite, ex.vf_level,
                static_cast<int>(ctx_.chip.vf_level_count()))) {
            c.mark_faulty(now);
            ctx_.idle_predictor->notify_unavailable(core, now);
            const double latency_s = to_seconds(now - detected->injected);
            ctx_.metrics.detection_latency_s.add(latency_s);
            ctx_.metrics.detection_latency_samples.add(latency_s);
        }
    }
    ctx_.workload->try_map_pending();
}

void TestEngine::abort_test(CoreId core) {
    const SimTime now = ctx_.sim.now();
    TestExec& ex = test_exec_[core];
    MCS_REQUIRE(ex.active, "abort for inactive test");
    ctx_.sim.cancel(ex.completion);
    ex.active = false;
    --tests_running_;
    Core& c = ctx_.chip.core(core);
    c.finish_test(now, /*completed=*/false);
    c.set_vf_level(now, 0);  // frugal idle until reassigned
    last_test_abort_[core] = now;
    ++ctx_.metrics.tests_aborted;
    ctx_.observers.test_session_abort(now, core, ex.vf_level);
}

void TestEngine::wear_step(SimTime now, double dt_s) {
    if (link_tester_) {
        link_tester_->step(now, dt_s);
    }
}

// ------------------------------------------------------ snapshot support

void TestEngine::save_state(telemetry::JsonWriter& w) const {
    w.begin_object();
    w.field("scheduler", scheduler_->name());
    w.key("scheduler_state");
    w.begin_object();
    scheduler_->save_state(w);
    w.end_object();
    w.key("exec");
    w.begin_array();
    for (const TestExec& ex : test_exec_) {
        w.begin_object();
        w.field("active", ex.active);
        w.field("vf", static_cast<std::int64_t>(ex.vf_level));
        w.end_object();
    }
    w.end_array();
    w.key("progress");
    w.begin_array();
    for (std::size_t p : test_progress_) {
        w.value(static_cast<std::uint64_t>(p));
    }
    w.end_array();
    w.key("last_done");
    w.begin_array();
    for (SimTime t : last_test_done_) {
        w.value(t);
    }
    w.end_array();
    w.key("last_abort");
    w.begin_array();
    for (SimTime t : last_test_abort_) {
        w.value(t);
    }
    w.end_array();
    w.field("tests_running", static_cast<std::int64_t>(tests_running_));
    if (link_tester_) {
        w.key("link");
        w.begin_object();
        w.key("last_test");
        w.begin_array();
        for (SimTime t : last_link_test_) {
            w.value(t);
        }
        w.end_array();
        w.key("active");
        w.begin_array();
        for (std::uint8_t a : link_test_active_) {
            w.value(a != 0);
        }
        w.end_array();
        w.field("running", static_cast<std::int64_t>(link_tests_running_));
        snapshot::write_rng(w, "rng", link_tester_->rng());
        snapshot::write_latent_slots(w, "latent",
                                     link_tester_->latent_slots());
        w.key("history");
        w.begin_array();
        for (const LinkFault& f : link_tester_->history()) {
            w.begin_object();
            w.field("link", static_cast<std::uint64_t>(f.link));
            w.field("injected", f.injected);
            w.field("detected", f.detected);
            w.field("detected_at", f.detected_at);
            w.end_object();
        }
        w.end_array();
        w.field("detected", link_tester_->detected_count());
        w.field("escaped", link_tester_->escaped_tests());
        w.field("corrupted", link_tester_->corrupted_messages());
        w.end_object();
    }
    w.end_object();
}

void TestEngine::load_state(const telemetry::JsonValue& doc) {
    // Scheduler state only transfers between identical policies; a relaxed
    // restore under a different policy starts that policy fresh.
    if (doc.at("scheduler").string == scheduler_->name()) {
        scheduler_->load_state(doc.at("scheduler_state"));
    }
    const auto& exec = doc.at("exec").array;
    MCS_REQUIRE(exec.size() == test_exec_.size(),
                "snapshot test engine: core count mismatch");
    for (std::size_t c = 0; c < exec.size(); ++c) {
        test_exec_[c].active = exec[c].at("active").boolean;
        test_exec_[c].vf_level =
            static_cast<int>(exec[c].at("vf").i64());
        test_exec_[c].completion = EventId{};  // re-created from manifest
    }
    const auto& progress = doc.at("progress").array;
    MCS_REQUIRE(progress.size() == test_progress_.size(),
                "snapshot test engine: progress size mismatch");
    for (std::size_t c = 0; c < progress.size(); ++c) {
        test_progress_[c] = static_cast<std::size_t>(progress[c].u64());
        MCS_REQUIRE(test_progress_[c] < ctx_.suite.routine_count(),
                    "snapshot test engine: suite progress out of range");
    }
    const auto& done = doc.at("last_done").array;
    const auto& abort = doc.at("last_abort").array;
    MCS_REQUIRE(done.size() == last_test_done_.size() &&
                    abort.size() == last_test_abort_.size(),
                "snapshot test engine: stamp size mismatch");
    for (std::size_t c = 0; c < done.size(); ++c) {
        last_test_done_[c] = done[c].u64();
        last_test_abort_[c] = abort[c].u64();
    }
    tests_running_ = static_cast<int>(doc.at("tests_running").i64());
    if (link_tester_) {
        const telemetry::JsonValue& link = doc.at("link");
        const auto& last = link.at("last_test").array;
        const auto& active = link.at("active").array;
        MCS_REQUIRE(last.size() == last_link_test_.size() &&
                        active.size() == link_test_active_.size(),
                    "snapshot test engine: link count mismatch");
        for (std::size_t l = 0; l < last.size(); ++l) {
            last_link_test_[l] = last[l].u64();
            link_test_active_[l] = active[l].boolean ? 1 : 0;
            link_test_events_[l] = EventId{};
        }
        link_tests_running_ =
            static_cast<int>(link.at("running").i64());
        std::vector<LinkFault> history;
        for (const auto& f : link.at("history").array) {
            history.push_back(LinkFault{
                static_cast<LinkId>(f.at("link").u64()),
                f.at("injected").u64(), f.at("detected").boolean,
                f.at("detected_at").u64()});
        }
        auto latent =
            snapshot::read_latent_slots(link, "latent", history.size());
        MCS_REQUIRE(latent.size() == ctx_.noc.link_count(),
                    "snapshot test engine: latent slot count mismatch");
        link_tester_->load_state(snapshot::read_rng(link, "rng"),
                                 std::move(latent), std::move(history),
                                 link.at("detected").u64(),
                                 link.at("escaped").u64(),
                                 link.at("corrupted").u64());
    }
    // The abort stamps (and, via Core::load_state, every state lane) were
    // just rewritten wholesale; rebuild the candidate view from scratch.
    candidacy_.invalidate();
}

void TestEngine::append_event_manifest(
    std::vector<SnapshotEvent>& out) const {
    for (std::size_t c = 0; c < test_exec_.size(); ++c) {
        const TestExec& ex = test_exec_[c];
        if (!ex.active) {
            continue;
        }
        MCS_REQUIRE(ctx_.sim.is_pending(ex.completion),
                    "active test without a pending completion event");
        out.push_back({"test_session_complete",
                       ctx_.sim.event_time(ex.completion), ex.completion.seq,
                       static_cast<std::uint64_t>(c), 0});
    }
    for (std::size_t l = 0; l < link_test_active_.size(); ++l) {
        if (!link_test_active_[l]) {
            continue;
        }
        const EventId id = link_test_events_[l];
        MCS_REQUIRE(id.valid() && ctx_.sim.is_pending(id),
                    "active link test without a pending completion event");
        out.push_back({"link_test_complete", ctx_.sim.event_time(id), id.seq,
                       static_cast<std::uint64_t>(l), 0});
    }
}

void TestEngine::schedule_restored_session(CoreId core, SimTime when) {
    MCS_REQUIRE(core < test_exec_.size(),
                "snapshot manifest: test core out of range");
    TestExec& ex = test_exec_[core];
    MCS_REQUIRE(ex.active, "snapshot manifest: session on inactive core");
    MCS_REQUIRE(!ex.completion.valid(),
                "snapshot manifest: duplicate session for core");
    // Segmentation is structural (cfg.segmented_tests is part of the
    // structural fingerprint), so the captured pending event and the
    // restored one dispatch through the same completion path.
    if (ctx_.cfg.segmented_tests) {
        ex.completion = ctx_.sim.schedule_at(
            when, [this, core] { on_routine_complete(core); });
    } else {
        ex.completion = ctx_.sim.schedule_at(
            when, [this, core] { on_test_complete(core); });
    }
}

void TestEngine::schedule_restored_link_test(LinkId link, SimTime when) {
    MCS_REQUIRE(link < link_test_active_.size(),
                "snapshot manifest: link out of range");
    MCS_REQUIRE(link_test_active_[link] != 0,
                "snapshot manifest: link test on inactive link");
    MCS_REQUIRE(!link_test_events_[link].valid(),
                "snapshot manifest: duplicate link test");
    link_test_events_[link] = ctx_.sim.schedule_at(
        when, [this, link] { on_link_test_complete(link); });
}

void TestEngine::finalize_into(RunMetrics& m, SimTime end) {
    const double secs = to_seconds(end);
    std::size_t untested = 0;
    double max_open_gap = 0.0;
    for (const Core& c : ctx_.chip.cores()) {
        if (c.state() == CoreState::Faulty) {
            continue;  // decommissioned: no longer a test target
        }
        if (c.tests_completed() == 0) {
            ++untested;
        }
        max_open_gap = std::max(
            max_open_gap, to_seconds(end - last_test_done_[c.id()]));
    }
    m.untested_core_fraction = static_cast<double>(untested) /
                               static_cast<double>(ctx_.chip.core_count());
    m.max_open_test_gap_s = max_open_gap;
    m.tests_per_core_per_s = static_cast<double>(m.tests_completed) /
                             static_cast<double>(ctx_.chip.core_count()) /
                             secs;

    if (link_tester_) {
        m.link_faults_injected = link_tester_->injected_count();
        m.link_faults_detected = link_tester_->detected_count();
        m.link_test_escapes = link_tester_->escaped_tests();
        m.corrupted_messages = link_tester_->corrupted_messages();
        double max_gap = 0.0;
        for (SimTime t : last_link_test_) {
            max_gap = std::max(max_gap, to_seconds(end - t));
        }
        m.max_open_link_test_gap_s = max_gap;
    }

    scheduler_->export_telemetry(ctx_.registry);
}

}  // namespace mcs
