#include "core/workload_engine.hpp"

#include <algorithm>
#include <cmath>

#include "core/platform_engine.hpp"
#include "core/system.hpp"
#include "core/test_engine.hpp"
#include "thermal/thermal_model.hpp"
#include "mapping/contiguous_mapper.hpp"
#include "mapping/reliability_mapper.hpp"
#include "noc/link_test.hpp"
#include "power/power_manager.hpp"
#include "telemetry/json.hpp"
#include "util/require.hpp"

namespace mcs {

namespace {

std::unique_ptr<Mapper> make_mapper(const SystemConfig& cfg) {
    if (cfg.mapper_factory) {
        auto mapper = cfg.mapper_factory();
        MCS_REQUIRE(mapper != nullptr, "mapper factory returned null");
        return mapper;
    }
    switch (cfg.mapper) {
        case MapperKind::TestAware:
            return std::make_unique<ContiguousMapper>(
                ContiguousMapper::test_aware());
        case MapperKind::ThermalAware:
            return std::make_unique<ContiguousMapper>(
                ContiguousMapper::thermal_aware());
        case MapperKind::UtilizationOriented:
            return std::make_unique<ContiguousMapper>(
                ContiguousMapper::utilization_oriented());
        case MapperKind::Contiguous:
            return std::make_unique<ContiguousMapper>(
                ContiguousMapper::plain());
        case MapperKind::Random:
            return std::make_unique<RandomMapper>();
        case MapperKind::FirstFit:
            return std::make_unique<FirstFitMapper>();
        case MapperKind::ReliabilityWeighted:
            return std::make_unique<ReliabilityWeightedMapper>();
    }
    MCS_REQUIRE(false, "unknown mapper kind");
    return nullptr;
}

}  // namespace

WorkloadEngine::WorkloadEngine(SystemContext& ctx)
    : ctx_(ctx),
      mapper_(make_mapper(ctx.cfg)),
      idle_predictor_(ctx.chip.core_count()),
      rebuild_([this](PlatformViewCache& cache) { rebuild_view(cache); }) {
    core_exec_.resize(ctx_.chip.core_count());
    view_cache_.reset(ctx_.cfg.width, ctx_.cfg.height,
                      ctx_.chip.core_count());
    for (const Core& c : ctx_.chip.cores()) {
        idle_predictor_.notify_available(c.id(), 0);
    }
    ctx_.power_mgr->set_vf_change_listener(
        [this](CoreId core, int old_level, int new_level) {
            on_vf_change(core, old_level, new_level);
        });
    ctx_.power_mgr->set_priority_lookup(
        [this](CoreId core) { return priority_of(core); });
    ctx_.idle_predictor = &idle_predictor_;
    ctx_.workload = this;
}

void WorkloadEngine::admit_workload(SimDuration horizon) {
    WorkloadGenerator wg(ctx_.cfg.workload,
                         ctx_.cfg.seed ^ 0xbf58476d1ce4e5b9ULL);
    auto specs = wg.generate(horizon);
    apps_.reserve(apps_.size() + specs.size());
    for (auto& spec : specs) {
        const std::size_t index = apps_.size();
        const SimTime arrival = spec.arrival;
        apps_.emplace_back(std::move(spec));
        arrival_events_.push_back(ctx_.sim.schedule_at(
            arrival, [this, index] { on_arrival(index); }));
    }
    ctx_.metrics.apps_arrived = apps_.size();
}

std::size_t WorkloadEngine::inject(ApplicationSpec spec) {
    const std::size_t index = apps_.size();
    apps_.emplace_back(std::move(spec));
    arrival_events_.push_back(EventId{});
    ctx_.metrics.apps_arrived = apps_.size();
    return index;
}

bool WorkloadEngine::app_mapped(std::size_t app_index) const {
    return !apps_[app_index].task_core.empty();
}

bool WorkloadEngine::app_done(std::size_t app_index) const {
    return apps_[app_index].done;
}

std::size_t WorkloadEngine::pending_in_class(std::size_t cls) const {
    return pending_[cls].size();
}

int WorkloadEngine::priority_of(CoreId core) const {
    const CoreExec& ex = core_exec_[core];
    return ex.active && !ctx_.priority_blind
               ? static_cast<int>(apps_[ex.app_index].spec.qos)
               : 0;
}

void WorkloadEngine::on_arrival(std::size_t app_index) {
    ctx_.observers.app_arrival(ctx_.sim.now(), app_index,
                               apps_[app_index].spec.graph.size());
    const auto cls =
        ctx_.priority_blind
            ? std::size_t{0}
            : static_cast<std::size_t>(apps_[app_index].spec.qos);
    pending_[cls].push_back(app_index);
    ++pending_total_;
    try_map_pending();
}

void WorkloadEngine::rebuild_view(PlatformViewCache& cache) {
    const SimTime now = ctx_.sim.now();
    auto& alloc = cache.allocatable_buf();
    auto& testing = cache.testing_buf();
    auto& util = cache.utilization_buf();
    // Pure per-core reads into slots indexed by core id -- sharded across
    // the epoch worker team (identical values for any worker count).
    ctx_.epoch.for_slabs(
        ctx_.chip.core_count(), [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                const Core& c = ctx_.chip.core(static_cast<CoreId>(i));
                bool ok = !c.reserved();
                switch (c.state()) {
                    case CoreState::Idle:
                    case CoreState::Dark:
                        break;
                    case CoreState::Testing:
                        ok = ok && ctx_.cfg.abort_tests_for_mapping;
                        break;
                    case CoreState::Busy:
                    case CoreState::Faulty:
                        ok = false;
                        break;
                }
                alloc[c.id()] = ok ? 1 : 0;
                testing[c.id()] = c.is_testing() ? 1 : 0;
                util[c.id()] = c.busy_fraction(now);
            }
        });
    PlatformView& view = cache.view();
    view.criticality = ctx_.platform->refresh_criticality(now);
    view.temperature_c = ctx_.thermal->temps_c();
}

void WorkloadEngine::try_map_pending() {
    if (mapping_in_progress_) {
        return;
    }
    mapping_in_progress_ = true;
    // Chip state may have moved since the last round (this call sits behind
    // a simulation event): force a fresh scan on first use.
    view_cache_.invalidate();
    const std::uint64_t scans_before = view_cache_.chip_scans();
    // Serve classes in priority order (hard RT first). Within a class the
    // queue is FIFO with head-of-line blocking; a blocked head of a higher
    // class does not stall lower classes (work-conserving).
    for (std::size_t cls = kQosClassCount; cls-- > 0;) {
        auto& queue = pending_[cls];
        while (!queue.empty()) {
            const std::size_t index = queue.front();
            AppRun& app = apps_[index];
            const PlatformView& view = view_cache_.get(rebuild_);
            ++mapping_attempts_;
            MapRequest request{app.spec.id, app.spec.graph.size()};
            const auto result = mapper_->map(request, view, ctx_.map_rng);
            if (!result) {
                break;
            }
            ctx_.metrics.mapping_dispersion_hops.add(
                mapping_dispersion(view, result->cores));
            queue.pop_front();
            --pending_total_;
            view_cache_.on_commit(result->cores);
            commit_mapping(index, *result);
        }
    }
    if (view_cache_.chip_scans() != scans_before) {
        ++mapping_rounds_;
    }
    mapping_in_progress_ = false;
}

void WorkloadEngine::commit_mapping(std::size_t app_index,
                                    const MappingResult& result) {
    const SimTime now = ctx_.sim.now();
    AppRun& app = apps_[app_index];
    MCS_REQUIRE(result.cores.size() == app.spec.graph.size(),
                "mapping result size mismatch");
    for (CoreId id : result.cores) {
        Core& c = ctx_.chip.core(id);
        if (c.is_testing()) {
            // Testing cores are only allocatable when aborts are allowed;
            // a mapper handing one over otherwise broke its contract.
            MCS_REQUIRE(ctx_.cfg.abort_tests_for_mapping,
                        "mapper claimed a testing core with aborts disabled");
            ctx_.test->abort_test(id);
        }
        if (c.state() == CoreState::Dark) {
            ctx_.power_mgr->wake_core(now, id, ctx_.thermal->temp_c(id));
        }
        MCS_REQUIRE(c.is_idle() && !c.reserved(),
                    "mapper selected an unavailable core");
        c.set_reserved(true);
        idle_predictor_.notify_unavailable(id, now);
        ctx_.power_mgr->touch(now, id);
    }
    ctx_.observers.app_mapped(now, app_index,
                              result.cores.empty() ? 0 : result.cores.front(),
                              result.cores.size());
    app.task_core = result.cores;
    const auto n = static_cast<TaskIndex>(app.spec.graph.size());
    app.waiting.resize(n);
    for (TaskIndex t = 0; t < n; ++t) {
        app.waiting[t] = app.spec.graph.pred_count(t);
    }
    ctx_.metrics.app_queue_wait_ms.add(
        to_milliseconds(now - app.spec.arrival));
    for (TaskIndex t : app.spec.graph.sources()) {
        start_task(app_index, t);
    }
}

void WorkloadEngine::start_task(std::size_t app_index, TaskIndex task) {
    const SimTime now = ctx_.sim.now();
    AppRun& app = apps_[app_index];
    const CoreId id = app.task_core[task];
    Core& c = ctx_.chip.core(id);
    MCS_REQUIRE(c.is_idle() && c.reserved(), "task core not ready");
    c.set_vf_level(
        now, ctx_.power_mgr->grant_task_level(id, ctx_.thermal->temp_c(id)));
    c.start_task(now);
    CoreExec& ex = core_exec_[id];
    MCS_REQUIRE(!ex.active, "core already executing a task");
    ex.active = true;
    ex.app_index = app_index;
    ex.task = task;
    ex.remaining_cycles =
        static_cast<double>(app.spec.graph.task(task).cycles);
    ex.last_progress = now;
    const SimDuration dur = std::max<SimDuration>(
        1, duration_for_cycles(app.spec.graph.task(task).cycles, c.freq_hz()));
    ex.completion = ctx_.sim.schedule_in(dur, [this, id] {
        on_task_complete(id);
    });
}

void WorkloadEngine::on_task_complete(CoreId core) {
    const SimTime now = ctx_.sim.now();
    CoreExec& ex = core_exec_[core];
    MCS_REQUIRE(ex.active, "completion for inactive core");
    const std::size_t app_index = ex.app_index;
    const TaskIndex task = ex.task;
    ex.active = false;
    Core& c = ctx_.chip.core(core);
    c.finish_task(now);
    ++ctx_.metrics.tasks_completed;

    AppRun& app = apps_[app_index];
    if (ctx_.faults != nullptr && ctx_.faults->roll_task_corruption(core)) {
        app.corrupted = true;
    }
    for (const TaskEdge& e : app.spec.graph.task(task).successors) {
        const CoreId dst_core = app.task_core[e.dst];
        const Transfer t = ctx_.noc.send(core, dst_core, e.bytes);
        if (ctx_.link_tester != nullptr) {
            for (LinkId link : ctx_.noc.last_route()) {
                if (ctx_.link_tester->roll_message_corruption(link)) {
                    app.corrupted = true;
                    break;
                }
            }
        }
        const TaskIndex dst = e.dst;
        const std::uint64_t seq = ctx_.sim.next_event_seq();
        ctx_.sim.schedule_in(std::max<SimDuration>(1, t.latency),
                             [this, app_index, dst, seq] {
                                 inflight_edges_.erase(seq);
                                 deliver_edge(app_index, dst);
                             });
        inflight_edges_.emplace(seq, std::pair{app_index, dst});
    }
    ++app.tasks_done;
    if (app.tasks_done == app.spec.graph.size()) {
        release_app(app_index);
    }
}

void WorkloadEngine::deliver_edge(std::size_t app_index, TaskIndex dst) {
    AppRun& app = apps_[app_index];
    MCS_REQUIRE(app.waiting[dst] > 0, "duplicate edge delivery");
    if (--app.waiting[dst] == 0) {
        start_task(app_index, dst);
    }
}

void WorkloadEngine::release_app(std::size_t app_index) {
    const SimTime now = ctx_.sim.now();
    AppRun& app = apps_[app_index];
    MCS_REQUIRE(!app.done, "double app release");
    app.done = true;
    for (CoreId id : app.task_core) {
        Core& c = ctx_.chip.core(id);
        c.set_reserved(false);
        idle_predictor_.notify_available(id, now);
        ctx_.power_mgr->touch(now, id);
    }
    ++ctx_.metrics.apps_completed;
    if (app.corrupted) {
        ++ctx_.metrics.corrupted_apps;
    }
    const double latency_ms = to_milliseconds(now - app.spec.arrival);
    ctx_.observers.app_complete(now, app_index, app.corrupted, latency_ms);
    ctx_.metrics.app_latency_ms.add(latency_ms);
    const auto cls = static_cast<std::size_t>(app.spec.qos);
    ++ctx_.metrics.apps_completed_by_class[cls];
    if (app.spec.relative_deadline > 0) {
        const bool met =
            now - app.spec.arrival <= app.spec.relative_deadline;
        if (met) {
            ++ctx_.metrics.deadlines_met_by_class[cls];
        } else {
            ++ctx_.metrics.deadlines_missed_by_class[cls];
        }
    }
    try_map_pending();
}

void WorkloadEngine::on_vf_change(CoreId core, int old_level, int new_level) {
    CoreExec& ex = core_exec_[core];
    if (!ex.active) {
        return;
    }
    const SimTime now = ctx_.sim.now();
    const double old_freq =
        ctx_.chip.vf_table()[static_cast<std::size_t>(old_level)].freq_hz;
    const double new_freq =
        ctx_.chip.vf_table()[static_cast<std::size_t>(new_level)].freq_hz;
    const SimDuration elapsed = now - ex.last_progress;
    ex.remaining_cycles -= to_seconds(elapsed) * old_freq;
    ex.remaining_cycles = std::max(0.0, ex.remaining_cycles);
    ex.last_progress = now;
    ctx_.sim.cancel(ex.completion);
    const auto cycles = static_cast<std::uint64_t>(
        std::ceil(ex.remaining_cycles));
    const SimDuration dur =
        std::max<SimDuration>(1, duration_for_cycles(cycles, new_freq));
    ex.completion = ctx_.sim.schedule_in(dur, [this, core] {
        on_task_complete(core);
    });
}

// ------------------------------------------------------ snapshot support

void WorkloadEngine::save_state(telemetry::JsonWriter& w) const {
    w.begin_object();
    w.key("apps");
    w.begin_array();
    for (const AppRun& app : apps_) {
        w.begin_object();
        w.field("done", app.done);
        w.field("corrupted", app.corrupted);
        w.field("tasks_done", static_cast<std::uint64_t>(app.tasks_done));
        w.key("task_core");
        w.begin_array();
        for (CoreId id : app.task_core) {
            w.value(static_cast<std::uint64_t>(id));
        }
        w.end_array();
        w.key("waiting");
        w.begin_array();
        for (std::uint32_t n : app.waiting) {
            w.value(static_cast<std::uint64_t>(n));
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.key("pending");
    w.begin_array();
    for (const auto& queue : pending_) {
        w.begin_array();
        for (std::size_t index : queue) {
            w.value(static_cast<std::uint64_t>(index));
        }
        w.end_array();
    }
    w.end_array();
    w.field("pending_total", static_cast<std::uint64_t>(pending_total_));
    w.key("core_exec");
    w.begin_array();
    for (const CoreExec& ex : core_exec_) {
        w.begin_object();
        w.field("active", ex.active);
        w.field("app", static_cast<std::uint64_t>(ex.app_index));
        w.field("task", static_cast<std::uint64_t>(ex.task));
        w.field("remaining", ex.remaining_cycles);
        w.field("last_progress", ex.last_progress);
        w.end_object();
    }
    w.end_array();
    w.field("mapping_rounds", mapping_rounds_);
    w.field("mapping_attempts", mapping_attempts_);
    w.key("idle");
    w.begin_object();
    w.key("ewma");
    w.begin_array();
    for (double v : idle_predictor_.ewma_ns()) {
        w.value(v);
    }
    w.end_array();
    w.key("period_start");
    w.begin_array();
    for (SimTime t : idle_predictor_.period_start()) {
        w.value(t);
    }
    w.end_array();
    w.key("in_period");
    w.begin_array();
    for (bool b : idle_predictor_.in_period()) {
        w.value(b);
    }
    w.end_array();
    w.field("completed", idle_predictor_.completed_periods());
    w.end_object();
    w.end_object();
}

void WorkloadEngine::load_state(const telemetry::JsonValue& doc) {
    const auto& apps = doc.at("apps").array;
    MCS_REQUIRE(apps.size() == apps_.size(),
                "snapshot workload: application count mismatch");
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const telemetry::JsonValue& a = apps[i];
        AppRun& app = apps_[i];
        app.done = a.at("done").boolean;
        app.corrupted = a.at("corrupted").boolean;
        app.tasks_done = static_cast<std::size_t>(a.at("tasks_done").u64());
        app.task_core.clear();
        for (const auto& c : a.at("task_core").array) {
            app.task_core.push_back(static_cast<CoreId>(c.u64()));
        }
        MCS_REQUIRE(app.task_core.empty() ||
                        app.task_core.size() == app.spec.graph.size(),
                    "snapshot workload: mapping size mismatch");
        app.waiting.clear();
        for (const auto& n : a.at("waiting").array) {
            app.waiting.push_back(static_cast<std::uint32_t>(n.u64()));
        }
    }
    const auto& pending = doc.at("pending").array;
    MCS_REQUIRE(pending.size() == pending_.size(),
                "snapshot workload: QoS class count mismatch");
    for (std::size_t cls = 0; cls < pending.size(); ++cls) {
        pending_[cls].clear();
        for (const auto& index : pending[cls].array) {
            const auto i = static_cast<std::size_t>(index.u64());
            MCS_REQUIRE(i < apps_.size(),
                        "snapshot workload: queued app out of range");
            pending_[cls].push_back(i);
        }
    }
    pending_total_ = static_cast<std::size_t>(doc.at("pending_total").u64());
    const auto& exec = doc.at("core_exec").array;
    MCS_REQUIRE(exec.size() == core_exec_.size(),
                "snapshot workload: core count mismatch");
    for (std::size_t c = 0; c < exec.size(); ++c) {
        const telemetry::JsonValue& e = exec[c];
        CoreExec& ex = core_exec_[c];
        ex.active = e.at("active").boolean;
        ex.app_index = static_cast<std::size_t>(e.at("app").u64());
        ex.task = static_cast<TaskIndex>(e.at("task").u64());
        ex.remaining_cycles = e.at("remaining").number;
        ex.last_progress = e.at("last_progress").u64();
        ex.completion = EventId{};  // re-created from the event manifest
        MCS_REQUIRE(!ex.active || ex.app_index < apps_.size(),
                    "snapshot workload: executing app out of range");
    }
    mapping_rounds_ = doc.at("mapping_rounds").u64();
    mapping_attempts_ = doc.at("mapping_attempts").u64();
    const telemetry::JsonValue& idle = doc.at("idle");
    std::vector<double> ewma;
    for (const auto& v : idle.at("ewma").array) {
        ewma.push_back(v.number);
    }
    std::vector<SimTime> period_start;
    for (const auto& v : idle.at("period_start").array) {
        period_start.push_back(v.u64());
    }
    std::vector<bool> in_period;
    for (const auto& v : idle.at("in_period").array) {
        in_period.push_back(v.boolean);
    }
    idle_predictor_.load_state(std::move(ewma), std::move(period_start),
                               std::move(in_period),
                               idle.at("completed").u64());
}

void WorkloadEngine::append_event_manifest(
    std::vector<SnapshotEvent>& out) const {
    for (std::size_t i = 0; i < arrival_events_.size(); ++i) {
        const EventId id = arrival_events_[i];
        if (id.valid() && ctx_.sim.is_pending(id)) {
            out.push_back({"arrival", ctx_.sim.event_time(id), id.seq,
                           static_cast<std::uint64_t>(i), 0});
        }
    }
    for (std::size_t c = 0; c < core_exec_.size(); ++c) {
        const CoreExec& ex = core_exec_[c];
        if (!ex.active) {
            continue;
        }
        MCS_REQUIRE(ctx_.sim.is_pending(ex.completion),
                    "active task without a pending completion event");
        out.push_back({"task_complete", ctx_.sim.event_time(ex.completion),
                       ex.completion.seq, static_cast<std::uint64_t>(c), 0});
    }
    for (const auto& [seq, edge] : inflight_edges_) {
        const EventId id{seq};
        MCS_REQUIRE(ctx_.sim.is_pending(id),
                    "stale in-flight edge in snapshot bookkeeping");
        out.push_back({"edge", ctx_.sim.event_time(id), seq,
                       static_cast<std::uint64_t>(edge.first),
                       static_cast<std::uint64_t>(edge.second)});
    }
}

void WorkloadEngine::restore_workload(SimDuration horizon,
                                      std::uint64_t root_seed) {
    MCS_REQUIRE(apps_.empty(), "restore_workload on a used engine");
    WorkloadGenerator wg(ctx_.cfg.workload,
                         root_seed ^ 0xbf58476d1ce4e5b9ULL);
    auto specs = wg.generate(horizon);
    apps_.reserve(specs.size());
    for (auto& spec : specs) {
        apps_.emplace_back(std::move(spec));
    }
    arrival_events_.assign(apps_.size(), EventId{});
    ctx_.metrics.apps_arrived = apps_.size();
}

void WorkloadEngine::schedule_restored_arrival(std::size_t app_index,
                                               SimTime when) {
    MCS_REQUIRE(app_index < apps_.size(),
                "snapshot manifest: arrival app out of range");
    arrival_events_[app_index] = ctx_.sim.schedule_at(
        when, [this, app_index] { on_arrival(app_index); });
}

void WorkloadEngine::schedule_restored_completion(CoreId core, SimTime when) {
    MCS_REQUIRE(core < core_exec_.size(),
                "snapshot manifest: completion core out of range");
    CoreExec& ex = core_exec_[core];
    MCS_REQUIRE(ex.active, "snapshot manifest: completion on inactive core");
    MCS_REQUIRE(!ex.completion.valid(),
                "snapshot manifest: duplicate completion for core");
    ex.completion = ctx_.sim.schedule_at(
        when, [this, core] { on_task_complete(core); });
}

void WorkloadEngine::schedule_restored_edge(std::size_t app_index,
                                            TaskIndex dst, SimTime when) {
    MCS_REQUIRE(app_index < apps_.size(),
                "snapshot manifest: edge app out of range");
    const std::uint64_t seq = ctx_.sim.next_event_seq();
    ctx_.sim.schedule_at(when, [this, app_index, dst, seq] {
        inflight_edges_.erase(seq);
        deliver_edge(app_index, dst);
    });
    inflight_edges_.emplace(seq, std::pair{app_index, dst});
}

void WorkloadEngine::finalize_into(RunMetrics& m, SimTime end) {
    const double secs = to_seconds(end);
    m.apps_rejected = pending_total_;
    m.throughput_tasks_per_s =
        static_cast<double>(m.tasks_completed) / secs;
    m.throughput_apps_per_s =
        static_cast<double>(m.apps_completed) / secs;
    std::uint64_t busy_cycles = 0;
    double util_sum = 0.0;
    for (const Core& c : ctx_.chip.cores()) {
        busy_cycles += c.total_busy_cycles();
        util_sum += c.busy_fraction(end);
    }
    m.work_cycles_per_s = static_cast<double>(busy_cycles) / secs;
    m.mean_chip_utilization =
        util_sum / static_cast<double>(ctx_.chip.core_count());
}

}  // namespace mcs
