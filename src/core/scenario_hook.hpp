#pragma once

// ScenarioDriver: the façade-side seam for declarative timed-directive
// scenarios (src/scenario/). The core library knows only this interface;
// the concrete player (spec parsing, directive dispatch) lives one layer
// up so core/ never depends on the scenario grammar. A driver attached via
// ManycoreSystem::attach_scenario participates in the run like any other
// engine: run() calls begin() once, the snapshot writer asks it for its
// pending-event manifest slice and its state object, and restore replays
// its pending directive event and re-applies its side effects in the
// documented order (see snapshot.cpp).

#include <cstdint>
#include <vector>

#include "core/snapshot.hpp"
#include "sim/time.hpp"

namespace mcs {

class ManycoreSystem;

class ScenarioDriver {
public:
    virtual ~ScenarioDriver() = default;

    /// Called by attach_scenario: the driver keeps the reference for the
    /// system's lifetime (the façade owns the driver).
    virtual void bind(ManycoreSystem& sys) = 0;

    /// Start of a fresh (non-restored) run: validate the directive times
    /// against `horizon` and schedule the first directive event.
    virtual void begin(SimDuration horizon) = 0;

    /// Appends one manifest entry per pending scenario event (drivers
    /// chain directives, so at most one is pending: kind "scenario",
    /// a = directive index).
    virtual void append_event_manifest(
        std::vector<SnapshotEvent>& out) const = 0;

    /// Complete driver state as one JSON object (identity fingerprint plus
    /// replay position); loaded back only into a driver with a matching
    /// fingerprint.
    virtual void save_state(telemetry::JsonWriter& w) const = 0;
    virtual void load_state(const telemetry::JsonValue& doc) = 0;

    /// Restore step A (after the arrival trace regenerated, before the
    /// workload engine's runtime state loads): re-append the applications
    /// injected by already-applied directives, in their original order, so
    /// the per-app state vectors line up.
    virtual void reinject_restored() = 0;

    /// Restore step B (after every engine loaded): re-apply applied side
    /// effects that live outside the persisted state (the power budget's
    /// TDP is configuration-derived, so a mid-run budget change must be
    /// replayed onto the restored budget).
    virtual void reapply_restored() = 0;

    /// Restore step C (manifest replay): re-schedule the pending directive
    /// event exactly where the captured queue had it.
    virtual void schedule_restored_directive(std::uint64_t index,
                                             SimTime when) = 0;
};

}  // namespace mcs
