#include "core/system_context.hpp"

#include "core/system.hpp"
#include "util/require.hpp"

namespace mcs {

namespace {

NocParams noc_synced(NocParams noc, SimDuration power_epoch) {
    // The utilization window rolls at the power epoch.
    noc.util_window = power_epoch;
    return noc;
}

TechnologyParams scaled_tech(TechNode node, double tdp_scale) {
    MCS_REQUIRE(tdp_scale > 0.0, "tdp_scale must be positive");
    TechnologyParams t = technology(node);
    t.tdp_fraction *= tdp_scale;
    return t;
}

}  // namespace

SystemContext::SystemContext(const SystemConfig& config)
    : cfg(config),
      chip(cfg.width, cfg.height, scaled_tech(cfg.node, cfg.tdp_scale)),
      noc(cfg.width, cfg.height, noc_synced(cfg.noc, cfg.power_epoch)),
      suite(cfg.suite ? *cfg.suite : TestSuite::standard()),
      budget(chip.tdp_w()),
      map_rng(cfg.seed ^ 0xa02bdbf7bb3c0a7ULL),
      epoch(cfg.epoch_workers) {
    metrics.tests_per_vf_level.assign(chip.vf_level_count(), 0);
    metrics.apps_completed_by_class.assign(kQosClassCount, 0);
    metrics.deadlines_met_by_class.assign(kQosClassCount, 0);
    metrics.deadlines_missed_by_class.assign(kQosClassCount, 0);
}

}  // namespace mcs
