#pragma once

// PlatformEngine: the power-managed substrate (ICCD'14 companion). Owns
// the power model + PID capping manager, thermal and aging models, the
// criticality evaluator, and the optional fault injector; drives the
// periodic power / thermal / wear / trace epochs and the run's energy and
// state-residency accounting. Policies (mapping, test scheduling) live in
// the sibling engines and see this substrate only through SystemContext.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "aging/aging_model.hpp"
#include "aging/criticality.hpp"
#include "core/snapshot.hpp"
#include "core/system_context.hpp"
#include "power/power_manager.hpp"
#include "power/power_model.hpp"
#include "sbst/fault_model.hpp"
#include "thermal/thermal_model.hpp"

namespace mcs {

class PlatformEngine {
public:
    /// Builds the substrate components from `ctx.cfg` and registers them
    /// (power model/manager, thermal, aging, criticality, faults) in `ctx`.
    explicit PlatformEngine(SystemContext& ctx);
    PlatformEngine(const PlatformEngine&) = delete;
    PlatformEngine& operator=(const PlatformEngine&) = delete;

    // --- periodic controller epochs (wired to Simulator::every by the
    //     façade, in its canonical registration order) ---
    void power_epoch();
    void thermal_epoch();
    void wear_epoch();
    void trace_epoch();

    // --- substrate services for the sibling engines ---
    /// Re-evaluates per-core test criticality at `now` into the chip's
    /// criticality lane and returns it (valid until the next refresh).
    const std::vector<double>& refresh_criticality(SimTime now);
    const std::vector<double>& criticality() const noexcept {
        return ctx_.chip.lanes().criticality;
    }
    /// Current power draw of one core through the power model.
    double core_power_now(const Core& core) const;
    /// NoC static power plus in-flight link-test power.
    double noc_power_w() const;
    /// Integrates the per-state energy split up to `now`.
    void accumulate_energy(SimTime now);

    PowerManager& power_manager() noexcept { return power_mgr_; }
    ThermalModel& thermal() noexcept { return thermal_; }
    const AgingTracker& aging_tracker() const noexcept { return aging_; }
    const FaultInjector* fault_injector() const noexcept {
        return faults_ ? &*faults_ : nullptr;
    }
    double peak_temp_c() const noexcept { return peak_temp_c_; }

    // --- scenario-directive seams ---
    /// Plants a specific latent fault now (no RNG draw; the stochastic
    /// arrival streams are unperturbed) and invalidates any partial
    /// segmented-suite progress on the core, exactly as a stochastic
    /// arrival would. Returns false when fault injection is disabled or
    /// the core already carries a latent fault.
    bool force_fault(CoreId core, FunctionalUnit unit, FaultKind kind);
    /// Adds `damage` of wear to each listed core (accelerated-aging
    /// stress); the continuous wear model continues from the raised level.
    void inject_wear(std::span<const CoreId> cores, double damage);

    /// Writes the platform-owned slice of the end-of-run metrics
    /// (state-residency fractions, power/energy, thermal, aging, faults,
    /// DVFS actuation counts).
    void finalize_into(RunMetrics& m, SimTime end);

    // ---- snapshot support ----
    /// Complete substrate state as one JSON object (capping controller,
    /// thermal field, wear, fault injector, energy accumulators). The
    /// platform owns no pending simulator events: its epochs are periodic
    /// and re-registered by the facade on restore.
    void save_state(telemetry::JsonWriter& w) const;
    void load_state(const telemetry::JsonValue& doc);

private:
    /// Sharded fill of the chip's power lane: power_w[i] = current draw of
    /// core i across the epoch worker team (pure per-core reads of the
    /// state/vf/temperature lanes; disjoint writes).
    void fill_power_lane();

    SystemContext& ctx_;
    PowerModel power_model_;
    PowerManager power_mgr_;
    // Thermal and aging bind the chip's temp_c / damage lanes as their
    // backing storage (declared after ctx_, whose chip owns the lanes), so
    // the epoch fills below and the sibling engines read them in place.
    ThermalModel thermal_;
    AgingTracker aging_;
    CriticalityEvaluator crit_eval_;
    std::optional<FaultInjector> faults_;

    // scratch buffer (reused across wear epochs)
    std::vector<double> accel_buf_;

    // accumulators
    std::uint64_t state_samples_ = 0;
    std::uint64_t dark_samples_ = 0;
    std::uint64_t testing_samples_ = 0;
    std::uint64_t reserved_samples_ = 0;
    SimTime energy_clock_ = 0;
    double link_test_energy_j_ = 0.0;
    double peak_temp_c_ = 0.0;
};

}  // namespace mcs
