#pragma once

#include <memory>

#include "core/system.hpp"
#include "util/config.hpp"

namespace mcs {

/// Constructs a fresh ManycoreSystem from generic key=value configuration
/// (core/config_bridge.hpp keys). The build path touches no global mutable
/// state, so factories may run concurrently from any number of threads —
/// this is the entry the campaign runner uses for each replica.
std::unique_ptr<ManycoreSystem> make_system(const Config& cfg);

/// Builds and runs one system for `horizon` simulated time and returns its
/// metrics; the convenience form of make_system for one-shot replicas.
RunMetrics run_system(const Config& cfg, SimDuration horizon);

}  // namespace mcs
