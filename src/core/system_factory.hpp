#pragma once

#include <memory>

#include "core/system.hpp"
#include "util/config.hpp"

namespace mcs {

/// Reads and parses an "mcs.snapshot" document from `path` (schema and
/// fingerprints are checked by ManycoreSystem::restore, not here).
telemetry::JsonValue load_snapshot_file(const std::string& path);

/// If `cfg` carries `restore=<path>`, rebuilds `sys` from that snapshot
/// (`restore_relax=true` relaxes the full-config fingerprint check so a
/// fork may vary policy knobs); otherwise does nothing. Call after
/// attaching the tracer so the captured trace ring reloads into it.
void apply_restore(ManycoreSystem& sys, const Config& cfg);

/// Constructs a fresh ManycoreSystem from generic key=value configuration
/// (core/config_bridge.hpp keys), restoring it from `restore=<path>` when
/// present. The build path touches no global mutable state, so factories
/// may run concurrently from any number of threads — this is the entry the
/// campaign runner uses for each replica (fork-from-checkpoint sweeps pass
/// the same snapshot to every cell).
std::unique_ptr<ManycoreSystem> make_system(const Config& cfg);

/// Builds and runs one system for `horizon` simulated time and returns its
/// metrics; the convenience form of make_system for one-shot replicas.
RunMetrics run_system(const Config& cfg, SimDuration horizon);

}  // namespace mcs
