#include "core/report.hpp"

#include <sstream>

#include "app/workload.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace mcs {

std::string format_metrics(const RunMetrics& m) {
    std::ostringstream os;
    const double secs = to_seconds(m.sim_time);
    os << "simulated " << fmt(secs, 2) << " s on " << m.core_count
       << " cores\n";
    os << "workload : " << m.apps_completed << "/" << m.apps_arrived
       << " apps, " << m.tasks_completed << " tasks ("
       << fmt(m.throughput_tasks_per_s, 1) << " tasks/s, "
       << fmt(m.work_cycles_per_s / 1e9, 2) << " Gcycles/s)\n";
    os << "chip     : " << fmt_pct(m.mean_chip_utilization, 1) << " busy, "
       << fmt_pct(m.mean_reserved_fraction, 1) << " reserved, "
       << fmt_pct(m.mean_dark_fraction, 1) << " dark\n";
    os << "power    : TDP " << fmt(m.tdp_w, 1) << " W, mean "
       << fmt(m.mean_power_w, 1) << " W, max " << fmt(m.max_power_w, 1)
       << " W, violations " << fmt_pct(m.tdp_violation_rate, 3)
       << " (worst +" << fmt(m.worst_overshoot_w, 2) << " W)\n";
    os << "energy   : " << fmt(m.energy_total_j, 1) << " J total, "
       << fmt_pct(m.test_energy_share) << " on test\n";
    os << "testing  : " << m.tests_completed << " sessions ("
       << fmt(m.tests_per_core_per_s, 2) << " /core/s), "
       << m.tests_aborted << " aborted";
    if (m.test_interval_s.count() > 0) {
        os << ", mean interval " << fmt(m.test_interval_s.mean(), 2)
           << " s";
    }
    os << ", max open gap " << fmt(m.max_open_test_gap_s, 2) << " s, "
       << fmt_pct(m.untested_core_fraction, 1) << " cores untested\n";
    if (m.faults_injected > 0) {
        os << "faults   : " << m.faults_detected << "/" << m.faults_injected
           << " detected, " << m.test_escapes << " routine escapes, "
           << m.corrupted_tasks << " corrupted tasks";
        if (m.detection_latency_s.count() > 0) {
            os << ", mean latency " << fmt(m.detection_latency_s.mean(), 2)
               << " s";
        }
        os << "\n";
    }
    const bool has_rt =
        m.deadlines_met_by_class.size() == kQosClassCount &&
        (m.deadlines_met_by_class[1] + m.deadlines_missed_by_class[1] +
             m.deadlines_met_by_class[2] + m.deadlines_missed_by_class[2] >
         0);
    if (has_rt) {
        auto miss = [&](std::size_t cls) {
            const auto total = m.deadlines_met_by_class[cls] +
                               m.deadlines_missed_by_class[cls];
            return total == 0 ? 0.0
                              : static_cast<double>(
                                    m.deadlines_missed_by_class[cls]) /
                                    static_cast<double>(total);
        };
        os << "QoS      : hard-RT miss " << fmt_pct(miss(2), 2)
           << ", soft-RT miss " << fmt_pct(miss(1), 2) << "\n";
    }
    os << "thermal  : peak " << fmt(m.peak_temp_c, 1) << " C | aging: max "
       << fmt(m.max_damage, 4) << ", imbalance "
       << fmt(m.damage_imbalance, 2) << "\n";
    os << "NoC      : " << m.noc_messages << " messages, peak link util "
       << fmt_pct(m.noc_peak_utilization, 1) << "\n";
    return os.str();
}

void write_metrics_csv(const RunMetrics& m, const std::string& path) {
    CsvWriter csv(path, {"metric", "value"});
    auto row = [&](const std::string& key, double value) {
        std::ostringstream os;
        os.precision(9);
        os << value;
        csv.write_row(std::vector<std::string>{key, os.str()});
    };
    row("sim_time_s", to_seconds(m.sim_time));
    row("core_count", static_cast<double>(m.core_count));
    row("apps_arrived", static_cast<double>(m.apps_arrived));
    row("apps_completed", static_cast<double>(m.apps_completed));
    row("apps_rejected", static_cast<double>(m.apps_rejected));
    row("tasks_completed", static_cast<double>(m.tasks_completed));
    row("throughput_tasks_per_s", m.throughput_tasks_per_s);
    row("throughput_apps_per_s", m.throughput_apps_per_s);
    row("work_cycles_per_s", m.work_cycles_per_s);
    row("app_latency_ms_mean", m.app_latency_ms.mean());
    row("app_queue_wait_ms_mean", m.app_queue_wait_ms.mean());
    row("chip_utilization", m.mean_chip_utilization);
    row("reserved_fraction", m.mean_reserved_fraction);
    row("dark_fraction", m.mean_dark_fraction);
    row("testing_fraction", m.mean_testing_fraction);
    row("tdp_w", m.tdp_w);
    row("mean_power_w", m.mean_power_w);
    row("max_power_w", m.max_power_w);
    row("tdp_violation_rate", m.tdp_violation_rate);
    row("worst_overshoot_w", m.worst_overshoot_w);
    row("energy_total_j", m.energy_total_j);
    row("energy_busy_j", m.energy_busy_j);
    row("energy_test_j", m.energy_test_j);
    row("energy_idle_j", m.energy_idle_j);
    row("energy_noc_j", m.energy_noc_j);
    row("test_energy_share", m.test_energy_share);
    row("tests_completed", static_cast<double>(m.tests_completed));
    row("tests_aborted", static_cast<double>(m.tests_aborted));
    row("tests_per_core_per_s", m.tests_per_core_per_s);
    row("test_interval_s_mean", m.test_interval_s.mean());
    row("test_interval_s_max", m.test_interval_s.max());
    row("max_open_test_gap_s", m.max_open_test_gap_s);
    row("untested_core_fraction", m.untested_core_fraction);
    for (std::size_t l = 0; l < m.tests_per_vf_level.size(); ++l) {
        row("tests_vf_level_" + std::to_string(l),
            static_cast<double>(m.tests_per_vf_level[l]));
    }
    for (std::size_t cls = 0; cls < m.apps_completed_by_class.size();
         ++cls) {
        const std::string suffix = "_class" + std::to_string(cls);
        row("apps_completed" + suffix,
            static_cast<double>(m.apps_completed_by_class[cls]));
        row("deadlines_met" + suffix,
            static_cast<double>(m.deadlines_met_by_class[cls]));
        row("deadlines_missed" + suffix,
            static_cast<double>(m.deadlines_missed_by_class[cls]));
    }
    row("faults_injected", static_cast<double>(m.faults_injected));
    row("faults_detected", static_cast<double>(m.faults_detected));
    row("test_escapes", static_cast<double>(m.test_escapes));
    row("corrupted_tasks", static_cast<double>(m.corrupted_tasks));
    row("corrupted_apps", static_cast<double>(m.corrupted_apps));
    row("detection_latency_s_mean", m.detection_latency_s.mean());
    row("link_tests_completed",
        static_cast<double>(m.link_tests_completed));
    row("link_faults_injected",
        static_cast<double>(m.link_faults_injected));
    row("link_faults_detected",
        static_cast<double>(m.link_faults_detected));
    row("corrupted_messages", static_cast<double>(m.corrupted_messages));
    row("link_detection_latency_s_mean", m.link_detection_latency_s.mean());
    row("max_open_link_test_gap_s", m.max_open_link_test_gap_s);
    row("mapping_dispersion_hops_mean", m.mapping_dispersion_hops.mean());
    row("noc_mean_utilization", m.noc_mean_utilization);
    row("noc_peak_utilization", m.noc_peak_utilization);
    row("noc_messages", static_cast<double>(m.noc_messages));
    row("peak_temp_c", m.peak_temp_c);
    row("mean_damage", m.mean_damage);
    row("max_damage", m.max_damage);
    row("damage_imbalance", m.damage_imbalance);
    row("dvfs_throttle_steps", static_cast<double>(m.dvfs_throttle_steps));
    row("dvfs_boost_steps", static_cast<double>(m.dvfs_boost_steps));
}

}  // namespace mcs
