#include "core/config_bridge.hpp"

#include <set>

#include "app/graph_io.hpp"
#include "util/require.hpp"

namespace mcs {
namespace {

const std::set<std::string>& known_keys() {
    static const std::set<std::string> keys{
        "width", "height", "side", "node", "seed", "tdp_scale", "occupancy",
        "arrival_rate_hz", "min_tasks", "max_tasks", "min_cycles",
        "max_cycles", "graph_file", "scheduler", "test_period_ms",
        "guard_band", "criticality_threshold", "criticality_mode",
        "vf_policy", "mapper", "abort_tests", "faults", "fault_rate",
        "capping", "gate_delay_ms", "segmented", "sessions", "hard_rt_share",
        "soft_rt_share", "noc_testing", "link_fault_rate", "epoch_workers",
        // Keys consumed by the CLI itself, accepted here so a shared file
        // can hold both.
        "seconds", "config", "out", "out_dir", "trace", "trace_capacity",
        "report", "power_trace", "quiet", "scenario",
        // Checkpoint / restore keys (consumed by the CLI and the factory).
        "checkpoint", "checkpoint_at", "restore", "restore_relax",
    };
    return keys;
}

TechNode parse_node(const std::string& name) {
    if (name == "45nm") return TechNode::nm45;
    if (name == "32nm") return TechNode::nm32;
    if (name == "22nm") return TechNode::nm22;
    if (name == "16nm") return TechNode::nm16;
    MCS_REQUIRE(false, "unknown technology node: " + name);
    return TechNode::nm16;
}

SchedulerKind parse_scheduler(const std::string& name) {
    if (name == "power-aware") return SchedulerKind::PowerAware;
    if (name == "periodic") return SchedulerKind::Periodic;
    if (name == "greedy") return SchedulerKind::Greedy;
    if (name == "none") return SchedulerKind::None;
    if (name == "deadline") return SchedulerKind::DeadlineAware;
    MCS_REQUIRE(false, "unknown scheduler: " + name);
    return SchedulerKind::PowerAware;
}

MapperKind parse_mapper(const std::string& name) {
    if (name == "test-aware") return MapperKind::TestAware;
    if (name == "thermal-aware") return MapperKind::ThermalAware;
    if (name == "util-oriented") return MapperKind::UtilizationOriented;
    if (name == "contiguous") return MapperKind::Contiguous;
    if (name == "random") return MapperKind::Random;
    if (name == "first-fit") return MapperKind::FirstFit;
    if (name == "reliability-weighted") return MapperKind::ReliabilityWeighted;
    MCS_REQUIRE(false, "unknown mapper: " + name);
    return MapperKind::TestAware;
}

TestVfPolicy parse_vf_policy(const std::string& name) {
    if (name == "rotate-all") return TestVfPolicy::RotateAll;
    if (name == "max-only") return TestVfPolicy::MaxOnly;
    if (name == "min-only") return TestVfPolicy::MinOnly;
    MCS_REQUIRE(false, "unknown vf policy: " + name);
    return TestVfPolicy::RotateAll;
}

CriticalityMode parse_crit_mode(const std::string& name) {
    if (name == "utilization") return CriticalityMode::UtilizationDriven;
    if (name == "time") return CriticalityMode::TimeDriven;
    if (name == "hybrid") return CriticalityMode::Hybrid;
    MCS_REQUIRE(false, "unknown criticality mode: " + name);
    return CriticalityMode::UtilizationDriven;
}

}  // namespace

SystemConfig system_config_from(const Config& cfg) {
    for (const auto& [key, value] : cfg.entries()) {
        MCS_REQUIRE(known_keys().count(key) != 0,
                    "unknown configuration key: " + key);
    }

    SystemConfig sys;
    sys.width = static_cast<int>(cfg.get_int("width", 8));
    sys.height = static_cast<int>(cfg.get_int("height", 8));
    if (cfg.has("side")) {
        // Square-chip shorthand (sweep axes set one key per axis).
        MCS_REQUIRE(!cfg.has("width") && !cfg.has("height"),
                    "side cannot be combined with width/height");
        sys.width = static_cast<int>(cfg.get_int("side", 8));
        sys.height = sys.width;
    }
    sys.node = parse_node(cfg.get_string("node", "16nm"));
    sys.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
    sys.tdp_scale = cfg.get_double("tdp_scale", 1.0);

    sys.workload.graphs.min_tasks =
        static_cast<int>(cfg.get_int("min_tasks", 4));
    sys.workload.graphs.max_tasks =
        static_cast<int>(cfg.get_int("max_tasks", 16));
    sys.workload.graphs.min_cycles = static_cast<std::uint64_t>(
        cfg.get_int("min_cycles",
                    static_cast<std::int64_t>(
                        sys.workload.graphs.min_cycles)));
    sys.workload.graphs.max_cycles = static_cast<std::uint64_t>(
        cfg.get_int("max_cycles",
                    static_cast<std::int64_t>(
                        sys.workload.graphs.max_cycles)));
    const double hard = cfg.get_double("hard_rt_share", 0.0);
    const double soft = cfg.get_double("soft_rt_share", 0.0);
    MCS_REQUIRE(hard >= 0.0 && soft >= 0.0 && hard + soft <= 1.0,
                "RT shares must be non-negative and sum to at most 1");
    sys.workload.hard_rt_weight = hard;
    sys.workload.soft_rt_weight = soft;
    sys.workload.best_effort_weight = 1.0 - hard - soft;
    sys.workload.reference_freq_hz = technology(sys.node).max_freq_hz;
    if (cfg.has("graph_file")) {
        sys.workload.graph_library.push_back(
            load_task_graph(cfg.get_string("graph_file", "")));
    }

    if (cfg.has("arrival_rate_hz")) {
        sys.workload.arrival_rate_hz = cfg.get_double("arrival_rate_hz", 0);
    } else {
        const double occupancy = cfg.get_double("occupancy", 0.6);
        const double capacity = static_cast<double>(sys.width) *
                                static_cast<double>(sys.height) *
                                technology(sys.node).max_freq_hz;
        if (sys.workload.graph_library.empty()) {
            sys.workload.arrival_rate_hz = rate_for_occupancy(
                occupancy, sys.workload.graphs, capacity);
        } else {
            // Library-driven: occupancy from the library graphs' critical
            // paths.
            double reserved = 0.0;
            for (const TaskGraph& g : sys.workload.graph_library) {
                reserved += static_cast<double>(g.size()) *
                            static_cast<double>(g.critical_path_cycles());
            }
            reserved /= static_cast<double>(
                sys.workload.graph_library.size());
            sys.workload.arrival_rate_hz = occupancy * capacity / reserved;
        }
    }

    sys.scheduler = parse_scheduler(
        cfg.get_string("scheduler", "power-aware"));
    sys.periodic_test_period =
        static_cast<SimDuration>(cfg.get_int("test_period_ms", 1000)) *
        kMillisecond;
    sys.power_aware.guard_band_fraction = cfg.get_double("guard_band", 0.04);
    sys.power_aware.criticality_threshold =
        cfg.get_double("criticality_threshold", 0.5);
    sys.power_aware.vf_policy =
        parse_vf_policy(cfg.get_string("vf_policy", "rotate-all"));
    sys.criticality = CriticalityParams::for_mode(
        parse_crit_mode(cfg.get_string("criticality_mode", "utilization")));
    sys.criticality.threshold = sys.power_aware.criticality_threshold;

    sys.mapper = parse_mapper(cfg.get_string("mapper", "test-aware"));
    sys.abort_tests_for_mapping = cfg.get_bool("abort_tests", true);
    sys.segmented_tests = cfg.get_bool("segmented", false);
    if (cfg.has("sessions")) {
        // One-key session policy (X2's comparison; handy as a sweep axis).
        MCS_REQUIRE(!cfg.has("abort_tests") && !cfg.has("segmented"),
                    "sessions cannot be combined with abort_tests/segmented");
        const std::string sessions = cfg.get_string("sessions", "abortable");
        if (sessions == "abortable") {
            sys.abort_tests_for_mapping = true;
            sys.segmented_tests = false;
        } else if (sessions == "atomic") {
            sys.abort_tests_for_mapping = false;
            sys.segmented_tests = false;
        } else if (sessions == "segmented") {
            sys.abort_tests_for_mapping = true;
            sys.segmented_tests = true;
        } else {
            MCS_REQUIRE(false, "unknown sessions policy: " + sessions);
        }
    }

    sys.enable_fault_injection = cfg.get_bool("faults", false);
    sys.faults.base_rate_per_core_s = cfg.get_double("fault_rate", 0.01);
    sys.enable_noc_testing = cfg.get_bool("noc_testing", false);
    sys.noc_test.fault_rate_per_link_s =
        cfg.get_double("link_fault_rate", 0.0);

    const std::string capping = cfg.get_string("capping", "pid");
    if (capping == "bang-bang") {
        sys.power.mode = CappingMode::BangBang;
    } else {
        MCS_REQUIRE(capping == "pid", "unknown capping mode: " + capping);
    }
    sys.power.gate_delay =
        static_cast<SimDuration>(cfg.get_int("gate_delay_ms", 2)) *
        kMillisecond;

    // Execution knob, not simulation state: any worker count produces
    // byte-identical output (and composes with campaign --jobs, each
    // replica getting its own team).
    sys.epoch_workers = static_cast<int>(cfg.get_int("epoch_workers", 1));
    MCS_REQUIRE(sys.epoch_workers >= 0,
                "epoch_workers must be >= 0 (0 = one per hardware thread)");
    return sys;
}

}  // namespace mcs
