#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "arch/core.hpp"
#include "arch/technology.hpp"
#include "sim/time.hpp"

namespace mcs::telemetry {
class Tracer;
class MetricsRegistry;
class JsonWriter;
struct JsonValue;
}  // namespace mcs::telemetry

namespace mcs {

/// A core the system offers to the test scheduler this epoch: idle (or
/// dark), unreserved and healthy. No criticality filtering is applied by
/// the system -- policies that use the metric (the paper's) threshold it
/// themselves; baselines ignore it.
struct TestCandidate {
    CoreId core = kInvalidCore;
    double criticality = 0.0;
    bool dark = false;        ///< would need waking before the test
    SimDuration idle_age = 0; ///< how long the core has been idle/dark
    double temp_c = 0.0;      ///< current core temperature
    /// Predicted remaining availability (idle-period predictor extension).
    SimDuration predicted_idle_remaining = 0;
};

/// Everything a scheduling policy may see and do in one epoch. Built fresh
/// by the system each test epoch; the callbacks stay valid only during the
/// epoch() call.
struct SchedulerContext {
    SimTime now = 0;
    double tdp_w = 0.0;
    /// Budget headroom available for admission: the power manager's control
    /// setpoint (a guarded fraction of TDP) minus the committed-power
    /// ledger (measured power plus not-yet-measured admissions). >= 0.
    double power_slack_w = 0.0;
    /// Number of test sessions currently in flight.
    int tests_running = 0;
    const std::vector<VfLevel>* vf_table = nullptr;
    /// Eligible cores, unordered; policies sort as they see fit.
    std::vector<TestCandidate> candidates;
    /// Power *increment* a test session on `core` at `vf_level` would add
    /// over what the core currently draws (uses the core's current
    /// temperature and state); this is the amount admission must fit into
    /// `power_slack_w`, and matches what the system charges to the ledger.
    std::function<double(CoreId core, int vf_level)> test_power_w;
    /// Wall time one full test session takes at `vf_level`.
    std::function<SimDuration(int vf_level)> test_duration;
    /// Launches a test session; the system wakes dark cores, switches the
    /// core to the requested level, runs the full SBST suite, and restores
    /// state on completion.
    std::function<void(CoreId core, int vf_level)> start_test;
    /// Optional event tracer (may be null); policies record admission and
    /// rejection decisions here.
    telemetry::Tracer* tracer = nullptr;
};

/// Online test-scheduling policy interface (the paper's contribution point).
class TestScheduler {
public:
    virtual ~TestScheduler() = default;
    virtual void epoch(SchedulerContext& ctx) = 0;
    virtual std::string_view name() const = 0;
    /// Publishes the policy's internal counters into `registry` under
    /// "scheduler.*" names. Called once at end of run; default is a no-op
    /// for policies with no internal state.
    virtual void export_telemetry(telemetry::MetricsRegistry& registry) const {
        (void)registry;
    }
    /// Checkpoint hooks. The caller opens (and closes) a JSON object and
    /// hands the writer positioned inside it; the policy writes its fields
    /// there (so the stateless default stays a valid empty object). State is
    /// only loaded back into a policy with the same name().
    virtual void save_state(telemetry::JsonWriter& w) const { (void)w; }
    virtual void load_state(const telemetry::JsonValue& doc) { (void)doc; }
};

/// How a policy chooses the V/F level of each test session.
enum class TestVfPolicy {
    RotateAll,  ///< cycle through every level per core (journal extension:
                ///< faults can be frequency-dependent, so cover all levels)
    MaxOnly,    ///< always the top level (shortest test, highest power)
    MinOnly,    ///< always the bottom level (longest test, lowest power)
};

const char* to_string(TestVfPolicy policy);

}  // namespace mcs
