#pragma once

#include "core/system.hpp"
#include "util/config.hpp"

namespace mcs {

/// Builds a SystemConfig from generic key=value configuration (CLI args or
/// a config file). Unknown keys are rejected so typos fail loudly.
///
/// Key reference (defaults in parentheses):
///   width (8), height (8)            chip dimensions
///   side                             square-chip shorthand: width = height
///                                    (exclusive with width/height)
///   node (16nm)                      45nm | 32nm | 22nm | 16nm
///   seed (42)                        master RNG seed
///   tdp_scale (1.0)                  power-budget scaling
///   occupancy (0.6)                  target reserved core-time fraction;
///                                    translated into an arrival rate
///   arrival_rate_hz                  overrides occupancy when given
///   min_tasks (4), max_tasks (16)    application size range
///   min_cycles, max_cycles           task length range
///   graph_file                       fixed task-graph library file
///                                    (app/graph_io.hpp format)
///   scheduler (power-aware)          power-aware | periodic | greedy |
///                                    deadline | none
///   test_period_ms (1000)            periodic/deadline-scheduler period
///   guard_band (0.04)                PA guard band fraction of TDP
///   criticality_threshold (0.5)
///   criticality_mode (utilization)   utilization | time | hybrid
///   vf_policy (rotate-all)           rotate-all | max-only | min-only
///   mapper (test-aware)              test-aware | util-oriented |
///                                    contiguous | random | first-fit |
///                                    reliability-weighted
///   abort_tests (true)               mapper may abort in-flight tests
///   segmented (false)                aborted sessions resume per-routine
///   sessions                         abortable | atomic | segmented — sets
///                                    the two keys above in one axis
///                                    (exclusive with them)
///   hard_rt_share (0), soft_rt_share (0)  QoS class mix (rest best-effort)
///   noc_testing (false)              enable online link testing
///   link_fault_rate (0)              link wear rate per link-second
///   faults (false)                   enable fault injection
///   fault_rate (0.01)                per core-second at acceleration 1
///   capping (pid)                    pid | bang-bang
///   gate_delay_ms (2)                idle-to-dark delay
SystemConfig system_config_from(const Config& cfg);

}  // namespace mcs
