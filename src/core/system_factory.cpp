#include "core/system_factory.hpp"

#include <fstream>
#include <sstream>

#include "core/config_bridge.hpp"
#include "telemetry/json.hpp"
#include "util/require.hpp"

namespace mcs {

telemetry::JsonValue load_snapshot_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    MCS_REQUIRE(in.is_open(), "cannot open snapshot file: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    MCS_REQUIRE(in.good() || in.eof(), "snapshot read failed: " + path);
    return telemetry::parse_json(text.str());
}

void apply_restore(ManycoreSystem& sys, const Config& cfg) {
    if (!cfg.has("restore")) {
        return;
    }
    RestoreOptions opts;
    opts.relax_config = cfg.get_bool("restore_relax", false);
    sys.restore(load_snapshot_file(cfg.get_string("restore", "")), opts);
}

std::unique_ptr<ManycoreSystem> make_system(const Config& cfg) {
    auto sys = std::make_unique<ManycoreSystem>(system_config_from(cfg));
    apply_restore(*sys, cfg);
    return sys;
}

RunMetrics run_system(const Config& cfg, SimDuration horizon) {
    return make_system(cfg)->run(horizon);
}

}  // namespace mcs
