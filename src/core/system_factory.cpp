#include "core/system_factory.hpp"

#include "core/config_bridge.hpp"

namespace mcs {

std::unique_ptr<ManycoreSystem> make_system(const Config& cfg) {
    return std::make_unique<ManycoreSystem>(system_config_from(cfg));
}

RunMetrics run_system(const Config& cfg, SimDuration horizon) {
    return make_system(cfg)->run(horizon);
}

}  // namespace mcs
