#pragma once

#include <vector>

#include "arch/core.hpp"
#include "sim/time.hpp"

namespace mcs {

/// Per-core idle-period predictor (extension; see DESIGN.md).
///
/// An "availability period" of a core runs from the moment it stops being
/// reserved by any application until the mapper claims it again. Tests that
/// outlive the period get aborted, wasting power; predicting the period
/// lets the scheduler start only tests that are likely to finish.
///
/// The predictor keeps an EWMA over each core's completed availability
/// periods and predicts the remaining time of an ongoing period as
/// max(0, ewma - elapsed). Cold cores (no history) predict `initial_guess`.
class IdlePredictor {
public:
    explicit IdlePredictor(std::size_t core_count,
                           double ewma_alpha = 0.25,
                           SimDuration initial_guess = 10 * kMillisecond);

    /// The core just became available (unreserved).
    void notify_available(CoreId core, SimTime now);

    /// The core just became unavailable (reserved by the mapper or
    /// decommissioned); closes the ongoing period, if any.
    void notify_unavailable(CoreId core, SimTime now);

    /// Predicted remaining availability of a currently available core.
    /// Returns 0 for cores not currently in a period.
    SimDuration predict_remaining(CoreId core, SimTime now) const;

    /// EWMA of completed period lengths (the raw prediction basis).
    SimDuration expected_period(CoreId core) const;

    std::uint64_t completed_periods() const noexcept { return completed_; }

    // ---- snapshot support ----
    const std::vector<double>& ewma_ns() const noexcept { return ewma_ns_; }
    const std::vector<SimTime>& period_start() const noexcept {
        return period_start_;
    }
    const std::vector<bool>& in_period() const noexcept { return in_period_; }
    void load_state(std::vector<double> ewma_ns,
                    std::vector<SimTime> period_start,
                    std::vector<bool> in_period, std::uint64_t completed);

private:
    double alpha_;
    std::vector<double> ewma_ns_;
    std::vector<SimTime> period_start_;  ///< 0 = not in a period
    std::vector<bool> in_period_;
    std::uint64_t completed_ = 0;
};

}  // namespace mcs
