#include "core/platform_engine.hpp"

#include <algorithm>

#include "core/system.hpp"
#include "core/test_engine.hpp"
#include "util/require.hpp"

namespace mcs {

namespace {

ActivityFactors activity_with_suite(ActivityFactors base,
                                    const TestSuite& suite) {
    // Keep the power model's test activity consistent with the SBST library
    // actually executed.
    base.test = suite.mean_activity();
    return base;
}

}  // namespace

PlatformEngine::PlatformEngine(SystemContext& ctx)
    : ctx_(ctx),
      power_model_(ctx.chip.tech(), ctx.chip.vf_table(),
                   activity_with_suite(ctx.cfg.activity, ctx.suite)),
      power_mgr_(ctx.chip, power_model_, ctx.budget, ctx.cfg.power),
      thermal_(ctx.cfg.width, ctx.cfg.height, ctx.cfg.thermal),
      aging_(ctx.chip.core_count(), ctx.cfg.aging),
      crit_eval_(ctx.cfg.criticality) {
    if (ctx_.cfg.enable_fault_injection) {
        faults_.emplace(ctx_.chip.core_count(), ctx_.cfg.faults,
                        ctx_.cfg.seed ^ 0x94d049bb133111ebULL);
    }
    crit_buf_.assign(ctx_.chip.core_count(), 0.0);
    power_mgr_.set_telemetry(nullptr, &ctx_.registry);
    ctx_.power_model = &power_model_;
    ctx_.power_mgr = &power_mgr_;
    ctx_.thermal = &thermal_;
    ctx_.aging = &aging_;
    ctx_.crit_eval = &crit_eval_;
    ctx_.faults = faults_ ? &*faults_ : nullptr;
    ctx_.platform = this;
}

const std::vector<double>& PlatformEngine::refresh_criticality(SimTime now) {
    crit_buf_ = crit_eval_.evaluate_chip(ctx_.chip, now, aging_.damage_all());
    return crit_buf_;
}

double PlatformEngine::core_power_now(const Core& core) const {
    return power_model_.core_power_w(core.state(), core.vf_level(),
                                     thermal_.temp_c(core.id()));
}

double PlatformEngine::noc_power_w() const {
    return ctx_.noc.routers_idle_power_w() +
           static_cast<double>(ctx_.test->link_tests_running()) *
               ctx_.cfg.noc_test.test_power_w;
}

void PlatformEngine::accumulate_energy(SimTime now) {
    MCS_REQUIRE(now >= energy_clock_, "energy clock going backwards");
    const double dt_s = to_seconds(now - energy_clock_);
    energy_clock_ = now;
    if (dt_s <= 0.0) {
        return;
    }
    link_test_energy_j_ +=
        static_cast<double>(ctx_.test->link_tests_running()) *
        ctx_.cfg.noc_test.test_power_w * dt_s;
    for (const Core& c : ctx_.chip.cores()) {
        const double p = core_power_now(c);
        switch (c.state()) {
            case CoreState::Busy:
                ctx_.metrics.energy_busy_j += p * dt_s;
                break;
            case CoreState::Testing:
                ctx_.metrics.energy_test_j += p * dt_s;
                break;
            default:
                ctx_.metrics.energy_idle_j += p * dt_s;
                break;
        }
    }
}

void PlatformEngine::power_epoch() {
    accumulate_energy(ctx_.sim.now());
    ctx_.noc.roll_window();
    power_mgr_.control_epoch(ctx_.sim.now(), thermal_.temps_c(),
                             noc_power_w());
}

void PlatformEngine::thermal_epoch() {
    power_buf_.resize(ctx_.chip.core_count());
    for (const Core& c : ctx_.chip.cores()) {
        power_buf_[c.id()] = core_power_now(c);
    }
    thermal_.step(power_buf_, to_seconds(ctx_.cfg.thermal_epoch));
    peak_temp_c_ = std::max(peak_temp_c_, thermal_.max_temp_c());
}

void PlatformEngine::wear_epoch() {
    const SimTime now = ctx_.sim.now();
    ctx_.chip.checkpoint_all(now);
    for (const Core& c : ctx_.chip.cores()) {
        ++state_samples_;
        dark_samples_ += c.state() == CoreState::Dark ? 1 : 0;
        testing_samples_ += c.state() == CoreState::Testing ? 1 : 0;
        reserved_samples_ += c.reserved() ? 1 : 0;
    }
    aging_.update(now, ctx_.chip, thermal_.temps_c());
    if (faults_) {
        accel_buf_.resize(ctx_.chip.core_count());
        for (std::size_t i = 0; i < accel_buf_.size(); ++i) {
            accel_buf_[i] =
                aging_.fault_acceleration(static_cast<CoreId>(i));
        }
        const auto fresh = faults_->step(
            now, to_seconds(ctx_.cfg.wear_epoch), ctx_.chip, accel_buf_);
        // A new fault invalidates any partial segmented-suite progress on
        // the core: those routines ran on a then-healthy core.
        for (CoreId id : fresh) {
            ctx_.test->invalidate_progress(id);
        }
    }
    ctx_.test->wear_step(now, to_seconds(ctx_.cfg.wear_epoch));
}

void PlatformEngine::trace_epoch() {
    if (!ctx_.observers.wants_trace_samples()) {
        return;
    }
    TraceSample s;
    s.time = ctx_.sim.now();
    s.tdp_w = ctx_.budget.tdp_w();
    for (const Core& c : ctx_.chip.cores()) {
        const double p = core_power_now(c);
        s.total_power_w += p;
        switch (c.state()) {
            case CoreState::Busy:
                s.workload_power_w += p;
                ++s.cores_busy;
                break;
            case CoreState::Testing:
                s.test_power_w += p;
                ++s.cores_testing;
                break;
            case CoreState::Dark:
                s.other_power_w += p;
                ++s.cores_dark;
                break;
            default:
                s.other_power_w += p;
                break;
        }
    }
    const double noc_now = noc_power_w();
    s.total_power_w += noc_now;
    s.other_power_w += noc_now;
    s.max_temp_c = thermal_.max_temp_c();
    ctx_.observers.trace_sample(s);
}

void PlatformEngine::finalize_into(RunMetrics& m, SimTime end) {
    const double secs = to_seconds(end);
    if (state_samples_ > 0) {
        m.mean_dark_fraction = static_cast<double>(dark_samples_) /
                               static_cast<double>(state_samples_);
        m.mean_testing_fraction = static_cast<double>(testing_samples_) /
                                  static_cast<double>(state_samples_);
        m.mean_reserved_fraction = static_cast<double>(reserved_samples_) /
                                   static_cast<double>(state_samples_);
    }

    m.tdp_w = ctx_.budget.tdp_w();
    m.mean_power_w = ctx_.budget.power_stats().mean();
    m.max_power_w = ctx_.budget.power_stats().max();
    m.power_samples = ctx_.budget.samples();
    m.tdp_violations = ctx_.budget.violations();
    m.tdp_violation_rate = ctx_.budget.violation_rate();
    m.worst_overshoot_w = ctx_.budget.worst_overshoot_w();

    m.energy_noc_j = ctx_.noc.total_energy_j() +
                     ctx_.noc.routers_idle_power_w() * secs +
                     link_test_energy_j_;
    m.energy_total_j = m.energy_busy_j + m.energy_test_j + m.energy_idle_j +
                       m.energy_noc_j;
    m.test_energy_share =
        m.energy_total_j > 0.0 ? m.energy_test_j / m.energy_total_j : 0.0;

    if (faults_) {
        m.faults_injected = faults_->injected_count();
        m.faults_detected = faults_->detected_count();
        m.test_escapes = faults_->escaped_tests();
        m.corrupted_tasks = faults_->corrupted_tasks();
    }

    m.noc_mean_utilization = ctx_.noc.mean_utilization();
    m.noc_peak_utilization = ctx_.noc.peak_utilization();
    m.noc_messages = ctx_.noc.messages_sent();

    m.peak_temp_c = peak_temp_c_;
    m.mean_damage = aging_.mean_damage();
    m.max_damage = aging_.max_damage();
    m.damage_imbalance =
        m.mean_damage > 0.0
            ? (m.max_damage - aging_.min_damage()) / m.mean_damage
            : 0.0;

    m.dvfs_throttle_steps = power_mgr_.throttle_steps();
    m.dvfs_boost_steps = power_mgr_.boost_steps();
}

}  // namespace mcs
