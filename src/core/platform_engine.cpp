#include "core/platform_engine.hpp"

#include <algorithm>

#include "core/system.hpp"
#include "core/test_engine.hpp"
#include "telemetry/json.hpp"
#include "util/require.hpp"

namespace mcs {

namespace {

ActivityFactors activity_with_suite(ActivityFactors base,
                                    const TestSuite& suite) {
    // Keep the power model's test activity consistent with the SBST library
    // actually executed.
    base.test = suite.mean_activity();
    return base;
}

}  // namespace

PlatformEngine::PlatformEngine(SystemContext& ctx)
    : ctx_(ctx),
      power_model_(ctx.chip.tech(), ctx.chip.vf_table(),
                   activity_with_suite(ctx.cfg.activity, ctx.suite)),
      power_mgr_(ctx.chip, power_model_, ctx.budget, ctx.cfg.power),
      thermal_(ctx.cfg.width, ctx.cfg.height, ctx.cfg.thermal,
               &ctx.chip.lanes().temp_c),
      aging_(ctx.chip.core_count(), ctx.cfg.aging, &ctx.chip.lanes().damage),
      crit_eval_(ctx.cfg.criticality) {
    if (ctx_.cfg.enable_fault_injection) {
        faults_.emplace(ctx_.chip.core_count(), ctx_.cfg.faults,
                        ctx_.cfg.seed ^ 0x94d049bb133111ebULL);
    }
    power_mgr_.set_telemetry(nullptr, &ctx_.registry);
    ctx_.power_model = &power_model_;
    ctx_.power_mgr = &power_mgr_;
    ctx_.thermal = &thermal_;
    ctx_.aging = &aging_;
    ctx_.crit_eval = &crit_eval_;
    ctx_.faults = faults_ ? &*faults_ : nullptr;
    ctx_.platform = this;
}

const std::vector<double>& PlatformEngine::refresh_criticality(SimTime now) {
    std::vector<double>& crit = ctx_.chip.lanes().criticality;
    crit_eval_.evaluate_chip_into(ctx_.chip, now, aging_.damage_all(), crit,
                                  &ctx_.epoch);
    return crit;
}

double PlatformEngine::core_power_now(const Core& core) const {
    return power_model_.core_power_w(core.state(), core.vf_level(),
                                     thermal_.temp_c(core.id()));
}

double PlatformEngine::noc_power_w() const {
    return ctx_.noc.routers_idle_power_w() +
           static_cast<double>(ctx_.test->link_tests_running()) *
               ctx_.cfg.noc_test.test_power_w;
}

void PlatformEngine::accumulate_energy(SimTime now) {
    MCS_REQUIRE(now >= energy_clock_, "energy clock going backwards");
    const double dt_s = to_seconds(now - energy_clock_);
    energy_clock_ = now;
    if (dt_s <= 0.0) {
        return;
    }
    link_test_energy_j_ +=
        static_cast<double>(ctx_.test->link_tests_running()) *
        ctx_.cfg.noc_test.test_power_w * dt_s;
    // Parallel fill (pure per-core power reads), then a serial commit in
    // core order so the energy sums accumulate in the same floating-point
    // order for every worker count.
    fill_power_lane();
    const CoreLanes& lanes = ctx_.chip.lanes();
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        const double p = lanes.power_w[i];
        switch (lanes.state[i]) {
            case CoreState::Busy:
                ctx_.metrics.energy_busy_j += p * dt_s;
                break;
            case CoreState::Testing:
                ctx_.metrics.energy_test_j += p * dt_s;
                break;
            default:
                ctx_.metrics.energy_idle_j += p * dt_s;
                break;
        }
    }
}

void PlatformEngine::fill_power_lane() {
    // Lanes-native: reads the state/vf/temperature lanes, writes only the
    // power lane (the temperature lane is the thermal model's live buffer).
    CoreLanes& lanes = ctx_.chip.lanes();
    ctx_.epoch.for_slabs(
        lanes.size(), [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                lanes.power_w[i] = power_model_.core_power_w(
                    lanes.state[i], lanes.vf_level[i], lanes.temp_c[i]);
            }
        });
}

void PlatformEngine::power_epoch() {
    accumulate_energy(ctx_.sim.now());
    ctx_.noc.roll_window();
    power_mgr_.control_epoch(ctx_.sim.now(), thermal_.temps_c(),
                             noc_power_w());
}

void PlatformEngine::thermal_epoch() {
    fill_power_lane();
    thermal_.step(ctx_.chip.lanes().power_w,
                  to_seconds(ctx_.cfg.thermal_epoch), &ctx_.epoch);
    peak_temp_c_ = std::max(peak_temp_c_, thermal_.max_temp_c());
}

void PlatformEngine::wear_epoch() {
    const SimTime now = ctx_.sim.now();
    ctx_.chip.checkpoint_all(now, &ctx_.epoch);
    const CoreLanes& lanes = ctx_.chip.lanes();
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        ++state_samples_;
        dark_samples_ += lanes.state[i] == CoreState::Dark ? 1 : 0;
        testing_samples_ += lanes.state[i] == CoreState::Testing ? 1 : 0;
        reserved_samples_ += lanes.reserved[i] != 0 ? 1 : 0;
    }
    aging_.update(now, ctx_.chip, thermal_.temps_c(), &ctx_.epoch);
    if (faults_) {
        accel_buf_.resize(ctx_.chip.core_count());
        ctx_.epoch.for_slabs(
            accel_buf_.size(), [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                    accel_buf_[i] =
                        aging_.fault_acceleration(static_cast<CoreId>(i));
                }
            });
        // The fault injector draws from its RNG stream and so stays
        // strictly serial (draw order is part of the determinism contract).
        const auto fresh = faults_->step(
            now, to_seconds(ctx_.cfg.wear_epoch), ctx_.chip, accel_buf_);
        // A new fault invalidates any partial segmented-suite progress on
        // the core: those routines ran on a then-healthy core.
        for (CoreId id : fresh) {
            ctx_.test->invalidate_progress(id);
        }
    }
    ctx_.test->wear_step(now, to_seconds(ctx_.cfg.wear_epoch));
}

bool PlatformEngine::force_fault(CoreId core, FunctionalUnit unit,
                                 FaultKind kind) {
    if (!faults_) {
        return false;
    }
    if (!faults_->force_fault(core, unit, kind, ctx_.sim.now())) {
        return false;
    }
    // Same consequence as a stochastic arrival: partial segmented-suite
    // progress ran on a then-healthy core and is void.
    ctx_.test->invalidate_progress(core);
    return true;
}

void PlatformEngine::inject_wear(std::span<const CoreId> cores,
                                 double damage) {
    for (CoreId id : cores) {
        aging_.add_damage(id, damage);
    }
}

void PlatformEngine::trace_epoch() {
    if (!ctx_.observers.wants_trace_samples()) {
        return;
    }
    TraceSample s;
    s.time = ctx_.sim.now();
    s.tdp_w = ctx_.budget.tdp_w();
    // Same fill/commit split as accumulate_energy: the observer stream
    // sees sums folded in core order regardless of worker count.
    fill_power_lane();
    const CoreLanes& lanes = ctx_.chip.lanes();
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        const double p = lanes.power_w[i];
        s.total_power_w += p;
        switch (lanes.state[i]) {
            case CoreState::Busy:
                s.workload_power_w += p;
                ++s.cores_busy;
                break;
            case CoreState::Testing:
                s.test_power_w += p;
                ++s.cores_testing;
                break;
            case CoreState::Dark:
                s.other_power_w += p;
                ++s.cores_dark;
                break;
            default:
                s.other_power_w += p;
                break;
        }
    }
    const double noc_now = noc_power_w();
    s.total_power_w += noc_now;
    s.other_power_w += noc_now;
    s.max_temp_c = thermal_.max_temp_c();
    ctx_.observers.trace_sample(s);
}

// ------------------------------------------------------ snapshot support

void PlatformEngine::save_state(telemetry::JsonWriter& w) const {
    w.begin_object();
    w.key("samples");
    w.begin_object();
    w.field("state", state_samples_);
    w.field("dark", dark_samples_);
    w.field("testing", testing_samples_);
    w.field("reserved", reserved_samples_);
    w.end_object();
    w.field("energy_clock", energy_clock_);
    w.field("link_test_energy_j", link_test_energy_j_);
    w.field("peak_temp_c", peak_temp_c_);

    const PowerManager::PersistedState ps = power_mgr_.save_state();
    w.key("power_mgr");
    w.begin_object();
    w.key("last_active");
    w.begin_array();
    for (SimTime t : ps.last_active) {
        w.value(t);
    }
    w.end_array();
    w.field("last_epoch", ps.last_epoch);
    w.field("has_epoch", ps.has_epoch);
    w.field("measured", ps.measured_power_w);
    w.field("committed", ps.committed_power_w);
    w.field("throttle", ps.throttle_steps);
    w.field("boost", ps.boost_steps);
    w.field("gated", ps.cores_gated);
    w.field("rotate", ps.rotate);
    w.key("pid");
    w.begin_object();
    w.field("integral", ps.pid_integral);
    w.field("prev_error", ps.pid_prev_error);
    w.field("has_prev", ps.pid_has_prev);
    w.field("last_output", ps.pid_last_output);
    w.end_object();
    w.end_object();

    w.key("thermal");
    w.begin_array();
    for (double t : thermal_.temps_c()) {
        w.value(t);
    }
    w.end_array();

    w.key("aging");
    w.begin_object();
    w.key("damage");
    w.begin_array();
    for (double d : aging_.damage_all()) {
        w.value(d);
    }
    w.end_array();
    w.field("last_update", aging_.last_update());
    w.field("started", aging_.started());
    w.end_object();

    if (faults_) {
        w.key("faults");
        w.begin_object();
        snapshot::write_rng(w, "rng", faults_->rng());
        snapshot::write_latent_slots(w, "latent", faults_->latent_slots());
        w.key("history");
        w.begin_array();
        for (const Fault& f : faults_->history()) {
            w.begin_object();
            w.field("core", static_cast<std::uint64_t>(f.core));
            w.field("unit", static_cast<std::int64_t>(f.unit));
            w.field("kind", static_cast<std::int64_t>(f.kind));
            w.field("injected", f.injected);
            w.field("detected", f.detected);
            w.field("detected_at", f.detected_at);
            w.end_object();
        }
        w.end_array();
        w.field("detected", faults_->detected_count());
        w.field("escaped", faults_->escaped_tests());
        w.field("corrupted", faults_->corrupted_tasks());
        w.end_object();
    }
    w.end_object();
}

void PlatformEngine::load_state(const telemetry::JsonValue& doc) {
    const telemetry::JsonValue& samples = doc.at("samples");
    state_samples_ = samples.at("state").u64();
    dark_samples_ = samples.at("dark").u64();
    testing_samples_ = samples.at("testing").u64();
    reserved_samples_ = samples.at("reserved").u64();
    energy_clock_ = doc.at("energy_clock").u64();
    link_test_energy_j_ = doc.at("link_test_energy_j").number;
    peak_temp_c_ = doc.at("peak_temp_c").number;

    const telemetry::JsonValue& pm = doc.at("power_mgr");
    PowerManager::PersistedState ps;
    for (const auto& t : pm.at("last_active").array) {
        ps.last_active.push_back(t.u64());
    }
    MCS_REQUIRE(ps.last_active.size() == ctx_.chip.core_count(),
                "snapshot platform: power-manager core count mismatch");
    ps.last_epoch = pm.at("last_epoch").u64();
    ps.has_epoch = pm.at("has_epoch").boolean;
    ps.measured_power_w = pm.at("measured").number;
    ps.committed_power_w = pm.at("committed").number;
    ps.throttle_steps = pm.at("throttle").u64();
    ps.boost_steps = pm.at("boost").u64();
    ps.cores_gated = pm.at("gated").u64();
    ps.rotate = pm.at("rotate").u64();
    const telemetry::JsonValue& pid = pm.at("pid");
    ps.pid_integral = pid.at("integral").number;
    ps.pid_prev_error = pid.at("prev_error").number;
    ps.pid_has_prev = pid.at("has_prev").boolean;
    ps.pid_last_output = pid.at("last_output").number;
    power_mgr_.load_state(ps);

    std::vector<double> temps;
    for (const auto& t : doc.at("thermal").array) {
        temps.push_back(t.number);
    }
    MCS_REQUIRE(temps.size() == ctx_.chip.core_count(),
                "snapshot platform: thermal node count mismatch");
    thermal_.load_temps(temps);

    const telemetry::JsonValue& aging = doc.at("aging");
    std::vector<double> damage;
    for (const auto& d : aging.at("damage").array) {
        damage.push_back(d.number);
    }
    MCS_REQUIRE(damage.size() == ctx_.chip.core_count(),
                "snapshot platform: damage vector size mismatch");
    aging_.load_state(damage, aging.at("last_update").u64(),
                      aging.at("started").boolean);

    if (faults_) {
        const telemetry::JsonValue& fd = doc.at("faults");
        std::vector<Fault> history;
        for (const auto& f : fd.at("history").array) {
            const std::int64_t unit = f.at("unit").i64();
            const std::int64_t kind = f.at("kind").i64();
            MCS_REQUIRE(unit >= 0 && static_cast<std::size_t>(unit) <
                                         kFunctionalUnitCount,
                        "snapshot platform: fault unit out of range");
            MCS_REQUIRE(kind >= 0 && kind <= 2,
                        "snapshot platform: fault kind out of range");
            Fault fault;
            fault.core = static_cast<CoreId>(f.at("core").u64());
            MCS_REQUIRE(fault.core < ctx_.chip.core_count(),
                        "snapshot platform: fault core out of range");
            fault.unit = static_cast<FunctionalUnit>(unit);
            fault.kind = static_cast<FaultKind>(kind);
            fault.injected = f.at("injected").u64();
            fault.detected = f.at("detected").boolean;
            fault.detected_at = f.at("detected_at").u64();
            history.push_back(fault);
        }
        auto latent =
            snapshot::read_latent_slots(fd, "latent", history.size());
        MCS_REQUIRE(latent.size() == ctx_.chip.core_count(),
                    "snapshot platform: latent slot count mismatch");
        faults_->load_state(snapshot::read_rng(fd, "rng"), std::move(latent),
                            std::move(history), fd.at("detected").u64(),
                            fd.at("escaped").u64(), fd.at("corrupted").u64());
    }
}

void PlatformEngine::finalize_into(RunMetrics& m, SimTime end) {
    const double secs = to_seconds(end);
    if (state_samples_ > 0) {
        m.mean_dark_fraction = static_cast<double>(dark_samples_) /
                               static_cast<double>(state_samples_);
        m.mean_testing_fraction = static_cast<double>(testing_samples_) /
                                  static_cast<double>(state_samples_);
        m.mean_reserved_fraction = static_cast<double>(reserved_samples_) /
                                   static_cast<double>(state_samples_);
    }

    m.tdp_w = ctx_.budget.tdp_w();
    m.mean_power_w = ctx_.budget.power_stats().mean();
    m.max_power_w = ctx_.budget.power_stats().max();
    m.power_samples = ctx_.budget.samples();
    m.tdp_violations = ctx_.budget.violations();
    m.tdp_violation_rate = ctx_.budget.violation_rate();
    m.worst_overshoot_w = ctx_.budget.worst_overshoot_w();

    m.energy_noc_j = ctx_.noc.total_energy_j() +
                     ctx_.noc.routers_idle_power_w() * secs +
                     link_test_energy_j_;
    m.energy_total_j = m.energy_busy_j + m.energy_test_j + m.energy_idle_j +
                       m.energy_noc_j;
    m.test_energy_share =
        m.energy_total_j > 0.0 ? m.energy_test_j / m.energy_total_j : 0.0;

    if (faults_) {
        m.faults_injected = faults_->injected_count();
        m.faults_detected = faults_->detected_count();
        m.test_escapes = faults_->escaped_tests();
        m.corrupted_tasks = faults_->corrupted_tasks();
    }

    m.noc_mean_utilization = ctx_.noc.mean_utilization();
    m.noc_peak_utilization = ctx_.noc.peak_utilization();
    m.noc_messages = ctx_.noc.messages_sent();

    m.peak_temp_c = peak_temp_c_;
    m.mean_damage = aging_.mean_damage();
    m.max_damage = aging_.max_damage();
    m.damage_imbalance =
        m.mean_damage > 0.0
            ? (m.max_damage - aging_.min_damage()) / m.mean_damage
            : 0.0;

    m.dvfs_throttle_steps = power_mgr_.throttle_steps();
    m.dvfs_boost_steps = power_mgr_.boost_steps();
}

}  // namespace mcs
