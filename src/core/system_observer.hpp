#pragma once

// SystemObserver: the one typed hook layer for run-time events of a
// ManycoreSystem. It unifies what used to be three ad-hoc sinks (the
// TraceSink sample callback, a raw telemetry::Tracer* and cached registry
// counter pointers) behind a single narrow interface; the engines emit
// typed events and adapters translate them into whatever backend they
// serve (telemetry/observer_adapter.hpp bridges to tracer + registry +
// trace sink).
//
// Contract: events fire synchronously from inside the simulation event
// that caused them, in deterministic order. Observers must not mutate
// system state from a callback.

#include <cstdint>

#include "arch/core.hpp"
#include "core/metrics.hpp"
#include "sim/observer.hpp"
#include "sim/time.hpp"

namespace mcs {

class SystemObserver {
public:
    virtual ~SystemObserver() = default;

    /// An application entered the admission queues (`tasks` = graph size).
    virtual void on_app_arrival(SimTime now, std::size_t app_index,
                                std::size_t tasks) {
        (void)now, (void)app_index, (void)tasks;
    }

    /// The mapper placed an application on `cores` cores anchored at
    /// `first_core`.
    virtual void on_app_mapped(SimTime now, std::size_t app_index,
                               CoreId first_core, std::size_t cores) {
        (void)now, (void)app_index, (void)first_core, (void)cores;
    }

    /// An application finished (all tasks done, region released).
    virtual void on_app_complete(SimTime now, std::size_t app_index,
                                 bool corrupted, double latency_ms) {
        (void)now, (void)app_index, (void)corrupted, (void)latency_ms;
    }

    /// An SBST session started on `core` at `vf_level`.
    virtual void on_test_session_begin(SimTime now, CoreId core,
                                       int vf_level) {
        (void)now, (void)core, (void)vf_level;
    }

    /// A session ran the full suite to completion.
    virtual void on_test_session_complete(SimTime now, CoreId core,
                                          int vf_level) {
        (void)now, (void)core, (void)vf_level;
    }

    /// A session was aborted (the mapper claimed the core).
    virtual void on_test_session_abort(SimTime now, CoreId core,
                                       int vf_level) {
        (void)now, (void)core, (void)vf_level;
    }

    /// Periodic power/state sample (trace_epoch). Only delivered when
    /// wants_trace_samples() is true for at least one observer; override
    /// to opt out so the sample is not even assembled on your behalf.
    virtual void on_trace_sample(const TraceSample& sample) { (void)sample; }
    virtual bool wants_trace_samples() const { return true; }
};

/// Fan-out dispatcher the engines emit into. Thin wrapper over
/// ObserverList<SystemObserver> with one named method per event so call
/// sites stay grep-able.
class SystemObserverHub {
public:
    void add(SystemObserver* observer) { list_.add(observer); }
    void remove(SystemObserver* observer) { list_.remove(observer); }

    void app_arrival(SimTime now, std::size_t app, std::size_t tasks) const {
        list_.notify([&](SystemObserver& o) {
            o.on_app_arrival(now, app, tasks);
        });
    }
    void app_mapped(SimTime now, std::size_t app, CoreId first,
                    std::size_t cores) const {
        list_.notify([&](SystemObserver& o) {
            o.on_app_mapped(now, app, first, cores);
        });
    }
    void app_complete(SimTime now, std::size_t app, bool corrupted,
                      double latency_ms) const {
        list_.notify([&](SystemObserver& o) {
            o.on_app_complete(now, app, corrupted, latency_ms);
        });
    }
    void test_session_begin(SimTime now, CoreId core, int vf) const {
        list_.notify([&](SystemObserver& o) {
            o.on_test_session_begin(now, core, vf);
        });
    }
    void test_session_complete(SimTime now, CoreId core, int vf) const {
        list_.notify([&](SystemObserver& o) {
            o.on_test_session_complete(now, core, vf);
        });
    }
    void test_session_abort(SimTime now, CoreId core, int vf) const {
        list_.notify([&](SystemObserver& o) {
            o.on_test_session_abort(now, core, vf);
        });
    }
    void trace_sample(const TraceSample& sample) const {
        list_.notify([&](SystemObserver& o) { o.on_trace_sample(sample); });
    }
    bool wants_trace_samples() const {
        return list_.any([](SystemObserver& o) {
            return o.wants_trace_samples();
        });
    }

private:
    ObserverList<SystemObserver> list_;
};

}  // namespace mcs
