#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace mcs {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& word : s_) {
        word = splitmix64(x);
    }
    // xoshiro must not start from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
        s_[0] = 0x9e3779b97f4a7c15ULL;
    }
}

std::uint64_t Rng::next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    MCS_REQUIRE(lo <= hi, "uniform range must be ordered");
    return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    MCS_REQUIRE(lo <= hi, "uniform_int range must be ordered");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) {  // full 64-bit range
        return static_cast<std::int64_t>(next_u64());
    }
    // Rejection sampling for an unbiased draw.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
    std::uint64_t v = next_u64();
    while (v >= limit) {
        v = next_u64();
    }
    return lo + static_cast<std::int64_t>(v % span);
}

std::size_t Rng::index(std::size_t n) {
    MCS_REQUIRE(n > 0, "index range must be non-empty");
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(n - 1)));
}

bool Rng::bernoulli(double p) noexcept {
    return uniform() < p;
}

double Rng::exponential(double mean) {
    MCS_REQUIRE(mean > 0.0, "exponential mean must be positive");
    double u = uniform();
    // uniform() can return exactly 0, which would yield +inf.
    while (u <= 0.0) {
        u = uniform();
    }
    return -mean * std::log(u);
}

std::size_t Rng::categorical(std::span<const double> weights) {
    MCS_REQUIRE(!weights.empty(), "categorical needs weights");
    double total = 0.0;
    for (double w : weights) {
        MCS_REQUIRE(w >= 0.0, "categorical weights must be non-negative");
        total += w;
    }
    MCS_REQUIRE(total > 0.0, "categorical weights must sum to > 0");
    const double roll = uniform(0.0, total);
    double cumulative = 0.0;
    for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
        cumulative += weights[i];
        if (roll < cumulative) {
            return i;
        }
    }
    return weights.size() - 1;
}

double Rng::normal() noexcept {
    double u1 = uniform();
    while (u1 <= 0.0) {
        u1 = uniform();
    }
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

Rng Rng::split() noexcept {
    return Rng(next_u64());
}

std::array<std::uint64_t, 4> Rng::state() const noexcept {
    return {s_[0], s_[1], s_[2], s_[3]};
}

void Rng::set_state(const std::array<std::uint64_t, 4>& state) {
    MCS_REQUIRE((state[0] | state[1] | state[2] | state[3]) != 0,
                "Rng::set_state: all-zero state is unreachable");
    for (std::size_t i = 0; i < 4; ++i) {
        s_[i] = state[i];
    }
}

std::uint64_t Rng::stream_seed(std::uint64_t root_seed,
                               std::uint64_t stream) noexcept {
    // Two splitmix64 rounds over a golden-ratio-spread stream index
    // decorrelate adjacent (root, stream) pairs; the +1 keeps stream 0
    // distinct from the root seed itself.
    std::uint64_t x = root_seed ^ ((stream + 1) * 0x9e3779b97f4a7c15ULL);
    splitmix64(x);
    return splitmix64(x);
}

}  // namespace mcs
