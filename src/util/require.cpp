#include "util/require.hpp"

#include <sstream>

namespace mcs {

void require_failed(const char* expr, const char* file, int line,
                    const std::string& msg) {
    std::ostringstream os;
    os << "requirement failed: " << msg << " [" << expr << "] at " << file
       << ":" << line;
    throw RequireError(os.str());
}

}  // namespace mcs
