#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/require.hpp"

namespace mcs {

/// Deterministic xoshiro256** PRNG.
///
/// Every stochastic component in the simulator draws from a seeded Rng (or a
/// stream split off one), so whole experiments are reproducible bit-for-bit
/// from a single seed. No global RNG state exists anywhere in the library.
class Rng {
public:
    /// Seeds the four 64-bit state words from `seed` via splitmix64.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

    /// Next raw 64-bit output.
    std::uint64_t next_u64() noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Uniform double in [lo, hi). Requires lo <= hi.
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Index in [0, n). Requires n > 0.
    std::size_t index(std::size_t n);

    /// Bernoulli trial with success probability p (clamped to [0,1]).
    bool bernoulli(double p) noexcept;

    /// Exponential variate with the given mean. Requires mean > 0.
    double exponential(double mean);

    /// Categorical draw: returns an index with probability proportional to
    /// weights[i]. Requires non-negative weights with a positive sum.
    std::size_t categorical(std::span<const double> weights);

    /// Standard normal variate (Box-Muller, no caching).
    double normal() noexcept;

    /// Normal variate with the given mean and standard deviation.
    double normal(double mean, double stddev) noexcept;

    /// Derives an independent child stream (jump-free splitting by reseeding
    /// from this stream's output; adequate for simulation workloads).
    Rng split() noexcept;

    /// Derives the seed of stream `stream` rooted at `root_seed` without
    /// constructing intermediate generators. Unlike split(), the result
    /// depends only on the two arguments — never on call order — so replica
    /// `i` of a campaign draws the same stream whether replicas run
    /// sequentially or on any number of threads in any completion order.
    static std::uint64_t stream_seed(std::uint64_t root_seed,
                                     std::uint64_t stream) noexcept;

    /// Exact engine state (the four xoshiro256** words), for checkpointing.
    std::array<std::uint64_t, 4> state() const noexcept;

    /// Restores an engine state previously captured with state(). Rejects
    /// the all-zero state, which xoshiro cannot leave.
    void set_state(const std::array<std::uint64_t, 4>& state);

    /// Fisher-Yates shuffle of a span in place.
    template <typename T>
    void shuffle(std::span<T> items) {
        for (std::size_t i = items.size(); i > 1; --i) {
            std::size_t j = index(i);
            using std::swap;
            swap(items[i - 1], items[j]);
        }
    }

private:
    std::uint64_t s_[4];
};

}  // namespace mcs
