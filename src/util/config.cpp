#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>

#include "util/require.hpp"

namespace mcs {

Config Config::from_args(std::span<const char* const> args) {
    Config cfg;
    for (const char* raw : args) {
        const std::string token(raw);
        const auto eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
            continue;
        }
        cfg.set(token.substr(0, eq), token.substr(eq + 1));
    }
    return cfg;
}

Config Config::from_file(const std::string& path) {
    std::ifstream in(path);
    MCS_REQUIRE(in.is_open(), "cannot open config file: " + path);
    Config cfg;
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        auto trim = [](std::string s) {
            const auto first = s.find_first_not_of(" \t\r");
            if (first == std::string::npos) {
                return std::string{};
            }
            const auto last = s.find_last_not_of(" \t\r");
            return s.substr(first, last - first + 1);
        };
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            continue;
        }
        const std::string key = trim(line.substr(0, eq));
        if (key.empty()) {
            continue;
        }
        cfg.set(key, trim(line.substr(eq + 1)));
    }
    return cfg;
}

void Config::merge(const Config& other) {
    for (const auto& [key, value] : other.values_) {
        values_[key] = value;
    }
}

void Config::set(const std::string& key, const std::string& value) {
    values_[key] = value;
}

bool Config::has(const std::string& key) const {
    return values_.count(key) != 0;
}

std::optional<std::string> Config::lookup(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
        return std::nullopt;
    }
    return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
    return lookup(key).value_or(fallback);
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
    const auto v = lookup(key);
    if (!v) {
        return fallback;
    }
    try {
        std::size_t pos = 0;
        const std::int64_t parsed = std::stoll(*v, &pos);
        MCS_REQUIRE(pos == v->size(), "trailing characters in integer");
        return parsed;
    } catch (const RequireError&) {
        throw;
    } catch (const std::exception&) {
        MCS_REQUIRE(false, "config key '" + key + "' is not an integer: " + *v);
    }
    return fallback;  // unreachable
}

double Config::get_double(const std::string& key, double fallback) const {
    const auto v = lookup(key);
    if (!v) {
        return fallback;
    }
    try {
        std::size_t pos = 0;
        const double parsed = std::stod(*v, &pos);
        MCS_REQUIRE(pos == v->size(), "trailing characters in double");
        return parsed;
    } catch (const RequireError&) {
        throw;
    } catch (const std::exception&) {
        MCS_REQUIRE(false, "config key '" + key + "' is not a number: " + *v);
    }
    return fallback;  // unreachable
}

bool Config::get_bool(const std::string& key, bool fallback) const {
    const auto v = lookup(key);
    if (!v) {
        return fallback;
    }
    std::string lowered = *v;
    std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lowered == "1" || lowered == "true" || lowered == "yes" ||
        lowered == "on") {
        return true;
    }
    if (lowered == "0" || lowered == "false" || lowered == "no" ||
        lowered == "off") {
        return false;
    }
    MCS_REQUIRE(false, "config key '" + key + "' is not a boolean: " + *v);
    return fallback;  // unreachable
}

}  // namespace mcs
