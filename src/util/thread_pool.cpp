#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <vector>

namespace mcs {

void parallel_for_sharded(std::size_t n, int jobs,
                          const std::function<void(std::size_t)>& fn) {
    if (n == 0) {
        return;
    }
    const auto workers =
        jobs <= 1 ? std::size_t{1}
                  : std::min(static_cast<std::size_t>(jobs), n);
    if (workers == 1) {
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
        }
        return;
    }

    std::vector<std::exception_ptr> errors(workers);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) {
        threads.emplace_back([&, t] {
            try {
                for (std::size_t i = t; i < n; i += workers) {
                    fn(i);
                }
            } catch (...) {
                errors[t] = std::current_exception();
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    for (const auto& error : errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
}

int hardware_jobs() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

// ---------------------------------------------------------------- TaskPool

TaskPool::TaskPool(int workers, std::size_t max_queue)
    : max_queue_(max_queue) {
    const int count = workers <= 0 ? hardware_jobs() : workers;
    threads_.reserve(static_cast<std::size_t>(count));
    for (int t = 0; t < count; ++t) {
        threads_.emplace_back([this] { worker_loop(); });
    }
}

TaskPool::~TaskPool() { shutdown(); }

bool TaskPool::submit(std::function<void()> task) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!accepting_ ||
            (max_queue_ != 0 && queue_.size() >= max_queue_)) {
            return false;
        }
        queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
    return true;
}

void TaskPool::shutdown() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        accepting_ = false;
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& thread : threads_) {
        if (thread.joinable()) {
            thread.join();
        }
    }
}

void TaskPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock,
                  [this] { return queue_.empty() && in_flight_ == 0; });
}

bool TaskPool::accepting() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return accepting_;
}

std::size_t TaskPool::queue_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

std::uint64_t TaskPool::failed_tasks() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return failed_;
}

std::uint64_t TaskPool::completed_tasks() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_;
}

void TaskPool::worker_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            // stop_ is set and the drain is complete for this worker.
            return;
        }
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++in_flight_;
        lock.unlock();
        bool threw = false;
        try {
            task();
        } catch (...) {
            // Task failures are contained: the worker survives and the
            // failure is observable via failed_tasks() (the daemon maps it
            // to an error response at a higher layer).
            threw = true;
        }
        lock.lock();
        --in_flight_;
        threw ? ++failed_ : ++completed_;
        if (queue_.empty() && in_flight_ == 0) {
            idle_cv_.notify_all();
        }
    }
}

// ----------------------------------------------------------- EpochExecutor

EpochExecutor::EpochExecutor(int workers)
    : workers_(workers <= 0 ? hardware_jobs() : workers) {
    if (workers_ > 1) {
        pool_.emplace(workers_ - 1);
        errors_.resize(static_cast<std::size_t>(workers_));
    }
}

void EpochExecutor::for_slabs(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
    if (n == 0) {
        return;
    }
    // The slab partition depends only on (n, workers_): even when every
    // element fits into fewer slabs than workers, we keep the ceil-divide
    // layout so scratch commit order never depends on runtime conditions.
    const auto slabs =
        std::min(static_cast<std::size_t>(workers_), n);
    if (slabs <= 1) {
        fn(0, n);
        return;
    }
    const std::size_t chunk = (n + slabs - 1) / slabs;
    // Slabs 1.. go to the pool; slab 0 runs on the calling thread so a
    // 2-worker executor keeps both threads busy instead of idling here.
    for (std::size_t t = 1; t < slabs; ++t) {
        const std::size_t begin = t * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        // TaskPool swallows task exceptions (a daemon-side policy); the
        // epoch barrier must propagate them, so each slab captures into
        // its own errors_ slot and the caller rethrows after the barrier.
        pool_->submit([this, &fn, t, begin, end] {
            try {
                fn(begin, end);
            } catch (...) {
                errors_[t] = std::current_exception();
            }
        });
    }
    try {
        fn(0, std::min(n, chunk));
    } catch (...) {
        errors_[0] = std::current_exception();
    }
    pool_->wait_idle();  // the epoch barrier
    for (auto& error : errors_) {
        if (error) {
            std::exception_ptr first = error;
            for (auto& e : errors_) {
                e = nullptr;
            }
            std::rethrow_exception(first);
        }
    }
}

void EpochExecutor::for_each(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
    for_slabs(n, [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            fn(i);
        }
    });
}

}  // namespace mcs
