#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace mcs {

/// Runs `fn(i)` for every i in [0, n) across `jobs` worker threads using
/// static sharding: worker t executes i = t, t + jobs, t + 2*jobs, ...
/// There is no shared queue and no work stealing, so the thread that runs a
/// given index is a pure function of (i, jobs) — callers that commit
/// results by index get identical output for any job count.
///
/// jobs <= 1 (or n <= 1) runs everything inline on the calling thread.
/// If any invocation throws, the remaining indices of that worker's shard
/// are skipped, all workers are joined, and the first exception (lowest
/// worker id) is rethrown.
void parallel_for_sharded(std::size_t n, int jobs,
                          const std::function<void(std::size_t)>& fn);

/// Number of hardware threads, never less than 1 (the fallback when the
/// runtime cannot tell).
int hardware_jobs() noexcept;

/// Long-lived worker pool with a bounded FIFO queue and an explicit
/// shutdown/drain protocol -- the serving-side counterpart to
/// parallel_for_sharded (which is for one-shot data-parallel loops).
///
/// Admission: submit() enqueues a task unless the queue is at capacity or
/// shutdown has begun; both rejections are reported by the return value so
/// the caller can shed load explicitly (the HTTP 429 path) instead of
/// blocking. A task that throws is contained: the exception is swallowed,
/// counted in failed_tasks(), and the worker keeps serving.
///
/// Shutdown: shutdown() (idempotent, also run by the destructor) closes
/// admission, lets the workers finish every already-queued task, and joins
/// them -- the "graceful drain" a daemon performs on SIGTERM. Work submitted
/// concurrently with shutdown either lands before the gate closes (and is
/// executed) or is rejected; nothing is silently dropped.
class TaskPool {
public:
    /// `workers` <= 0 selects hardware_jobs(). `max_queue` == 0 means an
    /// unbounded queue (no admission control).
    explicit TaskPool(int workers, std::size_t max_queue = 0);
    ~TaskPool();
    TaskPool(const TaskPool&) = delete;
    TaskPool& operator=(const TaskPool&) = delete;

    /// Enqueues `task`; returns false (without running it) if the queue is
    /// full or the pool is shutting down.
    bool submit(std::function<void()> task);

    /// Rejects new work, finishes everything already queued, joins the
    /// workers. Safe to call more than once and from any thread except a
    /// worker's own task.
    void shutdown();

    /// Blocks until the queue is empty and every in-flight task finished
    /// (the pool keeps accepting work; use shutdown() for a final drain).
    void wait_idle();

    bool accepting() const;
    std::size_t queue_depth() const;
    int worker_count() const noexcept {
        return static_cast<int>(threads_.size());
    }
    /// Tasks whose invocation threw (the exception was contained).
    std::uint64_t failed_tasks() const;
    std::uint64_t completed_tasks() const;

private:
    void worker_loop();

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;   ///< workers wait for tasks/shutdown
    std::condition_variable idle_cv_;   ///< wait_idle/drain wait for quiesce
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> threads_;
    std::size_t max_queue_ = 0;
    std::size_t in_flight_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t completed_ = 0;
    bool accepting_ = true;
    bool stop_ = false;  ///< workers exit once the queue is empty
};

/// Persistent worker team for data-parallel per-core epoch work between
/// simulation barriers -- the in-run counterpart to parallel_for_sharded
/// (which spawns fresh threads per call) and TaskPool (which has no
/// partitioning or barrier semantics of its own).
///
/// for_slabs(n, fn) partitions [0, n) into one contiguous slab per worker
/// and blocks until every slab has finished: the call IS the epoch
/// barrier. Slab t of W workers is [t*ceil(n/W), min(n, (t+1)*ceil(n/W)))
/// -- a pure function of (n, W), never of timing. The calling thread runs
/// slab 0 itself while the pool (W-1 reusable TaskPool workers) runs the
/// rest; workers == 1 degenerates to a plain inline loop with no
/// synchronization at all.
///
/// Determinism contract (what makes `workers` unobservable in the output):
/// `fn` must only READ shared simulation state and WRITE slots of caller
/// scratch buffers indexed by its own range -- no shared accumulators, no
/// RNG draws, no event scheduling. The caller then folds the scratch into
/// ledgers/metrics/observers in a serial commit loop over fixed index
/// order, which pins the floating-point reduction order regardless of
/// worker count or interleaving. See docs/parallelism.md.
///
/// An exception thrown by any slab is captured and rethrown on the calling
/// thread after the barrier (lowest slab index wins); the team survives
/// and later for_slabs calls work normally.
class EpochExecutor {
public:
    /// `workers` <= 0 selects hardware_jobs(); 1 means strictly inline.
    explicit EpochExecutor(int workers = 1);
    EpochExecutor(const EpochExecutor&) = delete;
    EpochExecutor& operator=(const EpochExecutor&) = delete;

    int workers() const noexcept { return workers_; }
    bool parallel() const noexcept { return pool_.has_value(); }

    /// Runs fn(begin, end) over the slab partition of [0, n) and waits for
    /// all slabs (the barrier). fn must honor the determinism contract
    /// above. Safe to call with n == 0 (no-op).
    void for_slabs(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& fn);

    /// Convenience: per-index form of for_slabs.
    void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

private:
    int workers_ = 1;
    std::optional<TaskPool> pool_;  ///< workers_ - 1 threads; absent if 1
    std::vector<std::exception_ptr> errors_;  ///< one slot per slab
};

}  // namespace mcs
