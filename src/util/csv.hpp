#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace mcs {

/// Minimal CSV writer for experiment traces. Cells containing commas,
/// quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
public:
    /// Opens `path` for writing and emits the header row.
    CsvWriter(const std::string& path, std::vector<std::string> header);

    void write_row(const std::vector<std::string>& cells);
    /// Convenience overload: formats doubles with 6 significant digits.
    void write_row(const std::vector<double>& cells);

    std::size_t rows_written() const noexcept { return rows_; }

private:
    std::ofstream out_;
    std::size_t columns_;
    std::size_t rows_ = 0;

    void emit(const std::vector<std::string>& cells);
};

/// Escapes a single CSV cell (exposed for testing).
std::string csv_escape(const std::string& cell);

}  // namespace mcs
