#include "util/csv.hpp"

#include <sstream>

#include "util/require.hpp"

namespace mcs {

std::string csv_escape(const std::string& cell) {
    const bool needs_quoting =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting) {
        return cell;
    }
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"') {
            out += '"';
        }
        out += ch;
    }
    out += '"';
    return out;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
    MCS_REQUIRE(out_.is_open(), "cannot open CSV file: " + path);
    MCS_REQUIRE(columns_ > 0, "CSV needs at least one column");
    emit(header);
    rows_ = 0;  // header does not count as a data row
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
    MCS_REQUIRE(cells.size() == columns_, "CSV row width mismatch");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) {
            out_ << ',';
        }
        out_ << csv_escape(cells[i]);
    }
    out_ << '\n';
    ++rows_;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
    emit(cells);
}

void CsvWriter::write_row(const std::vector<double>& cells) {
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double v : cells) {
        std::ostringstream os;
        os.precision(6);
        os << v;
        text.push_back(os.str());
    }
    emit(text);
}

}  // namespace mcs
