#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/require.hpp"

namespace mcs {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
public:
    void add(double x) noexcept;

    std::size_t count() const noexcept { return n_; }
    bool empty() const noexcept { return n_ == 0; }
    double mean() const noexcept { return n_ ? mean_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    double variance() const noexcept;
    double stddev() const noexcept;
    double min() const noexcept { return n_ ? min_ : 0.0; }
    double max() const noexcept { return n_ ? max_ : 0.0; }
    double sum() const noexcept { return sum_; }

    /// Merges another accumulator into this one (parallel Welford).
    void merge(const RunningStats& other) noexcept;

    /// Raw second central moment (Welford M2), for exact checkpointing.
    double m2() const noexcept { return m2_; }

    /// Restores the exact accumulator state captured via the raw accessors.
    /// min/max are ignored when n == 0 (the empty sentinel is reinstated).
    void restore(std::size_t n, double mean, double m2, double sum, double min,
                 double max) noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin and counted separately as underflow/overflow.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;

    std::size_t bins() const noexcept { return counts_.size(); }
    std::uint64_t bin_count(std::size_t i) const;
    double bin_lo(std::size_t i) const;
    double bin_hi(std::size_t i) const;
    std::uint64_t underflow() const noexcept { return underflow_; }
    std::uint64_t overflow() const noexcept { return overflow_; }
    std::uint64_t total() const noexcept { return total_; }

    /// Whether `other` has the identical bucket layout (lo, width, bins).
    bool same_layout(const Histogram& other) const noexcept;

    /// Bin-wise merge of another histogram with the same layout
    /// (associative and commutative; throws RequireError on a layout
    /// mismatch). The deterministic aggregation primitive for per-replica
    /// telemetry.
    void merge(const Histogram& other);

    /// Overwrites the bin contents with a previously captured state. The
    /// bin count must match the constructed layout.
    void restore_counts(const std::vector<std::uint64_t>& counts,
                        std::uint64_t underflow, std::uint64_t overflow,
                        std::uint64_t total);

private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/// Stores all samples; supports exact quantiles. Intended for experiment
/// post-processing (detection-latency CDFs etc.), not hot loops.
class SampleSet {
public:
    void add(double x) { samples_.push_back(x); }
    std::size_t count() const noexcept { return samples_.size(); }
    bool empty() const noexcept { return samples_.empty(); }

    /// Exact empirical quantile, q in [0,1]. Requires at least one sample.
    double quantile(double q) const;
    double median() const { return quantile(0.5); }
    double mean() const;
    double min() const;
    double max() const;

    const std::vector<double>& samples() const noexcept { return samples_; }

private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
    void ensure_sorted() const;
};

/// Time-weighted average of a piecewise-constant signal, e.g. the fraction
/// of time a core spends busy. Feed (timestamp, value) transitions in
/// non-decreasing time order.
class TimeWeightedStat {
public:
    /// Records that the signal held `value` from the previous update time
    /// until `now` (times in arbitrary but consistent units).
    void update(std::uint64_t now, double value);

    /// Average over [first update, last update]; 0 if no interval elapsed.
    double average() const noexcept;
    std::uint64_t elapsed() const noexcept;

private:
    bool started_ = false;
    std::uint64_t start_ = 0;
    std::uint64_t last_time_ = 0;
    double last_value_ = 0.0;
    double weighted_sum_ = 0.0;
};

}  // namespace mcs
