#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mcs {

void RunningStats::add(double x) noexcept {
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
    if (n_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept {
    return std::sqrt(variance());
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) {
        return;
    }
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double nt = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    mean_ = (na * mean_ + nb * other.mean_) / nt;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void RunningStats::restore(std::size_t n, double mean, double m2, double sum,
                           double min, double max) noexcept {
    n_ = n;
    mean_ = mean;
    m2_ = m2;
    sum_ = sum;
    if (n == 0) {
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    } else {
        min_ = min;
        max_ = max;
    }
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
    MCS_REQUIRE(hi > lo, "histogram range must be non-empty");
    MCS_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
    ++total_;
    if (x < lo_) {
        ++underflow_;
        ++counts_.front();
        return;
    }
    const auto raw = static_cast<std::size_t>((x - lo_) / width_);
    if (raw >= counts_.size()) {
        ++overflow_;
        ++counts_.back();
        return;
    }
    ++counts_[raw];
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
    MCS_REQUIRE(i < counts_.size(), "histogram bin out of range");
    return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
    MCS_REQUIRE(i < counts_.size(), "histogram bin out of range");
    return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
    return bin_lo(i) + width_;
}

bool Histogram::same_layout(const Histogram& other) const noexcept {
    return lo_ == other.lo_ && width_ == other.width_ &&
           counts_.size() == other.counts_.size();
}

void Histogram::merge(const Histogram& other) {
    MCS_REQUIRE(same_layout(other),
                "cannot merge histograms with different layouts");
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        counts_[i] += other.counts_[i];
    }
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
}

void Histogram::restore_counts(const std::vector<std::uint64_t>& counts,
                               std::uint64_t underflow, std::uint64_t overflow,
                               std::uint64_t total) {
    MCS_REQUIRE(counts.size() == counts_.size(),
                "histogram restore: bin count mismatch");
    counts_ = counts;
    underflow_ = underflow;
    overflow_ = overflow;
    total_ = total;
}

void SampleSet::ensure_sorted() const {
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double SampleSet::quantile(double q) const {
    MCS_REQUIRE(!samples_.empty(), "quantile of empty sample set");
    MCS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    ensure_sorted();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= samples_.size()) {
        return samples_.back();
    }
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double SampleSet::mean() const {
    MCS_REQUIRE(!samples_.empty(), "mean of empty sample set");
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

double SampleSet::min() const {
    MCS_REQUIRE(!samples_.empty(), "min of empty sample set");
    ensure_sorted();
    return samples_.front();
}

double SampleSet::max() const {
    MCS_REQUIRE(!samples_.empty(), "max of empty sample set");
    ensure_sorted();
    return samples_.back();
}

void TimeWeightedStat::update(std::uint64_t now, double value) {
    if (!started_) {
        started_ = true;
        start_ = now;
        last_time_ = now;
        last_value_ = value;
        return;
    }
    MCS_REQUIRE(now >= last_time_, "time-weighted updates must be ordered");
    weighted_sum_ +=
        last_value_ * static_cast<double>(now - last_time_);
    last_time_ = now;
    last_value_ = value;
}

double TimeWeightedStat::average() const noexcept {
    const std::uint64_t span = elapsed();
    if (span == 0) {
        return started_ ? last_value_ : 0.0;
    }
    return weighted_sum_ / static_cast<double>(span);
}

std::uint64_t TimeWeightedStat::elapsed() const noexcept {
    return started_ ? last_time_ - start_ : 0;
}

}  // namespace mcs
