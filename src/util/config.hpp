#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>

namespace mcs {

/// Tiny key=value configuration store used by the examples and benches to
/// accept command-line overrides (`./quickstart cores=64 seed=7`).
class Config {
public:
    Config() = default;

    /// Parses `key=value` tokens; tokens without '=' are ignored.
    static Config from_args(std::span<const char* const> args);

    /// Parses a file of `key=value` lines ('#' starts a comment). Throws
    /// RequireError if the file cannot be opened.
    static Config from_file(const std::string& path);

    /// Merges `other` into this config (other's values win).
    void merge(const Config& other);

    void set(const std::string& key, const std::string& value);
    bool has(const std::string& key) const;

    std::string get_string(const std::string& key,
                           const std::string& fallback) const;
    /// Throws RequireError if present but unparsable.
    std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
    double get_double(const std::string& key, double fallback) const;
    bool get_bool(const std::string& key, bool fallback) const;

    const std::map<std::string, std::string>& entries() const {
        return values_;
    }

private:
    std::map<std::string, std::string> values_;
    std::optional<std::string> lookup(const std::string& key) const;
};

}  // namespace mcs
