#pragma once

#include <stdexcept>
#include <string>

namespace mcs {

/// Thrown when an MCS_REQUIRE precondition is violated.
class RequireError : public std::logic_error {
public:
    explicit RequireError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void require_failed(const char* expr, const char* file, int line,
                                 const std::string& msg);

}  // namespace mcs

/// Precondition check that stays enabled in release builds. Library entry
/// points use this to establish invariants; internal consistency checks use
/// plain assert.
#define MCS_REQUIRE(expr, msg)                                        \
    do {                                                              \
        if (!(expr)) {                                                \
            ::mcs::require_failed(#expr, __FILE__, __LINE__, (msg));  \
        }                                                             \
    } while (0)
