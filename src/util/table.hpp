#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mcs {

/// Aligned ASCII table printer used by the benchmark harness to emit
/// paper-style tables. Numeric cells are produced by the caller via the
/// fmt() helpers so the table itself stays type-agnostic.
class TablePrinter {
public:
    explicit TablePrinter(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);
    /// Inserts a horizontal separator line before the next row.
    void add_separator();

    void print(std::ostream& os) const;
    std::string to_string() const;

    std::size_t rows() const noexcept { return rows_.size(); }

private:
    struct Row {
        std::vector<std::string> cells;
        bool separator = false;
    };
    std::vector<std::string> headers_;
    std::vector<Row> rows_;
};

/// Formats a double with the given number of decimal places.
std::string fmt(double value, int decimals = 2);
/// Formats an integer with no grouping.
std::string fmt(std::int64_t value);
std::string fmt(std::uint64_t value);
/// Formats a ratio as a percentage string, e.g. 0.0123 -> "1.23%".
std::string fmt_pct(double ratio, int decimals = 2);

}  // namespace mcs
