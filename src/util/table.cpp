#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace mcs {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
    MCS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
    MCS_REQUIRE(cells.size() == headers_.size(),
                "row width must match header width");
    rows_.push_back({std::move(cells), false});
}

void TablePrinter::add_separator() {
    rows_.push_back({{}, true});
}

void TablePrinter::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        if (row.separator) {
            continue;
        }
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            widths[c] = std::max(widths[c], row.cells[c].size());
        }
    }

    auto rule = [&] {
        os << '+';
        for (std::size_t w : widths) {
            os << std::string(w + 2, '-') << '+';
        }
        os << '\n';
    };
    auto line = [&](const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left
               << cells[c] << " |";
        }
        os << '\n';
    };

    rule();
    line(headers_);
    rule();
    for (const auto& row : rows_) {
        if (row.separator) {
            rule();
        } else {
            line(row.cells);
        }
    }
    rule();
}

std::string TablePrinter::to_string() const {
    std::ostringstream os;
    print(os);
    return os.str();
}

std::string fmt(double value, int decimals) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

std::string fmt(std::int64_t value) {
    return std::to_string(value);
}

std::string fmt(std::uint64_t value) {
    return std::to_string(value);
}

std::string fmt_pct(double ratio, int decimals) {
    return fmt(ratio * 100.0, decimals) + "%";
}

}  // namespace mcs
