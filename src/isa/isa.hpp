#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sbst/test_suite.hpp"

namespace mcs {

/// Miniature RISC instruction set used to *execute* SBST routines instead
/// of assuming their coverage. Each opcode is served by one functional unit
/// (the same units the fault model knows), so a structural fault in a unit
/// corrupts exactly the instructions that exercise it.
enum class Opcode : std::uint8_t {
    // ALU
    Add, Sub, And, Or, Xor, Shl, Shr, AddI,
    // Multiply/divide unit (the chip's "FPU" slot)
    Mul, MulH, Div, Rem,
    // Load/store unit (indexed scratchpad)
    Lw, Sw,
    // Branch unit (relative offsets)
    Beq, Bne, Blt, Jmp,
    // Register file / immediate material
    Lui,
    // End of program
    Halt,
};
inline constexpr std::size_t kOpcodeCount = 20;

const char* to_string(Opcode op);

/// The functional unit that executes an opcode.
FunctionalUnit unit_of(Opcode op);

/// One instruction. Register file: 16 x 32-bit (r0 hardwired to zero).
struct Instr {
    Opcode op = Opcode::Halt;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int32_t imm = 0;
};

/// A program plus metadata; programs are position-indexed (pc = index).
struct Program {
    std::string name;
    FunctionalUnit target = FunctionalUnit::Alu;
    std::vector<Instr> code;
};

inline constexpr int kRegCount = 16;
inline constexpr std::size_t kScratchpadWords = 256;

/// A structural fault site inside one functional unit of the core model.
/// `index`/`bit` are interpreted per unit:
///   Alu/Fpu:        result bit `bit` stuck at `stuck_one`
///   Lsu:            loaded-data bit `bit` stuck
///   RegisterFile:   reads of register `index` have bit `bit` stuck
///   BranchUnit:     branch decision stuck at `stuck_one` (taken/not-taken)
///   FetchDecode:    opcode `index` decodes as a different opcode
struct FaultSite {
    FunctionalUnit unit = FunctionalUnit::Alu;
    std::uint8_t index = 0;
    std::uint8_t bit = 0;
    bool stuck_one = false;
};

/// Outcome of executing a program.
struct ExecResult {
    std::uint64_t signature = 0;   ///< MISR over retired results
    std::uint64_t retired = 0;     ///< instructions executed
    bool hit_step_limit = false;
};

/// Functional core model: interprets Programs, optionally with one injected
/// structural fault, and compacts all observable behaviour into a MISR
/// signature (exactly what software-based self-test does on real cores).
class CoreModel {
public:
    CoreModel() = default;

    /// Runs `program` from a cold state (zeroed registers/memory).
    ExecResult run(const Program& program,
                   std::uint64_t max_steps = 1'000'000);

    /// Runs with a fault injected.
    ExecResult run_with_fault(const Program& program, const FaultSite& fault,
                              std::uint64_t max_steps = 1'000'000);

private:
    ExecResult execute(const Program& program, const FaultSite* fault,
                       std::uint64_t max_steps);
};

}  // namespace mcs
