#include "isa/isa.hpp"

#include <array>

#include "util/require.hpp"

namespace mcs {

const char* to_string(Opcode op) {
    switch (op) {
        case Opcode::Add: return "add";
        case Opcode::Sub: return "sub";
        case Opcode::And: return "and";
        case Opcode::Or: return "or";
        case Opcode::Xor: return "xor";
        case Opcode::Shl: return "shl";
        case Opcode::Shr: return "shr";
        case Opcode::AddI: return "addi";
        case Opcode::Mul: return "mul";
        case Opcode::MulH: return "mulh";
        case Opcode::Div: return "div";
        case Opcode::Rem: return "rem";
        case Opcode::Lw: return "lw";
        case Opcode::Sw: return "sw";
        case Opcode::Beq: return "beq";
        case Opcode::Bne: return "bne";
        case Opcode::Blt: return "blt";
        case Opcode::Jmp: return "jmp";
        case Opcode::Lui: return "lui";
        case Opcode::Halt: return "halt";
    }
    return "?";
}

FunctionalUnit unit_of(Opcode op) {
    switch (op) {
        case Opcode::Add:
        case Opcode::Sub:
        case Opcode::And:
        case Opcode::Or:
        case Opcode::Xor:
        case Opcode::Shl:
        case Opcode::Shr:
        case Opcode::AddI:
            return FunctionalUnit::Alu;
        case Opcode::Mul:
        case Opcode::MulH:
        case Opcode::Div:
        case Opcode::Rem:
            return FunctionalUnit::Fpu;
        case Opcode::Lw:
        case Opcode::Sw:
            return FunctionalUnit::Lsu;
        case Opcode::Beq:
        case Opcode::Bne:
        case Opcode::Blt:
        case Opcode::Jmp:
            return FunctionalUnit::BranchUnit;
        case Opcode::Lui:
            return FunctionalUnit::RegisterFile;
        case Opcode::Halt:
            return FunctionalUnit::FetchDecode;
    }
    return FunctionalUnit::FetchDecode;
}

namespace {

std::uint32_t force_bit(std::uint32_t value, std::uint8_t bit,
                        bool stuck_one) {
    const std::uint32_t mask = 1u << (bit & 31u);
    return stuck_one ? (value | mask) : (value & ~mask);
}

// Idealized MISR: a nonlinear chained mixer (splitmix64 finalizer) instead
// of a linear LFSR. Hardware MISRs are linear but engineered for negligible
// aliasing; a linear software fold over highly regular march loops aliases
// *structurally* (identical fault deltas cancel pairwise), so we use the
// nonlinear chain to model the negligible-aliasing property itself.
std::uint64_t misr(std::uint64_t sig, std::uint64_t value) {
    std::uint64_t x = sig ^ (value + 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

}  // namespace

ExecResult CoreModel::run(const Program& program, std::uint64_t max_steps) {
    return execute(program, nullptr, max_steps);
}

ExecResult CoreModel::run_with_fault(const Program& program,
                                     const FaultSite& fault,
                                     std::uint64_t max_steps) {
    return execute(program, &fault, max_steps);
}

ExecResult CoreModel::execute(const Program& program, const FaultSite* fault,
                              std::uint64_t max_steps) {
    MCS_REQUIRE(!program.code.empty(), "empty program");
    std::array<std::uint32_t, kRegCount> regs{};
    std::array<std::uint32_t, kScratchpadWords> mem{};
    ExecResult result;
    std::uint64_t pc = 0;

    auto read_reg = [&](std::uint8_t r) -> std::uint32_t {
        const std::uint8_t idx = r & 15u;
        std::uint32_t v = idx == 0 ? 0u : regs[idx];
        if (fault && fault->unit == FunctionalUnit::RegisterFile &&
            fault->index == idx) {
            v = force_bit(v, fault->bit, fault->stuck_one);
        }
        return v;
    };
    auto write_reg = [&](std::uint8_t r, std::uint32_t v) {
        const std::uint8_t idx = r & 15u;
        if (idx != 0) {
            regs[idx] = v;
        }
        result.signature = misr(result.signature, v);
    };
    auto alu_out = [&](FunctionalUnit unit, std::uint32_t v) {
        if (fault && fault->unit == unit &&
            (unit == FunctionalUnit::Alu || unit == FunctionalUnit::Fpu)) {
            v = force_bit(v, fault->bit, fault->stuck_one);
        }
        return v;
    };
    auto branch_decision = [&](bool taken) {
        if (fault && fault->unit == FunctionalUnit::BranchUnit) {
            taken = fault->stuck_one;
        }
        result.signature = misr(result.signature, taken ? 0x1b : 0x2c);
        return taken;
    };

    while (pc < program.code.size() && result.retired < max_steps) {
        Instr ins = program.code[pc];
        // Fetch/decode fault: the faulty opcode decodes as its neighbour in
        // the opcode table (deterministic mis-decode).
        if (fault && fault->unit == FunctionalUnit::FetchDecode &&
            static_cast<std::uint8_t>(ins.op) == fault->index) {
            ins.op = static_cast<Opcode>(
                (fault->index + 1 + fault->bit) % kOpcodeCount);
        }
        ++result.retired;
        std::uint64_t next_pc = pc + 1;
        const std::uint32_t a = read_reg(ins.rs1);
        const std::uint32_t b = read_reg(ins.rs2);
        const auto imm = static_cast<std::uint32_t>(ins.imm);
        switch (ins.op) {
            case Opcode::Add:
                write_reg(ins.rd, alu_out(FunctionalUnit::Alu, a + b));
                break;
            case Opcode::Sub:
                write_reg(ins.rd, alu_out(FunctionalUnit::Alu, a - b));
                break;
            case Opcode::And:
                write_reg(ins.rd, alu_out(FunctionalUnit::Alu, a & b));
                break;
            case Opcode::Or:
                write_reg(ins.rd, alu_out(FunctionalUnit::Alu, a | b));
                break;
            case Opcode::Xor:
                write_reg(ins.rd, alu_out(FunctionalUnit::Alu, a ^ b));
                break;
            case Opcode::Shl:
                write_reg(ins.rd,
                          alu_out(FunctionalUnit::Alu, a << (b & 31u)));
                break;
            case Opcode::Shr:
                write_reg(ins.rd,
                          alu_out(FunctionalUnit::Alu, a >> (b & 31u)));
                break;
            case Opcode::AddI:
                write_reg(ins.rd, alu_out(FunctionalUnit::Alu, a + imm));
                break;
            case Opcode::Mul:
                write_reg(ins.rd, alu_out(FunctionalUnit::Fpu, a * b));
                break;
            case Opcode::MulH:
                write_reg(
                    ins.rd,
                    alu_out(FunctionalUnit::Fpu,
                            static_cast<std::uint32_t>(
                                (static_cast<std::uint64_t>(a) * b) >> 32)));
                break;
            case Opcode::Div:
                write_reg(ins.rd,
                          alu_out(FunctionalUnit::Fpu,
                                  b == 0 ? 0xffffffffu : a / b));
                break;
            case Opcode::Rem:
                write_reg(ins.rd,
                          alu_out(FunctionalUnit::Fpu, b == 0 ? a : a % b));
                break;
            case Opcode::Lw: {
                const std::size_t addr =
                    (a + imm) % kScratchpadWords;
                std::uint32_t v = mem[addr];
                if (fault && fault->unit == FunctionalUnit::Lsu) {
                    v = force_bit(v, fault->bit, fault->stuck_one);
                }
                write_reg(ins.rd, v);
                break;
            }
            case Opcode::Sw: {
                const std::size_t addr =
                    (a + imm) % kScratchpadWords;
                mem[addr] = b;
                result.signature = misr(result.signature, b + addr);
                break;
            }
            case Opcode::Beq:
                if (branch_decision(a == b)) {
                    next_pc = pc + static_cast<std::int64_t>(ins.imm);
                }
                break;
            case Opcode::Bne:
                if (branch_decision(a != b)) {
                    next_pc = pc + static_cast<std::int64_t>(ins.imm);
                }
                break;
            case Opcode::Blt:
                if (branch_decision(static_cast<std::int32_t>(a) <
                                    static_cast<std::int32_t>(b))) {
                    next_pc = pc + static_cast<std::int64_t>(ins.imm);
                }
                break;
            case Opcode::Jmp:
                next_pc = pc + static_cast<std::int64_t>(ins.imm);
                break;
            case Opcode::Lui:
                write_reg(ins.rd, imm << 12);
                break;
            case Opcode::Halt:
                pc = program.code.size();
                continue;
        }
        if (next_pc > program.code.size()) {
            // A fault-free program must never wander out of bounds; a
            // mis-decoded one may -- model that as a (detectable) hang.
            MCS_REQUIRE(fault != nullptr, "program jumped out of bounds");
            break;
        }
        pc = next_pc;
    }
    result.hit_step_limit = result.retired >= max_steps;
    // Fold the retirement count in so truncated or looping (faulty)
    // executions produce a different signature even without data writes.
    result.signature = misr(result.signature, result.retired ^ 0xdeadbeefULL);
    return result;
}

}  // namespace mcs
