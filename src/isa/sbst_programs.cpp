#include "isa/sbst_programs.hpp"

#include <array>

#include "util/require.hpp"

namespace mcs {
namespace {

class Assembler {
public:
    explicit Assembler(std::string name, FunctionalUnit target) {
        program_.name = std::move(name);
        program_.target = target;
    }

    void emit(Opcode op, int rd = 0, int rs1 = 0, int rs2 = 0,
              std::int32_t imm = 0) {
        program_.code.push_back(Instr{op, static_cast<std::uint8_t>(rd),
                                      static_cast<std::uint8_t>(rs1),
                                      static_cast<std::uint8_t>(rs2), imm});
    }

    /// Materializes a full 32-bit constant into a register (Lui + AddI).
    void load_const(int rd, std::uint32_t value) {
        const auto hi = static_cast<std::int32_t>(value >> 12);
        const auto lo = static_cast<std::int32_t>(value & 0xfffu);
        emit(Opcode::Lui, rd, 0, 0, hi);
        emit(Opcode::AddI, rd, rd, 0, lo);
    }

    Program take() {
        program_.code.push_back(Instr{Opcode::Halt, 0, 0, 0, 0});
        return std::move(program_);
    }

private:
    Program program_;
};

constexpr std::array<std::uint32_t, 8> kPatterns{
    0x00000000u, 0xffffffffu, 0xaaaaaaaau, 0x55555555u,
    0x0f0f0f0fu, 0xf0f0f0f0u, 0x00ff00ffu, 0xdeadbeefu,
};

// March-style register file test: write a pattern and its complement to
// every register, reading each back through an accumulating XOR.
Program build_regfile_march() {
    Assembler a("regfile_march", FunctionalUnit::RegisterFile);
    for (std::uint32_t pattern : {0xaaaaaaaau, 0x55555555u, 0xffffffffu,
                                  0x00000001u}) {
        // Ascending write phase (r2..r15; r1 is the accumulator).
        for (int r = 2; r < kRegCount; ++r) {
            a.load_const(r, pattern + static_cast<std::uint32_t>(r));
        }
        // Descending read phase.
        for (int r = kRegCount - 1; r >= 2; --r) {
            a.emit(Opcode::Xor, 1, 1, r);
        }
        // Read-after-copy phase: move values between registers.
        for (int r = 2; r + 1 < kRegCount; ++r) {
            a.emit(Opcode::Add, r + 1, r, 0);
            a.emit(Opcode::Xor, 1, 1, r + 1);
        }
    }
    return a.take();
}

// Walking-ones / pattern sweep through every ALU operation.
Program build_alu_march() {
    Assembler a("alu_march", FunctionalUnit::Alu);
    for (std::uint32_t pattern : kPatterns) {
        a.load_const(2, pattern);
        a.load_const(3, ~pattern);
        for (Opcode op : {Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or,
                          Opcode::Xor}) {
            a.emit(op, 4, 2, 3);
            a.emit(Opcode::Xor, 1, 1, 4);
            a.emit(op, 4, 3, 2);
            a.emit(Opcode::Xor, 1, 1, 4);
        }
    }
    // Walking-one shifts: exercise every bit lane of the shifter.
    a.load_const(2, 1);
    for (int s = 0; s < 32; ++s) {
        a.emit(Opcode::AddI, 3, 0, 0, s);
        a.emit(Opcode::Shl, 4, 2, 3);
        a.emit(Opcode::Xor, 1, 1, 4);
        a.load_const(5, 0x80000000u);
        a.emit(Opcode::Shr, 4, 5, 3);
        a.emit(Opcode::Xor, 1, 1, 4);
    }
    return a.take();
}

// Multiplier/divider corner cases (the chip's arithmetic "FPU" slot).
Program build_fpu_patterns() {
    Assembler a("fpu_patterns", FunctionalUnit::Fpu);
    constexpr std::array<std::uint32_t, 6> operands{
        0u, 1u, 3u, 0x7fffffffu, 0x80000001u, 0xfffffffbu};
    for (std::uint32_t x : operands) {
        for (std::uint32_t y : operands) {
            a.load_const(2, x);
            a.load_const(3, y);
            for (Opcode op : {Opcode::Mul, Opcode::MulH, Opcode::Div,
                              Opcode::Rem}) {
                a.emit(op, 4, 2, 3);
                a.emit(Opcode::Xor, 1, 1, 4);
            }
        }
    }
    // Walking-one multiplications hit every partial-product lane.
    for (int s = 0; s < 32; ++s) {
        a.load_const(2, 1u << s);
        a.load_const(3, 0x10001u);
        a.emit(Opcode::Mul, 4, 2, 3);
        a.emit(Opcode::MulH, 5, 2, 3);
        a.emit(Opcode::Xor, 1, 1, 4);
        a.emit(Opcode::Xor, 1, 1, 5);
    }
    return a.take();
}

// Scratchpad march: write/read with multiple strides and complements.
Program build_lsu_stride() {
    Assembler a("lsu_stride", FunctionalUnit::Lsu);
    for (std::uint32_t pattern : {0xaaaaaaaau, 0x55555555u, 0x00ff00ffu}) {
        a.load_const(2, pattern);
        a.emit(Opcode::Xor, 3, 2, 2);  // r3 = 0 (address base)
        for (int stride : {1, 3, 7}) {
            for (int i = 0; i < 16; ++i) {
                const std::int32_t addr = i * stride;
                a.emit(Opcode::Sw, 0, 0, 2, addr);
                a.emit(Opcode::Lw, 4, 0, 0, addr);
                a.emit(Opcode::Xor, 1, 1, 4);
                // Complement in place, re-read (march element).
                a.load_const(5, ~pattern);
                a.emit(Opcode::Sw, 0, 0, 5, addr);
                a.emit(Opcode::Lw, 4, 0, 0, addr);
                a.emit(Opcode::Xor, 1, 1, 4);
            }
        }
    }
    return a.take();
}

// Branch ladder: alternating taken and not-taken branches of every kind;
// each side of every branch perturbs the accumulator differently.
Program build_branch_storm() {
    Assembler a("branch_storm", FunctionalUnit::BranchUnit);
    a.emit(Opcode::AddI, 2, 0, 0, 5);
    a.emit(Opcode::AddI, 3, 0, 0, 9);
    for (int round = 0; round < 24; ++round) {
        const bool expect_taken = round % 2 == 0;
        const Opcode op = round % 3 == 0   ? Opcode::Beq
                          : round % 3 == 1 ? Opcode::Bne
                                           : Opcode::Blt;
        // Choose operands so the branch resolves as `expect_taken`.
        //   Beq taken: r2==r2; not-taken: r2!=r3
        //   Bne taken: r2!=r3; not-taken: r2==r2
        //   Blt taken: r2<r3;  not-taken: r3<r2
        int rs1 = 2, rs2 = 3;
        if (op == Opcode::Beq) {
            rs2 = expect_taken ? 2 : 3;
        } else if (op == Opcode::Bne) {
            rs2 = expect_taken ? 3 : 2;
        } else {
            rs1 = expect_taken ? 2 : 3;
            rs2 = expect_taken ? 3 : 2;
        }
        a.emit(op, 0, rs1, rs2, 3);              // skip 2 instrs when taken
        a.emit(Opcode::AddI, 1, 1, 0, 17 + round);   // fall-through path
        a.emit(Opcode::Jmp, 0, 0, 0, 2);
        a.emit(Opcode::Xor, 1, 1, 2);            // taken path
    }
    return a.take();
}

// Every opcode at least once with observable operands: a decode fault on
// any instruction class perturbs the signature.
Program build_ifd_sweep() {
    Assembler a("ifd_sweep", FunctionalUnit::FetchDecode);
    for (int round = 0; round < 4; ++round) {
        const std::uint32_t pattern = kPatterns[static_cast<std::size_t>(
            round * 2 + 1)];
        a.load_const(2, pattern);
        a.load_const(3, 0x1234567u + static_cast<std::uint32_t>(round));
        a.emit(Opcode::Add, 4, 2, 3);
        a.emit(Opcode::Sub, 5, 2, 3);
        a.emit(Opcode::And, 6, 2, 3);
        a.emit(Opcode::Or, 7, 2, 3);
        a.emit(Opcode::Xor, 8, 2, 3);
        a.emit(Opcode::AddI, 9, 2, 0, 77);
        a.emit(Opcode::Shl, 10, 2, 9);
        a.emit(Opcode::Shr, 11, 2, 9);
        a.emit(Opcode::Mul, 12, 2, 3);
        a.emit(Opcode::MulH, 13, 2, 3);
        a.emit(Opcode::Div, 14, 2, 3);
        a.emit(Opcode::Rem, 15, 2, 3);
        a.emit(Opcode::Sw, 0, 0, 12, 8 + round);
        a.emit(Opcode::Lw, 4, 0, 0, 8 + round);
        a.emit(Opcode::Xor, 1, 1, 4);
        a.emit(Opcode::Beq, 0, 2, 2, 2);   // taken
        a.emit(Opcode::AddI, 1, 1, 0, 3);  // skipped
        a.emit(Opcode::Bne, 0, 2, 2, 2);   // not taken
        a.emit(Opcode::Xor, 1, 1, 12);     // executed
        a.emit(Opcode::Blt, 0, 3, 2, 2);   // depends on patterns
        a.emit(Opcode::Xor, 1, 1, 13);
        a.emit(Opcode::Jmp, 0, 0, 0, 2);
        a.emit(Opcode::AddI, 1, 1, 0, 1);  // skipped by Jmp
        a.emit(Opcode::Xor, 1, 1, 5);
        a.emit(Opcode::Xor, 1, 1, 6);
        a.emit(Opcode::Xor, 1, 1, 7);
        a.emit(Opcode::Xor, 1, 1, 8);
        a.emit(Opcode::Xor, 1, 1, 10);
        a.emit(Opcode::Xor, 1, 1, 11);
        a.emit(Opcode::Xor, 1, 1, 14);
        a.emit(Opcode::Xor, 1, 1, 15);
    }
    return a.take();
}

}  // namespace

SbstLibrary::SbstLibrary() {
    programs_.push_back(build_alu_march());
    programs_.push_back(build_fpu_patterns());
    programs_.push_back(build_lsu_stride());
    programs_.push_back(build_ifd_sweep());
    programs_.push_back(build_regfile_march());
    programs_.push_back(build_branch_storm());
}

const Program& SbstLibrary::program_for(FunctionalUnit unit) const {
    for (const Program& p : programs_) {
        if (p.target == unit) {
            return p;
        }
    }
    MCS_REQUIRE(false, "no program targets this unit");
    return programs_.front();  // unreachable
}

std::uint64_t SbstLibrary::golden_signature(const Program& program) const {
    CoreModel core;
    const ExecResult r = core.run(program);
    MCS_REQUIRE(!r.hit_step_limit, "golden run hit the step limit");
    return r.signature;
}

std::vector<FaultSite> SbstLibrary::fault_sites(FunctionalUnit unit) {
    std::vector<FaultSite> sites;
    auto add = [&](std::uint8_t index, std::uint8_t bit) {
        sites.push_back(FaultSite{unit, index, bit, false});
        sites.push_back(FaultSite{unit, index, bit, true});
    };
    switch (unit) {
        case FunctionalUnit::Alu:
        case FunctionalUnit::Fpu:
        case FunctionalUnit::Lsu:
            for (std::uint8_t bit = 0; bit < 32; ++bit) {
                add(0, bit);
            }
            break;
        case FunctionalUnit::RegisterFile:
            for (std::uint8_t reg = 0; reg < kRegCount; ++reg) {
                for (std::uint8_t bit = 0; bit < 32; bit += 5) {
                    add(reg, bit);
                }
            }
            break;
        case FunctionalUnit::BranchUnit:
            add(0, 0);
            break;
        case FunctionalUnit::FetchDecode:
            for (std::uint8_t op = 0; op < kOpcodeCount; ++op) {
                for (std::uint8_t bit = 0; bit < 3; ++bit) {
                    add(op, bit);
                }
            }
            break;
    }
    return sites;
}

double SbstLibrary::measure_coverage(const Program& program,
                                     FunctionalUnit unit) const {
    const std::uint64_t golden = golden_signature(program);
    const auto sites = fault_sites(unit);
    MCS_REQUIRE(!sites.empty(), "unit has no fault sites");
    CoreModel core;
    std::size_t detected = 0;
    for (const FaultSite& site : sites) {
        const ExecResult r = core.run_with_fault(program, site);
        if (r.signature != golden) {
            ++detected;
        }
    }
    return static_cast<double>(detected) / static_cast<double>(sites.size());
}

std::vector<std::vector<double>> SbstLibrary::coverage_matrix() const {
    std::vector<std::vector<double>> matrix;
    matrix.reserve(programs_.size());
    for (const Program& p : programs_) {
        std::vector<double> row;
        row.reserve(kFunctionalUnitCount);
        for (std::size_t u = 0; u < kFunctionalUnitCount; ++u) {
            row.push_back(
                measure_coverage(p, static_cast<FunctionalUnit>(u)));
        }
        matrix.push_back(std::move(row));
    }
    return matrix;
}

TestSuite SbstLibrary::measured_suite(double cycles_per_instr,
                                      std::uint64_t repeats) const {
    MCS_REQUIRE(cycles_per_instr > 0.0, "CPI must be positive");
    MCS_REQUIRE(repeats > 0, "repeats must be positive");
    std::vector<TestRoutine> routines;
    for (const Program& p : programs_) {
        TestRoutine r;
        r.unit = p.target;
        r.name = p.name;
        r.cycles = static_cast<std::uint64_t>(
            cycles_per_instr * static_cast<double>(p.code.size())) * repeats;
        r.coverage = measure_coverage(p, p.target);
        // SBST kernels toggle their target unit far above workload level.
        r.activity = 1.3;
        routines.push_back(std::move(r));
    }
    return TestSuite(std::move(routines));
}

}  // namespace mcs
