#pragma once

#include <span>

#include "isa/isa.hpp"
#include "util/rng.hpp"

namespace mcs {

/// The executable SBST library: one hand-constructed program per functional
/// unit, mirroring classic SBST structure (march patterns through the
/// register file and scratchpad, walking-ones through the ALU, arithmetic
/// corner cases through the multiplier/divider, a branch ladder, and an
/// every-opcode sweep for fetch/decode).
class SbstLibrary {
public:
    SbstLibrary();

    std::span<const Program> programs() const noexcept { return programs_; }
    const Program& program_for(FunctionalUnit unit) const;

    /// Fault-free reference signature of a program.
    std::uint64_t golden_signature(const Program& program) const;

    /// All structural fault sites of a unit that coverage is measured over.
    static std::vector<FaultSite> fault_sites(FunctionalUnit unit);

    /// Fraction of `unit`'s fault sites whose injection changes the
    /// signature of `program` (i.e. measured stuck-at coverage).
    double measure_coverage(const Program& program,
                            FunctionalUnit unit) const;

    /// Full routine x unit coverage matrix (cross-coverage included: e.g.
    /// the LSU march also exercises the ALU through address arithmetic).
    /// matrix[p][u] = coverage of programs()[p] over unit u.
    std::vector<std::vector<double>> coverage_matrix() const;

    /// Builds a TestSuite whose per-routine coverage figures are *measured*
    /// on the core model instead of assumed. Cycle counts scale the
    /// architectural instruction counts by `cycles_per_instr` (SBST code is
    /// loop-unrolled and cache-resident, so a small CPI) times `repeats`
    /// (real suites run each kernel many times).
    TestSuite measured_suite(double cycles_per_instr = 1.2,
                             std::uint64_t repeats = 64) const;

private:
    std::vector<Program> programs_;
};

}  // namespace mcs
