#include "mapping/contiguous_mapper.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <queue>

#include "util/require.hpp"

namespace mcs {
namespace {

std::size_t count_allocatable(const PlatformView& view) {
    std::size_t n = 0;
    for (bool a : view.allocatable) {
        if (a) {
            ++n;
        }
    }
    return n;
}

int manhattan(const PlatformView& view, CoreId a, CoreId b) {
    return std::abs(view.x_of(a) - view.x_of(b)) +
           std::abs(view.y_of(a) - view.y_of(b));
}

void validate(const MapRequest& request, const PlatformView& view) {
    MCS_REQUIRE(view.width > 0 && view.height > 0,
                "platform view has empty dimensions");
    MCS_REQUIRE(view.allocatable.size() == view.core_count(),
                "allocatable mask size mismatch");
    MCS_REQUIRE(view.utilization.empty() ||
                    view.utilization.size() == view.core_count(),
                "utilization size mismatch");
    MCS_REQUIRE(view.criticality.empty() ||
                    view.criticality.size() == view.core_count(),
                "criticality size mismatch");
    MCS_REQUIRE(view.temperature_c.empty() ||
                    view.temperature_c.size() == view.core_count(),
                "temperature size mismatch");
    MCS_REQUIRE(view.testing.empty() ||
                    view.testing.size() == view.core_count(),
                "testing mask size mismatch");
    MCS_REQUIRE(request.core_count > 0, "mapping request for zero cores");
}

}  // namespace

double mapping_dispersion(const PlatformView& view,
                          std::span<const CoreId> cores) {
    if (cores.size() < 2) {
        return 0.0;
    }
    double sum = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < cores.size(); ++i) {
        for (std::size_t j = i + 1; j < cores.size(); ++j) {
            sum += manhattan(view, cores[i], cores[j]);
            ++pairs;
        }
    }
    return sum / static_cast<double>(pairs);
}

ContiguousMapper::ContiguousMapper(std::string name, MappingWeights weights)
    : name_(std::move(name)), weights_(weights) {}

double ContiguousMapper::first_node_score(const PlatformView& view,
                                          CoreId candidate,
                                          int radius) const {
    const int cx = view.x_of(candidate);
    const int cy = view.y_of(candidate);
    int free_count = 0;
    int cells = 0;
    double util_sum = 0.0;
    double crit_sum = 0.0;
    double temp_sum = 0.0;
    for (int y = cy - radius; y <= cy + radius; ++y) {
        for (int x = cx - radius; x <= cx + radius; ++x) {
            if (x < 0 || x >= view.width || y < 0 || y >= view.height) {
                continue;
            }
            const auto id =
                static_cast<std::size_t>(y * view.width + x);
            ++cells;
            if (view.allocatable[id]) {
                ++free_count;
            }
            if (!view.utilization.empty()) {
                util_sum += view.utilization[id];
            }
            if (!view.criticality.empty()) {
                crit_sum += view.criticality[id];
            }
            if (!view.temperature_c.empty()) {
                temp_sum += std::max(
                    0.0, (view.temperature_c[id] - weights_.temp_ref_c) /
                             weights_.temp_scale_c);
            }
        }
    }
    if (cells == 0) {
        return 0.0;
    }
    const double contiguity =
        static_cast<double>(free_count) / static_cast<double>(cells);
    const double avg_util = util_sum / static_cast<double>(cells);
    const double avg_crit = crit_sum / static_cast<double>(cells);
    const double avg_temp = temp_sum / static_cast<double>(cells);
    return weights_.w_contiguity * contiguity -
           weights_.w_utilization * avg_util -
           weights_.w_criticality * avg_crit -
           weights_.w_temperature * avg_temp;
}

std::optional<MappingResult> ContiguousMapper::map(const MapRequest& request,
                                                   const PlatformView& view,
                                                   Rng&) {
    validate(request, view);
    if (count_allocatable(view) < request.core_count) {
        return std::nullopt;
    }

    // First-node selection: the square that must host the region has side
    // ceil(sqrt(n)); score candidates by weighted contiguity within radius
    // ceil(side/2).
    const int side = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(request.core_count))));
    const int radius = (side + 1) / 2;
    CoreId best = kInvalidCore;
    double best_score = -1e300;
    for (std::size_t id = 0; id < view.core_count(); ++id) {
        if (!view.allocatable[id]) {
            continue;
        }
        const double score =
            first_node_score(view, static_cast<CoreId>(id), radius);
        if (score > best_score) {
            best_score = score;
            best = static_cast<CoreId>(id);
        }
    }
    MCS_REQUIRE(best != kInvalidCore, "no allocatable first node");

    // Region growth: repeatedly take the allocatable core nearest to the
    // first node (ties: lower criticality, then lower id). This is CoNA-
    // style nearest-neighbour growth; the criticality tie-break and the
    // distance penalty on cores whose test a claim would abort are the
    // test-aware refinements.
    const bool test_aware = weights_.w_criticality > 0.0;
    // Penalty in hops for claiming a core that is mid-test: effectively
    // "anywhere else first" on a mesh whose diameter is width+height.
    const int kTestingPenaltyHops = view.width + view.height;
    MappingResult result;
    result.first_node = best;
    std::vector<bool> taken(view.core_count(), false);
    result.cores.push_back(best);
    taken[best] = true;
    while (result.cores.size() < request.core_count) {
        CoreId pick = kInvalidCore;
        int pick_dist = 0;
        double pick_crit = 0.0;
        for (std::size_t id = 0; id < view.core_count(); ++id) {
            if (!view.allocatable[id] || taken[id]) {
                continue;
            }
            int dist = manhattan(view, best, static_cast<CoreId>(id));
            if (test_aware && !view.testing.empty() && view.testing[id]) {
                dist += kTestingPenaltyHops;
            }
            const double crit =
                view.criticality.empty() ? 0.0 : view.criticality[id];
            const bool better =
                pick == kInvalidCore || dist < pick_dist ||
                (dist == pick_dist && test_aware && crit < pick_crit);
            if (better) {
                pick = static_cast<CoreId>(id);
                pick_dist = dist;
                pick_crit = crit;
            }
        }
        MCS_REQUIRE(pick != kInvalidCore,
                    "allocatable count changed during mapping");
        result.cores.push_back(pick);
        taken[pick] = true;
    }
    return result;
}

std::optional<MappingResult> RandomMapper::map(const MapRequest& request,
                                               const PlatformView& view,
                                               Rng& rng) {
    validate(request, view);
    std::vector<CoreId> pool;
    for (std::size_t id = 0; id < view.core_count(); ++id) {
        if (view.allocatable[id]) {
            pool.push_back(static_cast<CoreId>(id));
        }
    }
    if (pool.size() < request.core_count) {
        return std::nullopt;
    }
    rng.shuffle(std::span<CoreId>(pool));
    MappingResult result;
    result.cores.assign(pool.begin(),
                        pool.begin() + static_cast<std::ptrdiff_t>(
                                           request.core_count));
    result.first_node = result.cores.front();
    return result;
}

std::optional<MappingResult> FirstFitMapper::map(const MapRequest& request,
                                                 const PlatformView& view,
                                                 Rng&) {
    validate(request, view);
    MappingResult result;
    for (std::size_t id = 0;
         id < view.core_count() && result.cores.size() < request.core_count;
         ++id) {
        if (view.allocatable[id]) {
            result.cores.push_back(static_cast<CoreId>(id));
        }
    }
    if (result.cores.size() < request.core_count) {
        return std::nullopt;
    }
    result.first_node = result.cores.front();
    return result;
}

}  // namespace mcs
