#include "mapping/view_cache.hpp"

#include "util/require.hpp"

namespace mcs {

void PlatformViewCache::reset(int width, int height,
                              std::size_t core_count) {
    MCS_REQUIRE(width > 0 && height > 0, "view dimensions must be positive");
    MCS_REQUIRE(static_cast<std::size_t>(width) *
                        static_cast<std::size_t>(height) ==
                    core_count,
                "core count must match the mesh");
    view_ = PlatformView{};
    view_.width = width;
    view_.height = height;
    alloc_.assign(core_count, 0);
    testing_.assign(core_count, 0);
    util_.assign(core_count, 0.0);
    valid_ = false;
    chip_scans_ = 0;
}

const PlatformView& PlatformViewCache::get(const Rebuild& rebuild) {
    if (!valid_) {
        rebuild(*this);
        view_.allocatable = alloc_;
        view_.utilization = util_;
        view_.testing = testing_;
        ++chip_scans_;
        valid_ = true;
    }
    return view_;
}

void PlatformViewCache::on_commit(std::span<const CoreId> cores) {
    if (!valid_) {
        return;
    }
    for (CoreId id : cores) {
        MCS_REQUIRE(id < alloc_.size(), "committed core out of range");
        alloc_[id] = 0;
        testing_[id] = 0;
    }
}

}  // namespace mcs
