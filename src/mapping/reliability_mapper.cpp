#include "mapping/reliability_mapper.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace mcs {

ReliabilityWeightedMapper::ReliabilityWeightedMapper(
    ReliabilityWeights weights)
    : weights_(weights) {
    MCS_REQUIRE(weights_.w_utilization >= 0.0 &&
                    weights_.w_criticality >= 0.0 &&
                    weights_.w_temperature >= 0.0 &&
                    weights_.w_testing >= 0.0,
                "reliability weights must be non-negative");
    MCS_REQUIRE(weights_.temp_scale_c > 0.0,
                "temperature scale must be positive");
}

double ReliabilityWeightedMapper::core_weight(const PlatformView& view,
                                              CoreId id) const {
    double w = weights_.w_utilization * view.utilization[id] +
               weights_.w_criticality * view.criticality[id];
    if (!view.temperature_c.empty()) {
        const double t = (view.temperature_c[id] - weights_.temp_ref_c) /
                         weights_.temp_scale_c;
        w += weights_.w_temperature * std::clamp(t, 0.0, 1.0);
    }
    if (!view.testing.empty() && view.testing[id] != 0) {
        w += weights_.w_testing;
    }
    return w;
}

std::optional<MappingResult> ReliabilityWeightedMapper::map(
    const MapRequest& request, const PlatformView& view, Rng& rng) {
    (void)rng;  // deterministic policy: no random draws
    MCS_REQUIRE(request.core_count > 0, "mapping request for zero cores");
    std::vector<std::pair<double, CoreId>> scored;
    const std::size_t n = view.core_count();
    for (CoreId id = 0; id < n; ++id) {
        if (view.allocatable[id] == 0) {
            continue;
        }
        scored.emplace_back(core_weight(view, id), id);
    }
    if (scored.size() < request.core_count) {
        return std::nullopt;
    }
    // Healthiest first; ties by core id keep the pick reproducible.
    std::sort(scored.begin(), scored.end());
    MappingResult result;
    result.cores.reserve(request.core_count);
    for (std::size_t i = 0; i < request.core_count; ++i) {
        result.cores.push_back(scored[i].second);
    }
    result.first_node = result.cores.front();
    return result;
}

}  // namespace mcs
