#pragma once

#include "mapping/mapper.hpp"

namespace mcs {

/// Scoring weights for the reliability-weighted mapper. Each allocatable
/// core gets a wear-risk weight
///
///   weight = w_utilization * util
///          + w_criticality * crit
///          + w_temperature * clamp((T - temp_ref_c) / temp_scale_c, 0, 1)
///          + w_testing     * [core is running an SBST session]
///
/// and the request takes the `core_count` lowest-weight cores. Lower weight
/// = healthier core, so load drifts away from worn / hot / test-critical
/// regions (NMR-style reliability-first placement), at the cost of
/// contiguity: the pick ignores adjacency entirely.
struct ReliabilityWeights {
    double w_utilization = 0.5;
    double w_criticality = 0.3;
    double w_temperature = 0.2;
    double w_testing = 0.25;
    double temp_ref_c = 45.0;
    double temp_scale_c = 40.0;
};

/// Reliability-weighted mapper (policy zoo): global lowest-wear-risk core
/// selection, ties broken by core id. Stateless and RNG-free, so mapping
/// decisions replay bit-identically and the policy needs no snapshot hooks.
class ReliabilityWeightedMapper : public Mapper {
public:
    explicit ReliabilityWeightedMapper(ReliabilityWeights weights = {});

    std::optional<MappingResult> map(const MapRequest& request,
                                     const PlatformView& view,
                                     Rng& rng) override;
    std::string_view name() const override { return "reliability-weighted"; }

    const ReliabilityWeights& weights() const noexcept { return weights_; }

    /// The wear-risk weight of one core under `view`; exposed so reference
    /// implementations (tests) can score independently.
    double core_weight(const PlatformView& view, CoreId id) const;

private:
    ReliabilityWeights weights_;
};

}  // namespace mcs
