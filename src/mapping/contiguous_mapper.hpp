#pragma once

#include "mapping/mapper.hpp"

namespace mcs {

/// Scoring weights for first-node selection. The base contiguity term is
/// SHiC-style: how many allocatable cores sit inside the square of the
/// application's size centred on the candidate. The utilization and
/// criticality terms implement the paper's "utilization-oriented" and
/// "test-aware" extensions; zero weights recover the plain contiguous
/// (CoNA-style) baseline.
struct MappingWeights {
    double w_contiguity = 1.0;
    double w_utilization = 0.0;  ///< penalize worn regions (wear leveling)
    double w_criticality = 0.0;  ///< keep test-critical cores out of regions
    /// Penalize thermally hot regions (normalized by `temp_scale_c` above
    /// `temp_ref_c`); spreads heat and lowers leakage.
    double w_temperature = 0.0;
    double temp_ref_c = 45.0;
    double temp_scale_c = 40.0;
};

/// Contiguous runtime mapper: SHiC-style square-factor first-node selection
/// followed by nearest-first BFS region growth. With non-zero utilization /
/// criticality weights it becomes the paper's test-aware utilization-
/// oriented mapper (TAUM).
class ContiguousMapper : public Mapper {
public:
    ContiguousMapper(std::string name, MappingWeights weights = {});

    std::optional<MappingResult> map(const MapRequest& request,
                                     const PlatformView& view,
                                     Rng& rng) override;
    std::string_view name() const override { return name_; }

    const MappingWeights& weights() const noexcept { return weights_; }

    /// Factory helpers for the configurations the evaluation compares.
    static ContiguousMapper plain() {
        return ContiguousMapper("contiguous", MappingWeights{1.0, 0.0, 0.0});
    }
    static ContiguousMapper utilization_oriented() {
        return ContiguousMapper("util-oriented", MappingWeights{1.0, 0.5, 0.0});
    }
    static ContiguousMapper test_aware() {
        return ContiguousMapper("test-aware (TAUM)",
                                MappingWeights{1.0, 0.4, 0.6});
    }
    static ContiguousMapper thermal_aware() {
        MappingWeights w{1.0, 0.4, 0.6};
        w.w_temperature = 0.6;
        return ContiguousMapper("thermal-aware", w);
    }

private:
    double first_node_score(const PlatformView& view, CoreId candidate,
                            int radius) const;

    std::string name_;
    MappingWeights weights_;
};

/// Baseline: picks random allocatable cores with no contiguity constraint.
class RandomMapper : public Mapper {
public:
    std::optional<MappingResult> map(const MapRequest& request,
                                     const PlatformView& view,
                                     Rng& rng) override;
    std::string_view name() const override { return "random"; }
};

/// Baseline: row-major first-fit scan.
class FirstFitMapper : public Mapper {
public:
    std::optional<MappingResult> map(const MapRequest& request,
                                     const PlatformView& view,
                                     Rng& rng) override;
    std::string_view name() const override { return "first-fit"; }
};

}  // namespace mcs
