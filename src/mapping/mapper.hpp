#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "arch/core.hpp"
#include "util/rng.hpp"

namespace mcs {

/// Read-only snapshot of the platform the mapper decides over. Spans are
/// indexed by row-major CoreId and must all have width*height entries.
struct PlatformView {
    int width = 0;
    int height = 0;
    /// Core may be allocated to a new application (idle or dark, unreserved,
    /// not faulty; testing cores appear here only when test abortion is on).
    /// Nonzero = allocatable (uint8 rather than bool so callers can expose
    /// contiguous storage as a span).
    std::span<const std::uint8_t> allocatable;
    /// Lifetime busy fraction in [0,1].
    std::span<const double> utilization;
    /// Test-criticality metric (see aging/criticality.hpp).
    std::span<const double> criticality;
    /// Nonzero = core is currently running an SBST session. Only populated
    /// (and only meaningful) when such cores are also allocatable: claiming
    /// one aborts its test, so test-aware mappers treat them as expensive.
    std::span<const std::uint8_t> testing;
    /// Core temperatures in Celsius (may be empty when thermal awareness is
    /// unused).
    std::span<const double> temperature_c;

    std::size_t core_count() const noexcept {
        return static_cast<std::size_t>(width) *
               static_cast<std::size_t>(height);
    }
    int x_of(CoreId id) const noexcept { return static_cast<int>(id) % width; }
    int y_of(CoreId id) const noexcept { return static_cast<int>(id) / width; }
};

struct MapRequest {
    std::uint64_t app_id = 0;
    std::size_t core_count = 0;
};

struct MappingResult {
    CoreId first_node = kInvalidCore;
    std::vector<CoreId> cores;  ///< core for task i at index i
};

/// Runtime mapping strategy interface. Returns std::nullopt when the
/// request cannot be satisfied (the caller keeps the application queued).
class Mapper {
public:
    virtual ~Mapper() = default;
    virtual std::optional<MappingResult> map(const MapRequest& request,
                                             const PlatformView& view,
                                             Rng& rng) = 0;
    virtual std::string_view name() const = 0;
};

/// Average Manhattan distance between all pairs of allocated cores — the
/// standard mapping-dispersion figure (lower = more contiguous = less NoC
/// congestion).
double mapping_dispersion(const PlatformView& view,
                          std::span<const CoreId> cores);

}  // namespace mcs
