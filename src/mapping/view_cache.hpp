#pragma once

// PlatformViewCache: one full-chip PlatformView per *mapping round* instead
// of one per queued application. The round loop asks get() for the view;
// the first call scans the chip (via the caller-supplied rebuild functor),
// later calls in the same round reuse the buffers. After a successful
// mapping commit the caller calls on_commit(cores): within one simulation
// event the only view inputs a commit can change are the committed cores'
// allocatable/testing flags (reservation, wake-up, test abort), so the
// cache patches exactly those entries in place:
//
//   * utilization: Core::busy_fraction(now) is unchanged at the same
//     timestamp (a task started "now" has accrued zero busy time);
//   * criticality: an aborted test does not reset stress counters or
//     last_test_end, and aging damage only moves at wear epochs;
//   * temperature: the thermal model only steps at thermal epochs.
//
// This makes the cached view byte-identical to a full rescan while doing
// one O(cores) scan + criticality pass per round.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mapping/mapper.hpp"

namespace mcs {

class PlatformViewCache {
public:
    /// The rebuild functor fills the three owned buffers (sized
    /// `core_count` after reset()) and binds the view's external spans
    /// (criticality, temperature) before returning.
    using Rebuild = std::function<void(PlatformViewCache&)>;

    void reset(int width, int height, std::size_t core_count);

    /// Returns the round's view, invoking `rebuild(*this)` only if no
    /// scan has happened since the last invalidate().
    const PlatformView& get(const Rebuild& rebuild);

    /// Marks the cache stale; the next get() performs a fresh chip scan.
    /// Call at round start (state moved between simulation events).
    void invalidate() noexcept { valid_ = false; }
    bool valid() const noexcept { return valid_; }

    /// Patches the view after a mapping commit: the committed cores are no
    /// longer allocatable and no longer testing (see header comment for
    /// why the remaining fields stay exact).
    void on_commit(std::span<const CoreId> cores);

    /// Full chip scans performed (== mapping rounds that reached the
    /// mapper since construction; the cacheability witness).
    std::uint64_t chip_scans() const noexcept { return chip_scans_; }

    // Buffers and view, exposed for the rebuild functor.
    std::vector<std::uint8_t>& allocatable_buf() noexcept { return alloc_; }
    std::vector<std::uint8_t>& testing_buf() noexcept { return testing_; }
    std::vector<double>& utilization_buf() noexcept { return util_; }
    PlatformView& view() noexcept { return view_; }

private:
    PlatformView view_;
    std::vector<std::uint8_t> alloc_;
    std::vector<std::uint8_t> testing_;
    std::vector<double> util_;
    bool valid_ = false;
    std::uint64_t chip_scans_ = 0;
};

}  // namespace mcs
