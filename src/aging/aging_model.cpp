#include "aging/aging_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace mcs {

AgingTracker::AgingTracker(std::size_t core_count, AgingParams params,
                           std::vector<double>* storage)
    : params_(params), damage_(storage != nullptr ? storage : &own_) {
    MCS_REQUIRE(core_count > 0, "aging tracker needs at least one core");
    MCS_REQUIRE(params_.nominal_lifetime_s > 0.0,
                "nominal lifetime must be positive");
    MCS_REQUIRE(params_.temp_accel_slope_c > 0.0,
                "temperature slope must be positive");
    damage_->assign(core_count, 0.0);
}

double AgingTracker::damage_rate_per_s(CoreState state, double temp_c) const {
    double stress = 0.0;
    switch (state) {
        case CoreState::Busy: stress = params_.stress_busy; break;
        case CoreState::Testing: stress = params_.stress_test; break;
        case CoreState::Idle: stress = params_.stress_idle; break;
        case CoreState::Dark:
        case CoreState::Faulty: return 0.0;
    }
    const double accel =
        std::exp((temp_c - params_.ref_temp_c) / params_.temp_accel_slope_c);
    return stress * accel / params_.nominal_lifetime_s;
}

void AgingTracker::update(SimTime now, const Chip& chip,
                          std::span<const double> temps_c,
                          EpochExecutor* exec) {
    MCS_REQUIRE(chip.core_count() == damage_->size(),
                "chip size does not match aging tracker");
    if (!started_) {
        started_ = true;
        last_update_ = now;
        return;
    }
    MCS_REQUIRE(now >= last_update_, "aging update going backwards");
    const double dt_s = to_seconds(now - last_update_);
    last_update_ = now;
    if (dt_s <= 0.0) {
        return;
    }
    // Lanes-native integration: read the chip's flat state lane instead of
    // going through per-core views (same arithmetic, contiguous access).
    const std::vector<CoreState>& state = chip.lanes().state;
    std::vector<double>& damage = *damage_;
    auto integrate = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            const double temp =
                temps_c.empty() ? params_.ref_temp_c : temps_c[i];
            damage[i] += damage_rate_per_s(state[i], temp) * dt_s;
        }
    };
    if (exec != nullptr && exec->parallel()) {
        exec->for_slabs(damage.size(), integrate);
    } else {
        integrate(0, damage.size());
    }
}

double AgingTracker::damage(CoreId id) const {
    MCS_REQUIRE(id < damage_->size(), "core id out of range");
    return (*damage_)[id];
}

double AgingTracker::max_damage() const {
    return *std::max_element(damage_->begin(), damage_->end());
}

double AgingTracker::min_damage() const {
    return *std::min_element(damage_->begin(), damage_->end());
}

double AgingTracker::mean_damage() const {
    double sum = 0.0;
    for (double d : *damage_) {
        sum += d;
    }
    return sum / static_cast<double>(damage_->size());
}

void AgingTracker::add_damage(CoreId id, double amount) {
    MCS_REQUIRE(id < damage_->size(), "core id out of range");
    MCS_REQUIRE(amount >= 0.0, "wear increment must be non-negative");
    (*damage_)[id] += amount;
}

double AgingTracker::fault_acceleration(CoreId id) const {
    // Linear-plus-quadratic escalation: pristine core -> 1.0; damage 1.0
    // (end of nominal life) -> 1 + 50 + 400 = hundreds of times the base
    // rate, which matches the bathtub-curve wear-out regime qualitatively.
    const double d = damage(id);
    return 1.0 + 50.0 * d + 400.0 * d * d;
}


void AgingTracker::load_state(std::span<const double> damage,
                              SimTime last_update, bool started) {
    MCS_REQUIRE(damage.size() == damage_->size(),
                "aging state: core count mismatch");
    damage_->assign(damage.begin(), damage.end());
    last_update_ = last_update;
    started_ = started;
}

}  // namespace mcs
