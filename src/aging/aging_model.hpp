#pragma once

#include <span>
#include <vector>

#include "arch/chip.hpp"
#include "sim/time.hpp"

namespace mcs {

class EpochExecutor;

/// Wear-out model parameters. Damage is a dimensionless accumulator: a core
/// continuously busy at the reference temperature reaches 1.0 after
/// `nominal_lifetime_s` (Arrhenius-style temperature acceleration on top).
/// Only relative per-core differences matter for test criticality and
/// fault-rate acceleration, so the absolute scale is a free choice.
struct AgingParams {
    double nominal_lifetime_s = 1.0e8;   ///< ~3 years busy at T_ref
    double ref_temp_c = 60.0;
    double temp_accel_slope_c = 12.0;    ///< e-fold damage rate per 12 C
    /// Stress factors per activity class relative to busy work.
    double stress_busy = 1.0;
    double stress_test = 0.8;
    double stress_idle = 0.05;
};

/// Tracks per-core accumulated wear. Updated at the aging epoch using each
/// core's current state and temperature; state changes within one epoch are
/// approximated by the state seen at the epoch boundary.
class AgingTracker {
public:
    /// With `storage`, the tracker binds the caller-owned vector as its
    /// damage accumulator (resized and zeroed): the platform passes the
    /// chip's CoreLanes damage lane so criticality and fault acceleration
    /// read wear in place. `storage` must outlive the tracker. With
    /// nullptr the tracker owns its buffer (standalone/unit-test use).
    AgingTracker(std::size_t core_count, AgingParams params = {},
                 std::vector<double>* storage = nullptr);

    /// Integrates damage over [last update, now]. With `exec`, the
    /// per-core integration is sharded across the worker team: core i only
    /// writes damage_[i] and the per-core arithmetic is unchanged, so the
    /// result is bit-identical for any worker count.
    void update(SimTime now, const Chip& chip,
                std::span<const double> temps_c,
                EpochExecutor* exec = nullptr);

    double damage(CoreId id) const;
    std::span<const double> damage_all() const noexcept { return *damage_; }
    double max_damage() const;
    double min_damage() const;
    double mean_damage() const;

    /// Fault-rate acceleration factor for the fault injector: 1.0 for a
    /// pristine core, growing with damage.
    double fault_acceleration(CoreId id) const;

    /// Adds `amount` of wear to one core directly (scenario directive:
    /// accelerated-aging stress). Bypasses the state/temperature
    /// integration; the continuous model continues from the raised level.
    void add_damage(CoreId id, double amount);

    const AgingParams& params() const noexcept { return params_; }

    /// Instantaneous damage rate (1/s) for a state/temperature combination;
    /// exposed for tests and what-if analyses.
    double damage_rate_per_s(CoreState state, double temp_c) const;

    // ---- snapshot support ----
    SimTime last_update() const noexcept { return last_update_; }
    bool started() const noexcept { return started_; }
    void load_state(std::span<const double> damage, SimTime last_update,
                    bool started);

private:
    AgingParams params_;
    std::vector<double> own_;      ///< backing store when none is bound
    std::vector<double>* damage_;  ///< accumulated wear (own_ or external)
    SimTime last_update_ = 0;
    bool started_ = false;
};

}  // namespace mcs
