#include "aging/criticality.hpp"

#include <algorithm>

#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace mcs {

const char* to_string(CriticalityMode mode) {
    switch (mode) {
        case CriticalityMode::UtilizationDriven: return "utilization";
        case CriticalityMode::TimeDriven: return "time";
        case CriticalityMode::Hybrid: return "hybrid";
    }
    return "?";
}

CriticalityParams CriticalityParams::for_mode(CriticalityMode mode) {
    CriticalityParams p;
    p.mode = mode;
    switch (mode) {
        case CriticalityMode::UtilizationDriven:
            p.w_util = 0.7;
            p.w_time = 0.3;
            p.w_aging = 0.0;
            break;
        case CriticalityMode::TimeDriven:
            p.w_util = 0.0;
            p.w_time = 1.0;
            p.w_aging = 0.0;
            break;
        case CriticalityMode::Hybrid:
            p.w_util = 0.5;
            p.w_time = 0.25;
            p.w_aging = 0.25;
            break;
    }
    return p;
}

CriticalityEvaluator::CriticalityEvaluator(CriticalityParams params)
    : params_(params) {
    MCS_REQUIRE(params_.util_ref_cycles > 0.0,
                "utilization reference must be positive");
    MCS_REQUIRE(params_.time_ref > 0, "time reference must be positive");
    MCS_REQUIRE(params_.saturation > 0.0, "saturation must be positive");
    MCS_REQUIRE(params_.w_util >= 0.0 && params_.w_time >= 0.0 &&
                    params_.w_aging >= 0.0,
                "criticality weights must be non-negative");
    MCS_REQUIRE(params_.w_util + params_.w_time + params_.w_aging > 0.0,
                "at least one criticality weight must be positive");
}

double CriticalityEvaluator::evaluate_raw(std::uint64_t busy_cycles_since_test,
                                          SimTime last_test_end, SimTime now,
                                          double damage_norm) const {
    const double util_term =
        std::min(static_cast<double>(busy_cycles_since_test) /
                     params_.util_ref_cycles,
                 params_.saturation);
    const SimTime since = now >= last_test_end ? now - last_test_end : 0;
    const double time_term =
        std::min(static_cast<double>(since) /
                     static_cast<double>(params_.time_ref),
                 params_.saturation);
    const double aging_term = std::clamp(damage_norm, 0.0, 1.0);
    return params_.w_util * util_term + params_.w_time * time_term +
           params_.w_aging * aging_term;
}

double CriticalityEvaluator::evaluate(const Core& core, SimTime now,
                                      double damage_norm) const {
    return evaluate_raw(core.busy_cycles_since_test(), core.last_test_end(),
                        now, damage_norm);
}

std::vector<double> CriticalityEvaluator::evaluate_chip(
    const Chip& chip, SimTime now, std::span<const double> damage) const {
    std::vector<double> out;
    evaluate_chip_into(chip, now, damage, out);
    return out;
}

void CriticalityEvaluator::evaluate_chip_into(const Chip& chip, SimTime now,
                                              std::span<const double> damage,
                                              std::vector<double>& out,
                                              EpochExecutor* exec) const {
    double max_damage = 0.0;
    for (double d : damage) {
        max_damage = std::max(max_damage, d);
    }
    out.resize(chip.core_count());
    // Lanes-native fill: read the stress lanes directly instead of going
    // through per-core views (same arithmetic via evaluate_raw).
    const CoreLanes& lanes = chip.lanes();
    auto fill = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            double norm = 0.0;
            if (!damage.empty() && max_damage > 0.0) {
                norm = damage[i] / max_damage;
            }
            out[i] = evaluate_raw(lanes.busy_cycles_since_test[i],
                                  lanes.last_test_end[i], now, norm);
        }
    };
    if (exec != nullptr && exec->parallel()) {
        exec->for_slabs(out.size(), fill);
    } else {
        fill(0, out.size());
    }
}

}  // namespace mcs
