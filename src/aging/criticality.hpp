#pragma once

#include <span>
#include <vector>

#include "arch/chip.hpp"
#include "sim/time.hpp"

namespace mcs {

/// Which signals drive the test-criticality metric. DATE'15 drives it from
/// core utilization (stress since last test); the TC'16 extension adds the
/// aging estimate. The pure time-driven mode exists as an ablation baseline
/// (it degenerates to round-robin periodic testing).
enum class CriticalityMode { UtilizationDriven, TimeDriven, Hybrid };

const char* to_string(CriticalityMode mode);

/// Parameters of the criticality metric
///   crit(c) = w_u * min(busy_cycles_since_test / util_ref_cycles, sat)
///           + w_t * min(time_since_test / time_ref, sat)
///           + w_a * damage_norm(c)
/// A core is eligible for test scheduling once crit(c) >= threshold; the
/// scheduler serves eligible cores in descending criticality.
struct CriticalityParams {
    CriticalityMode mode = CriticalityMode::UtilizationDriven;
    double w_util = 0.7;
    double w_time = 0.3;
    double w_aging = 0.0;   ///< used by Hybrid
    /// Busy cycles since the last test that count as "full stress".
    double util_ref_cycles = 1.0e9;
    /// Wall time since the last test that counts as "stale".
    SimDuration time_ref = 2 * kSecond;
    /// Saturation of each normalized term (so one term cannot dominate
    /// unboundedly).
    double saturation = 2.0;
    /// Scheduling threshold.
    double threshold = 0.5;

    /// Preset weight profiles for the three modes.
    static CriticalityParams for_mode(CriticalityMode mode);
};

/// Evaluates the paper's test-criticality metric for cores.
class CriticalityEvaluator {
public:
    explicit CriticalityEvaluator(CriticalityParams params = {});

    /// Criticality of one core. `damage_norm` is the core's aging damage
    /// normalized to the chip maximum (pass 0 when aging is not tracked).
    double evaluate(const Core& core, SimTime now, double damage_norm) const;

    /// Evaluates every core of a chip; `damage` may be empty (treated as 0)
    /// and is normalized internally by its max.
    std::vector<double> evaluate_chip(const Chip& chip, SimTime now,
                                      std::span<const double> damage) const;

    /// In-place variant reusing the caller's buffer (resized to the core
    /// count). With `exec`, the per-core evaluation is sharded across the
    /// worker team: core i only writes out[i] and evaluate() is pure, so
    /// the result is bit-identical for any worker count.
    void evaluate_chip_into(const Chip& chip, SimTime now,
                            std::span<const double> damage,
                            std::vector<double>& out,
                            EpochExecutor* exec = nullptr) const;

    bool eligible(double criticality) const noexcept {
        return criticality >= params_.threshold;
    }

    const CriticalityParams& params() const noexcept { return params_; }

private:
    /// The metric on raw lane values; evaluate(const Core&) and the
    /// lanes-native chip fill both delegate here, so they are identical by
    /// construction.
    double evaluate_raw(std::uint64_t busy_cycles_since_test,
                        SimTime last_test_end, SimTime now,
                        double damage_norm) const;

    CriticalityParams params_;
};

}  // namespace mcs
