#pragma once

#include <span>
#include <string>

#include "core/metric_catalog.hpp"
#include "runner/campaign_runner.hpp"

namespace mcs {

/// The fixed catalog of scalar metrics exported per replica/cell (a
/// headline subset of metric_catalog()). Order is part of the CSV contract
/// (columns appear in this order).
std::span<const MetricDef> campaign_metrics();

/// Writes the aggregate campaign CSV: one row per grid cell with the axis
/// values, replica counts, and mean/stddev/ci95 per catalog metric (ci95 is
/// the normal-approximation half-width 1.96 * stddev / sqrt(n)). Cells
/// whose replicas all failed emit "nan" data columns. The bytes depend only
/// on the spec — never on thread count or completion order.
void write_campaign_csv(const CampaignResult& result,
                        const std::string& path);

/// Writes one row per replica: grid location, seed, ok/error, and every
/// catalog metric (raw, unaggregated). Same determinism contract.
void write_replica_csv(const CampaignResult& result, const std::string& path);

/// Writes the aggregate campaign report as JSON: schema
/// "mcs.campaign_report.v1" with one entry per cell carrying the axis
/// point, replica health, and mean/stddev/ci95 per catalog metric. Byte-
/// deterministic for a given spec (independent of worker count), so fixed
/// seeds yield identical files across runs and --jobs values.
void write_campaign_report_json(const CampaignResult& result,
                                const std::string& path);

/// Human-readable end-of-campaign table: one line per cell with replica
/// health and headline metrics (work throughput, TDP violations, tests).
std::string format_campaign_summary(const CampaignResult& result);

}  // namespace mcs
