#pragma once

#include <span>
#include <string>

#include "runner/campaign_runner.hpp"

namespace mcs {

/// One scalar column of the campaign CSVs, extracted from RunMetrics.
struct MetricDef {
    const char* name;
    double (*get)(const RunMetrics&);
};

/// The fixed catalog of scalar metrics exported per replica/cell. Order is
/// part of the CSV contract (columns appear in this order).
std::span<const MetricDef> campaign_metrics();

/// Writes the aggregate campaign CSV: one row per grid cell with the axis
/// values, replica counts, and mean/stddev/ci95 per catalog metric (ci95 is
/// the normal-approximation half-width 1.96 * stddev / sqrt(n)). Cells
/// whose replicas all failed emit "nan" data columns. The bytes depend only
/// on the spec — never on thread count or completion order.
void write_campaign_csv(const CampaignResult& result,
                        const std::string& path);

/// Writes one row per replica: grid location, seed, ok/error, and every
/// catalog metric (raw, unaggregated). Same determinism contract.
void write_replica_csv(const CampaignResult& result, const std::string& path);

/// Human-readable end-of-campaign table: one line per cell with replica
/// health and headline metrics (work throughput, TDP violations, tests).
std::string format_campaign_summary(const CampaignResult& result);

}  // namespace mcs
