#pragma once

// The thread pool moved to util/ so that core engines (which mcs_runner
// links, not the other way round) can use the EpochExecutor for in-run
// parallelism. This forwarding header keeps existing includes working.
#include "util/thread_pool.hpp"
