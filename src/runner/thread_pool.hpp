#pragma once

#include <cstddef>
#include <functional>

namespace mcs {

/// Runs `fn(i)` for every i in [0, n) across `jobs` worker threads using
/// static sharding: worker t executes i = t, t + jobs, t + 2*jobs, ...
/// There is no shared queue and no work stealing, so the thread that runs a
/// given index is a pure function of (i, jobs) — callers that commit
/// results by index get identical output for any job count.
///
/// jobs <= 1 (or n <= 1) runs everything inline on the calling thread.
/// If any invocation throws, the remaining indices of that worker's shard
/// are skipped, all workers are joined, and the first exception (lowest
/// worker id) is rethrown.
void parallel_for_sharded(std::size_t n, int jobs,
                          const std::function<void(std::size_t)>& fn);

/// Number of hardware threads, never less than 1 (the fallback when the
/// runtime cannot tell).
int hardware_jobs() noexcept;

}  // namespace mcs
