#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "runner/sweep_spec.hpp"
#include "util/stats.hpp"

namespace mcs {

/// Outcome of one simulation replica. `cell` / `replica` locate it in the
/// campaign grid; a replica whose construction or run threw is recorded
/// with ok == false and the exception text, and does not disturb any other
/// replica.
struct ReplicaResult {
    std::size_t cell = 0;
    int replica = 0;
    std::uint64_t seed = 0;
    bool ok = false;
    std::string error;
    RunMetrics metrics{};
};

/// All results of a campaign, indexed cell-major: replica r of cell c is
/// replicas[c * spec.replicas + r]. The layout (and every value in it) is
/// independent of the job count the campaign ran with.
struct CampaignResult {
    CampaignSpec spec;
    std::vector<ReplicaResult> replicas;
    double wall_seconds = 0.0;  ///< not part of the deterministic output

    std::size_t cell_count() const { return spec.cell_count(); }
    /// The replicas of one cell, in replicate order.
    std::span<const ReplicaResult> cell(std::size_t c) const;
    std::size_t ok_count() const;
    std::size_t failed_count() const;

    /// Mean/stddev of `metric` over the *successful* replicas of cell `c`.
    RunningStats cell_stats(
        std::size_t c,
        const std::function<double(const RunMetrics&)>& metric) const;
    double cell_mean(
        std::size_t c,
        const std::function<double(const RunMetrics&)>& metric) const {
        return cell_stats(c, metric).mean();
    }

    /// Index of the first cell whose point contains every given (key,
    /// value) pair. Throws RequireError if no cell matches.
    std::size_t find_cell(
        std::span<const std::pair<std::string, std::string>> match) const;
};

/// Shard-based parallel campaign executor. Replicas are independent, so
/// they fan out over a fixed thread pool (runner/thread_pool.hpp); each
/// result is committed to its grid slot by index, never by completion
/// order, which keeps the aggregate bit-identical for any `jobs`.
class CampaignRunner {
public:
    /// Runs one replica config for `seconds` of simulated time. The
    /// default executes a ManycoreSystem via core/system_factory.hpp;
    /// tests inject failing or instrumented replicas here.
    using ReplicaFn =
        std::function<RunMetrics(const Config& cfg, double seconds)>;
    /// Called after each replica finishes (any thread, serialized).
    using ProgressFn =
        std::function<void(std::size_t done, std::size_t total)>;

    explicit CampaignRunner(CampaignSpec spec);

    void set_replica_fn(ReplicaFn fn);
    void set_progress(ProgressFn fn);

    /// Executes the whole grid on `jobs` threads (0 = spec.default_jobs,
    /// which itself defaults to the hardware concurrency) and returns the
    /// aggregated result. A replica that throws is recorded as failed;
    /// run() itself only throws on spec-level errors.
    CampaignResult run(int jobs = 0);

    const CampaignSpec& spec() const { return spec_; }

private:
    CampaignSpec spec_;
    ReplicaFn replica_fn_;
    ProgressFn progress_;
};

}  // namespace mcs
