#include "runner/result_sink.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "telemetry/json.hpp"
#include "telemetry/schema.hpp"
#include "util/csv.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace mcs {
namespace {

constexpr std::array<MetricDef, 16> kMetrics{{
    {"work_cycles_per_s",
     [](const RunMetrics& m) { return m.work_cycles_per_s; }},
    {"throughput_apps_per_s",
     [](const RunMetrics& m) { return m.throughput_apps_per_s; }},
    {"apps_completed",
     [](const RunMetrics& m) {
         return static_cast<double>(m.apps_completed);
     }},
    {"app_latency_ms_mean",
     [](const RunMetrics& m) { return m.app_latency_ms.mean(); }},
    {"mean_chip_utilization",
     [](const RunMetrics& m) { return m.mean_chip_utilization; }},
    {"mean_dark_fraction",
     [](const RunMetrics& m) { return m.mean_dark_fraction; }},
    {"mean_power_w", [](const RunMetrics& m) { return m.mean_power_w; }},
    {"tdp_violation_rate",
     [](const RunMetrics& m) { return m.tdp_violation_rate; }},
    {"energy_total_j", [](const RunMetrics& m) { return m.energy_total_j; }},
    {"test_energy_share",
     [](const RunMetrics& m) { return m.test_energy_share; }},
    {"tests_completed",
     [](const RunMetrics& m) {
         return static_cast<double>(m.tests_completed);
     }},
    {"tests_aborted",
     [](const RunMetrics& m) {
         return static_cast<double>(m.tests_aborted);
     }},
    {"tests_per_core_per_s",
     [](const RunMetrics& m) { return m.tests_per_core_per_s; }},
    {"untested_core_fraction",
     [](const RunMetrics& m) { return m.untested_core_fraction; }},
    {"max_open_test_gap_s",
     [](const RunMetrics& m) { return m.max_open_test_gap_s; }},
    {"peak_temp_c", [](const RunMetrics& m) { return m.peak_temp_c; }},
}};

/// Shortest round-trip-exact decimal text; locale-independent, so the CSV
/// bytes are reproducible everywhere.
std::string num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // Prefer the shortest representation that round-trips.
    for (int precision = 1; precision < 17; ++precision) {
        char candidate[32];
        std::snprintf(candidate, sizeof candidate, "%.*g", precision, v);
        if (std::strtod(candidate, nullptr) == v) {
            return candidate;
        }
    }
    return buf;
}

}  // namespace

std::span<const MetricDef> campaign_metrics() {
    return kMetrics;
}

void write_campaign_csv(const CampaignResult& result,
                        const std::string& path) {
    std::vector<std::string> header{"cell"};
    for (const SweepAxis& axis : result.spec.axes) {
        header.push_back(axis.key);
    }
    header.insert(header.end(), {"replicas_ok", "replicas_failed"});
    for (const MetricDef& metric : campaign_metrics()) {
        header.push_back(std::string(metric.name) + "_mean");
        header.push_back(std::string(metric.name) + "_stddev");
        header.push_back(std::string(metric.name) + "_ci95");
    }

    CsvWriter csv(path, std::move(header));
    for (std::size_t c = 0; c < result.cell_count(); ++c) {
        std::vector<std::string> row{std::to_string(c)};
        for (const auto& [key, value] : result.spec.cell_point(c)) {
            (void)key;
            row.push_back(value);
        }
        const auto replicas = result.cell(c);
        std::size_t ok = 0;
        for (const ReplicaResult& r : replicas) {
            ok += r.ok ? 1 : 0;
        }
        row.push_back(std::to_string(ok));
        row.push_back(std::to_string(replicas.size() - ok));
        for (const MetricDef& metric : campaign_metrics()) {
            const RunningStats stats = result.cell_stats(c, metric.get);
            if (stats.empty()) {
                row.insert(row.end(), {"nan", "nan", "nan"});
                continue;
            }
            const double ci95 =
                1.96 * stats.stddev() /
                std::sqrt(static_cast<double>(stats.count()));
            row.push_back(num(stats.mean()));
            row.push_back(num(stats.stddev()));
            row.push_back(num(ci95));
        }
        csv.write_row(row);
    }
}

void write_replica_csv(const CampaignResult& result,
                       const std::string& path) {
    std::vector<std::string> header{"cell", "replica", "seed", "ok",
                                    "error"};
    for (const SweepAxis& axis : result.spec.axes) {
        header.push_back(axis.key);
    }
    for (const MetricDef& metric : campaign_metrics()) {
        header.push_back(metric.name);
    }

    CsvWriter csv(path, std::move(header));
    for (const ReplicaResult& r : result.replicas) {
        std::vector<std::string> row{
            std::to_string(r.cell), std::to_string(r.replica),
            std::to_string(r.seed), r.ok ? "1" : "0", r.error};
        for (const auto& [key, value] : result.spec.cell_point(r.cell)) {
            (void)key;
            row.push_back(value);
        }
        for (const MetricDef& metric : campaign_metrics()) {
            row.push_back(r.ok ? num(metric.get(r.metrics)) : "nan");
        }
        csv.write_row(row);
    }
}

void write_campaign_report_json(const CampaignResult& result,
                                const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    MCS_REQUIRE(out.is_open(),
                "cannot open campaign report file: " + path);
    telemetry::JsonWriter w(out);
    w.begin_object();
    w.field("schema", telemetry::schema_tag("mcs.campaign_report"));
    w.key("cells");
    w.begin_array();
    for (std::size_t c = 0; c < result.cell_count(); ++c) {
        w.begin_object();
        w.field("cell", static_cast<std::uint64_t>(c));
        w.key("point");
        w.begin_object();
        for (const auto& [key, value] : result.spec.cell_point(c)) {
            w.field(key, value);
        }
        w.end_object();
        const auto replicas = result.cell(c);
        std::size_t ok = 0;
        for (const ReplicaResult& r : replicas) {
            ok += r.ok ? 1 : 0;
        }
        w.field("replicas_ok", static_cast<std::uint64_t>(ok));
        w.field("replicas_failed",
                static_cast<std::uint64_t>(replicas.size() - ok));
        w.key("metrics");
        w.begin_object();
        for (const MetricDef& metric : campaign_metrics()) {
            const RunningStats stats = result.cell_stats(c, metric.get);
            w.key(metric.name);
            w.begin_object();
            if (stats.empty()) {
                w.field("mean", std::numeric_limits<double>::quiet_NaN());
                w.field("stddev", std::numeric_limits<double>::quiet_NaN());
                w.field("ci95", std::numeric_limits<double>::quiet_NaN());
            } else {
                const double ci95 =
                    1.96 * stats.stddev() /
                    std::sqrt(static_cast<double>(stats.count()));
                w.field("mean", stats.mean());
                w.field("stddev", stats.stddev());
                w.field("ci95", ci95);
            }
            w.end_object();
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    out << '\n';
    MCS_REQUIRE(out.good(), "write failed: " + path);
}

std::string format_campaign_summary(const CampaignResult& result) {
    TablePrinter table({"cell", "point", "ok/total", "work Gcycles/s",
                        "tests/core/s", "TDP viol."});
    for (std::size_t c = 0; c < result.cell_count(); ++c) {
        const auto replicas = result.cell(c);
        std::size_t ok = 0;
        for (const ReplicaResult& r : replicas) {
            ok += r.ok ? 1 : 0;
        }
        const RunningStats work = result.cell_stats(
            c, [](const RunMetrics& m) { return m.work_cycles_per_s; });
        const RunningStats tests = result.cell_stats(
            c, [](const RunMetrics& m) { return m.tests_per_core_per_s; });
        const RunningStats viol = result.cell_stats(
            c, [](const RunMetrics& m) { return m.tdp_violation_rate; });
        std::string work_cell = "-";
        if (!work.empty()) {
            work_cell = fmt(work.mean() / 1e9, 2);
            if (work.count() > 1) {
                work_cell += " +/- " + fmt(work.stddev() / 1e9, 2);
            }
        }
        table.add_row({std::to_string(c), result.spec.cell_label(c),
                       std::to_string(ok) + "/" +
                           std::to_string(replicas.size()),
                       work_cell,
                       tests.empty() ? "-" : fmt(tests.mean(), 2),
                       viol.empty() ? "-" : fmt_pct(viol.mean(), 3)});
    }
    std::string out = table.to_string();
    if (result.failed_count() > 0) {
        out += "\nfailed replicas:\n";
        for (const ReplicaResult& r : result.replicas) {
            if (!r.ok) {
                out += "  cell " + std::to_string(r.cell) + " [" +
                       result.spec.cell_label(r.cell) + "] replica " +
                       std::to_string(r.replica) + ": " + r.error + "\n";
            }
        }
    }
    return out;
}

}  // namespace mcs
