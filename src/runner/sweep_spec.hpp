#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/config.hpp"

namespace mcs {

/// One swept configuration key and the values it takes. The campaign grid
/// is the cartesian product of all axes.
struct SweepAxis {
    std::string key;
    std::vector<std::string> values;
};

/// Declarative description of an experiment campaign: a base key=value
/// config (core/config_bridge.hpp keys), a grid of swept overrides, and a
/// number of seed replicates per grid cell.
///
/// File format — a regular `key = value` config file (util/config.hpp
/// syntax) where some keys are interpreted by the runner:
///
///     # base config: any config_bridge key
///     width = 8
///     height = 8
///     occupancy = 0.9
///     seconds = 8
///     # sweep axes: "sweep.<key> = v1, v2, ..." (grid = cartesian product)
///     sweep.scheduler = power-aware, periodic, greedy, none
///     sweep.occupancy = 0.3, 0.7, 1.1
///     # campaign shape
///     replicas = 3          # seed replicates per grid cell
///     campaign_seed = 42    # root of all replica RNG streams
///     jobs = 8              # default worker count (CLI --jobs wins)
///
/// A file with no `sweep.*` keys is a valid single-cell campaign, so any
/// existing run config doubles as a sweep spec.
///
/// Determinism contract: replica r of every cell runs with seed
/// Rng::stream_seed(campaign_seed, r) — a pure function of the spec, never
/// of thread count or completion order. Replicas of the same r therefore
/// see identical workload arrivals across cells (paired comparisons), and
/// a parallel campaign is bit-identical to a sequential one.
struct CampaignSpec {
    Config base;                  ///< per-replica config, axes not applied
    std::vector<SweepAxis> axes;  ///< sorted by key (Config stores a map)
    int replicas = 1;
    std::uint64_t campaign_seed = 42;
    double seconds = 10.0;
    int default_jobs = 0;  ///< 0 = hardware concurrency

    /// Parses a spec file (see format above).
    static CampaignSpec from_file(const std::string& path);
    /// Extracts the runner keys (sweep.*, replicas, campaign_seed, jobs)
    /// from `cfg`; everything else becomes the base config. Throws
    /// RequireError on an empty axis or non-positive replicas.
    static CampaignSpec from_config(const Config& cfg);

    /// Number of grid cells (product of axis sizes; 1 with no axes).
    std::size_t cell_count() const;
    /// Total replica count: cell_count() * replicas.
    std::size_t replica_count() const;

    /// Axis assignment of cell `c`, in axis order (the last axis varies
    /// fastest in cell order).
    std::vector<std::pair<std::string, std::string>> cell_point(
        std::size_t c) const;
    /// Human-readable cell label, e.g. "occupancy=0.7 scheduler=periodic".
    std::string cell_label(std::size_t c) const;

    /// Full config of one replica: base + cell overrides + derived seed.
    Config replica_config(std::size_t cell, int replica) const;
    /// Seed of replicate `replica` (shared by all cells; see above).
    std::uint64_t replica_seed(int replica) const;
};

/// Splits a comma-separated value list, trimming surrounding whitespace.
/// Empty items are rejected ("a,,b" throws RequireError).
std::vector<std::string> split_value_list(const std::string& text);

}  // namespace mcs
