#include "runner/sweep_spec.hpp"

#include <string_view>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace mcs {
namespace {

constexpr std::string_view kSweepPrefix = "sweep.";

std::string trim(std::string_view s) {
    const auto begin = s.find_first_not_of(" \t");
    if (begin == std::string_view::npos) {
        return {};
    }
    const auto end = s.find_last_not_of(" \t");
    return std::string(s.substr(begin, end - begin + 1));
}

}  // namespace

std::vector<std::string> split_value_list(const std::string& text) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = text.find(',', start);
        const std::string item = trim(
            std::string_view(text).substr(start, comma - start));
        MCS_REQUIRE(!item.empty(), "empty item in value list: '" + text + "'");
        out.push_back(item);
        if (comma == std::string::npos) {
            return out;
        }
        start = comma + 1;
    }
}

CampaignSpec CampaignSpec::from_file(const std::string& path) {
    return from_config(Config::from_file(path));
}

CampaignSpec CampaignSpec::from_config(const Config& cfg) {
    CampaignSpec spec;
    spec.replicas = static_cast<int>(cfg.get_int("replicas", 1));
    MCS_REQUIRE(spec.replicas > 0, "replicas must be positive");
    spec.campaign_seed =
        static_cast<std::uint64_t>(cfg.get_int("campaign_seed", 42));
    spec.seconds = cfg.get_double("seconds", 10.0);
    MCS_REQUIRE(spec.seconds > 0.0, "seconds must be positive");
    spec.default_jobs = static_cast<int>(cfg.get_int("jobs", 0));

    for (const auto& [key, value] : cfg.entries()) {
        if (key.rfind(kSweepPrefix, 0) == 0) {
            SweepAxis axis;
            axis.key = key.substr(kSweepPrefix.size());
            MCS_REQUIRE(!axis.key.empty(), "sweep axis with empty key");
            axis.values = split_value_list(value);
            spec.axes.push_back(std::move(axis));
        } else if (key != "replicas" && key != "campaign_seed" &&
                   key != "jobs" && key != "sweep") {
            // "sweep" itself is the CLI mode flag (the spec path).
            spec.base.set(key, value);
        }
    }
    for (const SweepAxis& axis : spec.axes) {
        MCS_REQUIRE(!spec.base.has(axis.key),
                    "key swept and fixed at once: " + axis.key);
    }
    return spec;
}

std::size_t CampaignSpec::cell_count() const {
    std::size_t count = 1;
    for (const SweepAxis& axis : axes) {
        count *= axis.values.size();
    }
    return count;
}

std::size_t CampaignSpec::replica_count() const {
    return cell_count() * static_cast<std::size_t>(replicas);
}

std::vector<std::pair<std::string, std::string>> CampaignSpec::cell_point(
    std::size_t c) const {
    MCS_REQUIRE(c < cell_count(), "cell index out of range");
    // Mixed-radix decode, last axis fastest.
    std::vector<std::pair<std::string, std::string>> point(axes.size());
    for (std::size_t a = axes.size(); a-- > 0;) {
        const SweepAxis& axis = axes[a];
        point[a] = {axis.key, axis.values[c % axis.values.size()]};
        c /= axis.values.size();
    }
    return point;
}

std::string CampaignSpec::cell_label(std::size_t c) const {
    std::string label;
    for (const auto& [key, value] : cell_point(c)) {
        if (!label.empty()) {
            label += ' ';
        }
        label += key + '=' + value;
    }
    return label.empty() ? "(base)" : label;
}

Config CampaignSpec::replica_config(std::size_t cell, int replica) const {
    Config cfg = base;
    for (const auto& [key, value] : cell_point(cell)) {
        cfg.set(key, value);
    }
    cfg.set("seed", std::to_string(replica_seed(replica)));
    return cfg;
}

std::uint64_t CampaignSpec::replica_seed(int replica) const {
    // The top bit is cleared so the seed survives the round trip through
    // the config's signed-integer text representation.
    return Rng::stream_seed(campaign_seed,
                            static_cast<std::uint64_t>(replica)) >>
           1;
}

}  // namespace mcs
