#include "runner/campaign_runner.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <utility>

#include "core/system_factory.hpp"
#include "runner/thread_pool.hpp"
#include "sim/time.hpp"
#include "util/require.hpp"

namespace mcs {

std::span<const ReplicaResult> CampaignResult::cell(std::size_t c) const {
    MCS_REQUIRE(c < cell_count(), "cell index out of range");
    const auto per_cell = static_cast<std::size_t>(spec.replicas);
    return std::span<const ReplicaResult>(replicas).subspan(c * per_cell,
                                                            per_cell);
}

std::size_t CampaignResult::ok_count() const {
    std::size_t n = 0;
    for (const ReplicaResult& r : replicas) {
        n += r.ok ? 1 : 0;
    }
    return n;
}

std::size_t CampaignResult::failed_count() const {
    return replicas.size() - ok_count();
}

RunningStats CampaignResult::cell_stats(
    std::size_t c,
    const std::function<double(const RunMetrics&)>& metric) const {
    RunningStats stats;
    for (const ReplicaResult& r : cell(c)) {
        if (r.ok) {
            stats.add(metric(r.metrics));
        }
    }
    return stats;
}

std::size_t CampaignResult::find_cell(
    std::span<const std::pair<std::string, std::string>> match) const {
    for (std::size_t c = 0; c < cell_count(); ++c) {
        const auto point = spec.cell_point(c);
        bool all = true;
        for (const auto& want : match) {
            bool found = false;
            for (const auto& have : point) {
                if (have == want) {
                    found = true;
                    break;
                }
            }
            all = all && found;
        }
        if (all) {
            return c;
        }
    }
    MCS_REQUIRE(false, "no campaign cell matches the requested point");
    return 0;
}

CampaignRunner::CampaignRunner(CampaignSpec spec) : spec_(std::move(spec)) {
    replica_fn_ = [](const Config& cfg, double seconds) {
        return run_system(cfg, from_seconds(seconds));
    };
}

void CampaignRunner::set_replica_fn(ReplicaFn fn) {
    replica_fn_ = std::move(fn);
}

void CampaignRunner::set_progress(ProgressFn fn) {
    progress_ = std::move(fn);
}

CampaignResult CampaignRunner::run(int jobs) {
    if (jobs <= 0) {
        jobs = spec_.default_jobs;
    }
    if (jobs <= 0) {
        jobs = hardware_jobs();
    }

    CampaignResult result;
    result.spec = spec_;
    result.replicas.resize(spec_.replica_count());

    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;
    const auto start = std::chrono::steady_clock::now();

    parallel_for_sharded(
        result.replicas.size(), jobs, [&](std::size_t i) {
            const auto per_cell = static_cast<std::size_t>(spec_.replicas);
            ReplicaResult r;
            r.cell = i / per_cell;
            r.replica = static_cast<int>(i % per_cell);
            r.seed = spec_.replica_seed(r.replica);
            try {
                const Config cfg = spec_.replica_config(r.cell, r.replica);
                r.metrics = replica_fn_(cfg, spec_.seconds);
                r.ok = true;
            } catch (const std::exception& e) {
                r.error = e.what();
            } catch (...) {
                r.error = "unknown error";
            }
            // Committed by replica index: slot i is this replica's forever,
            // regardless of which worker ran it or when it finished.
            result.replicas[i] = std::move(r);
            const std::size_t finished = done.fetch_add(1) + 1;
            if (progress_) {
                const std::lock_guard<std::mutex> lock(progress_mutex);
                progress_(finished, result.replicas.size());
            }
        });

    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return result;
}

}  // namespace mcs
