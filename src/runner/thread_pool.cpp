#include "runner/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <vector>

namespace mcs {

void parallel_for_sharded(std::size_t n, int jobs,
                          const std::function<void(std::size_t)>& fn) {
    if (n == 0) {
        return;
    }
    const auto workers =
        jobs <= 1 ? std::size_t{1}
                  : std::min(static_cast<std::size_t>(jobs), n);
    if (workers == 1) {
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
        }
        return;
    }

    std::vector<std::exception_ptr> errors(workers);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) {
        threads.emplace_back([&, t] {
            try {
                for (std::size_t i = t; i < n; i += workers) {
                    fn(i);
                }
            } catch (...) {
                errors[t] = std::current_exception();
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    for (const auto& error : errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
}

int hardware_jobs() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace mcs
