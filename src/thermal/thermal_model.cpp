#include "thermal/thermal_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace mcs {

ThermalModel::ThermalModel(int width, int height, ThermalParams params,
                           std::vector<double>* storage)
    : width_(width), height_(height), params_(params),
      temps_(storage != nullptr ? storage : &own_) {
    MCS_REQUIRE(width_ > 0 && height_ > 0,
                "thermal grid dimensions must be positive");
    MCS_REQUIRE(params_.heat_capacity_j_per_k > 0.0,
                "heat capacity must be positive");
    MCS_REQUIRE(params_.g_vertical_w_per_k > 0.0,
                "vertical conductance must be positive");
    MCS_REQUIRE(params_.g_lateral_w_per_k >= 0.0,
                "lateral conductance must be non-negative");
    MCS_REQUIRE(params_.max_dt_s > 0.0, "max step must be positive");
    // Explicit Euler stability: dt < C / (Gv + 4*Gl). Enforce a margin.
    const double g_total =
        params_.g_vertical_w_per_k + 4.0 * params_.g_lateral_w_per_k;
    MCS_REQUIRE(params_.max_dt_s < params_.heat_capacity_j_per_k / g_total,
                "max_dt_s violates explicit-Euler stability bound");
    const std::size_t n = static_cast<std::size_t>(width_) *
                          static_cast<std::size_t>(height_);
    temps_->assign(n, params_.ambient_c);
    scratch_.assign(n, 0.0);
}

void ThermalModel::step(std::span<const double> power_w, double dt_s,
                        EpochExecutor* exec) {
    MCS_REQUIRE(power_w.size() == temps_->size(),
                "power vector size mismatch");
    MCS_REQUIRE(dt_s >= 0.0, "negative thermal step");
    while (dt_s > 0.0) {
        const double sub = std::min(dt_s, params_.max_dt_s);
        euler_substep(power_w, sub, exec);
        dt_s -= sub;
    }
}

double ThermalModel::node_update(std::span<const double> power_w,
                                 double dt_s, std::size_t i) const {
    const std::vector<double>& t = *temps_;
    const double gv = params_.g_vertical_w_per_k;
    const double gl = params_.g_lateral_w_per_k;
    const double inv_c = 1.0 / params_.heat_capacity_j_per_k;
    const int x = static_cast<int>(i) % width_;
    const int y = static_cast<int>(i) / width_;
    double flow = power_w[i] - gv * (t[i] - params_.ambient_c);
    if (x > 0) flow -= gl * (t[i] - t[i - 1]);
    if (x + 1 < width_) flow -= gl * (t[i] - t[i + 1]);
    if (y > 0)
        flow -= gl * (t[i] - t[i - static_cast<std::size_t>(width_)]);
    if (y + 1 < height_)
        flow -= gl * (t[i] - t[i + static_cast<std::size_t>(width_)]);
    return t[i] + dt_s * flow * inv_c;
}

void ThermalModel::euler_substep(std::span<const double> power_w,
                                 double dt_s, EpochExecutor* exec) {
    // Double-buffered: every node reads temps_, writes only scratch_[i],
    // so slabs are data-race free and the swap is the commit. swap keeps
    // the bound vector object's identity, so an external binding (the
    // chip's temp_c lane) always holds the live values.
    const std::size_t n = temps_->size();
    if (exec != nullptr && exec->parallel()) {
        exec->for_slabs(n, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                scratch_[i] = node_update(power_w, dt_s, i);
            }
        });
    } else {
        for (std::size_t i = 0; i < n; ++i) {
            scratch_[i] = node_update(power_w, dt_s, i);
        }
    }
    temps_->swap(scratch_);
}

double ThermalModel::temp_c(std::size_t core) const {
    MCS_REQUIRE(core < temps_->size(), "core index out of range");
    return (*temps_)[core];
}

double ThermalModel::max_temp_c() const {
    return *std::max_element(temps_->begin(), temps_->end());
}

double ThermalModel::mean_temp_c() const {
    double sum = 0.0;
    for (double t : *temps_) {
        sum += t;
    }
    return sum / static_cast<double>(temps_->size());
}

double ThermalModel::isolated_steady_state_c(double power_w) const {
    return params_.ambient_c + power_w / params_.g_vertical_w_per_k;
}


void ThermalModel::load_temps(std::span<const double> temps_c) {
    MCS_REQUIRE(temps_c.size() == temps_->size(),
                "thermal state: node count mismatch");
    temps_->assign(temps_c.begin(), temps_c.end());
}

}  // namespace mcs
