#pragma once

#include <span>
#include <vector>

namespace mcs {

class EpochExecutor;

/// Lumped-RC thermal parameters. Constants are modeling choices tuned to
/// give realistic steady-state gradients (a 2 W core sits ~25 C above
/// ambient) and a thermal time constant of ~0.1 s; see DESIGN.md.
struct ThermalParams {
    double ambient_c = 45.0;           ///< package/heat-sink reference
    double heat_capacity_j_per_k = 0.01;  ///< per core node
    double g_vertical_w_per_k = 0.08;  ///< core -> heat sink conductance
    double g_lateral_w_per_k = 0.25;   ///< core -> adjacent core conductance
    /// Max integration step; step() subdivides longer intervals for
    /// explicit-Euler stability.
    double max_dt_s = 1.0e-3;
};

/// Grid RC thermal model: one thermal node per core, vertical conductance to
/// ambient and lateral conductances to mesh neighbors, integrated with
/// explicit Euler. Feeds leakage (power model) and aging.
class ThermalModel {
public:
    /// With `storage`, the model binds the caller-owned vector as its live
    /// temperature buffer (resized to the grid and reset to ambient): the
    /// platform passes the chip's CoreLanes temp_c lane so epoch consumers
    /// read temperatures in place. `storage` must outlive the model. With
    /// nullptr the model owns its buffer (standalone/unit-test use).
    ThermalModel(int width, int height, ThermalParams params = {},
                 std::vector<double>* storage = nullptr);

    /// Advances temperatures by `dt_s` given per-core power (indexed by
    /// row-major core id, same layout as Chip). With `exec`, each Euler
    /// substep's node loop is sharded across the worker team: every node i
    /// reads temps_ and writes scratch_[i] only (classic double buffer),
    /// and the per-node arithmetic is unchanged, so the result is
    /// bit-identical to the serial loop for any worker count.
    void step(std::span<const double> power_w, double dt_s,
              EpochExecutor* exec = nullptr);

    std::span<const double> temps_c() const noexcept { return *temps_; }
    double temp_c(std::size_t core) const;
    double max_temp_c() const;
    double mean_temp_c() const;
    double ambient_c() const noexcept { return params_.ambient_c; }

    /// Analytic steady-state temperature of an isolated core dissipating
    /// `power_w` (ignores lateral coupling); useful for calibration tests.
    double isolated_steady_state_c(double power_w) const;

    /// Overwrites node temperatures from a checkpoint (size must match).
    void load_temps(std::span<const double> temps_c);

    int width() const noexcept { return width_; }
    int height() const noexcept { return height_; }

private:
    void euler_substep(std::span<const double> power_w, double dt_s,
                       EpochExecutor* exec);
    /// One node of the Euler substep: new temperature of flat index i.
    double node_update(std::span<const double> power_w, double dt_s,
                       std::size_t i) const;

    int width_;
    int height_;
    ThermalParams params_;
    std::vector<double> own_;      ///< backing store when none is bound
    std::vector<double>* temps_;   ///< live temperatures (own_ or external)
    std::vector<double> scratch_;
};

}  // namespace mcs
