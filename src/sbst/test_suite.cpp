#include "sbst/test_suite.hpp"

#include "util/require.hpp"

namespace mcs {

const char* to_string(FunctionalUnit unit) {
    switch (unit) {
        case FunctionalUnit::Alu: return "ALU";
        case FunctionalUnit::Fpu: return "FPU";
        case FunctionalUnit::Lsu: return "LSU";
        case FunctionalUnit::FetchDecode: return "Fetch/Decode";
        case FunctionalUnit::RegisterFile: return "RegFile";
        case FunctionalUnit::BranchUnit: return "Branch";
    }
    return "?";
}

TestSuite::TestSuite(std::vector<TestRoutine> routines)
    : routines_(std::move(routines)) {
    MCS_REQUIRE(!routines_.empty(), "test suite must contain routines");
    double activity_cycles = 0.0;
    for (const TestRoutine& r : routines_) {
        MCS_REQUIRE(r.cycles > 0, "test routine must have positive length");
        MCS_REQUIRE(r.coverage >= 0.0 && r.coverage <= 1.0,
                    "coverage must be a probability");
        MCS_REQUIRE(r.activity > 0.0, "activity must be positive");
        total_cycles_ += r.cycles;
        activity_cycles += r.activity * static_cast<double>(r.cycles);
    }
    mean_activity_ = activity_cycles / static_cast<double>(total_cycles_);
}

TestSuite TestSuite::standard() {
    // Synthetic SBST library. Lengths/coverages follow the ballpark of
    // published SBST suites for embedded RISC cores; activity factors are
    // deliberately above workload level (tests toggle everything).
    return TestSuite({
        {FunctionalUnit::Alu, "alu_march", 1'200'000, 0.97, 1.40},
        {FunctionalUnit::Fpu, "fpu_patterns", 1'800'000, 0.93, 1.45},
        {FunctionalUnit::Lsu, "lsu_stride", 1'400'000, 0.92, 1.20},
        {FunctionalUnit::FetchDecode, "ifd_sweep", 900'000, 0.90, 1.25},
        {FunctionalUnit::RegisterFile, "regfile_march", 700'000, 0.98, 1.30},
        {FunctionalUnit::BranchUnit, "branch_storm", 800'000, 0.91, 1.35},
    });
}

double TestSuite::coverage_of(FunctionalUnit unit) const {
    double miss = 1.0;
    for (const TestRoutine& r : routines_) {
        if (r.unit == unit) {
            miss *= 1.0 - r.coverage;
        }
    }
    return 1.0 - miss;
}

}  // namespace mcs
