#pragma once

#include <optional>
#include <span>
#include <vector>

#include "arch/chip.hpp"
#include "sbst/test_suite.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace mcs {

/// Electrical class of a permanent fault; decides at which DVFS levels an
/// SBST session can observe it (the reason the journal extension rotates
/// test sessions across every V/F level).
enum class FaultKind {
    StuckAt,     ///< hard defect: observable at every level
    Delay,       ///< timing degradation (NBTI/HCI): only manifests near the
                 ///< top frequencies where the slack is gone
    LowVoltage,  ///< marginal cell/keeper: only manifests at the
                 ///< near-threshold levels
};

const char* to_string(FaultKind kind);

/// A permanent (wear-out) fault in one functional unit of one core. The
/// fault is latent until an SBST session covering its unit -- run at a
/// DVFS level where the fault class manifests -- detects it.
struct Fault {
    CoreId core = kInvalidCore;
    FunctionalUnit unit = FunctionalUnit::Alu;
    FaultKind kind = FaultKind::StuckAt;
    SimTime injected = 0;
    bool detected = false;
    SimTime detected_at = 0;
};

/// Fault-model parameters.
///
/// Substitution note (DESIGN.md): real wear-out rates are per *year*; to
/// make detection-latency statistics measurable inside seconds-long
/// simulations the base rate is scaled up so a 64-core chip sees a handful
/// of faults per simulated minute. Only relative effects (criticality-driven
/// scheduling finds faults on stressed cores sooner) are interpreted.
struct FaultModelParams {
    /// Latent-fault arrival rate per core-second at aging acceleration 1.
    double base_rate_per_core_s = 0.01;
    /// Probability that a task executed on a core with a latent fault
    /// silently corrupts its output (per task).
    double task_corruption_prob = 0.25;
    /// Fault-class mix (normalized internally). Wear-out skews toward
    /// timing degradation, hence the large delay share.
    double stuck_at_weight = 0.5;
    double delay_weight = 0.35;
    double low_voltage_weight = 0.15;
    /// A Delay fault manifests at the top `delay_visible_levels` DVFS
    /// levels; a LowVoltage fault at the bottom `lowv_visible_levels`.
    int delay_visible_levels = 2;
    int lowv_visible_levels = 2;
};

/// Injects latent permanent faults (Poisson per core, rate modulated by the
/// aging tracker's acceleration factor and the core's operational state) and
/// adjudicates SBST detection attempts.
class FaultInjector {
public:
    FaultInjector(std::size_t core_count, FaultModelParams params,
                  std::uint64_t seed);

    /// Advances fault arrivals over `dt_s`. `accel` (indexed by CoreId, may
    /// be empty = all 1.0) scales the per-core rate; Dark and Faulty cores
    /// do not accumulate new faults. At most one latent fault per core.
    /// Returns ids of cores that acquired a fault in this step.
    std::vector<CoreId> step(SimTime now, double dt_s, const Chip& chip,
                             std::span<const double> accel);

    bool has_latent_fault(CoreId core) const;
    /// The core's latent fault, or nullopt.
    std::optional<Fault> latent_fault(CoreId core) const;

    /// Plants a specific latent fault (scenario directive), bypassing the
    /// stochastic arrival process: no RNG draw happens, so the Poisson
    /// streams are unperturbed. Returns false (and changes nothing) when
    /// the core already carries a latent fault -- the one-latent-fault
    /// invariant matches step().
    bool force_fault(CoreId core, FunctionalUnit unit, FaultKind kind,
                     SimTime now);

    /// True if a fault of `kind` manifests during a session run at
    /// `vf_level` out of `vf_level_count` levels.
    bool manifests_at(FaultKind kind, int vf_level,
                      int vf_level_count) const;

    /// A full SBST session completed on `core` at `vf_level` (of
    /// `vf_level_count` levels): if the latent fault's class manifests at
    /// that level, rolls detection against the suite's coverage of the
    /// faulty unit. On success marks the fault detected and returns it
    /// (the caller decommissions the core).
    std::optional<Fault> attempt_detection(CoreId core, SimTime now,
                                           const TestSuite& suite,
                                           int vf_level, int vf_level_count);

    /// Convenience overload: session at the top level of a 1-level table
    /// (every fault class manifests). Used by unit tests.
    std::optional<Fault> attempt_detection(CoreId core, SimTime now,
                                           const TestSuite& suite);

    /// A workload task finished on `core`: rolls silent corruption.
    bool roll_task_corruption(CoreId core);

    /// All faults ever injected, in injection order; entries are updated in
    /// place when their fault is detected.
    const std::vector<Fault>& history() const noexcept { return history_; }
    std::uint64_t injected_count() const noexcept { return history_.size(); }
    std::uint64_t detected_count() const noexcept { return detected_; }
    std::uint64_t escaped_tests() const noexcept { return escaped_tests_; }
    std::uint64_t corrupted_tasks() const noexcept { return corrupted_; }

    const FaultModelParams& params() const noexcept { return params_; }

    // ---- snapshot support ----
    const Rng& rng() const noexcept { return rng_; }
    /// Per-core index into history() of the latent fault, if any.
    const std::vector<std::optional<std::size_t>>& latent_slots()
        const noexcept {
        return latent_;
    }
    void load_state(const Rng& rng,
                    std::vector<std::optional<std::size_t>> latent,
                    std::vector<Fault> history, std::uint64_t detected,
                    std::uint64_t escaped_tests, std::uint64_t corrupted);

private:
    FaultKind draw_kind();

    FaultModelParams params_;
    Rng rng_;
    /// Per-core index into history_ of the core's latent fault, if any.
    std::vector<std::optional<std::size_t>> latent_;
    std::vector<Fault> history_;
    std::uint64_t detected_ = 0;
    std::uint64_t escaped_tests_ = 0;
    std::uint64_t corrupted_ = 0;
};

}  // namespace mcs
