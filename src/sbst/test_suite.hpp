#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mcs {

/// Functional units a core's SBST library exercises. Real SBST suites carry
/// one routine (or several) per unit; a permanent fault lives in one unit
/// and is caught only by routines covering that unit.
enum class FunctionalUnit {
    Alu,
    Fpu,
    Lsu,
    FetchDecode,
    RegisterFile,
    BranchUnit,
};
inline constexpr std::size_t kFunctionalUnitCount = 6;

const char* to_string(FunctionalUnit unit);

/// One software-based self-test routine: a stretch of high-activity code
/// targeting a functional unit.
struct TestRoutine {
    FunctionalUnit unit = FunctionalUnit::Alu;
    std::string name;
    std::uint64_t cycles = 0;   ///< execution length at any frequency
    double coverage = 0.0;      ///< P(detect | fault in `unit`)
    double activity = 1.3;      ///< switching activity vs typical workload
};

/// An SBST library: the set of routines one full test session executes.
/// The default suite's sizes follow published SBST characterizations
/// (a few megacycles total, ~90-97% per-unit stuck-at coverage); this is
/// the synthetic substitute for ISA-specific routines (DESIGN.md
/// "Substitutions").
class TestSuite {
public:
    explicit TestSuite(std::vector<TestRoutine> routines);

    /// The default library used across the evaluation.
    static TestSuite standard();

    std::span<const TestRoutine> routines() const noexcept {
        return routines_;
    }
    std::size_t routine_count() const noexcept { return routines_.size(); }

    /// Total cycles of one full test session.
    std::uint64_t total_cycles() const noexcept { return total_cycles_; }

    /// Mean activity factor over the session, cycle-weighted.
    double mean_activity() const noexcept { return mean_activity_; }

    /// Detection probability for a fault in `unit` when the whole suite
    /// runs (1 - miss probability over all routines covering the unit).
    double coverage_of(FunctionalUnit unit) const;

private:
    std::vector<TestRoutine> routines_;
    std::uint64_t total_cycles_ = 0;
    double mean_activity_ = 0.0;
};

}  // namespace mcs
