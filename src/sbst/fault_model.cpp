#include "sbst/fault_model.hpp"

#include "util/require.hpp"

namespace mcs {

const char* to_string(FaultKind kind) {
    switch (kind) {
        case FaultKind::StuckAt: return "stuck-at";
        case FaultKind::Delay: return "delay";
        case FaultKind::LowVoltage: return "low-voltage";
    }
    return "?";
}

FaultInjector::FaultInjector(std::size_t core_count, FaultModelParams params,
                             std::uint64_t seed)
    : params_(params), rng_(seed), latent_(core_count) {
    MCS_REQUIRE(core_count > 0, "fault injector needs cores");
    MCS_REQUIRE(params_.base_rate_per_core_s >= 0.0,
                "fault rate must be non-negative");
    MCS_REQUIRE(params_.task_corruption_prob >= 0.0 &&
                    params_.task_corruption_prob <= 1.0,
                "corruption probability must be in [0,1]");
    MCS_REQUIRE(params_.stuck_at_weight >= 0.0 &&
                    params_.delay_weight >= 0.0 &&
                    params_.low_voltage_weight >= 0.0,
                "fault-class weights must be non-negative");
    MCS_REQUIRE(params_.stuck_at_weight + params_.delay_weight +
                        params_.low_voltage_weight > 0.0,
                "at least one fault-class weight must be positive");
    MCS_REQUIRE(params_.delay_visible_levels >= 1 &&
                    params_.lowv_visible_levels >= 1,
                "visible-level windows must be at least 1");
}

std::vector<CoreId> FaultInjector::step(SimTime now, double dt_s,
                                        const Chip& chip,
                                        std::span<const double> accel) {
    MCS_REQUIRE(chip.core_count() == latent_.size(),
                "chip size does not match fault injector");
    MCS_REQUIRE(dt_s >= 0.0, "negative fault step");
    std::vector<CoreId> fresh;
    if (params_.base_rate_per_core_s <= 0.0 || dt_s <= 0.0) {
        return fresh;
    }
    for (const Core& c : chip.cores()) {
        if (latent_[c.id()].has_value()) {
            continue;  // one latent fault per core
        }
        if (c.state() == CoreState::Dark || c.state() == CoreState::Faulty) {
            continue;  // no wear while gated / decommissioned
        }
        const double a = accel.empty() ? 1.0 : accel[c.id()];
        const double p = params_.base_rate_per_core_s * a * dt_s;
        if (rng_.bernoulli(p)) {
            Fault f;
            f.core = c.id();
            f.unit = static_cast<FunctionalUnit>(
                rng_.index(kFunctionalUnitCount));
            f.kind = draw_kind();
            f.injected = now;
            latent_[c.id()] = history_.size();
            history_.push_back(f);
            fresh.push_back(c.id());
        }
    }
    return fresh;
}

bool FaultInjector::force_fault(CoreId core, FunctionalUnit unit,
                                FaultKind kind, SimTime now) {
    MCS_REQUIRE(core < latent_.size(), "core id out of range");
    if (latent_[core].has_value()) {
        return false;  // one latent fault per core, as in step()
    }
    Fault f;
    f.core = core;
    f.unit = unit;
    f.kind = kind;
    f.injected = now;
    latent_[core] = history_.size();
    history_.push_back(f);
    return true;
}

bool FaultInjector::has_latent_fault(CoreId core) const {
    MCS_REQUIRE(core < latent_.size(), "core id out of range");
    return latent_[core].has_value();
}

std::optional<Fault> FaultInjector::latent_fault(CoreId core) const {
    MCS_REQUIRE(core < latent_.size(), "core id out of range");
    if (!latent_[core].has_value()) {
        return std::nullopt;
    }
    return history_[*latent_[core]];
}

FaultKind FaultInjector::draw_kind() {
    const double weights[] = {params_.stuck_at_weight, params_.delay_weight,
                              params_.low_voltage_weight};
    return static_cast<FaultKind>(rng_.categorical(weights));
}

bool FaultInjector::manifests_at(FaultKind kind, int vf_level,
                                 int vf_level_count) const {
    MCS_REQUIRE(vf_level >= 0 && vf_level < vf_level_count,
                "VF level out of range");
    switch (kind) {
        case FaultKind::StuckAt:
            return true;
        case FaultKind::Delay:
            return vf_level >= vf_level_count - params_.delay_visible_levels;
        case FaultKind::LowVoltage:
            return vf_level < params_.lowv_visible_levels;
    }
    return true;
}

std::optional<Fault> FaultInjector::attempt_detection(CoreId core, SimTime now,
                                                      const TestSuite& suite,
                                                      int vf_level,
                                                      int vf_level_count) {
    MCS_REQUIRE(core < latent_.size(), "core id out of range");
    auto& slot = latent_[core];
    if (!slot.has_value()) {
        return std::nullopt;
    }
    Fault& fault = history_[*slot];
    if (!manifests_at(fault.kind, vf_level, vf_level_count)) {
        // Not an escape of the routines: the operating point simply cannot
        // expose this fault class. Rotation across levels will.
        return std::nullopt;
    }
    const double coverage = suite.coverage_of(fault.unit);
    if (rng_.bernoulli(coverage)) {
        fault.detected = true;
        fault.detected_at = now;
        ++detected_;
        slot.reset();
        return fault;
    }
    ++escaped_tests_;
    return std::nullopt;
}

std::optional<Fault> FaultInjector::attempt_detection(CoreId core, SimTime now,
                                                      const TestSuite& suite) {
    return attempt_detection(core, now, suite, 0, 1);
}

bool FaultInjector::roll_task_corruption(CoreId core) {
    MCS_REQUIRE(core < latent_.size(), "core id out of range");
    if (!latent_[core].has_value()) {
        return false;
    }
    if (rng_.bernoulli(params_.task_corruption_prob)) {
        ++corrupted_;
        return true;
    }
    return false;
}


void FaultInjector::load_state(const Rng& rng,
                               std::vector<std::optional<std::size_t>> latent,
                               std::vector<Fault> history,
                               std::uint64_t detected,
                               std::uint64_t escaped_tests,
                               std::uint64_t corrupted) {
    MCS_REQUIRE(latent.size() == latent_.size(),
                "fault injector state: core count mismatch");
    for (const auto& slot : latent) {
        MCS_REQUIRE(!slot.has_value() || *slot < history.size(),
                    "fault injector state: latent index out of range");
    }
    rng_ = rng;
    latent_ = std::move(latent);
    history_ = std::move(history);
    detected_ = detected;
    escaped_tests_ = escaped_tests;
    corrupted_ = corrupted;
}

}  // namespace mcs
