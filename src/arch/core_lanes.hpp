#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace mcs {

enum class CoreState;

/// Struct-of-arrays storage for all mutable per-core state, owned by Chip.
/// Slot i belongs to the row-major core id i. `Core` is a thin indexed
/// view over these lanes (its checked transitions are the only writers of
/// the state-machine lanes), so the hot per-epoch loops -- thermal step,
/// wear integration, criticality, power fills, energy/trace folds, test
/// candidacy -- iterate flat contiguous arrays instead of chasing
/// per-object fields, and the `EpochExecutor` slab sharding maps straight
/// onto lane ranges.
///
/// The epoch lanes at the bottom (temperature, damage, criticality, power)
/// are the same buffers the substrate models read and write: ThermalModel
/// and AgingTracker bind `temp_c` / `damage` as their backing storage, and
/// PlatformEngine fills `criticality` / `power_w` in place, so an epoch's
/// producer and its consumers share one allocation with no scratch copy.
///
/// Membership journal: every state or reservation change is recorded
/// (deduplicated) in `dirty_`. It has exactly one consumer -- the
/// TestEngine's patch-on-commit candidacy view (core/test_candidacy.hpp),
/// which drains it each test epoch. All writers run in serial event
/// context (sharded epoch fills never mutate lanes' state machine), so the
/// journal needs no synchronization.
class CoreLanes {
public:
    CoreLanes() = default;
    /// Sizes every lane for `n` cores (boot values: Idle, unreserved,
    /// zeroed accounting; Core's constructor sets the boot V/F level).
    void reset(std::size_t n);

    std::size_t size() const noexcept { return state.size(); }

    // --- state machine + accounting lanes (written via Core only) ---
    std::vector<CoreState> state;
    std::vector<int> vf_level;
    std::vector<std::uint8_t> reserved;
    std::vector<SimTime> last_checkpoint;
    std::vector<std::uint64_t> busy_cycles_since_test;
    std::vector<std::uint64_t> total_busy_cycles;
    std::vector<SimDuration> total_busy_time;
    std::vector<SimDuration> total_test_time;
    std::vector<SimTime> birth;
    std::vector<SimTime> last_state_change;
    std::vector<SimTime> last_test_end;
    std::vector<std::uint64_t> tests_completed;
    std::vector<std::uint64_t> tests_aborted;
    std::vector<std::uint64_t> tasks_executed;

    // --- epoch lanes (substrate-owned values, lanes-owned storage) ---
    std::vector<double> temp_c;       ///< ThermalModel's live node temps
    std::vector<double> damage;       ///< AgingTracker's accumulated wear
    std::vector<double> criticality;  ///< last refresh_criticality() result
    std::vector<double> power_w;      ///< per-core power fill scratch

    // --- membership journal (single consumer; see class comment) ---
    void note_membership_change(std::uint32_t core) {
        if (!dirty_flag_[core]) {
            dirty_flag_[core] = 1;
            dirty_.push_back(core);
        }
    }
    const std::vector<std::uint32_t>& dirty() const noexcept {
        return dirty_;
    }
    void clear_dirty() noexcept {
        for (std::uint32_t core : dirty_) {
            dirty_flag_[core] = 0;
        }
        dirty_.clear();
    }

private:
    std::vector<std::uint8_t> dirty_flag_;
    std::vector<std::uint32_t> dirty_;
};

}  // namespace mcs
