#include "arch/chip.hpp"

#include <cstdlib>

#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace mcs {

Chip::Chip(int width, int height, TechNode node)
    : Chip(width, height, technology(node)) {}

Chip::Chip(int width, int height, TechnologyParams params)
    : width_(width), height_(height), tech_(std::move(params)) {
    MCS_REQUIRE(width_ > 0 && height_ > 0, "chip dimensions must be positive");
    vf_table_ = build_vf_table(tech_);
    const std::size_t n = static_cast<std::size_t>(width_) *
                          static_cast<std::size_t>(height_);
    lanes_.reset(n);
    cores_.reserve(n);
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            cores_.emplace_back(static_cast<CoreId>(y * width_ + x), x, y,
                                &vf_table_, &lanes_);
        }
    }
}

Core& Chip::core(CoreId id) {
    MCS_REQUIRE(id < cores_.size(), "core id out of range");
    return cores_[id];
}

const Core& Chip::core(CoreId id) const {
    MCS_REQUIRE(id < cores_.size(), "core id out of range");
    return cores_[id];
}

Core& Chip::core_at(int x, int y) {
    return core(id_of(x, y));
}

const Core& Chip::core_at(int x, int y) const {
    return core(id_of(x, y));
}

CoreId Chip::id_of(int x, int y) const {
    MCS_REQUIRE(contains(x, y), "coordinates outside chip");
    return static_cast<CoreId>(y * width_ + x);
}

int Chip::distance(CoreId a, CoreId b) const {
    MCS_REQUIRE(a < cores_.size() && b < cores_.size(),
                "core id out of range");
    return std::abs(x_of(a) - x_of(b)) + std::abs(y_of(a) - y_of(b));
}

std::vector<CoreId> Chip::neighbors(CoreId id) const {
    MCS_REQUIRE(id < cores_.size(), "core id out of range");
    const int x = x_of(id);
    const int y = y_of(id);
    std::vector<CoreId> out;
    out.reserve(4);
    if (contains(x - 1, y)) out.push_back(id_of(x - 1, y));
    if (contains(x + 1, y)) out.push_back(id_of(x + 1, y));
    if (contains(x, y - 1)) out.push_back(id_of(x, y - 1));
    if (contains(x, y + 1)) out.push_back(id_of(x, y + 1));
    return out;
}

void Chip::checkpoint_all(SimTime now, EpochExecutor* exec) {
    if (exec != nullptr && exec->parallel()) {
        exec->for_slabs(cores_.size(),
                        [&](std::size_t begin, std::size_t end) {
                            for (std::size_t i = begin; i < end; ++i) {
                                cores_[i].checkpoint(now);
                            }
                        });
        return;
    }
    for (auto& c : cores_) {
        c.checkpoint(now);
    }
}

}  // namespace mcs
