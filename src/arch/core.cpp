#include "arch/core.hpp"

#include "util/require.hpp"

namespace mcs {

const char* to_string(CoreState state) {
    switch (state) {
        case CoreState::Idle: return "Idle";
        case CoreState::Busy: return "Busy";
        case CoreState::Testing: return "Testing";
        case CoreState::Dark: return "Dark";
        case CoreState::Faulty: return "Faulty";
    }
    return "?";
}

Core::Core(CoreId id, int x, int y, const std::vector<VfLevel>* vf_table)
    : id_(id), x_(x), y_(y), vf_table_(vf_table) {
    MCS_REQUIRE(vf_table_ != nullptr && !vf_table_->empty(),
                "core needs a non-empty VF table");
    vf_level_ = static_cast<int>(vf_table_->size()) - 1;  // boot at max
}

double Core::freq_hz() const {
    return (*vf_table_)[static_cast<std::size_t>(vf_level_)].freq_hz;
}

double Core::voltage_v() const {
    return (*vf_table_)[static_cast<std::size_t>(vf_level_)].voltage_v;
}

void Core::checkpoint(SimTime now) {
    MCS_REQUIRE(now >= last_checkpoint_, "core checkpoint going backwards");
    const SimDuration span = now - last_checkpoint_;
    last_checkpoint_ = now;
    if (span == 0) {
        return;
    }
    if (state_ == CoreState::Busy) {
        const auto cycles = cycles_in(span, freq_hz());
        busy_cycles_since_test_ += cycles;
        total_busy_cycles_ += cycles;
        total_busy_time_ += span;
    } else if (state_ == CoreState::Testing) {
        total_test_time_ += span;
    }
}

void Core::transition(SimTime now, CoreState to) {
    checkpoint(now);
    state_ = to;
    last_state_change_ = now;
}

void Core::start_task(SimTime now) {
    MCS_REQUIRE(state_ == CoreState::Idle,
                std::string("start_task from state ") + to_string(state_));
    transition(now, CoreState::Busy);
}

void Core::finish_task(SimTime now) {
    MCS_REQUIRE(state_ == CoreState::Busy,
                std::string("finish_task from state ") + to_string(state_));
    transition(now, CoreState::Idle);
    ++tasks_executed_;
}

void Core::start_test(SimTime now) {
    MCS_REQUIRE(state_ == CoreState::Idle,
                std::string("start_test from state ") + to_string(state_));
    transition(now, CoreState::Testing);
}

void Core::finish_test(SimTime now, bool completed) {
    MCS_REQUIRE(state_ == CoreState::Testing,
                std::string("finish_test from state ") + to_string(state_));
    transition(now, CoreState::Idle);
    if (completed) {
        ++tests_completed_;
        last_test_end_ = now;
        busy_cycles_since_test_ = 0;
    } else {
        ++tests_aborted_;
    }
}

void Core::mark_faulty(SimTime now) {
    MCS_REQUIRE(state_ != CoreState::Faulty, "core is already faulty");
    transition(now, CoreState::Faulty);
    reserved_ = false;
}

void Core::power_gate(SimTime now) {
    MCS_REQUIRE(state_ == CoreState::Idle,
                std::string("power_gate from state ") + to_string(state_));
    MCS_REQUIRE(!reserved_, "cannot power-gate a reserved core");
    transition(now, CoreState::Dark);
}

void Core::wake(SimTime now) {
    MCS_REQUIRE(state_ == CoreState::Dark,
                std::string("wake from state ") + to_string(state_));
    transition(now, CoreState::Idle);
}

void Core::set_vf_level(SimTime now, int level) {
    MCS_REQUIRE(level >= 0 &&
                    level < static_cast<int>(vf_table_->size()),
                "VF level out of range");
    checkpoint(now);  // integrate at the old frequency first
    vf_level_ = level;
}

double Core::busy_fraction(SimTime now) const {
    if (now <= birth_) {
        return 0.0;
    }
    // Include the in-flight interval since the last checkpoint.
    SimDuration busy = total_busy_time_;
    if (state_ == CoreState::Busy && now > last_checkpoint_) {
        busy += now - last_checkpoint_;
    }
    return static_cast<double>(busy) / static_cast<double>(now - birth_);
}

}  // namespace mcs
