#include "arch/core.hpp"

#include <string>

#include "util/require.hpp"

namespace mcs {

const char* to_string(CoreState state) {
    switch (state) {
        case CoreState::Idle: return "Idle";
        case CoreState::Busy: return "Busy";
        case CoreState::Testing: return "Testing";
        case CoreState::Dark: return "Dark";
        case CoreState::Faulty: return "Faulty";
    }
    return "?";
}

Core::Core(CoreId id, int x, int y, const std::vector<VfLevel>* vf_table,
           CoreLanes* lanes)
    : id_(id), x_(x), y_(y), vf_table_(vf_table), lanes_(lanes) {
    MCS_REQUIRE(vf_table_ != nullptr && !vf_table_->empty(),
                "core needs a non-empty VF table");
    MCS_REQUIRE(lanes_ != nullptr && id_ < lanes_->size(),
                "core needs a lanes slot");
    // Boot at max V/F.
    lanes_->vf_level[id_] = static_cast<int>(vf_table_->size()) - 1;
}

double Core::freq_hz() const {
    return (*vf_table_)[static_cast<std::size_t>(vf_level())].freq_hz;
}

double Core::voltage_v() const {
    return (*vf_table_)[static_cast<std::size_t>(vf_level())].voltage_v;
}

void Core::checkpoint(SimTime now) {
    MCS_REQUIRE(now >= lanes_->last_checkpoint[id_],
                "core checkpoint going backwards");
    const SimDuration span = now - lanes_->last_checkpoint[id_];
    lanes_->last_checkpoint[id_] = now;
    if (span == 0) {
        return;
    }
    if (state() == CoreState::Busy) {
        const auto cycles = cycles_in(span, freq_hz());
        lanes_->busy_cycles_since_test[id_] += cycles;
        lanes_->total_busy_cycles[id_] += cycles;
        lanes_->total_busy_time[id_] += span;
    } else if (state() == CoreState::Testing) {
        lanes_->total_test_time[id_] += span;
    }
}

void Core::transition(SimTime now, CoreState to) {
    checkpoint(now);
    lanes_->state[id_] = to;
    lanes_->last_state_change[id_] = now;
    lanes_->note_membership_change(id_);
}

void Core::start_task(SimTime now) {
    MCS_REQUIRE(state() == CoreState::Idle,
                std::string("start_task from state ") + to_string(state()));
    transition(now, CoreState::Busy);
}

void Core::finish_task(SimTime now) {
    MCS_REQUIRE(state() == CoreState::Busy,
                std::string("finish_task from state ") + to_string(state()));
    transition(now, CoreState::Idle);
    ++lanes_->tasks_executed[id_];
}

void Core::start_test(SimTime now) {
    MCS_REQUIRE(state() == CoreState::Idle,
                std::string("start_test from state ") + to_string(state()));
    transition(now, CoreState::Testing);
}

void Core::finish_test(SimTime now, bool completed) {
    MCS_REQUIRE(state() == CoreState::Testing,
                std::string("finish_test from state ") + to_string(state()));
    transition(now, CoreState::Idle);
    if (completed) {
        ++lanes_->tests_completed[id_];
        lanes_->last_test_end[id_] = now;
        lanes_->busy_cycles_since_test[id_] = 0;
    } else {
        ++lanes_->tests_aborted[id_];
    }
}

void Core::mark_faulty(SimTime now) {
    MCS_REQUIRE(state() != CoreState::Faulty, "core is already faulty");
    transition(now, CoreState::Faulty);
    lanes_->reserved[id_] = 0;
}

void Core::power_gate(SimTime now) {
    MCS_REQUIRE(state() == CoreState::Idle,
                std::string("power_gate from state ") + to_string(state()));
    MCS_REQUIRE(!reserved(), "cannot power-gate a reserved core");
    transition(now, CoreState::Dark);
}

void Core::wake(SimTime now) {
    MCS_REQUIRE(state() == CoreState::Dark,
                std::string("wake from state ") + to_string(state()));
    transition(now, CoreState::Idle);
}

void Core::set_vf_level(SimTime now, int level) {
    MCS_REQUIRE(level >= 0 &&
                    level < static_cast<int>(vf_table_->size()),
                "VF level out of range");
    checkpoint(now);  // integrate at the old frequency first
    lanes_->vf_level[id_] = level;
}

void Core::set_reserved(bool reserved) {
    if ((lanes_->reserved[id_] != 0) == reserved) {
        return;
    }
    lanes_->reserved[id_] = reserved ? 1 : 0;
    lanes_->note_membership_change(id_);
}

double Core::busy_fraction(SimTime now) const {
    if (now <= lanes_->birth[id_]) {
        return 0.0;
    }
    // Include the in-flight interval since the last checkpoint.
    SimDuration busy = lanes_->total_busy_time[id_];
    if (state() == CoreState::Busy && now > lanes_->last_checkpoint[id_]) {
        busy += now - lanes_->last_checkpoint[id_];
    }
    return static_cast<double>(busy) /
           static_cast<double>(now - lanes_->birth[id_]);
}

void Core::load_state(const PersistedState& s) {
    lanes_->state[id_] = s.state;
    lanes_->vf_level[id_] = s.vf_level;
    lanes_->reserved[id_] = s.reserved ? 1 : 0;
    lanes_->last_checkpoint[id_] = s.last_checkpoint;
    lanes_->busy_cycles_since_test[id_] = s.busy_cycles_since_test;
    lanes_->total_busy_cycles[id_] = s.total_busy_cycles;
    lanes_->total_busy_time[id_] = s.total_busy_time;
    lanes_->total_test_time[id_] = s.total_test_time;
    lanes_->birth[id_] = s.birth;
    lanes_->last_state_change[id_] = s.last_state_change;
    lanes_->last_test_end[id_] = s.last_test_end;
    lanes_->tests_completed[id_] = s.tests_completed;
    lanes_->tests_aborted[id_] = s.tests_aborted;
    lanes_->tasks_executed[id_] = s.tasks_executed;
    lanes_->note_membership_change(id_);
}

}  // namespace mcs
