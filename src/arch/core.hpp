#pragma once

#include <cstdint>
#include <vector>

#include "arch/technology.hpp"
#include "sim/time.hpp"

namespace mcs {

using CoreId = std::uint32_t;
inline constexpr CoreId kInvalidCore = static_cast<CoreId>(-1);

/// Core execution states.
///
///   Idle    -- powered, clock-gated, ready for work or test
///   Busy    -- executing a workload task
///   Testing -- executing an SBST routine
///   Dark    -- power-gated by the power manager (dark silicon)
///   Faulty  -- permanently decommissioned after a detected fault
enum class CoreState { Idle, Busy, Testing, Dark, Faulty };

const char* to_string(CoreState state);

/// One processing core: a checked state machine plus time/cycle accounting.
///
/// The core integrates busy cycles at every state or DVFS transition
/// ("checkpointing"), so `busy_cycles_since_test()` is exact even when the
/// frequency changes mid-task. Higher layers (aging, test criticality) are
/// built on these counters.
class Core {
public:
    /// `vf_table` must outlive the core (owned by Chip).
    Core(CoreId id, int x, int y, const std::vector<VfLevel>* vf_table);

    CoreId id() const noexcept { return id_; }
    int x() const noexcept { return x_; }
    int y() const noexcept { return y_; }

    CoreState state() const noexcept { return state_; }
    bool is_idle() const noexcept { return state_ == CoreState::Idle; }
    bool is_busy() const noexcept { return state_ == CoreState::Busy; }
    bool is_testing() const noexcept { return state_ == CoreState::Testing; }
    bool is_available() const noexcept {
        return state_ != CoreState::Faulty && state_ != CoreState::Dark;
    }

    int vf_level() const noexcept { return vf_level_; }
    std::size_t vf_level_count() const noexcept { return vf_table_->size(); }
    double freq_hz() const;
    double voltage_v() const;

    /// --- checked state transitions (all integrate accounting to `now`) ---
    void start_task(SimTime now);                    ///< Idle -> Busy
    void finish_task(SimTime now);                   ///< Busy -> Idle
    void start_test(SimTime now);                    ///< Idle -> Testing
    /// Testing -> Idle. `completed` distinguishes a finished test (resets
    /// the stress counters and stamps last_test_end) from an aborted one.
    void finish_test(SimTime now, bool completed);
    void mark_faulty(SimTime now);                   ///< any -> Faulty
    void power_gate(SimTime now);                    ///< Idle -> Dark
    void wake(SimTime now);                          ///< Dark -> Idle
    void set_vf_level(SimTime now, int level);

    /// Reservation by the runtime mapper: a reserved core belongs to a
    /// mapped application (it may still be Idle between its tasks).
    /// Orthogonal to the execution state.
    bool reserved() const noexcept { return reserved_; }
    void set_reserved(bool reserved) noexcept { reserved_ = reserved; }

    /// --- stress / test accounting ---
    std::uint64_t busy_cycles_since_test() const noexcept {
        return busy_cycles_since_test_;
    }
    SimTime last_test_end() const noexcept { return last_test_end_; }
    std::uint64_t tests_completed() const noexcept { return tests_completed_; }
    std::uint64_t tests_aborted() const noexcept { return tests_aborted_; }
    std::uint64_t tasks_executed() const noexcept { return tasks_executed_; }

    std::uint64_t total_busy_cycles() const noexcept {
        return total_busy_cycles_;
    }
    SimDuration total_busy_time() const noexcept { return total_busy_time_; }
    SimDuration total_test_time() const noexcept { return total_test_time_; }

    /// Lifetime busy fraction in [0,1] up to `now`.
    double busy_fraction(SimTime now) const;

    /// Time of the most recent state transition (how long the core has been
    /// in its current state).
    SimTime last_state_change() const noexcept { return last_state_change_; }

    /// Integrates counters up to `now` without changing state. Exposed so
    /// periodic observers (aging, metrics) see up-to-date counters.
    void checkpoint(SimTime now);

    /// Complete mutable state for checkpoint/restore (identity and the
    /// VF table stay with the constructed core).
    struct PersistedState {
        CoreState state = CoreState::Idle;
        int vf_level = 0;
        bool reserved = false;
        SimTime last_checkpoint = 0;
        std::uint64_t busy_cycles_since_test = 0;
        std::uint64_t total_busy_cycles = 0;
        SimDuration total_busy_time = 0;
        SimDuration total_test_time = 0;
        SimTime birth = 0;
        SimTime last_state_change = 0;
        SimTime last_test_end = 0;
        std::uint64_t tests_completed = 0;
        std::uint64_t tests_aborted = 0;
        std::uint64_t tasks_executed = 0;
    };
    PersistedState save_state() const noexcept {
        return {state_,           vf_level_,        reserved_,
                last_checkpoint_, busy_cycles_since_test_,
                total_busy_cycles_,                 total_busy_time_,
                total_test_time_, birth_,           last_state_change_,
                last_test_end_,   tests_completed_, tests_aborted_,
                tasks_executed_};
    }
    void load_state(const PersistedState& s) noexcept {
        state_ = s.state;
        vf_level_ = s.vf_level;
        reserved_ = s.reserved;
        last_checkpoint_ = s.last_checkpoint;
        busy_cycles_since_test_ = s.busy_cycles_since_test;
        total_busy_cycles_ = s.total_busy_cycles;
        total_busy_time_ = s.total_busy_time;
        total_test_time_ = s.total_test_time;
        birth_ = s.birth;
        last_state_change_ = s.last_state_change;
        last_test_end_ = s.last_test_end;
        tests_completed_ = s.tests_completed;
        tests_aborted_ = s.tests_aborted;
        tasks_executed_ = s.tasks_executed;
    }

private:
    void transition(SimTime now, CoreState to);

    CoreId id_;
    int x_;
    int y_;
    const std::vector<VfLevel>* vf_table_;

    CoreState state_ = CoreState::Idle;
    int vf_level_ = 0;
    bool reserved_ = false;

    SimTime last_checkpoint_ = 0;
    std::uint64_t busy_cycles_since_test_ = 0;
    std::uint64_t total_busy_cycles_ = 0;
    SimDuration total_busy_time_ = 0;
    SimDuration total_test_time_ = 0;
    SimTime birth_ = 0;
    SimTime last_state_change_ = 0;
    SimTime last_test_end_ = 0;
    std::uint64_t tests_completed_ = 0;
    std::uint64_t tests_aborted_ = 0;
    std::uint64_t tasks_executed_ = 0;
};

}  // namespace mcs
