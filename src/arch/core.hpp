#pragma once

#include <cstdint>
#include <vector>

#include "arch/core_lanes.hpp"
#include "arch/technology.hpp"
#include "sim/time.hpp"

namespace mcs {

using CoreId = std::uint32_t;
inline constexpr CoreId kInvalidCore = static_cast<CoreId>(-1);

/// Core execution states.
///
///   Idle    -- powered, clock-gated, ready for work or test
///   Busy    -- executing a workload task
///   Testing -- executing an SBST routine
///   Dark    -- power-gated by the power manager (dark silicon)
///   Faulty  -- permanently decommissioned after a detected fault
enum class CoreState { Idle, Busy, Testing, Dark, Faulty };

const char* to_string(CoreState state);

/// One processing core: a checked state machine plus time/cycle accounting.
///
/// The core integrates busy cycles at every state or DVFS transition
/// ("checkpointing"), so `busy_cycles_since_test()` is exact even when the
/// frequency changes mid-task. Higher layers (aging, test criticality) are
/// built on these counters.
///
/// Storage note: Core is a thin indexed view -- all mutable fields live in
/// the chip-owned CoreLanes struct-of-arrays (slot = core id), so the
/// per-epoch loops iterate flat lanes while this class keeps the checked
/// public API. Every state or reservation change funnels through
/// transition()/set_reserved(), which record the core in the lanes'
/// membership journal for the patch-on-commit test-candidacy view.
class Core {
public:
    /// `vf_table` and `lanes` must outlive the core (both owned by Chip).
    Core(CoreId id, int x, int y, const std::vector<VfLevel>* vf_table,
         CoreLanes* lanes);

    CoreId id() const noexcept { return id_; }
    int x() const noexcept { return x_; }
    int y() const noexcept { return y_; }

    CoreState state() const noexcept { return lanes_->state[id_]; }
    bool is_idle() const noexcept { return state() == CoreState::Idle; }
    bool is_busy() const noexcept { return state() == CoreState::Busy; }
    bool is_testing() const noexcept {
        return state() == CoreState::Testing;
    }
    bool is_available() const noexcept {
        return state() != CoreState::Faulty && state() != CoreState::Dark;
    }

    int vf_level() const noexcept { return lanes_->vf_level[id_]; }
    std::size_t vf_level_count() const noexcept { return vf_table_->size(); }
    double freq_hz() const;
    double voltage_v() const;

    /// --- checked state transitions (all integrate accounting to `now`) ---
    void start_task(SimTime now);                    ///< Idle -> Busy
    void finish_task(SimTime now);                   ///< Busy -> Idle
    void start_test(SimTime now);                    ///< Idle -> Testing
    /// Testing -> Idle. `completed` distinguishes a finished test (resets
    /// the stress counters and stamps last_test_end) from an aborted one.
    void finish_test(SimTime now, bool completed);
    void mark_faulty(SimTime now);                   ///< any -> Faulty
    void power_gate(SimTime now);                    ///< Idle -> Dark
    void wake(SimTime now);                          ///< Dark -> Idle
    void set_vf_level(SimTime now, int level);

    /// Reservation by the runtime mapper: a reserved core belongs to a
    /// mapped application (it may still be Idle between its tasks).
    /// Orthogonal to the execution state.
    bool reserved() const noexcept { return lanes_->reserved[id_] != 0; }
    void set_reserved(bool reserved);

    /// --- stress / test accounting ---
    std::uint64_t busy_cycles_since_test() const noexcept {
        return lanes_->busy_cycles_since_test[id_];
    }
    SimTime last_test_end() const noexcept {
        return lanes_->last_test_end[id_];
    }
    std::uint64_t tests_completed() const noexcept {
        return lanes_->tests_completed[id_];
    }
    std::uint64_t tests_aborted() const noexcept {
        return lanes_->tests_aborted[id_];
    }
    std::uint64_t tasks_executed() const noexcept {
        return lanes_->tasks_executed[id_];
    }

    std::uint64_t total_busy_cycles() const noexcept {
        return lanes_->total_busy_cycles[id_];
    }
    SimDuration total_busy_time() const noexcept {
        return lanes_->total_busy_time[id_];
    }
    SimDuration total_test_time() const noexcept {
        return lanes_->total_test_time[id_];
    }

    /// Lifetime busy fraction in [0,1] up to `now`.
    double busy_fraction(SimTime now) const;

    /// Time of the most recent state transition (how long the core has been
    /// in its current state).
    SimTime last_state_change() const noexcept {
        return lanes_->last_state_change[id_];
    }

    /// Integrates counters up to `now` without changing state. Exposed so
    /// periodic observers (aging, metrics) see up-to-date counters.
    void checkpoint(SimTime now);

    /// Complete mutable state for checkpoint/restore (identity and the
    /// VF table stay with the constructed core).
    struct PersistedState {
        CoreState state = CoreState::Idle;
        int vf_level = 0;
        bool reserved = false;
        SimTime last_checkpoint = 0;
        std::uint64_t busy_cycles_since_test = 0;
        std::uint64_t total_busy_cycles = 0;
        SimDuration total_busy_time = 0;
        SimDuration total_test_time = 0;
        SimTime birth = 0;
        SimTime last_state_change = 0;
        SimTime last_test_end = 0;
        std::uint64_t tests_completed = 0;
        std::uint64_t tests_aborted = 0;
        std::uint64_t tasks_executed = 0;
    };
    PersistedState save_state() const noexcept {
        return {state(),
                vf_level(),
                reserved(),
                lanes_->last_checkpoint[id_],
                busy_cycles_since_test(),
                total_busy_cycles(),
                total_busy_time(),
                total_test_time(),
                lanes_->birth[id_],
                last_state_change(),
                last_test_end(),
                tests_completed(),
                tests_aborted(),
                tasks_executed()};
    }
    void load_state(const PersistedState& s);

private:
    void transition(SimTime now, CoreState to);

    CoreId id_;
    int x_;
    int y_;
    const std::vector<VfLevel>* vf_table_;
    CoreLanes* lanes_;
};

}  // namespace mcs
