#pragma once

#include <vector>

#include "arch/core.hpp"
#include "arch/core_lanes.hpp"
#include "arch/technology.hpp"

namespace mcs {

class EpochExecutor;

/// A manycore chip: a width x height grid of cores sharing one technology
/// node and one DVFS table. Core ids are row-major: id = y * width + x.
class Chip {
public:
    Chip(int width, int height, TechNode node);
    Chip(int width, int height, TechnologyParams params);

    Chip(const Chip&) = delete;
    Chip& operator=(const Chip&) = delete;

    int width() const noexcept { return width_; }
    int height() const noexcept { return height_; }
    std::size_t core_count() const noexcept { return cores_.size(); }

    Core& core(CoreId id);
    const Core& core(CoreId id) const;
    Core& core_at(int x, int y);
    const Core& core_at(int x, int y) const;

    CoreId id_of(int x, int y) const;
    int x_of(CoreId id) const noexcept { return static_cast<int>(id) % width_; }
    int y_of(CoreId id) const noexcept { return static_cast<int>(id) / width_; }
    bool contains(int x, int y) const noexcept {
        return x >= 0 && x < width_ && y >= 0 && y < height_;
    }

    /// Manhattan distance between two cores.
    int distance(CoreId a, CoreId b) const;

    /// Mesh neighbors (2..4 cores).
    std::vector<CoreId> neighbors(CoreId id) const;

    const TechnologyParams& tech() const noexcept { return tech_; }
    const std::vector<VfLevel>& vf_table() const noexcept { return vf_table_; }
    std::size_t vf_level_count() const noexcept { return vf_table_.size(); }
    int max_vf_level() const noexcept {
        return static_cast<int>(vf_table_.size()) - 1;
    }

    /// Chip power budget (TDP) from the technology's dark-silicon fraction.
    double tdp_w() const { return tech_.chip_tdp_w(core_count()); }

    /// Checkpoints every core's accounting to `now`. With `exec`, the
    /// per-core checkpoints are sharded across the worker team (each core's
    /// accounting is independent, so any worker count is equivalent).
    void checkpoint_all(SimTime now, EpochExecutor* exec = nullptr);

    std::vector<Core>& cores() noexcept { return cores_; }
    const std::vector<Core>& cores() const noexcept { return cores_; }

    /// Struct-of-arrays backing store for all mutable core state (slot =
    /// core id). The epoch hot loops iterate these lanes directly; the
    /// `Core` objects above are thin checked views over the same storage.
    CoreLanes& lanes() noexcept { return lanes_; }
    const CoreLanes& lanes() const noexcept { return lanes_; }

private:
    int width_;
    int height_;
    TechnologyParams tech_;
    std::vector<VfLevel> vf_table_;
    CoreLanes lanes_;
    std::vector<Core> cores_;
};

}  // namespace mcs
