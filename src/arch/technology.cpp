#include "arch/technology.hpp"

#include <array>
#include <cmath>

#include "util/require.hpp"

namespace mcs {

const char* to_string(TechNode node) {
    switch (node) {
        case TechNode::nm45: return "45nm";
        case TechNode::nm32: return "32nm";
        case TechNode::nm22: return "22nm";
        case TechNode::nm16: return "16nm";
    }
    return "?";
}

double TechnologyParams::core_peak_power_w() const {
    const double dyn = switched_cap_f * nominal_vdd_v * nominal_vdd_v *
                       max_freq_hz;
    const double leak = leak_current_a * nominal_vdd_v;
    return dyn + leak;
}

double TechnologyParams::chip_tdp_w(std::size_t core_count) const {
    return tdp_fraction * core_peak_power_w() *
           static_cast<double>(core_count);
}

namespace {

// Scaling story across nodes (documented modeling constants, DESIGN.md §2):
// each generation shrinks per-core switched capacitance by ~0.7x and raises
// frequency modestly, but Vdd barely scales, so per-core power falls slower
// than integration density rises. With the same die hosting ~2x the cores,
// the fraction of peak chip power the package can sustain (tdp_fraction)
// drops node over node -- that fraction is the dark-silicon signature the
// paper's 16nm experiments rely on.
std::array<TechnologyParams, 4> make_nodes() {
    std::array<TechnologyParams, 4> nodes{};

    TechnologyParams n45;
    n45.node = TechNode::nm45;
    n45.name = "45nm";
    n45.nominal_vdd_v = 1.10;
    n45.min_vdd_v = 0.65;
    n45.max_freq_hz = 1.6e9;
    n45.min_freq_hz = 0.2e9;
    n45.switched_cap_f = 1.00e-9;
    n45.leak_current_a = 0.10;
    n45.tdp_fraction = 0.95;
    nodes[0] = n45;

    TechnologyParams n32 = n45;
    n32.node = TechNode::nm32;
    n32.name = "32nm";
    n32.nominal_vdd_v = 1.05;
    n32.min_vdd_v = 0.60;
    n32.max_freq_hz = 1.9e9;
    n32.switched_cap_f = 0.72e-9;
    n32.leak_current_a = 0.13;
    n32.tdp_fraction = 0.78;
    nodes[1] = n32;

    TechnologyParams n22 = n32;
    n22.node = TechNode::nm22;
    n22.name = "22nm";
    n22.nominal_vdd_v = 1.00;
    n22.min_vdd_v = 0.57;
    n22.max_freq_hz = 2.2e9;
    n22.switched_cap_f = 0.52e-9;
    n22.leak_current_a = 0.16;
    n22.tdp_fraction = 0.60;
    nodes[2] = n22;

    TechnologyParams n16 = n22;
    n16.node = TechNode::nm16;
    n16.name = "16nm";
    n16.nominal_vdd_v = 0.95;
    n16.min_vdd_v = 0.55;
    n16.max_freq_hz = 2.5e9;
    n16.switched_cap_f = 0.38e-9;
    n16.leak_current_a = 0.20;
    n16.tdp_fraction = 0.45;
    nodes[3] = n16;

    return nodes;
}

const std::array<TechnologyParams, 4>& nodes() {
    static const std::array<TechnologyParams, 4> instance = make_nodes();
    return instance;
}

}  // namespace

const TechnologyParams& technology(TechNode node) {
    switch (node) {
        case TechNode::nm45: return nodes()[0];
        case TechNode::nm32: return nodes()[1];
        case TechNode::nm22: return nodes()[2];
        case TechNode::nm16: return nodes()[3];
    }
    MCS_REQUIRE(false, "unknown technology node");
    return nodes()[0];  // unreachable
}

std::vector<VfLevel> build_vf_table(const TechnologyParams& tech) {
    MCS_REQUIRE(tech.vf_levels >= 2, "need at least two DVFS levels");
    MCS_REQUIRE(tech.max_freq_hz > tech.min_freq_hz,
                "frequency range must be non-empty");
    MCS_REQUIRE(tech.nominal_vdd_v > tech.min_vdd_v,
                "voltage range must be non-empty");
    std::vector<VfLevel> table;
    table.reserve(static_cast<std::size_t>(tech.vf_levels));
    const int n = tech.vf_levels;
    for (int i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / static_cast<double>(n - 1);
        VfLevel level;
        level.freq_hz =
            tech.min_freq_hz + t * (tech.max_freq_hz - tech.min_freq_hz);
        level.voltage_v =
            tech.min_vdd_v + t * (tech.nominal_vdd_v - tech.min_vdd_v);
        table.push_back(level);
    }
    return table;
}

}  // namespace mcs
