#include "arch/core_lanes.hpp"

#include "arch/core.hpp"
#include "util/require.hpp"

namespace mcs {

void CoreLanes::reset(std::size_t n) {
    MCS_REQUIRE(n > 0, "core lanes need at least one core");
    state.assign(n, CoreState::Idle);
    vf_level.assign(n, 0);
    reserved.assign(n, 0);
    last_checkpoint.assign(n, 0);
    busy_cycles_since_test.assign(n, 0);
    total_busy_cycles.assign(n, 0);
    total_busy_time.assign(n, 0);
    total_test_time.assign(n, 0);
    birth.assign(n, 0);
    last_state_change.assign(n, 0);
    last_test_end.assign(n, 0);
    tests_completed.assign(n, 0);
    tests_aborted.assign(n, 0);
    tasks_executed.assign(n, 0);
    temp_c.assign(n, 0.0);
    damage.assign(n, 0.0);
    criticality.assign(n, 0.0);
    power_w.assign(n, 0.0);
    dirty_flag_.assign(n, 0);
    dirty_.clear();
    dirty_.reserve(n);
}

}  // namespace mcs
