#pragma once

#include <string>
#include <vector>

namespace mcs {

/// Process nodes the evaluation sweeps over (paper: 16 nm headline result,
/// older nodes for the dark-silicon trend).
enum class TechNode { nm45, nm32, nm22, nm16 };

const char* to_string(TechNode node);

/// One DVFS operating point.
struct VfLevel {
    double voltage_v = 0.0;
    double freq_hz = 0.0;
};

/// Technology-node parameters for the per-core power model and the chip
/// power budget. The constants are ITRS-style scaling factors chosen to
/// reproduce the dark-silicon *trend* (usable chip-power fraction shrinks
/// with each node), not any specific foundry's numbers; see DESIGN.md
/// "Substitutions".
struct TechnologyParams {
    TechNode node = TechNode::nm16;
    std::string name;

    double nominal_vdd_v = 1.0;   ///< supply at the top DVFS level
    double min_vdd_v = 0.55;      ///< near-threshold floor (ICCD'14 substrate)
    double max_freq_hz = 2.0e9;   ///< frequency at nominal Vdd
    double min_freq_hz = 0.2e9;   ///< frequency at the near-threshold level

    /// Effective switched capacitance of one core at workload activity 1.0,
    /// in farads; dynamic power = activity * C * V^2 * f.
    double switched_cap_f = 0.5e-9;

    /// Leakage current of one core at nominal Vdd and reference temperature,
    /// in amperes; leakage power = I0 * V * exp((T - Tref)/Tslope).
    double leak_current_a = 0.15;
    double leak_ref_temp_c = 45.0;
    double leak_temp_slope_c = 30.0;

    /// Fraction of peak chip power the package/TDP can sustain. This is the
    /// dark-silicon knob: it shrinks with each node.
    double tdp_fraction = 0.45;

    int vf_levels = 5;

    /// Peak power of one core: busy at the top DVFS level, reference temp.
    double core_peak_power_w() const;
    /// Chip TDP for `core_count` cores.
    double chip_tdp_w(std::size_t core_count) const;
};

/// Canonical parameter sets for the four nodes in the evaluation.
const TechnologyParams& technology(TechNode node);

/// Builds the DVFS table for a node: `vf_levels` points from the
/// near-threshold level up to (nominal Vdd, max frequency), with voltage
/// scaling affinely in frequency. Level 0 is the slowest.
std::vector<VfLevel> build_vf_table(const TechnologyParams& tech);

}  // namespace mcs
