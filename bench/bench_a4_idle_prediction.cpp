// A4 -- extension ablation: idle-period prediction for test admission.
//
// Under load, tests started on cores the mapper is about to reclaim get
// aborted -- power spent, nothing learned. The idle-period predictor
// (core/idle_predictor.hpp) estimates each core's remaining availability
// and the scheduler skips sessions that would not fit. This ablation
// quantifies the waste reduction across load levels.

#include <cstdio>

#include "bench_common.hpp"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("A4 (extension): idle-period prediction",
                 "prediction cuts aborted (wasted) test sessions under load "
                 "at little cost in completed tests");

    const int kSeeds = seeds(opt, 3);
    const SimDuration kHorizon = horizon(opt, 10.0, 1.0);
    BenchReport report("a4_idle_prediction", opt);
    TablePrinter table({"occupancy", "prediction", "tests/core/s",
                        "aborted", "abort ratio", "test energy",
                        "max open gap [s]"});
    for (double occ : {0.5, 0.7, 0.9}) {
        for (bool predict : {false, true}) {
            SystemConfig cfg = base_config(83);
            set_occupancy(cfg, occ);
            cfg.power_aware.require_predicted_idle = predict;
            const Replicates r = replicate(cfg, kSeeds, kHorizon);
            const double completed =
                r.mean_u64(&RunMetrics::tests_completed);
            const double aborted = r.mean_u64(&RunMetrics::tests_aborted);
            report.metric(std::string("abort_ratio.") +
                              (predict ? "predict" : "no_predict") + ".occ" +
                              fmt(occ, 1),
                          aborted / std::max(1.0, aborted + completed));
            table.add_row(
                {fmt(occ, 1), predict ? "on" : "off",
                 fmt(r.mean(&RunMetrics::tests_per_core_per_s), 2),
                 fmt(aborted, 0),
                 fmt_pct(aborted / std::max(1.0, aborted + completed), 1),
                 fmt_pct(r.mean(&RunMetrics::test_energy_share)),
                 fmt(r.mean(&RunMetrics::max_open_test_gap_s), 2)});
        }
        table.add_separator();
    }
    std::printf("%s\n", table.to_string().c_str());
    report.write();
    return 0;
}
