// X3 -- extension: mixed-criticality workloads under the power cap.
//
// The ICCD'14 companion distinguishes hard-RT / soft-RT / best-effort
// applications and gives them according priority in the capping loop. This
// experiment runs a mixed workload at rising load and compares
// priority-aware capping + class-ordered admission against a
// priority-blind system on deadline miss rates -- with online testing
// running throughout (the test scheduler must not break RT behaviour).

#include <cstdio>

#include "bench_common.hpp"

using namespace mcs;
using namespace mcs::bench;

namespace {

struct QosResult {
    double hard_miss = 0.0;
    double soft_miss = 0.0;
    double work_gcps = 0.0;
    double viol = 0.0;
    double tests = 0.0;
};

QosResult run_mix(double occupancy, bool priority_aware, int seeds,
                  SimDuration horizon) {
    std::uint64_t hard_met = 0, hard_missed = 0;
    std::uint64_t soft_met = 0, soft_missed = 0;
    RunningStats work, viol, tests;
    for (int s = 0; s < seeds; ++s) {
        SystemConfig cfg = base_config(97 + static_cast<unsigned>(s));
        set_occupancy(cfg, occupancy);
        cfg.workload.hard_rt_weight = 0.15;
        cfg.workload.soft_rt_weight = 0.25;
        cfg.workload.best_effort_weight = 0.60;
        cfg.workload.reference_freq_hz =
            technology(cfg.node).max_freq_hz;
        ManycoreSystem sys(cfg);
        // Priority-blind baseline: capping and admission see every
        // application as best-effort (deadlines still measured).
        sys.set_priority_blind(!priority_aware);
        const RunMetrics m = sys.run(horizon);
        hard_met += m.deadlines_met_by_class[2];
        hard_missed += m.deadlines_missed_by_class[2];
        soft_met += m.deadlines_met_by_class[1];
        soft_missed += m.deadlines_missed_by_class[1];
        work.add(m.work_cycles_per_s);
        viol.add(m.tdp_violation_rate);
        tests.add(m.tests_per_core_per_s);
    }
    QosResult r;
    r.hard_miss = hard_met + hard_missed == 0
                      ? 0.0
                      : static_cast<double>(hard_missed) /
                            static_cast<double>(hard_met + hard_missed);
    r.soft_miss = soft_met + soft_missed == 0
                      ? 0.0
                      : static_cast<double>(soft_missed) /
                            static_cast<double>(soft_met + soft_missed);
    r.work_gcps = work.mean() / 1e9;
    r.viol = viol.mean();
    r.tests = tests.mean();
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("X3 (extension): mixed-criticality workloads",
                 "priority-aware capping protects RT deadlines under load "
                 "without breaking the TDP or the test schedule");

    const int kSeeds = seeds(opt, 3);
    const SimDuration kHorizon = horizon(opt, 10.0, 1.0);
    BenchReport report("x3_qos", opt);
    TablePrinter table({"occupancy", "priorities", "hard-RT miss",
                        "soft-RT miss", "work Gcycles/s", "tests/core/s",
                        "TDP viol."});
    for (double occ : {0.6, 0.9, 1.2}) {
        for (bool aware : {false, true}) {
            const QosResult r = run_mix(occ, aware, kSeeds, kHorizon);
            const std::string key =
                std::string(aware ? "aware" : "blind") + ".occ" + fmt(occ, 1);
            report.metric("hard_rt_miss." + key, r.hard_miss);
            report.metric("soft_rt_miss." + key, r.soft_miss);
            table.add_row({fmt(occ, 1), aware ? "aware" : "blind",
                           fmt_pct(r.hard_miss, 1), fmt_pct(r.soft_miss, 1),
                           fmt(r.work_gcps, 2), fmt(r.tests, 2),
                           fmt_pct(r.viol, 3)});
        }
        table.add_separator();
    }
    std::printf("%s\n", table.to_string().c_str());
    report.write();
    return 0;
}
