// bench_parallel_run -- in-run epoch parallelism: byte identity + speedup.
//
// Runs the same configuration twice, serial (epoch_workers=1) and sharded
// (epoch_workers=4, fixed rather than hardware so the workload is the same
// on every host), capturing the three byte-level artifacts (run report,
// chrome trace, metrics registry). The report separates the populations:
//
//   metrics   -- deterministic counts and the byte-identity verdicts,
//                gated by tools/check_bench.py (1 = identical)
//   parallel  -- wall-clock seconds per leg and the speedup ratio,
//                recorded but never gated (auxiliary section): CI runners
//                may have a single CPU, where speedup is unattainable but
//                byte identity must still hold.
//
// The claim this regenerates: sharding per-core epoch work across a worker
// team between power-epoch barriers is unobservable in the output bytes
// (docs/parallelism.md), i.e. parallelism is free determinism-wise.

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "core/system.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/tracer.hpp"

namespace {

using mcs::bench::BenchOptions;
using mcs::bench::BenchReport;

struct Leg {
    mcs::RunMetrics metrics;
    std::string report;
    std::string trace;
    std::string registry;
    double wall_s = 0.0;
};

Leg run_leg(mcs::SystemConfig cfg, mcs::SimDuration horizon, int workers) {
    cfg.epoch_workers = workers;
    Leg leg;
    const auto start = std::chrono::steady_clock::now();
    mcs::ManycoreSystem sys(cfg);
    mcs::telemetry::Tracer tracer(1 << 15);
    sys.set_tracer(&tracer);
    leg.metrics = sys.run(horizon);
    leg.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    {
        std::ostringstream os;
        mcs::telemetry::write_run_report(leg.metrics, &sys.registry(), os);
        leg.report = os.str();
    }
    {
        std::ostringstream os;
        tracer.write_chrome_json(os);
        leg.trace = os.str();
    }
    {
        std::ostringstream os;
        mcs::telemetry::JsonWriter w(os);
        sys.registry().save_state(w);
        leg.registry = os.str();
    }
    return leg;
}

}  // namespace

int main(int argc, char** argv) {
    const BenchOptions opt = mcs::bench::parse_options(argc, argv);
    mcs::bench::print_header(
        "parallel run: epoch-sharded vs serial",
        "epoch_workers=N produces byte-identical report/trace/registry to "
        "epoch_workers=1 (speedup is advisory on 1-CPU hosts)");
    BenchReport report("parallel_run", opt);

    // The headline 8x8 chip under load with every per-core epoch active
    // (faults exercise the wear path's serial RNG commit as well).
    mcs::SystemConfig cfg = mcs::bench::base_config(1);
    mcs::bench::set_occupancy(cfg, 0.7);
    cfg.enable_fault_injection = true;
    cfg.faults.base_rate_per_core_s = 0.5;
    const mcs::SimDuration horizon = mcs::bench::horizon(opt, 10.0, 1.0);
    const int parallel_workers = 4;

    const Leg serial = run_leg(cfg, horizon, 1);
    const Leg parallel = run_leg(cfg, horizon, parallel_workers);

    const bool report_ok = parallel.report == serial.report;
    const bool trace_ok = parallel.trace == serial.trace;
    const bool registry_ok = parallel.registry == serial.registry;

    // Deterministic, gated: identity verdicts plus headline counters of
    // the serial run (drift here means the simulation changed).
    report.metric("report_identical", report_ok ? 1.0 : 0.0);
    report.metric("trace_identical", trace_ok ? 1.0 : 0.0);
    report.metric("registry_identical", registry_ok ? 1.0 : 0.0);
    report.metric("apps_completed",
                  static_cast<double>(serial.metrics.apps_completed));
    report.metric("tests_completed",
                  static_cast<double>(serial.metrics.tests_completed));
    report.metric("mean_power_w", serial.metrics.mean_power_w);

    // Wall-clock, advisory: the interesting number on multi-core hosts.
    report.aux("parallel", "serial_wall_s", serial.wall_s);
    report.aux("parallel", "parallel_wall_s", parallel.wall_s);
    report.aux("parallel", "workers", parallel_workers);
    report.aux("parallel", "speedup",
               parallel.wall_s > 0.0 ? serial.wall_s / parallel.wall_s : 0.0);

    std::printf("serial   %.3f s\n", serial.wall_s);
    std::printf("parallel %.3f s (workers=%d, speedup %.2fx)\n",
                parallel.wall_s, parallel_workers,
                parallel.wall_s > 0.0 ? serial.wall_s / parallel.wall_s
                                      : 0.0);
    std::printf("bytes: report %s, trace %s, registry %s\n",
                report_ok ? "IDENTICAL" : "DRIFTED",
                trace_ok ? "IDENTICAL" : "DRIFTED",
                registry_ok ? "IDENTICAL" : "DRIFTED");
    report.write();
    if (!(report_ok && trace_ok && registry_ok)) {
        std::fprintf(stderr,
                     "FAIL: parallel run output drifted from serial\n");
        return 1;
    }
    return 0;
}
