// M1-M3 -- google-benchmark microbenchmarks of the simulator substrates:
// event-queue throughput, NoC routing, power-model evaluation, thermal
// stepping, and mapper decisions. These bound the cost of one simulated
// second and guard against performance regressions in the hot paths.

#include <benchmark/benchmark.h>

#include "arch/chip.hpp"
#include "arch/core_lanes.hpp"
#include "mapping/contiguous_mapper.hpp"
#include "noc/network.hpp"
#include "power/power_model.hpp"
#include "sim/event_queue.hpp"
#include "thermal/thermal_model.hpp"
#include "util/rng.hpp"

namespace {

using namespace mcs;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
    const auto batch = static_cast<std::size_t>(state.range(0));
    EventQueue q;
    Rng rng(1);
    for (auto _ : state) {
        for (std::size_t i = 0; i < batch; ++i) {
            q.schedule(rng.next_u64() % 1'000'000, [] {});
        }
        while (!q.empty()) {
            benchmark::DoNotOptimize(q.pop());
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
    EventQueue q;
    Rng rng(2);
    for (auto _ : state) {
        std::vector<EventId> ids;
        ids.reserve(1024);
        for (int i = 0; i < 1024; ++i) {
            ids.push_back(q.schedule(rng.next_u64() % 1'000'000, [] {}));
        }
        for (std::size_t i = 0; i < ids.size(); i += 2) {
            q.cancel(ids[i]);
        }
        while (!q.empty()) {
            benchmark::DoNotOptimize(q.pop());
        }
    }
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_EventQueueEpochMix(benchmark::State& state) {
    // The simulator's real access pattern: timestamps quantized to epoch
    // boundaries (so many events tie and pop in FIFO seq order), a steady
    // schedule/cancel churn from retimed completions, and a drain of
    // everything due each tick. The calendar queue's bucket-per-window
    // layout targets exactly this mix; a comparison heap pays a log-n
    // sift on every tie.
    constexpr SimTime kEpoch = 10'000;
    EventQueue q;
    Rng rng(6);
    std::vector<EventId> live;
    for (auto _ : state) {
        SimTime now = 0;
        for (int round = 0; round < 256; ++round) {
            for (int i = 0; i < 16; ++i) {
                live.push_back(
                    q.schedule(now + kEpoch * (1 + rng.index(64)), [] {}));
            }
            for (int i = 0; i < 4 && !live.empty(); ++i) {
                const std::size_t j = rng.index(live.size());
                q.cancel(live[j]);  // no-op if already popped
                live[j] = live.back();
                live.pop_back();
            }
            now += kEpoch;
            while (!q.empty() && q.next_time() <= now) {
                benchmark::DoNotOptimize(q.pop());
            }
        }
        while (!q.empty()) {
            benchmark::DoNotOptimize(q.pop());
        }
        live.clear();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            256 * 16);
}
BENCHMARK(BM_EventQueueEpochMix);

/// The pre-refactor per-core layout: every field of one core adjacent,
/// successive cores a full struct apart, so a lane-style sweep that reads
/// three fields per core drags the whole struct through cache.
struct FatCoreState {
    CoreState state = CoreState::Idle;
    int vf_level = 0;
    bool reserved = false;
    std::uint64_t busy_cycles_since_test = 0;
    std::uint64_t total_busy_cycles = 0;
    SimDuration total_busy_time = 0;
    SimDuration total_test_time = 0;
    SimTime last_checkpoint = 0;
    SimTime last_state_change = 0;
    SimTime last_test_end = 0;
    std::uint64_t tests_completed = 0;
    std::uint64_t tests_aborted = 0;
    std::uint64_t tasks_executed = 0;
    double temp_c = 55.0;
    double damage = 0.0;
};

void BM_EpochPowerFillAoS(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Chip chip(1, 1, TechNode::nm16);
    PowerModel model(chip.tech(), chip.vf_table());
    std::vector<FatCoreState> cores(n);
    std::vector<double> out(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        cores[i].state = i % 3 == 0   ? CoreState::Busy
                         : i % 3 == 1 ? CoreState::Dark
                                      : CoreState::Idle;
        cores[i].vf_level = static_cast<int>(i % 3);
    }
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i) {
            out[i] = model.core_power_w(cores[i].state, cores[i].vf_level,
                                        cores[i].temp_c);
        }
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EpochPowerFillAoS)->Arg(256)->Arg(4096);

void BM_EpochPowerFillLanesSoA(benchmark::State& state) {
    // Same fill over CoreLanes: the three inputs and the output are four
    // flat arrays, so each iteration touches only the bytes it uses --
    // the layout PlatformEngine::fill_power_lane runs on.
    const auto n = static_cast<std::size_t>(state.range(0));
    Chip chip(1, 1, TechNode::nm16);
    PowerModel model(chip.tech(), chip.vf_table());
    CoreLanes lanes;
    lanes.reset(n);
    for (std::size_t i = 0; i < n; ++i) {
        lanes.state[i] = i % 3 == 0   ? CoreState::Busy
                         : i % 3 == 1 ? CoreState::Dark
                                      : CoreState::Idle;
        lanes.vf_level[i] = static_cast<int>(i % 3);
        lanes.temp_c[i] = 55.0;
    }
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i) {
            lanes.power_w[i] = model.core_power_w(
                lanes.state[i], lanes.vf_level[i], lanes.temp_c[i]);
        }
        benchmark::DoNotOptimize(lanes.power_w.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EpochPowerFillLanesSoA)->Arg(256)->Arg(4096);

void BM_NocXyRoute(benchmark::State& state) {
    const int side = static_cast<int>(state.range(0));
    MeshTopology topo(side, side);
    Rng rng(3);
    for (auto _ : state) {
        const auto src = static_cast<CoreId>(rng.index(topo.node_count()));
        const auto dst = static_cast<CoreId>(rng.index(topo.node_count()));
        benchmark::DoNotOptimize(topo.xy_route(src, dst));
    }
}
BENCHMARK(BM_NocXyRoute)->Arg(8)->Arg(16)->Arg(32);

void BM_NocSend(benchmark::State& state) {
    Network net(16, 16);
    Rng rng(4);
    for (auto _ : state) {
        const auto src = static_cast<CoreId>(rng.index(256));
        const auto dst = static_cast<CoreId>(rng.index(256));
        benchmark::DoNotOptimize(net.send(src, dst, 4096));
    }
}
BENCHMARK(BM_NocSend);

void BM_ChipPowerEvaluation(benchmark::State& state) {
    const int side = static_cast<int>(state.range(0));
    Chip chip(side, side, TechNode::nm16);
    PowerModel model(chip.tech(), chip.vf_table());
    std::vector<double> temps(chip.core_count(), 55.0);
    // Mixed states for a realistic evaluation.
    for (CoreId id = 0; id < chip.core_count(); ++id) {
        if (id % 3 == 0) {
            chip.core(id).start_task(0);
        } else if (id % 3 == 1) {
            chip.core(id).power_gate(0);
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.chip_power_w(chip, temps));
    }
}
BENCHMARK(BM_ChipPowerEvaluation)->Arg(8)->Arg(16);

void BM_ThermalStep(benchmark::State& state) {
    const int side = static_cast<int>(state.range(0));
    ThermalModel thermal(side, side);
    std::vector<double> power(
        static_cast<std::size_t>(side) * static_cast<std::size_t>(side), 0.8);
    for (auto _ : state) {
        thermal.step(power, 0.5e-3);
    }
    benchmark::DoNotOptimize(thermal.max_temp_c());
}
BENCHMARK(BM_ThermalStep)->Arg(8)->Arg(16);

void BM_ContiguousMapping(benchmark::State& state) {
    const int side = static_cast<int>(state.range(0));
    const auto n = static_cast<std::size_t>(side * side);
    std::vector<std::uint8_t> alloc(n, 1);
    std::vector<double> util(n, 0.3);
    std::vector<double> crit(n, 0.5);
    Rng rng(5);
    for (std::size_t i = 0; i < n; ++i) {
        alloc[i] = rng.bernoulli(0.5) ? 1 : 0;
    }
    PlatformView view;
    view.width = side;
    view.height = side;
    view.allocatable = alloc;
    view.utilization = util;
    view.criticality = crit;
    auto mapper = ContiguousMapper::test_aware();
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.map({1, 9}, view, rng));
    }
}
BENCHMARK(BM_ContiguousMapping)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
