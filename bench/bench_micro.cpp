// M1-M3 -- google-benchmark microbenchmarks of the simulator substrates:
// event-queue throughput, NoC routing, power-model evaluation, thermal
// stepping, and mapper decisions. These bound the cost of one simulated
// second and guard against performance regressions in the hot paths.

#include <benchmark/benchmark.h>

#include "arch/chip.hpp"
#include "mapping/contiguous_mapper.hpp"
#include "noc/network.hpp"
#include "power/power_model.hpp"
#include "sim/event_queue.hpp"
#include "thermal/thermal_model.hpp"
#include "util/rng.hpp"

namespace {

using namespace mcs;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
    const auto batch = static_cast<std::size_t>(state.range(0));
    EventQueue q;
    Rng rng(1);
    for (auto _ : state) {
        for (std::size_t i = 0; i < batch; ++i) {
            q.schedule(rng.next_u64() % 1'000'000, [] {});
        }
        while (!q.empty()) {
            benchmark::DoNotOptimize(q.pop());
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
    EventQueue q;
    Rng rng(2);
    for (auto _ : state) {
        std::vector<EventId> ids;
        ids.reserve(1024);
        for (int i = 0; i < 1024; ++i) {
            ids.push_back(q.schedule(rng.next_u64() % 1'000'000, [] {}));
        }
        for (std::size_t i = 0; i < ids.size(); i += 2) {
            q.cancel(ids[i]);
        }
        while (!q.empty()) {
            benchmark::DoNotOptimize(q.pop());
        }
    }
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_NocXyRoute(benchmark::State& state) {
    const int side = static_cast<int>(state.range(0));
    MeshTopology topo(side, side);
    Rng rng(3);
    for (auto _ : state) {
        const auto src = static_cast<CoreId>(rng.index(topo.node_count()));
        const auto dst = static_cast<CoreId>(rng.index(topo.node_count()));
        benchmark::DoNotOptimize(topo.xy_route(src, dst));
    }
}
BENCHMARK(BM_NocXyRoute)->Arg(8)->Arg(16)->Arg(32);

void BM_NocSend(benchmark::State& state) {
    Network net(16, 16);
    Rng rng(4);
    for (auto _ : state) {
        const auto src = static_cast<CoreId>(rng.index(256));
        const auto dst = static_cast<CoreId>(rng.index(256));
        benchmark::DoNotOptimize(net.send(src, dst, 4096));
    }
}
BENCHMARK(BM_NocSend);

void BM_ChipPowerEvaluation(benchmark::State& state) {
    const int side = static_cast<int>(state.range(0));
    Chip chip(side, side, TechNode::nm16);
    PowerModel model(chip.tech(), chip.vf_table());
    std::vector<double> temps(chip.core_count(), 55.0);
    // Mixed states for a realistic evaluation.
    for (CoreId id = 0; id < chip.core_count(); ++id) {
        if (id % 3 == 0) {
            chip.core(id).start_task(0);
        } else if (id % 3 == 1) {
            chip.core(id).power_gate(0);
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.chip_power_w(chip, temps));
    }
}
BENCHMARK(BM_ChipPowerEvaluation)->Arg(8)->Arg(16);

void BM_ThermalStep(benchmark::State& state) {
    const int side = static_cast<int>(state.range(0));
    ThermalModel thermal(side, side);
    std::vector<double> power(
        static_cast<std::size_t>(side) * static_cast<std::size_t>(side), 0.8);
    for (auto _ : state) {
        thermal.step(power, 0.5e-3);
    }
    benchmark::DoNotOptimize(thermal.max_temp_c());
}
BENCHMARK(BM_ThermalStep)->Arg(8)->Arg(16);

void BM_ContiguousMapping(benchmark::State& state) {
    const int side = static_cast<int>(state.range(0));
    const auto n = static_cast<std::size_t>(side * side);
    std::vector<std::uint8_t> alloc(n, 1);
    std::vector<double> util(n, 0.3);
    std::vector<double> crit(n, 0.5);
    Rng rng(5);
    for (std::size_t i = 0; i < n; ++i) {
        alloc[i] = rng.bernoulli(0.5) ? 1 : 0;
    }
    PlatformView view;
    view.width = side;
    view.height = side;
    view.allocatable = alloc;
    view.utilization = util;
    view.criticality = crit;
    auto mapper = ContiguousMapper::test_aware();
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.map({1, 9}, view, rng));
    }
}
BENCHMARK(BM_ContiguousMapping)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
