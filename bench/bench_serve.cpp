// bench_serve -- the what-if service's latency profile, in process.
//
// Warms one snapshot, then drives ServeService::handle directly (no
// sockets: this measures the query surface, not the kernel's TCP stack)
// with a panel of distinct what-if queries. Every query is answered twice
// over: first cold (cache miss -> restore + simulate) and then hot
// (canonical-key cache hit -> stored bytes). The report separates the two
// populations:
//
//   metrics  -- deterministic counts (queries, hits, misses, byte-identity
//               checks, response bytes), gated by tools/check_bench.py
//   latency  -- wall-clock percentiles per population plus speedup_p50,
//               recorded but never gated (auxiliary section)
//
// The serving claim this regenerates: a cache hit is byte-identical to a
// fresh computation and >= 100x faster at the median.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/config_bridge.hpp"
#include "core/system.hpp"
#include "core/system_factory.hpp"
#include "serve/service.hpp"
#include "serve/snapshot_pool.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/config.hpp"

namespace {

using mcs::bench::BenchOptions;
using mcs::bench::BenchReport;

double percentile(std::vector<double> samples, double p) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    const double rank = p * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

mcs::serve::HttpRequest whatif(const std::string& body) {
    mcs::serve::HttpRequest req;
    req.method = "POST";
    req.path = "/whatif";
    req.body = body;
    return req;
}

std::string query_body(const char* scheduler, double tdp_scale) {
    return std::string("{\"schema\":\"mcs.whatif_query.v1\","
                       "\"snapshot\":\"warm\",\"overrides\":{"
                       "\"scheduler\":\"") +
           scheduler + "\",\"tdp_scale\":" +
           mcs::telemetry::json_number(tdp_scale) + "}}";
}

}  // namespace

int main(int argc, char** argv) {
    const BenchOptions opt = mcs::bench::parse_options(argc, argv);
    mcs::bench::print_header(
        "serve: what-if query latency (cold vs cached)",
        "a cached what-if answer is byte-identical to a fresh computation "
        "and >= 100x faster at the median");
    BenchReport report("serve", opt);

    // The warmed snapshot: the differential-baseline chip captured at 40%
    // of its horizon, expressed as Config keys so the serve pool can
    // re-derive the structural fingerprint.
    mcs::Config base;
    base.set("side", opt.quick ? "4" : "8");
    base.set("seed", "42");
    base.set("min_tasks", "2");
    base.set("max_tasks", "6");
    base.set("occupancy", "0.5");
    const mcs::SimDuration horizon =
        mcs::bench::horizon(opt, 2.0, 1.0);
    const std::string snap_path =
        mcs::bench::out_path(opt, "serve_warm_snapshot.json");
    {
        mcs::ManycoreSystem sys(mcs::system_config_from(base));
        sys.checkpoint_at(horizon * 2 / 5, snap_path);
        sys.run(horizon);
    }

    mcs::telemetry::MetricsRegistry registry;
    mcs::serve::ServeService service(
        mcs::serve::SnapshotPool::from_document(
            "warm", mcs::load_snapshot_file(snap_path), base),
        mcs::serve::ServiceOptions{}, registry);

    // The query panel: the paper's design-space axes (scheduler choice x
    // power budget), each a distinct canonical cache key.
    std::vector<std::string> bodies;
    for (const char* sched : {"power-aware", "greedy"}) {
        for (double tdp : {0.7, 0.85, 1.0}) {
            bodies.push_back(query_body(sched, tdp));
        }
    }
    const int hit_rounds = opt.quick ? 20 : 50;

    using clock = std::chrono::steady_clock;
    std::vector<double> cold_us;
    std::vector<double> hit_us;
    std::vector<std::string> fresh_bodies;
    std::uint64_t response_bytes = 0;
    std::uint64_t byte_mismatches = 0;
    std::uint64_t non_200 = 0;

    for (const std::string& body : bodies) {
        const auto t0 = clock::now();
        const mcs::serve::HttpResponse resp = service.handle(whatif(body));
        cold_us.push_back(
            std::chrono::duration<double, std::micro>(clock::now() - t0)
                .count());
        if (resp.status != 200) ++non_200;
        response_bytes += resp.body.size();
        fresh_bodies.push_back(resp.body);
    }
    for (int round = 0; round < hit_rounds; ++round) {
        for (std::size_t i = 0; i < bodies.size(); ++i) {
            const auto t0 = clock::now();
            const mcs::serve::HttpResponse resp =
                service.handle(whatif(bodies[i]));
            hit_us.push_back(
                std::chrono::duration<double, std::micro>(clock::now() - t0)
                    .count());
            if (resp.status != 200) ++non_200;
            if (resp.body != fresh_bodies[i]) ++byte_mismatches;
        }
    }

    const double cold_p50 = percentile(cold_us, 0.5);
    const double hit_p50 = percentile(hit_us, 0.5);
    const double speedup = hit_p50 > 0.0 ? cold_p50 / hit_p50 : 0.0;

    mcs::TablePrinter table(
        {"population", "n", "p50_us", "p90_us", "p99_us", "max_us"});
    table.add_row({"cold", mcs::fmt(std::int64_t(cold_us.size())),
                   mcs::fmt(percentile(cold_us, 0.5)),
                   mcs::fmt(percentile(cold_us, 0.9)),
                   mcs::fmt(percentile(cold_us, 0.99)),
                   mcs::fmt(*std::max_element(cold_us.begin(),
                                              cold_us.end()))});
    table.add_row({"cache-hit", mcs::fmt(std::int64_t(hit_us.size())),
                   mcs::fmt(percentile(hit_us, 0.5)),
                   mcs::fmt(percentile(hit_us, 0.9)),
                   mcs::fmt(percentile(hit_us, 0.99)),
                   mcs::fmt(*std::max_element(hit_us.begin(),
                                              hit_us.end()))});
    std::fputs(table.to_string().c_str(), stdout);
    std::printf("\nspeedup p50 (cold/hit): %.1fx   byte mismatches: %llu\n",
                speedup,
                static_cast<unsigned long long>(byte_mismatches));

    // Deterministic counts -> gated; wall-clock percentiles -> auxiliary.
    report.metric("queries", static_cast<double>(bodies.size()));
    report.metric("hit_samples", static_cast<double>(hit_us.size()));
    report.metric("byte_mismatches", static_cast<double>(byte_mismatches));
    report.metric("non_200_responses", static_cast<double>(non_200));
    report.metric("response_bytes", static_cast<double>(response_bytes));
    report.aux("latency", "cold_p50_us", cold_p50);
    report.aux("latency", "cold_p90_us", percentile(cold_us, 0.9));
    report.aux("latency", "cold_p99_us", percentile(cold_us, 0.99));
    report.aux("latency", "hit_p50_us", hit_p50);
    report.aux("latency", "hit_p90_us", percentile(hit_us, 0.9));
    report.aux("latency", "hit_p99_us", percentile(hit_us, 0.99));
    report.aux("latency", "speedup_p50", speedup);
    report.write();

    if (byte_mismatches != 0 || non_200 != 0) {
        std::fprintf(stderr, "bench_serve: FAILED byte-identity check\n");
        return 1;
    }
    if (speedup < 100.0) {
        std::fprintf(stderr,
                     "bench_serve: cache-hit p50 speedup %.1fx is below "
                     "the 100x acceptance threshold\n",
                     speedup);
        return 1;
    }
    return 0;
}
