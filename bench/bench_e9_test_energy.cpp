// E9 -- "Test energy share" (reconstructed from the TC'16 extension's
// claim: testing consumes about 2% of the actually consumed power while
// keeping the throughput penalty below 1%).

#include <cstdio>

#include "bench_common.hpp"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("E9: test energy share",
                 "testing costs ~2% of consumed energy and < 1% throughput");

    const int kSeeds = seeds(opt, 3);
    const SimDuration kHorizon = horizon(opt, 10.0, 1.0);
    BenchReport report("e9_test_energy", opt);
    TablePrinter table({"occupancy", "test energy share", "busy energy",
                        "idle energy", "NoC energy", "penalty",
                        "tests/core/s"});
    for (double occ : {0.3, 0.5, 0.7, 0.9}) {
        SystemConfig none = base_config(59);
        set_occupancy(none, occ);
        none.scheduler = SchedulerKind::None;
        const double baseline = replicate(none, kSeeds, kHorizon)
                                    .mean(&RunMetrics::work_cycles_per_s);

        SystemConfig cfg = base_config(59);
        set_occupancy(cfg, occ);
        const Replicates r = replicate(cfg, kSeeds, kHorizon);
        const double total = r.mean(&RunMetrics::energy_total_j);
        report.metric("test_energy_share.occ" + fmt(occ, 1),
                      r.mean(&RunMetrics::test_energy_share));
        report.metric("penalty.occ" + fmt(occ, 1),
                      1.0 - r.mean(&RunMetrics::work_cycles_per_s) / baseline);
        table.add_row(
            {fmt(occ, 1), fmt_pct(r.mean(&RunMetrics::test_energy_share)),
             fmt_pct(r.mean(&RunMetrics::energy_busy_j) / total, 1),
             fmt_pct(r.mean(&RunMetrics::energy_idle_j) / total, 1),
             fmt_pct(r.mean(&RunMetrics::energy_noc_j) / total, 1),
             fmt_pct(1.0 - r.mean(&RunMetrics::work_cycles_per_s) / baseline),
             fmt(r.mean(&RunMetrics::tests_per_core_per_s), 2)});
    }
    std::printf("%s\n", table.to_string().c_str());
    report.write();
    return 0;
}
