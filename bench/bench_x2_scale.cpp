// X2 -- extension: does the scheme scale with core count?
//
// The paper family evaluates 8x8 .. 12x12 chips. Scaling the chip at a
// fixed occupancy multiplies the mapping-event rate while a test session's
// length stays constant, so the chance that an idle core survives a session
// untouched falls -- with abortable sessions the scheduler degenerates into
// start/abort churn. Making sessions atomic (the mapper must briefly wait
// for, or route around, a testing core) restores coverage at negligible
// throughput cost. This experiment quantifies both policies across sizes,
// as a (side x session-policy) campaign grid (pass jobs=N to parallelize).

#include <cstdio>

#include "bench_common.hpp"
#include "runner/campaign_runner.hpp"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("X2 (extension): scaling the chip",
                 "abortable sessions churn on large chips; atomic sessions "
                 "keep full test coverage at the same throughput");

    const std::vector<std::string> sides =
        opt.quick ? std::vector<std::string>{"4", "8"}
                  : std::vector<std::string>{"4", "8", "12", "16"};
    const std::vector<std::string> sessions{"abortable", "atomic",
                                            "segmented"};
    CampaignSpec spec;
    spec.base.set("node", "16nm");
    spec.base.set("occupancy", "0.9");
    spec.axes = {{"side", sides}, {"sessions", sessions}};
    spec.replicas = 1;
    spec.campaign_seed = 89;
    spec.seconds = opt.quick ? 1.0 : 8.0;

    CampaignRunner runner(std::move(spec));
    const CampaignResult res = runner.run(opt.jobs);
    for (const ReplicaResult& r : res.replicas) {
        if (!r.ok) {
            std::fprintf(stderr, "replica failed: %s\n", r.error.c_str());
            return 1;
        }
    }

    BenchReport report("x2_scale", opt);
    TablePrinter table({"chip", "sessions", "work Gcycles/s",
                        "tests/core/s", "untested cores", "max gap [s]",
                        "aborted", "TDP viol."});
    for (std::size_t i = 0; i < sides.size(); ++i) {
        for (std::size_t v = 0; v < sessions.size(); ++v) {
            const RunMetrics& m =
                res.cell(i * sessions.size() + v)[0].metrics;
            report.metric("untested_fraction." + sessions[v] + "." +
                              sides[i] + "x" + sides[i],
                          m.untested_core_fraction);
            table.add_row({sides[i] + "x" + sides[i], sessions[v],
                           fmt(m.work_cycles_per_s / 1e9, 2),
                           fmt(m.tests_per_core_per_s, 2),
                           fmt_pct(m.untested_core_fraction, 1),
                           fmt(m.max_open_test_gap_s, 2),
                           fmt(m.tests_aborted),
                           fmt_pct(m.tdp_violation_rate, 3)});
        }
        table.add_separator();
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("note: same occupancy (0.9) at every size; 'atomic' makes "
                "the mapper treat testing cores as busy for the ~3 ms "
                "session instead of aborting them.\n");
    std::printf("campaign: %zu runs in %.1f s wall\n", res.replicas.size(),
                res.wall_seconds);
    report.write();
    return 0;
}
