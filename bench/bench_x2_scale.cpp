// X2 -- extension: does the scheme scale with core count?
//
// The paper family evaluates 8x8 .. 12x12 chips. Scaling the chip at a
// fixed occupancy multiplies the mapping-event rate while a test session's
// length stays constant, so the chance that an idle core survives a session
// untouched falls -- with abortable sessions the scheduler degenerates into
// start/abort churn. Making sessions atomic (the mapper must briefly wait
// for, or route around, a testing core) restores coverage at negligible
// throughput cost. This experiment quantifies both policies across sizes.

#include <cstdio>

#include "bench_common.hpp"

using namespace mcs;
using namespace mcs::bench;

int main() {
    print_header("X2 (extension): scaling the chip",
                 "abortable sessions churn on large chips; atomic sessions "
                 "keep full test coverage at the same throughput");

    constexpr SimDuration kHorizon = 8 * kSecond;

    TablePrinter table({"chip", "sessions", "work Gcycles/s",
                        "tests/core/s", "untested cores", "max gap [s]",
                        "aborted", "TDP viol."});
    for (int side : {4, 8, 12, 16}) {
        for (int variant = 0; variant < 3; ++variant) {
            SystemConfig cfg = base_config(89);
            cfg.width = side;
            cfg.height = side;
            cfg.abort_tests_for_mapping = variant != 1;
            cfg.segmented_tests = variant == 2;
            set_occupancy(cfg, 0.9);
            const RunMetrics m = run_one(std::move(cfg), kHorizon);
            table.add_row(
                {fmt(static_cast<std::int64_t>(side)) + "x" +
                     fmt(static_cast<std::int64_t>(side)),
                 variant == 0   ? "abortable"
                 : variant == 1 ? "atomic"
                                : "segmented",
                 fmt(m.work_cycles_per_s / 1e9, 2),
                 fmt(m.tests_per_core_per_s, 2),
                 fmt_pct(m.untested_core_fraction, 1),
                 fmt(m.max_open_test_gap_s, 2), fmt(m.tests_aborted),
                 fmt_pct(m.tdp_violation_rate, 3)});
        }
        table.add_separator();
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("note: same occupancy (0.9) at every size; 'atomic' makes "
                "the mapper treat testing cores as busy for the ~3 ms "
                "session instead of aborting them.\n");
    return 0;
}
