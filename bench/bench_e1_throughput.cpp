// E1 -- "Throughput vs injection rate" (reconstructed Fig.).
//
// Claim under test: the power-aware online test scheduler (PA-OTS) costs
// less than 1% system throughput at 16 nm across load levels, while
// power-oblivious testing (periodic / greedy) costs noticeably more under
// load or violates the power budget.
//
// Output: one row per (occupancy, scheduler) with throughput normalized to
// the no-test run of the same seeds.

#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace mcs;
using namespace mcs::bench;

int main() {
    print_header("E1: throughput vs injection rate",
                 "PA-OTS throughput penalty < 1%; power-oblivious testing "
                 "costs more under load");

    constexpr int kSeeds = 3;
    constexpr SimDuration kHorizon = 8 * kSecond;
    const std::vector<double> occupancies{0.3, 0.5, 0.7, 0.9, 1.1};
    const std::vector<SchedulerKind> schedulers{
        SchedulerKind::None, SchedulerKind::PowerAware,
        SchedulerKind::Periodic, SchedulerKind::Greedy};

    TablePrinter table({"occupancy", "scheduler", "work Gcycles/s",
                        "norm. throughput", "penalty", "tests/core/s",
                        "TDP viol."});
    for (double occ : occupancies) {
        std::map<SchedulerKind, Replicates> results;
        for (SchedulerKind sched : schedulers) {
            SystemConfig cfg = base_config();
            set_occupancy(cfg, occ);
            cfg.scheduler = sched;
            results.emplace(sched, replicate(cfg, kSeeds, kHorizon));
        }
        const double baseline =
            results.at(SchedulerKind::None).mean(&RunMetrics::work_cycles_per_s);
        for (SchedulerKind sched : schedulers) {
            const Replicates& r = results.at(sched);
            const double work = r.mean(&RunMetrics::work_cycles_per_s);
            const double norm = work / baseline;
            table.add_row({fmt(occ, 1), to_string(sched), fmt(work / 1e9, 2),
                           fmt(norm, 4), fmt_pct(1.0 - norm),
                           fmt(r.mean(&RunMetrics::tests_per_core_per_s), 2),
                           fmt_pct(r.mean(&RunMetrics::tdp_violation_rate),
                                   3)});
        }
        table.add_separator();
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("note: 'penalty' is relative to the no-test run of the same "
                "seeds; negative values are seed noise.\n");
    return 0;
}
