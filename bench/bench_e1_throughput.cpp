// E1 -- "Throughput vs injection rate" (reconstructed Fig.).
//
// Claim under test: the power-aware online test scheduler (PA-OTS) costs
// less than 1% system throughput at 16 nm across load levels, while
// power-oblivious testing (periodic / greedy) costs noticeably more under
// load or violates the power budget.
//
// Output: one row per (occupancy, scheduler) with throughput normalized to
// the no-test run of the same seeds. The (occupancy x scheduler x seed)
// grid runs through the campaign runner: pass jobs=N to parallelize
// (results are identical for any N).

#include <cstdio>

#include "bench_common.hpp"
#include "runner/campaign_runner.hpp"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("E1: throughput vs injection rate",
                 "PA-OTS throughput penalty < 1%; power-oblivious testing "
                 "costs more under load");

    const std::vector<std::string> occupancies =
        opt.quick ? std::vector<std::string>{"0.5", "0.9"}
                  : std::vector<std::string>{"0.3", "0.5", "0.7", "0.9",
                                             "1.1"};
    const std::vector<std::string> schedulers{"none", "power-aware",
                                              "periodic", "greedy"};
    CampaignSpec spec;
    spec.base.set("width", "8");
    spec.base.set("height", "8");
    spec.base.set("node", "16nm");
    spec.axes = {{"occupancy", occupancies}, {"scheduler", schedulers}};
    spec.replicas = seeds(opt, 3);
    spec.campaign_seed = 1;
    spec.seconds = opt.quick ? 1.0 : 8.0;

    CampaignRunner runner(std::move(spec));
    const CampaignResult res = runner.run(opt.jobs);
    BenchReport report("e1_throughput", opt);

    TablePrinter table({"occupancy", "scheduler", "work Gcycles/s",
                        "norm. throughput", "penalty", "tests/core/s",
                        "TDP viol."});
    for (std::size_t o = 0; o < occupancies.size(); ++o) {
        // Cell order: occupancy outer, scheduler inner (last axis fastest);
        // schedulers[0] is the no-test baseline of this occupancy.
        const std::size_t base_cell = o * schedulers.size();
        const double baseline = res.cell_mean(
            base_cell,
            [](const RunMetrics& m) { return m.work_cycles_per_s; });
        for (std::size_t s = 0; s < schedulers.size(); ++s) {
            const std::size_t c = base_cell + s;
            const double work = res.cell_mean(
                c, [](const RunMetrics& m) { return m.work_cycles_per_s; });
            const double norm = work / baseline;
            report.metric("norm_throughput." + schedulers[s] + ".occ" +
                              occupancies[o],
                          norm);
            table.add_row(
                {occupancies[o], schedulers[s], fmt(work / 1e9, 2),
                 fmt(norm, 4), fmt_pct(1.0 - norm),
                 fmt(res.cell_mean(c,
                                   [](const RunMetrics& m) {
                                       return m.tests_per_core_per_s;
                                   }),
                     2),
                 fmt_pct(res.cell_mean(c,
                                       [](const RunMetrics& m) {
                                           return m.tdp_violation_rate;
                                       }),
                         3)});
        }
        table.add_separator();
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("note: 'penalty' is relative to the no-test run of the same "
                "seeds; negative values are seed noise.\n");
    std::printf("campaign: %zu runs in %.1f s wall\n", res.replicas.size(),
                res.wall_seconds);
    report.write();
    return res.failed_count() == 0 ? 0 : 1;
}
