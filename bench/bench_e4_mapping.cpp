// E4 -- "Mapping policy comparison" (reconstructed Table).
//
// Claim under test: the test-aware utilization-oriented mapper (TAUM)
// bounds the worst-case test starvation (max open gap, aborted tests) at
// equal workload throughput, compared to mapping policies that ignore test
// state.

#include <cstdio>

#include "bench_common.hpp"
#include "core/workload_engine.hpp"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("E4: runtime mapping policies",
                 "test-aware mapping bounds worst-case test intervals at the "
                 "same throughput");

    const int kSeeds = seeds(opt, 3);
    const SimDuration kHorizon = horizon(opt, 10.0, 1.0);
    BenchReport report("e4_mapping", opt);
    const std::vector<MapperKind> mappers{
        MapperKind::TestAware, MapperKind::UtilizationOriented,
        MapperKind::Contiguous, MapperKind::FirstFit, MapperKind::Random};

    TablePrinter table({"mapper", "work Gcycles/s", "dispersion [hops]",
                        "NoC peak util", "tests/core/s", "max open gap [s]",
                        "aborted tests", "damage imbalance"});
    for (MapperKind mapper : mappers) {
        SystemConfig cfg = base_config(31);
        set_occupancy(cfg, 0.8);
        cfg.mapper = mapper;
        const Replicates r = replicate(cfg, kSeeds, kHorizon);
        double dispersion = 0.0;
        for (const auto& run : r.runs) {
            dispersion += run.mapping_dispersion_hops.mean();
        }
        dispersion /= static_cast<double>(r.runs.size());
        const std::string key(to_string(mapper));
        report.metric("work_gcycles_per_s." + key,
                      r.mean(&RunMetrics::work_cycles_per_s) / 1e9);
        report.metric("max_open_gap_s." + key,
                      r.mean(&RunMetrics::max_open_test_gap_s));
        table.add_row(
            {std::string(to_string(mapper)),
             fmt(r.mean(&RunMetrics::work_cycles_per_s) / 1e9, 2),
             fmt(dispersion, 2),
             fmt(r.mean(&RunMetrics::noc_peak_utilization), 3),
             fmt(r.mean(&RunMetrics::tests_per_core_per_s), 2),
             fmt(r.mean(&RunMetrics::max_open_test_gap_s), 2),
             fmt(r.mean_u64(&RunMetrics::tests_aborted), 0),
             fmt(r.mean(&RunMetrics::damage_imbalance), 2)});
    }
    std::printf("%s\n", table.to_string().c_str());

    // Mapping hot-path cost, printed for inspection only (deliberately not
    // a report metric: the scan counters are implementation telemetry, not
    // a reconstructed-paper quantity). One chip scan per mapping round is
    // the view-cache invariant; attempts > scans shows rounds that served
    // several queued applications off a single scan.
    {
        SystemConfig cfg = base_config(31);
        set_occupancy(cfg, 0.8);
        cfg.mapper = MapperKind::TestAware;
        ManycoreSystem sys(std::move(cfg));
        sys.run(kHorizon);
        const WorkloadEngine& we = sys.workload_engine();
        std::printf(
            "mapping hot path (TAUM, occupancy 0.8): %llu chip scans / "
            "%llu rounds / %llu mapper attempts (%.2f attempts per scan)\n\n",
            static_cast<unsigned long long>(we.chip_scans()),
            static_cast<unsigned long long>(we.mapping_rounds()),
            static_cast<unsigned long long>(we.mapping_attempts()),
            we.chip_scans() ? static_cast<double>(we.mapping_attempts()) /
                                  static_cast<double>(we.chip_scans())
                            : 0.0);
    }
    report.write();
    return 0;
}
