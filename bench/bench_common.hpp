#pragma once

// Shared support for the experiment harness (bench/bench_e*.cpp). Each
// experiment binary regenerates one table/figure of the paper's evaluation;
// see DESIGN.md section 3 for the experiment index and EXPERIMENTS.md for
// measured results.

#include <cstdio>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

namespace mcs::bench {

/// Worker-thread count for campaign-based experiments: `jobs=N` on the
/// command line, 0 (= hardware concurrency) otherwise.
inline int parse_jobs(int argc, char** argv) {
    const Config cfg = Config::from_args(std::span<const char* const>(
        argv + 1, static_cast<std::size_t>(argc - 1)));
    return static_cast<int>(cfg.get_int("jobs", 0));
}

/// Standard evaluation platform: 8x8 mesh at 16 nm (the paper's headline
/// configuration).
inline SystemConfig base_config(std::uint64_t seed = 1) {
    SystemConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.node = TechNode::nm16;
    cfg.seed = seed;
    return cfg;
}

/// Sets the Poisson arrival rate so mapped applications reserve
/// `occupancy` of all core-time.
inline void set_occupancy(SystemConfig& cfg, double occupancy) {
    const double capacity = static_cast<double>(cfg.width) *
                            static_cast<double>(cfg.height) *
                            technology(cfg.node).max_freq_hz;
    cfg.workload.arrival_rate_hz =
        rate_for_occupancy(occupancy, cfg.workload.graphs, capacity);
}

/// Runs one configuration for `horizon` and returns its metrics.
inline RunMetrics run_one(SystemConfig cfg, SimDuration horizon) {
    ManycoreSystem sys(std::move(cfg));
    return sys.run(horizon);
}

/// Metrics averaged across seed replicates (each seed = an independent
/// workload trace; schedulers compared at the same seed see identical
/// arrivals).
struct Replicates {
    std::vector<RunMetrics> runs;

    double mean(double RunMetrics::* field) const {
        double sum = 0.0;
        for (const auto& r : runs) {
            sum += r.*field;
        }
        return sum / static_cast<double>(runs.size());
    }
    double mean_u64(std::uint64_t RunMetrics::* field) const {
        double sum = 0.0;
        for (const auto& r : runs) {
            sum += static_cast<double>(r.*field);
        }
        return sum / static_cast<double>(runs.size());
    }
};

/// Runs `seeds` replicates of a configuration template; `tweak` is applied
/// after the seed is set (so it can depend on it).
template <typename Tweak>
Replicates replicate(const SystemConfig& base, int seeds, SimDuration horizon,
                     Tweak&& tweak) {
    Replicates out;
    for (int s = 0; s < seeds; ++s) {
        SystemConfig cfg = base;
        cfg.seed = base.seed + static_cast<std::uint64_t>(s) * 7919;
        tweak(cfg);
        out.runs.push_back(run_one(std::move(cfg), horizon)); // NOLINT
    }
    return out;
}

inline Replicates replicate(const SystemConfig& base, int seeds,
                            SimDuration horizon) {
    return replicate(base, seeds, horizon, [](SystemConfig&) {});
}

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
    std::printf("\n=== %s ===\n", experiment.c_str());
    std::printf("reconstructed claim: %s\n\n", claim.c_str());
}

}  // namespace mcs::bench
