#pragma once

// Shared support for the experiment harness (bench/bench_e*.cpp). Each
// experiment binary regenerates one table/figure of the paper's evaluation;
// see DESIGN.md section 3 for the experiment index and EXPERIMENTS.md for
// measured results.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "telemetry/json.hpp"
#include "telemetry/schema.hpp"
#include "util/config.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace mcs::bench {

/// Command-line options shared by every experiment binary:
///   jobs=N / --jobs N      worker threads for campaign experiments
///   quick=true / --quick   CI smoke mode: 1 seed, short horizons
///   out_dir=D / --out-dir  directory for all outputs (default build/out)
struct BenchOptions {
    int jobs = 0;
    bool quick = false;
    std::string out_dir = "build/out";
};

inline BenchOptions parse_options(int argc, char** argv) {
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick" || arg == "quick=true") {
            opt.quick = true;
        } else if (arg == "--jobs" && i + 1 < argc) {
            opt.jobs = std::atoi(argv[++i]);
        } else if (arg.rfind("jobs=", 0) == 0) {
            opt.jobs = std::atoi(arg.c_str() + 5);
        } else if (arg == "--out-dir" && i + 1 < argc) {
            opt.out_dir = argv[++i];
        } else if (arg.rfind("out_dir=", 0) == 0) {
            opt.out_dir = arg.substr(8);
        }
    }
    return opt;
}

/// Worker-thread count for campaign-based experiments: `jobs=N` on the
/// command line, 0 (= hardware concurrency) otherwise.
inline int parse_jobs(int argc, char** argv) {
    return parse_options(argc, argv).jobs;
}

/// Seed replicates: `full` normally, 1 in --quick mode.
inline int seeds(const BenchOptions& opt, int full) {
    return opt.quick ? 1 : full;
}

/// Simulation horizon: `full_s` normally, `quick_s` in --quick mode.
inline SimDuration horizon(const BenchOptions& opt, double full_s,
                           double quick_s = 1.0) {
    return from_seconds(opt.quick ? quick_s : full_s);
}

/// Routes a relative output path through opt.out_dir (created on demand);
/// absolute paths pass through untouched.
inline std::string out_path(const BenchOptions& opt,
                            const std::string& filename) {
    if (opt.out_dir.empty() || opt.out_dir == "." ||
        std::filesystem::path(filename).is_absolute()) {
        return filename;
    }
    std::filesystem::create_directories(opt.out_dir);
    return (std::filesystem::path(opt.out_dir) / filename).string();
}

/// Machine-readable experiment result: headline metrics keyed by name plus
/// the wall time, written as BENCH_<name>.json into opt.out_dir. The
/// "metrics" member is byte-deterministic for a fixed seed (sorted keys,
/// shortest round-trip numbers); "wall_s" is the only wall-clock field and
/// the perf-regression gate (tools/check_bench.py) treats it separately.
class BenchReport {
public:
    BenchReport(std::string name, const BenchOptions& opt)
        : name_(std::move(name)),
          opt_(opt),
          start_(std::chrono::steady_clock::now()) {}

    void metric(const std::string& key, double value) {
        metrics_[key] = value;
    }

    /// Adds a value to a named sibling section of "metrics" (e.g.
    /// "latency"). Auxiliary sections are for wall-clock-derived numbers:
    /// the perf-regression gate (tools/check_bench.py) compares only
    /// "metrics" (blocking, 1e-6) and "wall_s" (advisory), so data here is
    /// recorded without ever tripping the determinism comparison.
    void aux(const std::string& section, const std::string& key,
             double value) {
        aux_[section][key] = value;
    }

    /// Writes BENCH_<name>.json and prints its path. Call once, last.
    void write() {
        const double wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_)
                .count();
        const std::string path = out_path(opt_, "BENCH_" + name_ + ".json");
        std::ofstream out(path, std::ios::binary);
        MCS_REQUIRE(out.is_open(), "cannot open bench report: " + path);
        telemetry::JsonWriter w(out);
        w.begin_object();
        w.field("schema", telemetry::schema_tag("mcs.bench_report"));
        w.field("bench", name_);
        w.field("quick", opt_.quick);
        w.key("metrics");
        w.begin_object();
        for (const auto& [key, value] : metrics_) {
            w.field(key, value);
        }
        w.end_object();
        for (const auto& [section, values] : aux_) {
            w.key(section);
            w.begin_object();
            for (const auto& [key, value] : values) {
                w.field(key, value);
            }
            w.end_object();
        }
        w.field("wall_s", wall_s);
        w.end_object();
        out << '\n';
        MCS_REQUIRE(out.good(), "write failed: " + path);
        std::printf("bench report written to %s\n", path.c_str());
    }

private:
    std::string name_;
    BenchOptions opt_;
    std::chrono::steady_clock::time_point start_;
    std::map<std::string, double> metrics_;
    std::map<std::string, std::map<std::string, double>> aux_;
};

/// Standard evaluation platform: 8x8 mesh at 16 nm (the paper's headline
/// configuration).
inline SystemConfig base_config(std::uint64_t seed = 1) {
    SystemConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.node = TechNode::nm16;
    cfg.seed = seed;
    return cfg;
}

/// Sets the Poisson arrival rate so mapped applications reserve
/// `occupancy` of all core-time.
inline void set_occupancy(SystemConfig& cfg, double occupancy) {
    const double capacity = static_cast<double>(cfg.width) *
                            static_cast<double>(cfg.height) *
                            technology(cfg.node).max_freq_hz;
    cfg.workload.arrival_rate_hz =
        rate_for_occupancy(occupancy, cfg.workload.graphs, capacity);
}

/// Runs one configuration for `horizon` and returns its metrics.
inline RunMetrics run_one(SystemConfig cfg, SimDuration horizon) {
    ManycoreSystem sys(std::move(cfg));
    return sys.run(horizon);
}

/// Metrics averaged across seed replicates (each seed = an independent
/// workload trace; schedulers compared at the same seed see identical
/// arrivals).
struct Replicates {
    std::vector<RunMetrics> runs;

    double mean(double RunMetrics::* field) const {
        double sum = 0.0;
        for (const auto& r : runs) {
            sum += r.*field;
        }
        return sum / static_cast<double>(runs.size());
    }
    double mean_u64(std::uint64_t RunMetrics::* field) const {
        double sum = 0.0;
        for (const auto& r : runs) {
            sum += static_cast<double>(r.*field);
        }
        return sum / static_cast<double>(runs.size());
    }
};

/// Runs `seeds` replicates of a configuration template; `tweak` is applied
/// after the seed is set (so it can depend on it).
template <typename Tweak>
Replicates replicate(const SystemConfig& base, int seeds, SimDuration horizon,
                     Tweak&& tweak) {
    Replicates out;
    for (int s = 0; s < seeds; ++s) {
        SystemConfig cfg = base;
        cfg.seed = base.seed + static_cast<std::uint64_t>(s) * 7919;
        tweak(cfg);
        out.runs.push_back(run_one(std::move(cfg), horizon)); // NOLINT
    }
    return out;
}

inline Replicates replicate(const SystemConfig& base, int seeds,
                            SimDuration horizon) {
    return replicate(base, seeds, horizon, [](SystemConfig&) {});
}

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
    std::printf("\n=== %s ===\n", experiment.c_str());
    std::printf("reconstructed claim: %s\n\n", claim.c_str());
}

}  // namespace mcs::bench
