// E6 -- "Power-aware vs power-oblivious test admission" (reconstructed
// Table).
//
// Claim under test: admitting tests only within the instantaneous budget
// slack keeps TDP violations at the no-test baseline level, while
// power-oblivious scheduling violates the cap and/or steals workload
// throughput.

#include <cstdio>

#include "bench_common.hpp"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("E6: power-aware vs power-oblivious admission",
                 "power-aware admission adds zero TDP violations; oblivious "
                 "testing violates the cap or costs throughput");

    const int kSeeds = seeds(opt, 3);
    const SimDuration kHorizon = horizon(opt, 10.0, 1.0);
    BenchReport report("e6_power_aware", opt);
    const std::vector<SchedulerKind> schedulers{
        SchedulerKind::None, SchedulerKind::PowerAware,
        SchedulerKind::Periodic, SchedulerKind::Greedy};

    SystemConfig ref = base_config(41);
    set_occupancy(ref, 1.0);
    ref.scheduler = SchedulerKind::None;
    const double baseline =
        replicate(ref, kSeeds, kHorizon).mean(&RunMetrics::work_cycles_per_s);

    TablePrinter table({"scheduler", "TDP viol.", "worst overshoot [W]",
                        "max power [W]", "penalty", "tests/core/s",
                        "test energy"});
    for (SchedulerKind sched : schedulers) {
        SystemConfig cfg = base_config(41);
        set_occupancy(cfg, 1.0);
        cfg.scheduler = sched;
        const Replicates r = replicate(cfg, kSeeds, kHorizon);
        const std::string key(to_string(sched));
        report.metric("tdp_violation_rate." + key,
                      r.mean(&RunMetrics::tdp_violation_rate));
        report.metric("penalty." + key,
                      1.0 - r.mean(&RunMetrics::work_cycles_per_s) /
                                baseline);
        table.add_row(
            {std::string(to_string(sched)),
             fmt_pct(r.mean(&RunMetrics::tdp_violation_rate), 3),
             fmt(r.mean(&RunMetrics::worst_overshoot_w), 2),
             fmt(r.mean(&RunMetrics::max_power_w), 1),
             fmt_pct(1.0 - r.mean(&RunMetrics::work_cycles_per_s) / baseline),
             fmt(r.mean(&RunMetrics::tests_per_core_per_s), 2),
             fmt_pct(r.mean(&RunMetrics::test_energy_share))});
    }
    std::printf("%s\n", table.to_string().c_str());
    report.write();
    return 0;
}
