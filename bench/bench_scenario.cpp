// bench_scenario -- scenario corpus replay: byte identity + replay cost.
//
// Replays every committed scenario (examples/scenarios/) on the headline
// 8x8 platform through the ScenarioPlayer, three legs per scenario:
// serial (epoch_workers=1), sharded (epoch_workers=4), and -- for the
// heaviest scenario -- a checkpoint-mid-scenario restore. The report
// separates the populations:
//
//   metrics   -- deterministic per-scenario counters and the byte-identity
//                verdicts, gated by tools/check_bench.py (1 = identical)
//   replay    -- wall-clock seconds per scenario (auxiliary, never gated)
//
// The claim this regenerates: a declarative scenario is pure replay --
// byte-identical across worker counts and through a mid-scenario snapshot
// (docs/scenarios.md), so stress campaigns inherit the determinism
// contract unchanged.

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "core/system.hpp"
#include "core/system_factory.hpp"
#include "scenario/scenario_player.hpp"
#include "scenario/scenario_spec.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/tracer.hpp"

namespace {

using mcs::bench::BenchOptions;
using mcs::bench::BenchReport;

const char* const kCorpus[] = {
    "burst_at_budget_edge", "abort_cascade",     "budget_cut",
    "vf_throttle_step",     "wear_acceleration", "combined_stress",
};

/// Corpus directives all fire by 1.5 s.
constexpr mcs::SimDuration kHorizon = 1600 * mcs::kMillisecond;

struct Leg {
    mcs::RunMetrics metrics;
    std::string report;
    std::string trace;
    double wall_s = 0.0;
};

mcs::SystemConfig platform() {
    mcs::SystemConfig cfg = mcs::bench::base_config(1);
    mcs::bench::set_occupancy(cfg, 0.4);
    cfg.enable_fault_injection = true;
    return cfg;
}

Leg run_leg(const mcs::ScenarioSpec& spec, int workers,
            const std::string& checkpoint_path = "",
            const std::string& restore_path = "") {
    mcs::SystemConfig cfg = platform();
    cfg.epoch_workers = workers;
    Leg leg;
    const auto start = std::chrono::steady_clock::now();
    mcs::ManycoreSystem sys(cfg);
    mcs::telemetry::Tracer tracer(1 << 15);
    sys.set_tracer(&tracer);
    sys.attach_scenario(std::make_unique<mcs::ScenarioPlayer>(spec));
    if (!restore_path.empty()) {
        sys.restore(mcs::load_snapshot_file(restore_path));
        leg.metrics = sys.run(sys.restored_horizon());
    } else {
        if (!checkpoint_path.empty()) {
            sys.checkpoint_at(800 * mcs::kMillisecond, checkpoint_path);
        }
        leg.metrics = sys.run(kHorizon);
    }
    leg.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    {
        std::ostringstream os;
        mcs::telemetry::write_run_report(leg.metrics, &sys.registry(), os);
        leg.report = os.str();
    }
    {
        std::ostringstream os;
        tracer.write_chrome_json(os);
        leg.trace = os.str();
    }
    return leg;
}

}  // namespace

int main(int argc, char** argv) {
    const BenchOptions opt = mcs::bench::parse_options(argc, argv);
    // Corpus location: scenario_dir=<path> overrides the repo-root default.
    std::string dir = "examples/scenarios";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("scenario_dir=", 0) == 0) {
            dir = arg.substr(13);
        }
    }
    mcs::bench::print_header(
        "scenario corpus replay",
        "every committed scenario replays byte-identically across "
        "epoch_workers counts and through a mid-scenario checkpoint");
    BenchReport report("scenario", opt);

    bool all_ok = true;
    for (const char* name : kCorpus) {
        const mcs::ScenarioSpec spec =
            mcs::load_scenario_file(dir + "/" + std::string(name) + ".json");
        const Leg serial = run_leg(spec, 1);
        const Leg sharded = run_leg(spec, 4);
        const bool identical = serial.report == sharded.report &&
                               serial.trace == sharded.trace;
        all_ok = all_ok && identical;
        const std::string key = spec.name;
        report.metric(key + ".replay_identical", identical ? 1.0 : 0.0);
        report.metric(key + ".apps_completed",
                      static_cast<double>(serial.metrics.apps_completed));
        report.metric(key + ".tests_completed",
                      static_cast<double>(serial.metrics.tests_completed));
        report.aux("replay", key + ".wall_s", serial.wall_s);
        std::printf("%-24s %s  (%.3f s serial, %.3f s sharded)\n",
                    name, identical ? "IDENTICAL" : "DRIFTED",
                    serial.wall_s, sharded.wall_s);
    }

    // Checkpoint-mid-scenario restore on the heaviest scenario: the
    // restored continuation must finish on the uninterrupted bytes.
    {
        const mcs::ScenarioSpec spec =
            mcs::load_scenario_file(dir + "/combined_stress.json");
        const std::string snap =
            mcs::bench::out_path(opt, "scenario_mid.json");
        const Leg fresh = run_leg(spec, 1);
        const Leg interrupted = run_leg(spec, 1, snap);
        const Leg restored = run_leg(spec, 1, "", snap);
        const bool identical = interrupted.report == fresh.report &&
                               restored.report == fresh.report &&
                               restored.trace == fresh.trace;
        all_ok = all_ok && identical;
        report.metric("restore_identical", identical ? 1.0 : 0.0);
        std::printf("%-24s %s\n", "checkpoint/restore",
                    identical ? "IDENTICAL" : "DRIFTED");
        std::remove(snap.c_str());
    }

    report.write();
    if (!all_ok) {
        std::fprintf(stderr,
                     "FAIL: scenario replay drifted across legs\n");
        return 1;
    }
    return 0;
}
