// X4 -- extension: online testing of the interconnect itself.
//
// The paper tests cores; the NoC ages too, and a silently faulty link
// corrupts traffic until caught. This experiment enables link wear and
// compares: no link testing vs link tests scheduled in idle link windows
// under the same power budget as the core tests. Reported: corrupted
// messages, detection latency, and that the power story is untouched.

#include <cstdio>

#include "bench_common.hpp"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("X4 (extension): NoC link online testing",
                 "idle-window link tests bound corruption exposure under "
                 "the same power budget");

    const int kSeeds = seeds(opt, 3);
    const SimDuration kHorizon = horizon(opt, 10.0, 1.5);
    BenchReport report("x4_noc_test", opt);
    TablePrinter table({"occupancy", "testing", "link tests",
                        "faults det/inj", "mean det. latency [s]",
                        "corrupted msgs", "TDP viol."});
    for (double occ : {0.4, 0.8}) {
        for (bool testing : {false, true}) {
            std::uint64_t tests = 0, det = 0, inj = 0, corrupted = 0;
            RunningStats latency, viol;
            for (int s = 0; s < kSeeds; ++s) {
                SystemConfig cfg = base_config(101 + static_cast<unsigned>(s));
                set_occupancy(cfg, occ);
                cfg.enable_noc_testing = true;
                cfg.noc_test.fault_rate_per_link_s = 0.02;
                if (!testing) {
                    // Wear happens but no test sessions are ever due.
                    cfg.noc_test.test_period_target = 3600 * kSecond;
                }
                const RunMetrics m = run_one(std::move(cfg), kHorizon);
                tests += m.link_tests_completed;
                det += m.link_faults_detected;
                inj += m.link_faults_injected;
                corrupted += m.corrupted_messages;
                if (m.link_detection_latency_s.count() > 0) {
                    latency.add(m.link_detection_latency_s.mean());
                }
                viol.add(m.tdp_violation_rate);
            }
            const std::string key =
                std::string(testing ? "on" : "off") + ".occ" + fmt(occ, 1);
            report.metric("link_tests." + key, static_cast<double>(tests));
            report.metric("corrupted_msgs." + key,
                          static_cast<double>(corrupted));
            table.add_row(
                {fmt(occ, 1), testing ? "on" : "off", fmt(tests),
                 fmt(det) + "/" + fmt(inj),
                 latency.count() ? fmt(latency.mean(), 2) : "-",
                 fmt(corrupted), fmt_pct(viol.mean(), 3)});
        }
        table.add_separator();
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("note: link wear is enabled in both rows; 'off' never "
                "schedules sessions, so faults persist and corrupt "
                "traffic.\n");
    report.write();
    return 0;
}
