// E5 -- "Technology node sweep" (reconstructed Table I).
//
// Claims under test:
//  (a) dark/dim silicon grows as the node shrinks: under a compute-bound
//      saturating load, the fraction of peak chip compute that the power
//      budget can sustain falls toward 16 nm (the utilization wall);
//  (b) at every node the power-aware online test scheduler rides the
//      TDP gap without violations, and at 16 nm its throughput penalty
//      stays below 1%.

#include <cstdio>

#include "bench_common.hpp"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("E5: technology nodes 45/32/22/16 nm",
                 "dark silicon grows with scaling; PA-OTS penalty < 1% at "
                 "16 nm");

    const int kSeeds = seeds(opt, 3);
    const SimDuration kHorizon = horizon(opt, 8.0, 1.0);
    BenchReport report("e5_technology", opt);
    const std::vector<TechNode> nodes{TechNode::nm45, TechNode::nm32,
                                      TechNode::nm22, TechNode::nm16};

    // (a) Utilization wall: independent single-task apps saturate every
    // core, so the power cap alone decides how much of the chip stays lit.
    TablePrinter wall({"node", "TDP [W]", "peak/TDP", "sustained/peak",
                       "mean power [W]", "TDP viol."});
    for (TechNode node : nodes) {
        SystemConfig cfg = base_config(37);
        cfg.node = node;
        cfg.scheduler = SchedulerKind::None;
        cfg.workload.graphs.min_tasks = 1;
        cfg.workload.graphs.max_tasks = 1;
        set_occupancy(cfg, 1.3);
        const Replicates r = replicate(cfg, kSeeds, kHorizon);
        const auto& tech = technology(node);
        const double peak_over_tdp =
            tech.core_peak_power_w() * 64.0 / tech.chip_tdp_w(64);
        const double sustained = r.mean(&RunMetrics::work_cycles_per_s) /
                                 (64.0 * tech.max_freq_hz);
        report.metric("sustained_over_peak." + std::string(to_string(node)),
                      sustained);
        wall.add_row({std::string(to_string(node)),
                      fmt(r.mean(&RunMetrics::tdp_w), 1),
                      fmt(peak_over_tdp, 2), fmt_pct(sustained, 1),
                      fmt(r.mean(&RunMetrics::mean_power_w), 1),
                      fmt_pct(r.mean(&RunMetrics::tdp_violation_rate), 3)});
    }
    std::printf("-- (a) utilization wall under compute-bound saturation --\n"
                "%s\n",
                wall.to_string().c_str());

    // (b) Online testing at a realistic dynamic load (the paper's setup).
    TablePrinter testing({"node", "tests/core/s", "test energy",
                          "mean interval [s]", "penalty", "TDP viol."});
    for (TechNode node : nodes) {
        SystemConfig cfg = base_config(37);
        cfg.node = node;
        set_occupancy(cfg, 0.7);

        SystemConfig none = cfg;
        none.scheduler = SchedulerKind::None;
        const double baseline = replicate(none, kSeeds, kHorizon)
                                    .mean(&RunMetrics::work_cycles_per_s);
        const Replicates pa = replicate(cfg, kSeeds, kHorizon);
        double interval = 0.0;
        for (const auto& run : pa.runs) {
            interval += run.test_interval_s.mean();
        }
        interval /= static_cast<double>(pa.runs.size());
        report.metric("tests_per_core_per_s." + std::string(to_string(node)),
                      pa.mean(&RunMetrics::tests_per_core_per_s));

        testing.add_row(
            {std::string(to_string(node)),
             fmt(pa.mean(&RunMetrics::tests_per_core_per_s), 2),
             fmt_pct(pa.mean(&RunMetrics::test_energy_share)),
             fmt(interval, 2),
             fmt_pct(1.0 - pa.mean(&RunMetrics::work_cycles_per_s) /
                               baseline),
             fmt_pct(pa.mean(&RunMetrics::tdp_violation_rate), 3)});
    }
    std::printf("-- (b) power-aware online testing at occupancy 0.7 --\n%s\n",
                testing.to_string().c_str());
    std::printf("note: peak/TDP is the dark-silicon ratio (all cores at max "
                "vs sustainable power); sustained/peak is the lit fraction "
                "the budget actually allows.\n");
    report.write();
    return 0;
}
