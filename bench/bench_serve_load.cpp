// bench_serve_load -- socket-level load profile of the mcs_serve event
// loop.
//
// Where bench_serve measures the query surface in process, this binary
// stands up the real front end -- nonblocking sockets, the epoll loop,
// keep-alive, bounded admission -- and drives it with N concurrent client
// threads over persistent connections, stepping N up level by level to
// find the saturation knee. Each client replays a fixed panel of what-if
// queries (warmed first, so the steady state measures the serving path,
// not the simulator) and byte-compares every 200 against the warm-up
// answer: the byte-identity contract must survive concurrency.
//
//   metrics  -- deterministic counts (levels, per-level request quota,
//               successful responses, byte mismatches, transport errors),
//               gated by tools/check_bench.py
//   load     -- throughput per level, saturation knee, p50/p99 latency,
//               429-shed counts -- wall-clock-derived, never gated
//
// 429 responses are not failures: the client retries the same request on
// the same connection until it succeeds, so the success counts stay
// deterministic while shedding shows up only in the auxiliary section.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/config_bridge.hpp"
#include "core/system.hpp"
#include "core/system_factory.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/snapshot_pool.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/config.hpp"
#include "util/require.hpp"

namespace {

using mcs::bench::BenchOptions;
using mcs::bench::BenchReport;

double percentile(std::vector<double> samples, double p) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    const double rank = p * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

/// Blocking HTTP/1.1 client: one keep-alive connection, send a request,
/// read one framed response. Throws RequireError on transport failure.
class LoadClient {
public:
    explicit LoadClient(int port) : port_(port) { connect(); }
    ~LoadClient() { disconnect(); }

    void reconnect() {
        disconnect();
        buffer_.clear();
        connect();
    }

    struct Response {
        int status = 0;
        std::string body;
    };

    Response roundtrip(const std::string& wire) {
        send_all(wire);
        return read_response();
    }

private:
    void connect() {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        MCS_REQUIRE(fd_ >= 0, "client socket failed");
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(port_));
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        MCS_REQUIRE(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                              sizeof addr) == 0,
                    "client connect failed");
    }

    void disconnect() {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    void send_all(std::string_view bytes) {
        while (!bytes.empty()) {
            const ssize_t n =
                ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
            MCS_REQUIRE(n > 0, "client send failed");
            bytes.remove_prefix(static_cast<std::size_t>(n));
        }
    }

    bool fill() {
        char buf[16384];
        const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
        if (n <= 0) return false;
        buffer_.append(buf, static_cast<std::size_t>(n));
        return true;
    }

    Response read_response() {
        std::size_t head_end;
        while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
            MCS_REQUIRE(fill(), "EOF before response head");
        }
        Response resp;
        resp.status = std::atoi(buffer_.c_str() + 9);
        std::size_t body_len = 0;
        const std::string head = buffer_.substr(0, head_end);
        // Lower-case search is unnecessary: the server emits exactly
        // "Content-Length".
        const std::size_t cl = head.find("Content-Length: ");
        if (cl != std::string::npos) {
            body_len = static_cast<std::size_t>(
                std::atol(head.c_str() + cl + 16));
        }
        while (buffer_.size() < head_end + 4 + body_len) {
            MCS_REQUIRE(fill(), "EOF before response body");
        }
        resp.body = buffer_.substr(head_end + 4, body_len);
        buffer_.erase(0, head_end + 4 + body_len);
        return resp;
    }

    int port_;
    int fd_ = -1;
    std::string buffer_;
};

std::string whatif_wire(const std::string& body) {
    return "POST /whatif HTTP/1.1\r\nHost: bench\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\n\r\n" + body;
}

std::string query_body(const char* scheduler, double tdp_scale) {
    return std::string("{\"schema\":\"mcs.whatif_query.v1\","
                       "\"snapshot\":\"warm\",\"overrides\":{"
                       "\"scheduler\":\"") +
           scheduler + "\",\"tdp_scale\":" +
           mcs::telemetry::json_number(tdp_scale) + "}}";
}

struct LevelResult {
    int clients = 0;
    double elapsed_s = 0.0;
    double throughput_rps = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    std::uint64_t ok = 0;
    std::uint64_t shed_429 = 0;
};

}  // namespace

int main(int argc, char** argv) {
    const BenchOptions opt = mcs::bench::parse_options(argc, argv);
    mcs::bench::print_header(
        "serve-load: concurrent socket clients vs the event loop",
        "throughput scales to a saturation knee while every response "
        "stays byte-identical to the single-client answer");
    BenchReport report("serve_load", opt);

    // Warm one snapshot (small chip: the load bench stresses the serving
    // path, cache hits and framing, not the simulator).
    mcs::Config base;
    base.set("side", "4");
    base.set("seed", "42");
    base.set("min_tasks", "2");
    base.set("max_tasks", "6");
    base.set("occupancy", "0.5");
    const mcs::SimDuration horizon = mcs::bench::horizon(opt, 2.0, 1.0);
    const std::string snap_path =
        mcs::bench::out_path(opt, "serve_load_snapshot.json");
    {
        mcs::ManycoreSystem sys(mcs::system_config_from(base));
        sys.checkpoint_at(horizon * 2 / 5, snap_path);
        sys.run(horizon);
    }

    mcs::telemetry::MetricsRegistry registry;
    mcs::serve::ServeService service(
        mcs::serve::SnapshotPool::from_document(
            "warm", mcs::load_snapshot_file(snap_path), base),
        mcs::serve::ServiceOptions{}, registry);
    mcs::serve::ServerOptions server_opts;
    server_opts.port = 0;  // ephemeral
    server_opts.workers = opt.jobs;
    server_opts.quiet = true;
    mcs::serve::HttpServer server(service, server_opts);
    std::thread server_thread([&server] { server.run(); });

    // The query panel (distinct canonical keys) and its reference
    // answers, computed once over a single connection before any load.
    std::vector<std::string> wires;
    std::vector<std::string> expected;
    for (const char* sched : {"power-aware", "greedy"}) {
        for (double tdp : {0.7, 0.85, 1.0}) {
            wires.push_back(whatif_wire(query_body(sched, tdp)));
        }
    }
    {
        LoadClient warm(server.port());
        for (const std::string& wire : wires) {
            LoadClient::Response resp = warm.roundtrip(wire);
            MCS_REQUIRE(resp.status == 200,
                        "warm-up query failed: " + resp.body);
            expected.push_back(std::move(resp.body));
        }
    }

    const std::vector<int> levels =
        opt.quick ? std::vector<int>{1, 2, 4}
                  : std::vector<int>{1, 2, 4, 8, 16};
    const int per_client = opt.quick ? 40 : 150;

    std::vector<LevelResult> results;
    std::atomic<std::uint64_t> byte_mismatches{0};
    std::atomic<std::uint64_t> transport_errors{0};
    using clock = std::chrono::steady_clock;

    for (const int clients : levels) {
        std::atomic<std::uint64_t> ok{0};
        std::atomic<std::uint64_t> shed{0};
        std::mutex samples_mutex;
        std::vector<double> samples;
        const auto level_start = clock::now();
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(clients));
        for (int c = 0; c < clients; ++c) {
            threads.emplace_back([&, c] {
                std::vector<double> local;
                local.reserve(static_cast<std::size_t>(per_client));
                std::unique_ptr<LoadClient> client;
                try {
                    client = std::make_unique<LoadClient>(server.port());
                } catch (const std::exception&) {
                    transport_errors.fetch_add(
                        static_cast<std::uint64_t>(per_client));
                    return;
                }
                for (int i = 0; i < per_client; ++i) {
                    const std::size_t q =
                        static_cast<std::size_t>(c + i) % wires.size();
                    for (;;) {
                        const auto t0 = clock::now();
                        LoadClient::Response resp;
                        try {
                            resp = client->roundtrip(wires[q]);
                        } catch (const std::exception&) {
                            // Transport failure: reconnect and retry this
                            // request; counted, and gated at zero.
                            transport_errors.fetch_add(1);
                            try {
                                client->reconnect();
                                continue;
                            } catch (const std::exception&) {
                                return;  // server gone; errors recorded
                            }
                        }
                        if (resp.status == 429) {
                            shed.fetch_add(1);
                            continue;  // bounded admission said later
                        }
                        local.push_back(std::chrono::duration<
                                            double, std::micro>(
                                            clock::now() - t0)
                                            .count());
                        if (resp.status == 200) {
                            ok.fetch_add(1);
                            if (resp.body != expected[q]) {
                                byte_mismatches.fetch_add(1);
                            }
                        }
                        break;
                    }
                }
                std::lock_guard<std::mutex> lock(samples_mutex);
                samples.insert(samples.end(), local.begin(), local.end());
            });
        }
        for (std::thread& t : threads) {
            t.join();
        }
        LevelResult lr;
        lr.clients = clients;
        lr.elapsed_s =
            std::chrono::duration<double>(clock::now() - level_start)
                .count();
        lr.ok = ok.load();
        lr.shed_429 = shed.load();
        lr.throughput_rps =
            lr.elapsed_s > 0.0
                ? static_cast<double>(lr.ok) / lr.elapsed_s
                : 0.0;
        lr.p50_us = percentile(samples, 0.5);
        lr.p99_us = percentile(samples, 0.99);
        results.push_back(lr);
    }

    server.stop();
    server_thread.join();

    // The saturation knee: the last level that still bought a >10%
    // throughput improvement over its predecessor.
    int knee_clients = results.empty() ? 0 : results.front().clients;
    for (std::size_t i = 1; i < results.size(); ++i) {
        if (results[i].throughput_rps >
            results[i - 1].throughput_rps * 1.10) {
            knee_clients = results[i].clients;
        }
    }

    mcs::TablePrinter table({"clients", "ok", "429_shed", "rps", "p50_us",
                             "p99_us"});
    for (const LevelResult& lr : results) {
        table.add_row({mcs::fmt(std::int64_t(lr.clients)),
                       mcs::fmt(std::int64_t(lr.ok)),
                       mcs::fmt(std::int64_t(lr.shed_429)),
                       mcs::fmt(lr.throughput_rps),
                       mcs::fmt(lr.p50_us), mcs::fmt(lr.p99_us)});
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::printf("\nsaturation knee: %d client(s)   byte mismatches: %llu   "
                "transport errors: %llu\n",
                knee_clients,
                static_cast<unsigned long long>(byte_mismatches.load()),
                static_cast<unsigned long long>(transport_errors.load()));

    std::uint64_t responses_ok = 0;
    for (const LevelResult& lr : results) {
        responses_ok += lr.ok;
    }
    std::uint64_t quota = 0;
    for (const int clients : levels) {
        quota += static_cast<std::uint64_t>(clients) *
                 static_cast<std::uint64_t>(per_client);
    }

    // Deterministic counts -> gated; throughput/latency/shed -> aux.
    report.metric("levels", static_cast<double>(levels.size()));
    report.metric("panel_queries", static_cast<double>(wires.size()));
    report.metric("request_quota", static_cast<double>(quota));
    report.metric("responses_ok", static_cast<double>(responses_ok));
    report.metric("byte_mismatches",
                  static_cast<double>(byte_mismatches.load()));
    report.metric("transport_errors",
                  static_cast<double>(transport_errors.load()));
    report.aux("load", "knee_clients", static_cast<double>(knee_clients));
    for (const LevelResult& lr : results) {
        const std::string suffix = "_c" + std::to_string(lr.clients);
        report.aux("load", "throughput_rps" + suffix, lr.throughput_rps);
        report.aux("load", "p50_us" + suffix, lr.p50_us);
        report.aux("load", "p99_us" + suffix, lr.p99_us);
        report.aux("load", "shed_429" + suffix,
                   static_cast<double>(lr.shed_429));
    }
    report.write();

    if (byte_mismatches.load() != 0 || transport_errors.load() != 0 ||
        responses_ok != quota) {
        std::fprintf(stderr,
                     "bench_serve_load: FAILED (ok %llu of %llu, "
                     "mismatches %llu, transport errors %llu)\n",
                     static_cast<unsigned long long>(responses_ok),
                     static_cast<unsigned long long>(quota),
                     static_cast<unsigned long long>(byte_mismatches.load()),
                     static_cast<unsigned long long>(transport_errors.load()));
        return 1;
    }
    return 0;
}
