// H1 -- hot-path refactor gate: calendar event queue, SoA core lanes,
// patch-on-commit test candidacy.
//
// Two halves, matching the perf-gate split in tools/check_bench.py:
//
//   * "metrics" (blocking, byte-deterministic): work counters from a fixed
//     full-system run plus a seeded event-queue mix. These pin the refactor
//     semantics -- the candidacy view must run on journal patches (exactly
//     one rescan per run), cancelled events must be counted, and the
//     queue's pop order must stay the strict (when, seq) FIFO order (hashed
//     so any reorder trips the 1e-6 gate).
//
//   * "wall" (aux, advisory): wall-clock of the epoch-quantized queue mix
//     on the calendar queue vs a binary-heap reference, and of the per-core
//     power fill on SoA lanes vs the pre-refactor fat-struct layout. These
//     are the measured wins; they land in bench/trend.jsonl without ever
//     entering the determinism comparison.

#include <chrono>
#include <cstdio>
#include <queue>
#include <utility>
#include <vector>

#include "arch/core_lanes.hpp"
#include "bench_common.hpp"
#include "core/test_engine.hpp"
#include "core/workload_engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace mcs;
using namespace mcs::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/// One round of the simulator's characteristic queue workload: schedule a
/// burst at epoch-quantized times (forcing FIFO ties), cancel a few live
/// events (retimed completions), drain everything due. Runs the identical
/// seeded sequence against any queue via the three callbacks, so the
/// calendar queue and the heap reference see the same operations.
template <typename Schedule, typename Cancel, typename DrainUpTo>
void run_epoch_mix(int rounds, Schedule&& schedule, Cancel&& cancel,
                   DrainUpTo&& drain_up_to) {
    constexpr SimTime kEpoch = 10'000;
    Rng rng(2026);
    std::vector<std::uint64_t> live;
    SimTime now = 0;
    // 16 events/round due within 64 epochs: steady-state pending ~1e3,
    // the population a mid-size chip's task/test/controller events hold.
    for (int round = 0; round < rounds; ++round) {
        for (int i = 0; i < 16; ++i) {
            live.push_back(schedule(now + kEpoch * (1 + rng.index(64))));
        }
        for (int i = 0; i < 4 && !live.empty(); ++i) {
            const std::size_t j = rng.index(live.size());
            cancel(live[j]);
            live[j] = live.back();
            live.pop_back();
        }
        now += kEpoch;
        drain_up_to(now);
    }
    drain_up_to(kEpoch * static_cast<SimTime>(rounds + 64));
}

/// FNV-1a over the pop stream, folded to 32 bits so the value is exact in
/// the report's double.
struct PopHash {
    std::uint64_t h = 1469598103934665603ULL;
    void add(SimTime when, std::uint64_t seq) {
        for (std::uint64_t v : {static_cast<std::uint64_t>(when), seq}) {
            for (int b = 0; b < 8; ++b) {
                h ^= (v >> (8 * b)) & 0xFF;
                h *= 1099511628211ULL;
            }
        }
    }
    double folded() const {
        return static_cast<double>((h ^ (h >> 32)) & 0xFFFFFFFFULL);
    }
};

}  // namespace

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("H1 (gate): hot-path state refactor",
                 "calendar queue, SoA lanes and patched candidacy change "
                 "cost, not behaviour");
    BenchReport report("hot_paths", opt);
    const int kRounds = opt.quick ? 2'000 : 20'000;

    // --- 1. Full-system run: patched candidacy + cancel accounting ------
    {
        SystemConfig cfg = base_config(17);
        cfg.scheduler = SchedulerKind::PowerAware;
        set_occupancy(cfg, 0.6);
        ManycoreSystem sys(cfg);
        // Quick horizon of 2 s: long enough for the criticality warm-up to
        // start completing test sessions, so the gate pins a non-zero
        // tests_completed even in CI smoke mode.
        const RunMetrics m = sys.run(horizon(opt, 6.0, 2.0));
        report.metric("run.tests_completed",
                      static_cast<double>(m.tests_completed));
        report.metric("run.tests_aborted",
                      static_cast<double>(m.tests_aborted));
        report.metric("run.apps_completed",
                      static_cast<double>(m.apps_completed));
        report.metric("run.events_executed",
                      static_cast<double>(sys.simulator().events_executed()));
        report.metric("run.events_cancelled",
                      static_cast<double>(sys.simulator().events_cancelled()));
        // The refactor's contract: the whole run pays one boot rescan and
        // thereafter maintains candidacy purely from the membership
        // journal. A second rescan anywhere trips the gate.
        report.metric(
            "run.candidacy_rescans",
            static_cast<double>(sys.test_engine().candidacy_rescans()));
        report.metric(
            "run.candidacy_patches",
            static_cast<double>(sys.test_engine().candidacy_patches()));
        report.metric(
            "run.mapping_chip_scans",
            static_cast<double>(sys.workload_engine().chip_scans()));
    }

    // --- 2. Event-queue mix: deterministic order + advisory wall --------
    {
        EventQueue q;
        PopHash hash;
        std::uint64_t popped = 0;
        // pop() returns (time, callback); the callback carries its own seq
        // so the hash records payload identity -- FIFO within a tie is
        // observable, not just the timestamp order.
        std::uint64_t cur_seq = 0;
        const auto t0 = std::chrono::steady_clock::now();
        run_epoch_mix(
            kRounds,
            [&](SimTime when) {
                const std::uint64_t seq = q.next_seq();
                q.schedule(when, [seq, &cur_seq] { cur_seq = seq; });
                return seq;
            },
            [&](std::uint64_t seq) { q.cancel(EventId{seq}); },
            [&](SimTime now) {
                while (!q.empty() && q.next_time() <= now) {
                    const auto [when, cb] = q.pop();
                    cb();
                    hash.add(when, cur_seq);
                    ++popped;
                }
            });
        report.aux("wall", "eq_calendar_s", seconds_since(t0));
        report.metric("eq.pop_hash", hash.folded());
        report.metric("eq.popped", static_cast<double>(popped));
        report.metric("eq.cancelled",
                      static_cast<double>(q.cancelled_count()));
    }
    {
        // Binary-heap reference: strict (when, seq) min-heap plus the
        // seq -> when index the old implementation needed for cancel /
        // is_pending / time_of, with lazy cancellation (tombstones stay
        // in the heap until they surface) -- the pre-refactor shape.
        using Entry = std::pair<SimTime, std::uint64_t>;
        std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
            heap;
        std::unordered_map<std::uint64_t, SimTime> index;
        std::uint64_t next_seq = 1;
        std::uint64_t popped = 0;
        PopHash hash;
        const auto t0 = std::chrono::steady_clock::now();
        run_epoch_mix(
            kRounds,
            [&](SimTime when) {
                heap.emplace(when, next_seq);
                index.emplace(next_seq, when);
                return next_seq++;
            },
            [&](std::uint64_t seq) { index.erase(seq); },
            [&](SimTime now) {
                while (!heap.empty() && heap.top().first <= now) {
                    const auto [when, seq] = heap.top();
                    heap.pop();
                    if (index.erase(seq) == 0) continue;  // tombstone
                    hash.add(when, seq);
                    ++popped;
                }
            });
        report.aux("wall", "eq_heap_ref_s", seconds_since(t0));
        // Same ops, same order: the reference must reproduce the calendar
        // queue's pop stream exactly.
        report.metric("eq.ref_pop_hash", hash.folded());
        report.metric("eq.ref_popped", static_cast<double>(popped));
    }

    // --- 3. Per-core power fill: SoA lanes vs fat-struct layout ---------
    {
        struct FatCore {
            CoreState state = CoreState::Idle;
            int vf_level = 0;
            std::uint8_t reserved = 0;
            std::uint64_t busy_cycles_since_test = 0;
            std::uint64_t total_busy_cycles = 0;
            SimDuration total_busy_time = 0;
            SimDuration total_test_time = 0;
            SimTime last_checkpoint = 0;
            SimTime last_state_change = 0;
            SimTime last_test_end = 0;
            std::uint64_t tests_completed = 0;
            std::uint64_t tests_aborted = 0;
            std::uint64_t tasks_executed = 0;
            double temp_c = 55.0;
            double damage = 0.0;
        };
        const std::size_t n = 4096;
        const int reps = opt.quick ? 400 : 4'000;
        Chip chip(1, 1, TechNode::nm16);
        PowerModel model(chip.tech(), chip.vf_table());
        std::vector<FatCore> aos(n);
        CoreLanes lanes;
        lanes.reset(n);
        for (std::size_t i = 0; i < n; ++i) {
            const CoreState s = i % 3 == 0   ? CoreState::Busy
                                : i % 3 == 1 ? CoreState::Dark
                                             : CoreState::Idle;
            aos[i].state = s;
            aos[i].vf_level = static_cast<int>(i % 3);
            lanes.state[i] = s;
            lanes.vf_level[i] = static_cast<int>(i % 3);
            lanes.temp_c[i] = 55.0;
        }
        // Both variants do exactly the pre-/post-refactor fill: read
        // (state, vf, temp), write a power buffer. Only the input layout
        // differs.
        std::vector<double> out(n, 0.0);
        double sink = 0.0;
        auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < reps; ++r) {
            for (std::size_t i = 0; i < n; ++i) {
                out[i] = model.core_power_w(aos[i].state, aos[i].vf_level,
                                            aos[i].temp_c);
            }
            sink += out[n - 1];
        }
        report.aux("wall", "fill_aos_s", seconds_since(t0));
        t0 = std::chrono::steady_clock::now();
        double sink2 = 0.0;
        for (int r = 0; r < reps; ++r) {
            for (std::size_t i = 0; i < n; ++i) {
                lanes.power_w[i] = model.core_power_w(
                    lanes.state[i], lanes.vf_level[i], lanes.temp_c[i]);
            }
            sink2 += lanes.power_w[n - 1];
        }
        report.aux("wall", "fill_soa_s", seconds_since(t0));
        // Identical arithmetic on identical inputs: gate the sums so a
        // layout bug cannot hide behind the advisory wall numbers.
        report.metric("fill.aos_last_sum_w", sink);
        report.metric("fill.soa_last_sum_w", sink2);
    }

    report.write();
    return 0;
}
