// A3 -- ablation: executable SBST routines with *measured* fault coverage.
//
// Instead of assuming per-routine coverage figures, this experiment runs
// the SBST library on the functional core model (src/isa), injects every
// enumerated structural fault site, and reports the measured routine x unit
// coverage matrix -- including cross-coverage (e.g. the LSU march also
// exercises the ALU through its address arithmetic). The measured suite is
// then plugged into the full system in place of the parameterized one.

#include <cstdio>

#include "bench_common.hpp"
#include "isa/sbst_programs.hpp"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("A3 (ablation): measured SBST coverage",
                 "march/pattern routines achieve >90% coverage of their "
                 "target units; cross-coverage comes for free");

    BenchReport report("a3_sbst_coverage", opt);
    SbstLibrary lib;
    const auto matrix = lib.coverage_matrix();

    std::vector<std::string> headers{"routine (cycles)"};
    for (std::size_t u = 0; u < kFunctionalUnitCount; ++u) {
        headers.push_back(to_string(static_cast<FunctionalUnit>(u)));
    }
    TablePrinter table(std::move(headers));
    const auto programs = lib.programs();
    for (std::size_t p = 0; p < programs.size(); ++p) {
        std::vector<std::string> row{
            programs[p].name + " (" +
            fmt(static_cast<std::uint64_t>(programs[p].code.size())) +
            " instrs)"};
        for (std::size_t u = 0; u < kFunctionalUnitCount; ++u) {
            row.push_back(fmt_pct(matrix[p][u], 0));
        }
        table.add_row(std::move(row));
    }
    std::printf("-- measured routine x unit stuck-at coverage --\n%s\n",
                table.to_string().c_str());
    for (std::size_t p = 0; p < programs.size(); ++p) {
        double best = 0.0;
        for (std::size_t u = 0; u < kFunctionalUnitCount; ++u) {
            best = std::max(best, matrix[p][u]);
        }
        report.metric("peak_coverage." + programs[p].name, best);
    }

    // Plug the measured suite into the full system and compare with the
    // parameterized default.
    const TestSuite measured = lib.measured_suite();
    TablePrinter sys_table({"suite", "session cycles", "tests/core/s",
                            "detected/injected", "mean det. latency [s]"});
    for (int variant = 0; variant < 2; ++variant) {
        SystemConfig cfg = base_config(71);
        set_occupancy(cfg, 0.6);
        cfg.enable_fault_injection = true;
        cfg.faults.base_rate_per_core_s = 0.05;
        if (variant == 1) {
            cfg.suite = measured;
        }
        ManycoreSystem sys(cfg);
        const RunMetrics m = sys.run(horizon(opt, 10.0, 1.5));
        report.metric(std::string("tests_per_core_per_s.") +
                          (variant == 0 ? "parameterized" : "measured"),
                      m.tests_per_core_per_s);
        sys_table.add_row(
            {variant == 0 ? "parameterized (default)" : "measured (ISA)",
             fmt(sys.suite().total_cycles()),
             fmt(m.tests_per_core_per_s, 2),
             fmt(m.faults_detected) + "/" + fmt(m.faults_injected),
             fmt(m.detection_latency_s.count()
                     ? m.detection_latency_s.mean()
                     : 0.0, 2)});
    }
    std::printf("-- full-system run with each suite --\n%s\n",
                sys_table.to_string().c_str());
    report.write();
    return 0;
}
