// E7 -- "V/F level coverage of tests" (reconstructed Fig.; journal
// extension claim).
//
// Claim under test: with the rotation policy, test sessions cover every
// voltage/frequency level of the platform over time (frequency-dependent
// faults require testing at every operating point), whereas a fixed-level
// policy leaves all other levels untested.
//
// The three policies run as one campaign (pass jobs=N to parallelize).

#include <cstdio>

#include "bench_common.hpp"
#include "runner/campaign_runner.hpp"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("E7: V/F level coverage of test sessions",
                 "rotation covers all DVFS levels; fixed policy leaves "
                 "levels untested");

    CampaignSpec spec;
    spec.base.set("width", "8");
    spec.base.set("height", "8");
    spec.base.set("node", "16nm");
    spec.base.set("occupancy", "0.5");
    spec.axes = {{"vf_policy", {"rotate-all", "max-only", "min-only"}}};
    spec.replicas = 1;
    spec.campaign_seed = 47;
    spec.seconds = opt.quick ? 2.0 : 10.0;

    CampaignRunner runner(std::move(spec));
    const CampaignResult res = runner.run(opt.jobs);
    for (const ReplicaResult& r : res.replicas) {
        if (!r.ok) {
            std::fprintf(stderr, "replica failed: %s\n", r.error.c_str());
            return 1;
        }
    }
    const RunMetrics& rotate_m = res.cell(0)[0].metrics;
    const RunMetrics& max_m = res.cell(1)[0].metrics;
    const RunMetrics& min_m = res.cell(2)[0].metrics;
    const auto& rotate = rotate_m.tests_per_vf_level;
    const auto& max_only = max_m.tests_per_vf_level;
    const auto& min_only = min_m.tests_per_vf_level;

    const auto& table_levels = build_vf_table(technology(TechNode::nm16));
    TablePrinter table({"VF level", "voltage [V]", "freq [GHz]",
                        "tests (rotate-all)", "tests (max-only)",
                        "tests (min-only)"});
    for (std::size_t l = 0; l < table_levels.size(); ++l) {
        table.add_row({fmt(static_cast<std::int64_t>(l)),
                       fmt(table_levels[l].voltage_v, 2),
                       fmt(table_levels[l].freq_hz / 1e9, 2), fmt(rotate[l]),
                       fmt(max_only[l]), fmt(min_only[l])});
    }
    std::printf("%s\n", table.to_string().c_str());

    int covered = 0;
    for (auto c : rotate) {
        covered += c > 0 ? 1 : 0;
    }
    std::printf("rotation policy covered %d/%zu levels\n", covered,
                rotate.size());
    std::printf("completed/aborted: rotate-all %llu/%llu | max-only "
                "%llu/%llu | min-only %llu/%llu\n",
                static_cast<unsigned long long>(rotate_m.tests_completed),
                static_cast<unsigned long long>(rotate_m.tests_aborted),
                static_cast<unsigned long long>(max_m.tests_completed),
                static_cast<unsigned long long>(max_m.tests_aborted),
                static_cast<unsigned long long>(min_m.tests_completed),
                static_cast<unsigned long long>(min_m.tests_aborted));
    std::printf("note: min-only sessions run ~12x longer (0.2 vs 2.5 GHz), "
                "so under mapping contention many are aborted -- the "
                "rotation policy amortizes this across levels.\n");

    BenchReport report("e7_vf_coverage", opt);
    report.metric("levels_covered_rotate", covered);
    report.metric("tests_completed_rotate",
                  static_cast<double>(rotate_m.tests_completed));
    report.metric("tests_completed_max_only",
                  static_cast<double>(max_m.tests_completed));
    report.metric("tests_completed_min_only",
                  static_cast<double>(min_m.tests_completed));
    report.write();
    return 0;
}
