// E7 -- "V/F level coverage of tests" (reconstructed Fig.; journal
// extension claim).
//
// Claim under test: with the rotation policy, test sessions cover every
// voltage/frequency level of the platform over time (frequency-dependent
// faults require testing at every operating point), whereas a fixed-level
// policy leaves all other levels untested.

#include <cstdio>

#include "bench_common.hpp"

using namespace mcs;
using namespace mcs::bench;

namespace {

RunMetrics run_policy(TestVfPolicy policy) {
    SystemConfig cfg = base_config(47);
    set_occupancy(cfg, 0.5);
    cfg.power_aware.vf_policy = policy;
    return run_one(std::move(cfg), 10 * kSecond);
}

}  // namespace

int main() {
    print_header("E7: V/F level coverage of test sessions",
                 "rotation covers all DVFS levels; fixed policy leaves "
                 "levels untested");

    const auto& table_levels =
        build_vf_table(technology(TechNode::nm16));
    const RunMetrics rotate_m = run_policy(TestVfPolicy::RotateAll);
    const RunMetrics max_m = run_policy(TestVfPolicy::MaxOnly);
    const RunMetrics min_m = run_policy(TestVfPolicy::MinOnly);
    const auto& rotate = rotate_m.tests_per_vf_level;
    const auto& max_only = max_m.tests_per_vf_level;
    const auto& min_only = min_m.tests_per_vf_level;

    TablePrinter table({"VF level", "voltage [V]", "freq [GHz]",
                        "tests (rotate-all)", "tests (max-only)",
                        "tests (min-only)"});
    for (std::size_t l = 0; l < table_levels.size(); ++l) {
        table.add_row({fmt(static_cast<std::int64_t>(l)),
                       fmt(table_levels[l].voltage_v, 2),
                       fmt(table_levels[l].freq_hz / 1e9, 2), fmt(rotate[l]),
                       fmt(max_only[l]), fmt(min_only[l])});
    }
    std::printf("%s\n", table.to_string().c_str());

    int covered = 0;
    for (auto c : rotate) {
        covered += c > 0 ? 1 : 0;
    }
    std::printf("rotation policy covered %d/%zu levels\n", covered,
                rotate.size());
    std::printf("completed/aborted: rotate-all %llu/%llu | max-only "
                "%llu/%llu | min-only %llu/%llu\n",
                static_cast<unsigned long long>(rotate_m.tests_completed),
                static_cast<unsigned long long>(rotate_m.tests_aborted),
                static_cast<unsigned long long>(max_m.tests_completed),
                static_cast<unsigned long long>(max_m.tests_aborted),
                static_cast<unsigned long long>(min_m.tests_completed),
                static_cast<unsigned long long>(min_m.tests_aborted));
    std::printf("note: min-only sessions run ~12x longer (0.2 vs 2.5 GHz), "
                "so under mapping contention many are aborted -- the "
                "rotation policy amortizes this across levels.\n");
    return 0;
}
