// E3 -- "Test interval adapts to utilization and power budget"
// (reconstructed Fig.).
//
// Claim under test: the criticality-driven scheduler adapts the per-core
// test frequency to system load -- busier chips test less often (fewer idle
// cores, less slack) but coverage degrades gracefully -- and a tighter
// power budget (more dark silicon) lowers the test rate in a controlled
// way rather than breaking the cap.

#include <cstdio>

#include "bench_common.hpp"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("E3: test interval vs utilization / power budget",
                 "test frequency adapts to core stress and available budget");

    const int kSeeds = seeds(opt, 3);
    // Quick mode still needs a few seconds: test sessions only become due
    // after the criticality threshold accumulates, so a 1 s horizon would
    // report all-zero rates.
    const SimDuration kHorizon = horizon(opt, 10.0, 3.0);
    BenchReport report("e3_test_interval", opt);

    TablePrinter load({"occupancy", "chip util", "tests/core/s",
                       "mean interval [s]", "max open gap [s]", "aborted",
                       "TDP viol."});
    for (double occ : {0.2, 0.4, 0.6, 0.8, 1.0}) {
        SystemConfig cfg = base_config(23);
        set_occupancy(cfg, occ);
        const Replicates r = replicate(cfg, kSeeds, kHorizon);
        report.metric("tests_per_core_per_s.occ" + fmt(occ, 1),
                      r.mean(&RunMetrics::tests_per_core_per_s));
        load.add_row(
            {fmt(occ, 1), fmt_pct(r.mean(&RunMetrics::mean_chip_utilization)),
             fmt(r.mean(&RunMetrics::tests_per_core_per_s), 2),
             fmt([&] {
                 double sum = 0.0;
                 for (const auto& run : r.runs) {
                     sum += run.test_interval_s.mean();
                 }
                 return sum / static_cast<double>(r.runs.size());
             }(), 2),
             fmt(r.mean(&RunMetrics::max_open_test_gap_s), 2),
             fmt(r.mean_u64(&RunMetrics::tests_aborted), 0),
             fmt_pct(r.mean(&RunMetrics::tdp_violation_rate), 3)});
    }
    std::printf("-- load sweep (power-aware scheduler) --\n%s\n",
                load.to_string().c_str());

    TablePrinter budget({"TDP scale", "TDP [W]", "tests/core/s",
                         "mean interval [s]", "work Gcycles/s", "TDP viol."});
    for (double scale : {0.6, 0.8, 1.0, 1.2}) {
        SystemConfig cfg = base_config(29);
        set_occupancy(cfg, 0.6);
        cfg.tdp_scale = scale;
        const Replicates r = replicate(cfg, kSeeds, kHorizon);
        report.metric("tests_per_core_per_s.tdp" + fmt(scale, 1),
                      r.mean(&RunMetrics::tests_per_core_per_s));
        double interval = 0.0;
        for (const auto& run : r.runs) {
            interval += run.test_interval_s.mean();
        }
        interval /= static_cast<double>(r.runs.size());
        budget.add_row({fmt(scale, 1), fmt(r.mean(&RunMetrics::tdp_w), 1),
                        fmt(r.mean(&RunMetrics::tests_per_core_per_s), 2),
                        fmt(interval, 2),
                        fmt(r.mean(&RunMetrics::work_cycles_per_s) / 1e9, 2),
                        fmt_pct(r.mean(&RunMetrics::tdp_violation_rate), 3)});
    }
    std::printf("-- power-budget sweep (occupancy 0.6) --\n%s\n",
                budget.to_string().c_str());
    report.write();
    return 0;
}
