// X1 -- extension: can the mapping policy prolong system lifetime?
//
// The paper family's follow-up (DATE'16 lifetime-aware mapping) argues that
// runtime mapping choices control where wear accumulates, and that
// spreading stress (wear leveling) postpones the first core failures and
// preserves chip capacity. This experiment runs an aging-accelerated
// scenario (compressed nominal lifetime, wear-driven fault rates) and
// compares mapping policies on wear balance and attrition.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("X1 (extension): mapping policy vs system lifetime",
                 "wear-leveling mapping postpones core deaths and preserves "
                 "capacity");

    const SimDuration kHorizon = horizon(opt, 30.0, 2.0);
    const int kSeeds = seeds(opt, 3);
    BenchReport report("x1_lifetime", opt);
    const std::vector<MapperKind> mappers{
        MapperKind::TestAware, MapperKind::UtilizationOriented,
        MapperKind::Contiguous, MapperKind::FirstFit};

    TablePrinter table({"mapper", "max damage", "damage imbalance",
                        "faults", "cores lost", "first loss [s]",
                        "work Tcycles"});
    for (MapperKind mapper : mappers) {
        RunningStats max_damage, imbalance, work;
        std::uint64_t faults = 0, lost = 0;
        double first_loss = 0.0;
        int first_loss_runs = 0;
        for (int s = 0; s < kSeeds; ++s) {
            SystemConfig cfg = base_config(73 + static_cast<unsigned>(s));
            set_occupancy(cfg, 0.5);
            cfg.mapper = mapper;
            // Accelerated aging: a core busy at reference temperature wears
            // out in ~20 simulated seconds, and wear drives the fault rate
            // (base electrical rate is tiny; attrition is wear-dominated).
            cfg.aging.nominal_lifetime_s = 20.0;
            cfg.enable_fault_injection = true;
            cfg.faults.base_rate_per_core_s = 1e-3;
            ManycoreSystem sys(cfg);
            const RunMetrics m = sys.run(kHorizon);
            max_damage.add(m.max_damage);
            imbalance.add(m.damage_imbalance);
            work.add(m.work_cycles_per_s * to_seconds(m.sim_time));
            faults += m.faults_injected;
            lost += m.faults_detected;
            SimTime first = 0;
            for (const Fault& f : sys.fault_injector()->history()) {
                if (f.detected &&
                    (first == 0 || f.detected_at < first)) {
                    first = f.detected_at;
                }
            }
            if (first != 0) {
                first_loss += to_seconds(first);
                ++first_loss_runs;
            }
        }
        const std::string key(to_string(mapper));
        report.metric("max_damage." + key, max_damage.mean());
        report.metric("damage_imbalance." + key, imbalance.mean());
        table.add_row(
            {std::string(to_string(mapper)), fmt(max_damage.mean(), 3),
             fmt(imbalance.mean(), 2), fmt(faults), fmt(lost),
             first_loss_runs ? fmt(first_loss / first_loss_runs, 1) : "-",
             fmt(work.mean() / 1e12, 2)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("note: aging is time-compressed (20 s nominal lifetime) so "
                "attrition happens inside the simulation horizon; only "
                "relative differences between mappers are meaningful.\n");
    report.write();
    return 0;
}
