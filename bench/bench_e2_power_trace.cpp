// E2 -- "Power trace over time" (reconstructed Fig.).
//
// Claim under test: under PID capping the total power never exceeds the
// TDP, and SBST test power rides inside the slack left by the workload
// (tests fill the gap between workload power and the cap).
//
// Output: a downsampled time series (table) plus e2_power_trace.csv with
// every sample.

#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("E2: power trace over time",
                 "capped power <= TDP; test power fills the slack under the "
                 "cap");

    SystemConfig cfg = base_config(11);
    set_occupancy(cfg, 0.6);
    cfg.scheduler = SchedulerKind::PowerAware;
    cfg.trace_epoch = 5 * kMillisecond;

    std::vector<TraceSample> samples;
    ManycoreSystem sys(cfg);
    sys.set_trace_sink([&](const TraceSample& s) { samples.push_back(s); });
    const RunMetrics m = sys.run(horizon(opt, 6.0, 1.5));

    const std::string csv_path = out_path(opt, "e2_power_trace.csv");
    CsvWriter csv(csv_path,
                  {"t_s", "workload_w", "test_w", "other_w", "total_w",
                   "tdp_w", "busy", "testing", "dark", "max_temp_c"});
    for (const TraceSample& s : samples) {
        csv.write_row(std::vector<double>{
            to_seconds(s.time), s.workload_power_w, s.test_power_w,
            s.other_power_w, s.total_power_w, s.tdp_w,
            static_cast<double>(s.cores_busy),
            static_cast<double>(s.cores_testing),
            static_cast<double>(s.cores_dark), s.max_temp_c});
    }

    TablePrinter table({"t [s]", "workload [W]", "test [W]", "other [W]",
                        "total [W]", "TDP [W]", "busy", "testing", "dark"});
    const std::size_t stride = samples.size() / 24 + 1;
    for (std::size_t i = 0; i < samples.size(); i += stride) {
        const TraceSample& s = samples[i];
        table.add_row({fmt(to_seconds(s.time), 2), fmt(s.workload_power_w, 1),
                       fmt(s.test_power_w, 1), fmt(s.other_power_w, 1),
                       fmt(s.total_power_w, 1), fmt(s.tdp_w, 1),
                       fmt(static_cast<std::int64_t>(s.cores_busy)),
                       fmt(static_cast<std::int64_t>(s.cores_testing)),
                       fmt(static_cast<std::int64_t>(s.cores_dark))});
    }
    std::printf("%s\n", table.to_string().c_str());

    double peak = 0.0, test_peak = 0.0;
    for (const TraceSample& s : samples) {
        peak = std::max(peak, s.total_power_w);
        test_peak = std::max(test_peak, s.test_power_w);
    }
    std::printf("TDP %.1f W | peak total %.1f W | peak test power %.1f W | "
                "TDP violation rate %.4f%% | full trace: %s (%zu samples)\n",
                m.tdp_w, peak, test_peak, m.tdp_violation_rate * 100.0,
                csv_path.c_str(), samples.size());

    BenchReport report("e2_power_trace", opt);
    report.metric("tdp_w", m.tdp_w);
    report.metric("peak_total_w", peak);
    report.metric("peak_test_w", test_peak);
    report.metric("tdp_violation_rate", m.tdp_violation_rate);
    report.metric("trace_samples", static_cast<double>(samples.size()));
    report.write();
    return 0;
}
