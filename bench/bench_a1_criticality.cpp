// A1 -- ablation: criticality metric variants (DESIGN.md design choice).
//
// The DATE'15 paper drives test criticality from core utilization; the
// TC'16 extension adds the aging estimate; a pure time-driven metric is the
// naive baseline. This ablation measures what each signal buys: detection
// latency on stressed cores, interval tails, and test volume.

#include <cstdio>

#include "bench_common.hpp"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("A1 (ablation): criticality metric",
                 "utilization/aging terms focus tests on stressed cores");

    const int kSeeds = seeds(opt, 4);
    const SimDuration kHorizon = horizon(opt, 12.0, 1.5);
    BenchReport report("a1_criticality", opt);
    TablePrinter table({"criticality mode", "tests/core/s",
                        "mean interval [s]", "max open gap [s]",
                        "mean det. latency [s]", "detected/injected"});
    for (CriticalityMode mode : {CriticalityMode::UtilizationDriven,
                                 CriticalityMode::TimeDriven,
                                 CriticalityMode::Hybrid}) {
        SampleSet latencies;
        std::uint64_t injected = 0, detected = 0;
        RunningStats interval, open_gap, rate;
        for (int s = 0; s < kSeeds; ++s) {
            SystemConfig cfg = base_config(61 + static_cast<unsigned>(s));
            set_occupancy(cfg, 0.6);
            cfg.criticality = CriticalityParams::for_mode(mode);
            cfg.enable_fault_injection = true;
            cfg.faults.base_rate_per_core_s = 0.05;
            const RunMetrics m = run_one(std::move(cfg), kHorizon);
            injected += m.faults_injected;
            detected += m.faults_detected;
            interval.add(m.test_interval_s.mean());
            open_gap.add(m.max_open_test_gap_s);
            rate.add(m.tests_per_core_per_s);
            for (double v : m.detection_latency_samples.samples()) {
                latencies.add(v);
            }
        }
        const std::string key(to_string(mode));
        report.metric("tests_per_core_per_s." + key, rate.mean());
        report.metric("max_open_gap_s." + key, open_gap.mean());
        table.add_row(
            {std::string(to_string(mode)), fmt(rate.mean(), 2),
             fmt(interval.mean(), 2), fmt(open_gap.mean(), 2),
             fmt(latencies.empty() ? 0.0 : latencies.mean(), 2),
             fmt(detected) + "/" + fmt(injected)});
    }
    std::printf("%s\n", table.to_string().c_str());
    report.write();
    return 0;
}
