// A2 -- ablation: PID power capping vs naive bang-bang capping (the
// ICCD'14 companion claim the paper's power substrate rests on: PID-based
// fine-grained capping boosts throughput under a TDP versus a naive
// policy).

#include <cstdio>

#include "bench_common.hpp"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("A2 (ablation): PID vs bang-bang power capping",
                 "PID capping delivers more throughput under the same TDP "
                 "with fewer violations");

    const int kSeeds = seeds(opt, 3);
    const SimDuration kHorizon = horizon(opt, 8.0, 1.0);
    BenchReport report("a2_capping", opt);
    TablePrinter table({"occupancy", "capping", "work Gcycles/s",
                        "mean power [W]", "TDP viol.",
                        "worst overshoot [W]", "DVFS steps"});
    for (double occ : {0.5, 0.8, 1.1}) {
        for (CappingMode mode : {CappingMode::Pid, CappingMode::BangBang}) {
            SystemConfig cfg = base_config(67);
            set_occupancy(cfg, occ);
            cfg.power.mode = mode;
            cfg.scheduler = SchedulerKind::None;  // isolate the capping loop
            const Replicates r = replicate(cfg, kSeeds, kHorizon);
            const double steps =
                r.mean_u64(&RunMetrics::dvfs_throttle_steps) +
                r.mean_u64(&RunMetrics::dvfs_boost_steps);
            const std::string key =
                std::string(mode == CappingMode::Pid ? "pid" : "bang_bang") +
                ".occ" + fmt(occ, 1);
            report.metric("work_gcycles_per_s." + key,
                          r.mean(&RunMetrics::work_cycles_per_s) / 1e9);
            report.metric("tdp_violation_rate." + key,
                          r.mean(&RunMetrics::tdp_violation_rate));
            table.add_row(
                {fmt(occ, 1),
                 mode == CappingMode::Pid ? "PID" : "bang-bang",
                 fmt(r.mean(&RunMetrics::work_cycles_per_s) / 1e9, 2),
                 fmt(r.mean(&RunMetrics::mean_power_w), 1),
                 fmt_pct(r.mean(&RunMetrics::tdp_violation_rate), 3),
                 fmt(r.mean(&RunMetrics::worst_overshoot_w), 2),
                 fmt(steps, 0)});
        }
        table.add_separator();
    }
    std::printf("%s\n", table.to_string().c_str());
    report.write();
    return 0;
}
