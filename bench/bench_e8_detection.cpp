// E8 -- "Fault detection latency" (reconstructed Fig.).
//
// Claim under test: online testing turns silent wear-out faults into
// detected, decommissioned cores; the criticality-driven scheduler finds
// faults on stressed cores sooner than a blind periodic one, and without
// testing faults linger and corrupt workload output.
//
// Fault rates are scaled to simulation time (see DESIGN.md substitutions);
// only relative latencies are meaningful.

#include <cstdio>

#include "bench_common.hpp"

using namespace mcs;
using namespace mcs::bench;

int main(int argc, char** argv) {
    const BenchOptions opt = parse_options(argc, argv);
    print_header("E8: fault detection latency",
                 "testing bounds detection latency; criticality-driven "
                 "scheduling detects faults on stressed cores sooner");

    const int kSeeds = seeds(opt, 4);
    const SimDuration kHorizon = horizon(opt, 12.0, 1.5);
    BenchReport report("e8_detection", opt);
    const std::vector<SchedulerKind> schedulers{
        SchedulerKind::PowerAware, SchedulerKind::Periodic,
        SchedulerKind::Greedy, SchedulerKind::None};

    TablePrinter table({"scheduler", "injected", "detected", "escape ratio",
                        "mean latency [s]", "p95 latency [s]",
                        "corrupted tasks"});
    TablePrinter kinds({"scheduler", "stuck-at det/inj", "delay det/inj",
                        "low-voltage det/inj"});
    for (SchedulerKind sched : schedulers) {
        SampleSet latencies;
        std::uint64_t injected = 0, detected = 0, escapes = 0, corrupted = 0;
        std::uint64_t kind_inj[3] = {0, 0, 0};
        std::uint64_t kind_det[3] = {0, 0, 0};
        for (int s = 0; s < kSeeds; ++s) {
            SystemConfig cfg = base_config(53 + static_cast<unsigned>(s));
            set_occupancy(cfg, 0.6);
            cfg.scheduler = sched;
            cfg.enable_fault_injection = true;
            cfg.faults.base_rate_per_core_s = 0.05;
            ManycoreSystem sys(cfg);
            const RunMetrics m = sys.run(kHorizon);
            injected += m.faults_injected;
            detected += m.faults_detected;
            escapes += m.test_escapes;
            corrupted += m.corrupted_tasks;
            for (double v : m.detection_latency_samples.samples()) {
                latencies.add(v);
            }
            for (const Fault& f : sys.fault_injector()->history()) {
                ++kind_inj[static_cast<int>(f.kind)];
                kind_det[static_cast<int>(f.kind)] += f.detected ? 1 : 0;
            }
        }
        kinds.add_row({std::string(to_string(sched)),
                       fmt(kind_det[0]) + "/" + fmt(kind_inj[0]),
                       fmt(kind_det[1]) + "/" + fmt(kind_inj[1]),
                       fmt(kind_det[2]) + "/" + fmt(kind_inj[2])});
        const double mean =
            latencies.empty() ? 0.0 : latencies.mean();
        const double p95 =
            latencies.empty() ? 0.0 : latencies.quantile(0.95);
        const double escape_ratio =
            injected > 0
                ? 1.0 - static_cast<double>(detected) /
                            static_cast<double>(injected)
                : 0.0;
        const std::string key(to_string(sched));
        report.metric("escape_ratio." + key, escape_ratio);
        report.metric("mean_detection_latency_s." + key, mean);
        table.add_row({std::string(to_string(sched)), fmt(injected),
                       fmt(detected), fmt_pct(escape_ratio, 1), fmt(mean, 2),
                       fmt(p95, 2), fmt(corrupted)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("-- detection by fault class (rotation covers every "
                "manifestation window; fixed-level baselines are blind to "
                "part of the mix) --\n%s\n",
                kinds.to_string().c_str());
    std::printf("note: 'escape ratio' counts faults still latent at the end "
                "of the run (finite horizon), not permanent escapes.\n");
    report.write();
    return 0;
}
