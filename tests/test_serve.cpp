// Unit tests for the mcs_serve query surface: the hardened HTTP parser
// (including keep-alive pipelining), query canonicalization (the
// soundness contract of the result cache), snapshot-pool fingerprint
// validation, the LRU result cache (positive and negative entries,
// persistence), hot reload (RCU pool swap), and -- the headline property
// -- that a cached what-if response is byte-identical to a fresh
// computation, over a real socket as much as in process.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "core/config_bridge.hpp"
#include "core/system.hpp"
#include "core/system_factory.hpp"
#include "serve/http.hpp"
#include "serve/query.hpp"
#include "serve/result_cache.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/snapshot_pool.hpp"
#include "support/differential.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/config.hpp"
#include "util/require.hpp"

namespace mcs {
namespace {

using serve::CachedResponse;
using serve::HttpLimits;
using serve::HttpRequest;
using serve::HttpRequestParser;
using serve::HttpResponse;
using testsupport::TempFile;

// ---------------------------------------------------------------- HTTP --

HttpRequestParser::State feed_all(HttpRequestParser& p,
                                  std::string_view text) {
    // Feed byte-by-byte: exercises the incremental path sockets produce.
    HttpRequestParser::State s = p.state();
    for (char c : text) {
        s = p.feed(std::string_view(&c, 1));
        if (s != HttpRequestParser::State::NeedMore) break;
    }
    return s;
}

TEST(HttpParser, ParsesPostWithBody) {
    HttpRequestParser p;
    const std::string raw =
        "POST /whatif?x=1 HTTP/1.1\r\n"
        "Host: localhost\r\n"
        "Content-Type: application/json\r\n"
        "Content-Length: 4\r\n"
        "\r\n"
        "{\"\"}";
    ASSERT_EQ(feed_all(p, raw), HttpRequestParser::State::Done);
    const HttpRequest& r = p.request();
    EXPECT_EQ(r.method, "POST");
    EXPECT_EQ(r.path, "/whatif");
    EXPECT_EQ(r.query, "x=1");
    EXPECT_EQ(r.version, "HTTP/1.1");
    EXPECT_EQ(r.headers.at("content-type"), "application/json");
    EXPECT_EQ(r.body, "{\"\"}");
}

TEST(HttpParser, ParsesGetWithoutBody) {
    HttpRequestParser p;
    ASSERT_EQ(p.feed("GET /healthz HTTP/1.1\r\n\r\n"),
              HttpRequestParser::State::Done);
    EXPECT_EQ(p.request().method, "GET");
    EXPECT_EQ(p.request().path, "/healthz");
    EXPECT_TRUE(p.request().body.empty());
}

TEST(HttpParser, RejectsMalformedRequestLine) {
    HttpRequestParser p;
    ASSERT_EQ(p.feed("NONSENSE\r\n\r\n"), HttpRequestParser::State::Error);
    EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParser, RejectsOversizedHead) {
    HttpLimits limits;
    limits.max_head_bytes = 64;
    HttpRequestParser p(limits);
    const std::string raw = "GET /" + std::string(200, 'a') + " HTTP/1.1\r\n";
    ASSERT_EQ(p.feed(raw), HttpRequestParser::State::Error);
    EXPECT_EQ(p.error_status(), 431);
}

TEST(HttpParser, RejectsTooManyHeaders) {
    HttpLimits limits;
    limits.max_headers = 2;
    HttpRequestParser p(limits);
    const std::string raw =
        "GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n";
    ASSERT_EQ(p.feed(raw), HttpRequestParser::State::Error);
    EXPECT_EQ(p.error_status(), 431);
}

TEST(HttpParser, RejectsOversizedBody) {
    HttpLimits limits;
    limits.max_body_bytes = 8;
    HttpRequestParser p(limits);
    const std::string raw =
        "POST /whatif HTTP/1.1\r\nContent-Length: 9\r\n\r\n";
    ASSERT_EQ(p.feed(raw), HttpRequestParser::State::Error);
    EXPECT_EQ(p.error_status(), 413);
}

TEST(HttpParser, RejectsChunkedTransferEncoding) {
    HttpRequestParser p;
    const std::string raw =
        "POST /whatif HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
    ASSERT_EQ(p.feed(raw), HttpRequestParser::State::Error);
    EXPECT_EQ(p.error_status(), 501);
}

TEST(HttpParser, PipelinedBytesStayBufferedForNextRequest) {
    // Pre-pipelining, trailing bytes were a 400; now they are the next
    // request. One feed carries a complete POST plus a complete GET.
    HttpRequestParser p;
    ASSERT_EQ(p.feed("POST /whatif HTTP/1.1\r\nContent-Length: 2\r\n\r\n"
                     "{}GET /healthz HTTP/1.1\r\n\r\n"),
              HttpRequestParser::State::Done);
    EXPECT_EQ(p.request().method, "POST");
    EXPECT_EQ(p.request().body, "{}");
    EXPECT_TRUE(p.mid_request());  // the GET is already buffered

    ASSERT_EQ(p.next_request(), HttpRequestParser::State::Done);
    EXPECT_EQ(p.request().method, "GET");
    EXPECT_EQ(p.request().path, "/healthz");
    EXPECT_TRUE(p.request().body.empty());

    ASSERT_EQ(p.next_request(), HttpRequestParser::State::NeedMore);
    EXPECT_FALSE(p.mid_request());  // idle between requests
}

TEST(HttpParser, PipelinedRequestSplitAcrossSegments) {
    // The second request of a pipeline arrives torn across TCP segments:
    // its head starts in the first request's segment and finishes later.
    HttpRequestParser p;
    ASSERT_EQ(p.feed("GET /a HTTP/1.1\r\n\r\nGET /b HT"),
              HttpRequestParser::State::Done);
    EXPECT_EQ(p.request().path, "/a");

    ASSERT_EQ(p.next_request(), HttpRequestParser::State::NeedMore);
    EXPECT_TRUE(p.mid_request());
    ASSERT_EQ(p.feed("TP/1.1\r\nHost: x\r\n\r\n"),
              HttpRequestParser::State::Done);
    EXPECT_EQ(p.request().path, "/b");
    EXPECT_EQ(p.request().headers.at("host"), "x");
}

TEST(HttpParser, RequestKeepAliveSemantics) {
    HttpRequest r;
    r.version = "HTTP/1.1";
    EXPECT_TRUE(serve::request_keep_alive(r));  // 1.1 default
    r.headers["connection"] = "close";
    EXPECT_FALSE(serve::request_keep_alive(r));
    r.headers["connection"] = "Keep-Alive";
    EXPECT_TRUE(serve::request_keep_alive(r));

    r.version = "HTTP/1.0";
    r.headers.clear();
    EXPECT_FALSE(serve::request_keep_alive(r));  // 1.0 default
    r.headers["connection"] = "keep-alive";
    EXPECT_TRUE(serve::request_keep_alive(r));
}

TEST(HttpParser, SerializeResponseCarriesFraming) {
    HttpResponse resp;
    resp.status = 429;
    resp.body = "{\"error\":\"busy\"}";
    resp.extra_headers.push_back({"Retry-After", "1"});
    const std::string wire = serve::serialize_response(resp);
    EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 16\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
    EXPECT_NE(wire.find("\r\n\r\n{\"error\":\"busy\"}"), std::string::npos);

    // Keep-alive flips exactly the Connection header.
    const std::string ka = serve::serialize_response(resp, true);
    EXPECT_NE(ka.find("Connection: keep-alive\r\n"), std::string::npos);
    EXPECT_EQ(ka.find("Connection: close\r\n"), std::string::npos);

    // The idle-timeout status has a real reason phrase.
    HttpResponse timeout;
    timeout.status = 408;
    EXPECT_NE(serve::serialize_response(timeout)
                  .find("HTTP/1.1 408 Request Timeout\r\n"),
              std::string::npos);
}

// ----------------------------------------------------- canonicalization --

TEST(WhatIfQuery, OverrideOrderAndNumberSpellingCanonicalize) {
    const std::string a =
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"warm\","
        "\"overrides\":{\"scheduler\":\"greedy\",\"tdp_scale\":0.8}}";
    const std::string b =
        "{ \"overrides\" : {\"tdp_scale\": 8e-1, \"scheduler\": \"greedy\"},"
        "  \"snapshot\" : \"warm\", \"schema\":\"mcs.whatif_query.v1\" }";
    const serve::WhatIfQuery qa = serve::parse_whatif_query(a);
    const serve::WhatIfQuery qb = serve::parse_whatif_query(b);
    EXPECT_EQ(qa.snapshot, qb.snapshot);
    EXPECT_EQ(qa.overrides, qb.overrides);
    EXPECT_EQ(qa.overrides.at("tdp_scale"), "0.8");
}

TEST(WhatIfQuery, DifferentValuesProduceDifferentCacheKeys) {
    serve::SnapshotEntry entry;
    entry.config_fingerprint = "cfgfp";
    entry.structural_fingerprint = "structfp";
    entry.captured_now = 400 * kMillisecond;
    entry.captured_horizon = kSecond;

    serve::WhatIfQuery q1 = serve::parse_whatif_query(
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"w\","
        "\"overrides\":{\"tdp_scale\":0.8}}");
    serve::WhatIfQuery q2 = serve::parse_whatif_query(
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"w\","
        "\"overrides\":{\"tdp_scale\":0.80}}");
    serve::WhatIfQuery q3 = serve::parse_whatif_query(
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"w\","
        "\"overrides\":{\"tdp_scale\":0.9}}");
    serve::WhatIfQuery q4 = serve::parse_whatif_query(
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"w\","
        "\"overrides\":{\"tdp_scale\":0.8},\"seconds\":0.7}");

    EXPECT_EQ(serve::cache_key(entry, q1), serve::cache_key(entry, q2));
    EXPECT_NE(serve::cache_key(entry, q1), serve::cache_key(entry, q3));
    EXPECT_NE(serve::cache_key(entry, q1), serve::cache_key(entry, q4));

    // The key also pins the snapshot identity itself.
    serve::SnapshotEntry other = entry;
    other.config_fingerprint = "othercfg";
    EXPECT_NE(serve::cache_key(entry, q1), serve::cache_key(other, q1));
}

TEST(WhatIfQuery, RejectsBadInput) {
    // Missing schema tag.
    EXPECT_THROW(serve::parse_whatif_query("{\"snapshot\":\"w\"}"),
                 RequireError);
    // Structural key smuggled through overrides.
    EXPECT_THROW(
        serve::parse_whatif_query(
            "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"w\","
            "\"overrides\":{\"width\":16}}"),
        RequireError);
    // Non-scalar override value.
    EXPECT_THROW(
        serve::parse_whatif_query(
            "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"w\","
            "\"overrides\":{\"scheduler\":[\"greedy\"]}}"),
        RequireError);
    // Unknown top-level member.
    EXPECT_THROW(
        serve::parse_whatif_query(
            "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"w\","
            "\"bogus\":1}"),
        RequireError);
    // Negative horizon.
    EXPECT_THROW(
        serve::parse_whatif_query(
            "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"w\","
            "\"seconds\":-1}"),
        RequireError);
    // Malformed JSON and a nesting bomb (network-input limits).
    EXPECT_THROW(serve::parse_whatif_query("{\"schema\":"), RequireError);
    EXPECT_THROW(serve::parse_whatif_query(std::string(64, '[')),
                 RequireError);
}

TEST(WhatIfQuery, AllowedOverridesAreThePolicyKnobs) {
    EXPECT_TRUE(serve::is_allowed_override("scheduler"));
    EXPECT_TRUE(serve::is_allowed_override("tdp_scale"));
    EXPECT_TRUE(serve::is_allowed_override("guard_band"));
    EXPECT_FALSE(serve::is_allowed_override("width"));
    EXPECT_FALSE(serve::is_allowed_override("seed"));
    EXPECT_FALSE(serve::is_allowed_override("occupancy"));
}

// ------------------------------------------------------------ the cache --

std::shared_ptr<const CachedResponse> cached(const char* body,
                                             int status = 200) {
    return std::make_shared<const CachedResponse>(
        CachedResponse{status, body});
}

TEST(ResultCache, LruEvictionAndRefresh) {
    serve::ResultCache cache(2);
    cache.insert("a", cached("A"));
    cache.insert("b", cached("B"));
    ASSERT_NE(cache.find("a"), nullptr);  // refreshes "a" -> "b" is LRU
    cache.insert("c", cached("C"));       // evicts "b"
    EXPECT_EQ(cache.find("b"), nullptr);
    EXPECT_NE(cache.find("a"), nullptr);
    EXPECT_NE(cache.find("c"), nullptr);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ResultCache, DuplicateInsertKeepsFirstValue) {
    // Two workers racing on the same miss must converge on one answer.
    serve::ResultCache cache(4);
    cache.insert("k", cached("first"));
    cache.insert("k", cached("second"));
    ASSERT_NE(cache.find("k"), nullptr);
    EXPECT_EQ(cache.find("k")->body, "first");
}

TEST(ResultCache, ZeroCapacityDisablesCaching) {
    serve::ResultCache cache(0);
    cache.insert("k", cached("v"));
    EXPECT_EQ(cache.find("k"), nullptr);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, NegativeEntriesShareTheLru) {
    // Error envelopes are first-class entries: same capacity, same LRU
    // ordering, same eviction pressure as positive results.
    serve::ResultCache cache(2);
    cache.insert("bad", cached("{\"error\":\"x\"}", 400));
    cache.insert("good", cached("OK"));
    EXPECT_EQ(cache.negative_size(), 1u);

    ASSERT_NE(cache.find("good"), nullptr);  // "bad" becomes LRU
    cache.insert("newer", cached("N"));      // evicts the negative entry
    EXPECT_EQ(cache.find("bad"), nullptr);
    EXPECT_EQ(cache.negative_size(), 0u);
    EXPECT_EQ(cache.evictions(), 1u);

    ASSERT_NE(cache.find("newer"), nullptr);
    EXPECT_EQ(cache.find("newer")->status, 200);
}

TEST(ResultCache, PersistenceRoundTripsEntries) {
    TempFile file("serve_cache");
    {
        serve::ResultCache cache(8);
        cache.insert("k1", cached("body \"quoted\"\nline2"));
        cache.insert("k2", cached("{\"error\":\"bad horizon\"}", 400));
        cache.save(file.path());
    }
    serve::ResultCache restored(8);
    EXPECT_EQ(restored.load(file.path()), 2u);
    ASSERT_NE(restored.find("k1"), nullptr);
    EXPECT_EQ(restored.find("k1")->status, 200);
    EXPECT_EQ(restored.find("k1")->body, "body \"quoted\"\nline2");
    ASSERT_NE(restored.find("k2"), nullptr);
    EXPECT_EQ(restored.find("k2")->status, 400);
    EXPECT_EQ(restored.negative_size(), 1u);

    // A missing file is a cold start, not an error.
    serve::ResultCache cold(8);
    EXPECT_EQ(cold.load(file.path() + ".does-not-exist"), 0u);
    EXPECT_EQ(cold.size(), 0u);
}

// ------------------------------------------------ snapshots + service --

/// The differential-baseline run expressed as repo Config keys, so
/// system_config_from(base) reproduces the captured structure.
Config serve_base_config() {
    Config cfg;
    cfg.set("side", "4");
    cfg.set("seed", "42");
    cfg.set("min_tasks", "2");
    cfg.set("max_tasks", "6");
    cfg.set("occupancy", "0.5");
    return cfg;
}

/// Runs the base config to 1 s, checkpointing at 400 ms, and returns the
/// snapshot document.
telemetry::JsonValue make_snapshot_doc(const Config& base) {
    TempFile file("serve_snapshot");
    ManycoreSystem sys(system_config_from(base));
    sys.checkpoint_at(400 * kMillisecond, file.path());
    sys.run(kSecond);
    return load_snapshot_file(file.path());
}

TEST(SnapshotPool, StructuralMismatchIsRejectedAtLoad) {
    const Config base = serve_base_config();
    telemetry::JsonValue doc = make_snapshot_doc(base);

    Config wrong = base;
    wrong.set("side", "6");  // different geometry than the captured chip
    EXPECT_THROW(
        serve::SnapshotPool::from_document("warm", doc, wrong),
        RequireError);

    // Policy knobs are non-structural: forking them must be accepted.
    Config forked = base;
    forked.set("scheduler", "greedy");
    serve::SnapshotPool pool =
        serve::SnapshotPool::from_document("warm", std::move(doc), forked);
    ASSERT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.entries()[0].captured_now, 400 * kMillisecond);
    EXPECT_EQ(pool.entries()[0].captured_horizon, kSecond);
}

HttpRequest whatif_request(const std::string& body) {
    HttpRequest req;
    req.method = "POST";
    req.path = "/whatif";
    req.body = body;
    return req;
}

std::string header(const HttpResponse& resp, const std::string& name) {
    for (const auto& [k, v] : resp.extra_headers) {
        if (k == name) return v;
    }
    return "";
}

class ServeServiceTest : public ::testing::Test {
protected:
    ServeServiceTest()
        : base_(serve_base_config()),
          doc_(make_snapshot_doc(base_)),
          service_(serve::SnapshotPool::from_document("warm", doc_, base_),
                   serve::ServiceOptions{}, registry_) {}

    Config base_;
    telemetry::JsonValue doc_;
    telemetry::MetricsRegistry registry_;
    serve::ServeService service_;
};

TEST_F(ServeServiceTest, CachedResponseIsByteIdenticalToFresh) {
    const std::string body =
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"warm\","
        "\"overrides\":{\"scheduler\":\"greedy\",\"tdp_scale\":0.8}}";

    const HttpResponse fresh = service_.handle(whatif_request(body));
    ASSERT_EQ(fresh.status, 200) << fresh.body;
    EXPECT_EQ(header(fresh, "X-Cache"), "miss");

    const HttpResponse cached = service_.handle(whatif_request(body));
    ASSERT_EQ(cached.status, 200);
    EXPECT_EQ(header(cached, "X-Cache"), "hit");
    EXPECT_EQ(cached.body, fresh.body);  // the headline byte-identity

    // A semantically identical but differently spelled query also hits --
    // and yields the same bytes.
    const std::string respelled =
        "{\"snapshot\":\"warm\",\"overrides\":{\"tdp_scale\":8e-1,"
        "\"scheduler\":\"greedy\"},\"schema\":\"mcs.whatif_query.v1\"}";
    const HttpResponse canonical = service_.handle(whatif_request(respelled));
    ASSERT_EQ(canonical.status, 200);
    EXPECT_EQ(header(canonical, "X-Cache"), "hit");
    EXPECT_EQ(canonical.body, fresh.body);

    // And both match a direct, service-free computation.
    const serve::SnapshotEntry* entry = service_.pool()->find("warm");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(serve::compute_whatif(*entry, serve::parse_whatif_query(body)),
              fresh.body);
}

TEST_F(ServeServiceTest, ShorterHorizonIsAValidFork) {
    const std::string body =
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"warm\","
        "\"seconds\":0.7}";
    const HttpResponse resp = service_.handle(whatif_request(body));
    EXPECT_EQ(resp.status, 200) << resp.body;
}

TEST_F(ServeServiceTest, HorizonOutsideCapturedWindowIs400) {
    // Past the captured horizon: the arrival trace ends there.
    EXPECT_EQ(service_
                  .handle(whatif_request(
                      "{\"schema\":\"mcs.whatif_query.v1\","
                      "\"snapshot\":\"warm\",\"seconds\":5}"))
                  .status,
              400);
    // Before the capture point: nothing left to simulate.
    EXPECT_EQ(service_
                  .handle(whatif_request(
                      "{\"schema\":\"mcs.whatif_query.v1\","
                      "\"snapshot\":\"warm\",\"seconds\":0.2}"))
                  .status,
              400);
}

TEST_F(ServeServiceTest, NegativeResultsAreCachedAndByteStable) {
    // A deterministic failure (horizon past the captured trace) is an
    // answer: the second ask must hit the negative cache and return the
    // exact same error bytes.
    const std::string body =
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"warm\","
        "\"seconds\":5}";
    const HttpResponse first = service_.handle(whatif_request(body));
    ASSERT_EQ(first.status, 400);
    EXPECT_EQ(header(first, "X-Cache"), "miss");

    const HttpResponse second = service_.handle(whatif_request(body));
    ASSERT_EQ(second.status, 400);
    EXPECT_EQ(header(second, "X-Cache"), "hit");
    EXPECT_EQ(second.body, first.body);
    EXPECT_EQ(service_.cache().negative_size(), 1u);

    HttpRequest metrics;
    metrics.method = "GET";
    metrics.path = "/metrics";
    const telemetry::JsonValue doc =
        telemetry::parse_json(service_.handle(metrics).body);
    EXPECT_EQ(doc.at("counters").at("serve.negative_cache_hits").number,
              1.0);
    EXPECT_EQ(doc.at("counters").at("serve.cache_misses").number, 1.0);
}

TEST_F(ServeServiceTest, ReloadSwapsPoolAndPinnedGenerationSurvives) {
    const std::string body =
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"warm\","
        "\"overrides\":{\"scheduler\":\"greedy\"}}";
    const HttpResponse before = service_.handle(whatif_request(body));
    ASSERT_EQ(before.status, 200) << before.body;

    // Without a loader the route refuses rather than pretending.
    HttpRequest reload_req;
    reload_req.method = "POST";
    reload_req.path = "/admin/reload";
    EXPECT_EQ(service_.handle(reload_req).status, 409);

    // Pin the current generation the way an in-flight query would, then
    // reload: the pinned pool must stay fully usable (RCU grace period).
    const std::shared_ptr<const serve::SnapshotPool> pinned =
        service_.pool();
    service_.set_pool_loader([this] {
        return serve::SnapshotPool::from_document("warm", doc_, base_);
    });
    const HttpResponse reloaded = service_.handle(reload_req);
    EXPECT_EQ(reloaded.status, 200) << reloaded.body;
    EXPECT_NE(service_.pool(), pinned);  // a new generation is published

    const serve::SnapshotEntry* old_entry = pinned->find("warm");
    ASSERT_NE(old_entry, nullptr);
    EXPECT_EQ(serve::compute_whatif(*old_entry,
                                    serve::parse_whatif_query(body)),
              before.body);

    // Same files, same fingerprints: answers after the swap are
    // byte-identical (and still cache hits -- keys embed fingerprints).
    const HttpResponse after = service_.handle(whatif_request(body));
    ASSERT_EQ(after.status, 200);
    EXPECT_EQ(header(after, "X-Cache"), "hit");
    EXPECT_EQ(after.body, before.body);

    // A loader that throws must keep the old pool published.
    service_.set_pool_loader(
        []() -> serve::SnapshotPool { throw RequireError("disk gone"); });
    const std::shared_ptr<const serve::SnapshotPool> current =
        service_.pool();
    EXPECT_EQ(service_.handle(reload_req).status, 500);
    EXPECT_EQ(service_.pool(), current);
}

TEST_F(ServeServiceTest, RoutesAndErrorPaths) {
    HttpRequest healthz;
    healthz.method = "GET";
    healthz.path = "/healthz";
    const HttpResponse h = service_.handle(healthz);
    EXPECT_EQ(h.status, 200);
    EXPECT_NE(h.body.find("\"status\""), std::string::npos);

    HttpRequest snapshots;
    snapshots.method = "GET";
    snapshots.path = "/snapshots";
    EXPECT_EQ(service_.handle(snapshots).status, 200);

    HttpRequest metrics;
    metrics.method = "GET";
    metrics.path = "/metrics";
    const HttpResponse m = service_.handle(metrics);
    EXPECT_EQ(m.status, 200);
    EXPECT_NO_THROW(telemetry::parse_json(m.body));

    HttpRequest wrong_method;
    wrong_method.method = "DELETE";
    wrong_method.path = "/whatif";
    EXPECT_EQ(service_.handle(wrong_method).status, 405);

    HttpRequest reload_get;
    reload_get.method = "GET";
    reload_get.path = "/admin/reload";
    EXPECT_EQ(service_.handle(reload_get).status, 405);

    HttpRequest unknown;
    unknown.method = "GET";
    unknown.path = "/nope";
    EXPECT_EQ(service_.handle(unknown).status, 404);

    // Unknown snapshot name -> 404 with a JSON error body.
    const HttpResponse missing = service_.handle(whatif_request(
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"cold\"}"));
    EXPECT_EQ(missing.status, 404);
    EXPECT_NE(missing.body.find("\"error\""), std::string::npos);

    // Malformed body -> 400, not a crash.
    EXPECT_EQ(service_.handle(whatif_request("not json")).status, 400);
}

TEST_F(ServeServiceTest, MetricsCountHitsAndMisses) {
    const std::string body =
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"warm\","
        "\"overrides\":{\"scheduler\":\"none\"}}";
    service_.handle(whatif_request(body));
    service_.handle(whatif_request(body));

    HttpRequest metrics;
    metrics.method = "GET";
    metrics.path = "/metrics";
    const std::string m = service_.handle(metrics).body;
    const telemetry::JsonValue doc = telemetry::parse_json(m);
    const telemetry::JsonValue& counters = doc.at("counters");
    EXPECT_EQ(counters.at("serve.cache_misses").number, 1.0);
    EXPECT_EQ(counters.at("serve.cache_hits").number, 1.0);
    EXPECT_EQ(counters.at("serve.whatif_requests").number, 2.0);
}

// ------------------------------------------------- the socket front end --

/// A small blocking test client speaking enough HTTP/1.1 to exercise
/// keep-alive and pipelining against the real event loop.
class TestClient {
public:
    explicit TestClient(int port) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        MCS_REQUIRE(fd_ >= 0, "client socket failed");
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        MCS_REQUIRE(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                              sizeof addr) == 0,
                    "client connect failed");
    }
    ~TestClient() {
        if (fd_ >= 0) ::close(fd_);
    }
    TestClient(const TestClient&) = delete;
    TestClient& operator=(const TestClient&) = delete;

    void send_all(std::string_view bytes) {
        while (!bytes.empty()) {
            const ssize_t n =
                ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
            ASSERT_GT(n, 0) << "client send failed";
            bytes.remove_prefix(static_cast<std::size_t>(n));
        }
    }

    struct Response {
        int status = 0;
        std::map<std::string, std::string> headers;  // lower-cased names
        std::string body;
    };

    /// Reads exactly one response (blocking); fails the test on EOF or a
    /// malformed frame. Leftover pipelined bytes stay buffered.
    Response read_response() {
        Response resp;
        std::size_t head_end;
        while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
            if (!fill()) {
                ADD_FAILURE() << "EOF before response head";
                return resp;
            }
        }
        const std::string head = buffer_.substr(0, head_end);
        std::size_t line_end = head.find("\r\n");
        const std::string status_line =
            head.substr(0, line_end == std::string::npos ? head.size()
                                                         : line_end);
        resp.status = std::stoi(status_line.substr(9, 3));
        std::size_t pos =
            line_end == std::string::npos ? head.size() : line_end + 2;
        while (pos < head.size()) {
            std::size_t eol = head.find("\r\n", pos);
            if (eol == std::string::npos) eol = head.size();
            const std::string line = head.substr(pos, eol - pos);
            const std::size_t colon = line.find(':');
            if (colon != std::string::npos) {
                std::string name = line.substr(0, colon);
                for (char& c : name)
                    c = static_cast<char>(std::tolower(c));
                std::size_t v = colon + 1;
                while (v < line.size() && line[v] == ' ') ++v;
                resp.headers[name] = line.substr(v);
            }
            pos = eol + 2;
        }
        std::size_t body_len = 0;
        if (resp.headers.count("content-length") != 0) {
            body_len = static_cast<std::size_t>(
                std::stoul(resp.headers.at("content-length")));
        }
        while (buffer_.size() < head_end + 4 + body_len) {
            if (!fill()) {
                ADD_FAILURE() << "EOF before response body";
                return resp;
            }
        }
        resp.body = buffer_.substr(head_end + 4, body_len);
        buffer_.erase(0, head_end + 4 + body_len);
        return resp;
    }

    /// True if the server closed the connection (orderly EOF).
    bool at_eof() {
        if (!buffer_.empty()) return false;
        return !fill();
    }

private:
    bool fill() {
        char buf[8192];
        const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
        if (n <= 0) return false;
        buffer_.append(buf, static_cast<std::size_t>(n));
        return true;
    }

    int fd_ = -1;
    std::string buffer_;
};

std::string whatif_wire(const std::string& body, bool close = false) {
    std::string req = "POST /whatif HTTP/1.1\r\nHost: t\r\n";
    if (close) req += "Connection: close\r\n";
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    return req + body;
}

class HttpServerTest : public ::testing::Test {
protected:
    HttpServerTest()
        : base_(serve_base_config()),
          doc_(make_snapshot_doc(base_)),
          service_(serve::SnapshotPool::from_document("warm", doc_, base_),
                   serve::ServiceOptions{}, registry_) {
        service_.set_pool_loader([this] {
            return serve::SnapshotPool::from_document("warm", doc_, base_);
        });
    }

    ~HttpServerTest() override { stop(); }

    void start(serve::ServerOptions opts = {}) {
        opts.port = 0;  // ephemeral
        opts.quiet = true;
        server_ = std::make_unique<serve::HttpServer>(service_, opts);
        thread_ = std::thread([this] { server_->run(); });
    }

    void stop() {
        if (server_ != nullptr) {
            server_->stop();
            thread_.join();
            server_.reset();
        }
    }

    Config base_;
    telemetry::JsonValue doc_;
    telemetry::MetricsRegistry registry_;
    serve::ServeService service_;
    std::unique_ptr<serve::HttpServer> server_;
    std::thread thread_;
};

TEST_F(HttpServerTest, KeepAliveResponsesMatchOneShotByteForByte) {
    start();
    const std::string query =
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"warm\","
        "\"overrides\":{\"scheduler\":\"greedy\",\"tdp_scale\":0.8}}";

    // One-shot client: Connection: close, fresh computation.
    TestClient oneshot(server_->port());
    oneshot.send_all(whatif_wire(query, /*close=*/true));
    const TestClient::Response fresh = oneshot.read_response();
    ASSERT_EQ(fresh.status, 200) << fresh.body;
    EXPECT_EQ(fresh.headers.at("connection"), "close");
    EXPECT_TRUE(oneshot.at_eof());

    // Keep-alive client: two sequential queries over one connection.
    TestClient ka(server_->port());
    ka.send_all(whatif_wire(query));
    const TestClient::Response first = ka.read_response();
    ASSERT_EQ(first.status, 200);
    EXPECT_EQ(first.headers.at("connection"), "keep-alive");
    EXPECT_EQ(first.body, fresh.body);

    ka.send_all(whatif_wire(query));
    const TestClient::Response second = ka.read_response();
    ASSERT_EQ(second.status, 200);
    EXPECT_EQ(second.headers.at("x-cache"), "hit");
    EXPECT_EQ(second.body, fresh.body);  // byte-identity across transports
}

TEST_F(HttpServerTest, PipelinedRequestsAnswerInOrder) {
    start();
    TestClient client(server_->port());
    // Three requests in one write; the third asks to close.
    client.send_all(
        "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
        "GET /snapshots HTTP/1.1\r\nHost: t\r\n\r\n"
        "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    const TestClient::Response r1 = client.read_response();
    const TestClient::Response r2 = client.read_response();
    const TestClient::Response r3 = client.read_response();
    EXPECT_EQ(r1.status, 200);
    EXPECT_NE(r1.body.find("\"status\""), std::string::npos);
    EXPECT_EQ(r2.status, 200);
    EXPECT_NE(r2.body.find("\"snapshots\""), std::string::npos);
    EXPECT_EQ(r3.status, 200);
    EXPECT_EQ(r3.headers.at("connection"), "close");
    EXPECT_TRUE(client.at_eof());
}

TEST_F(HttpServerTest, RequestCapClosesOversizedPipeline) {
    serve::ServerOptions opts;
    opts.max_requests_per_conn = 2;
    start(opts);
    TestClient client(server_->port());
    client.send_all(
        "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
        "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
        "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    const TestClient::Response r1 = client.read_response();
    EXPECT_EQ(r1.headers.at("connection"), "keep-alive");
    const TestClient::Response r2 = client.read_response();
    // The cap turns the final permitted response into a close; the third
    // pipelined request is never answered.
    EXPECT_EQ(r2.status, 200);
    EXPECT_EQ(r2.headers.at("connection"), "close");
    EXPECT_TRUE(client.at_eof());
}

TEST_F(HttpServerTest, IdleConnectionGets408) {
    serve::ServerOptions opts;
    opts.idle_timeout_ms = 100;
    start(opts);
    // A half-written request head counts as idle input, not progress.
    TestClient client(server_->port());
    client.send_all("POST /whatif HTTP/1.1\r\n");
    const TestClient::Response resp = client.read_response();
    EXPECT_EQ(resp.status, 408);
    EXPECT_EQ(resp.headers.at("connection"), "close");
    EXPECT_TRUE(client.at_eof());
}

TEST_F(HttpServerTest, DrainAnswers503OnUndispatchedConnections) {
    start();
    // An idle keep-alive connection (one served request, none in flight)
    // and an accepted-but-unparsed connection must both be told to go.
    TestClient idle(server_->port());
    idle.send_all("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    ASSERT_EQ(idle.read_response().status, 200);

    TestClient unparsed(server_->port());
    unparsed.send_all("POST /whatif HTTP/1.1\r\n");  // never finishes
    // Give the loop a beat to accept and read the fragment.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    server_->stop();
    const TestClient::Response r_idle = idle.read_response();
    EXPECT_EQ(r_idle.status, 503);
    EXPECT_EQ(r_idle.headers.at("connection"), "close");
    EXPECT_TRUE(idle.at_eof());

    const TestClient::Response r_unparsed = unparsed.read_response();
    EXPECT_EQ(r_unparsed.status, 503);
    EXPECT_EQ(r_unparsed.headers.at("connection"), "close");
    EXPECT_TRUE(unparsed.at_eof());

    thread_.join();
    server_.reset();
}

TEST_F(HttpServerTest, ReloadOverSocketKeepsAnswersByteIdentical) {
    start();
    const std::string query =
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"warm\","
        "\"overrides\":{\"tdp_scale\":0.9}}";
    TestClient client(server_->port());

    client.send_all(whatif_wire(query));
    const TestClient::Response before = client.read_response();
    ASSERT_EQ(before.status, 200) << before.body;

    // Reload over the same keep-alive connection (the HTTP twin of
    // SIGHUP), then ask again: same fingerprints, same bytes.
    client.send_all(
        "POST /admin/reload HTTP/1.1\r\nHost: t\r\n"
        "Content-Length: 0\r\n\r\n");
    const TestClient::Response reloaded = client.read_response();
    ASSERT_EQ(reloaded.status, 200) << reloaded.body;
    EXPECT_NE(reloaded.body.find("\"reloaded\""), std::string::npos);

    client.send_all(whatif_wire(query, /*close=*/true));
    const TestClient::Response after = client.read_response();
    ASSERT_EQ(after.status, 200);
    EXPECT_EQ(after.body, before.body);
    EXPECT_TRUE(client.at_eof());

    // request_reload() (the SIGHUP byte) drives the same path; poll the
    // metrics until the asynchronous reload lands.
    server_->request_reload();
    for (int i = 0; i < 200; ++i) {
        TestClient poll(server_->port());
        poll.send_all(
            "GET /metrics HTTP/1.1\r\nHost: t\r\n"
            "Connection: close\r\n\r\n");
        const TestClient::Response m = poll.read_response();
        ASSERT_EQ(m.status, 200);
        const telemetry::JsonValue docm = telemetry::parse_json(m.body);
        if (docm.at("counters").at("serve.pool_reloads").number >= 2.0) {
            return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "SIGHUP-style reload never landed in the metrics";
}

}  // namespace
}  // namespace mcs
