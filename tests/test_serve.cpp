// Unit tests for the mcs_serve query surface: the hardened HTTP parser,
// query canonicalization (the soundness contract of the result cache),
// snapshot-pool fingerprint validation, the LRU result cache, and -- the
// headline property -- that a cached what-if response is byte-identical
// to a fresh computation.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/config_bridge.hpp"
#include "core/system.hpp"
#include "core/system_factory.hpp"
#include "serve/http.hpp"
#include "serve/query.hpp"
#include "serve/result_cache.hpp"
#include "serve/service.hpp"
#include "serve/snapshot_pool.hpp"
#include "support/differential.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/config.hpp"
#include "util/require.hpp"

namespace mcs {
namespace {

using serve::HttpLimits;
using serve::HttpRequest;
using serve::HttpRequestParser;
using serve::HttpResponse;
using testsupport::TempFile;

// ---------------------------------------------------------------- HTTP --

HttpRequestParser::State feed_all(HttpRequestParser& p,
                                  std::string_view text) {
    // Feed byte-by-byte: exercises the incremental path sockets produce.
    HttpRequestParser::State s = p.state();
    for (char c : text) {
        s = p.feed(std::string_view(&c, 1));
        if (s != HttpRequestParser::State::NeedMore) break;
    }
    return s;
}

TEST(HttpParser, ParsesPostWithBody) {
    HttpRequestParser p;
    const std::string raw =
        "POST /whatif?x=1 HTTP/1.1\r\n"
        "Host: localhost\r\n"
        "Content-Type: application/json\r\n"
        "Content-Length: 4\r\n"
        "\r\n"
        "{\"\"}";
    ASSERT_EQ(feed_all(p, raw), HttpRequestParser::State::Done);
    const HttpRequest& r = p.request();
    EXPECT_EQ(r.method, "POST");
    EXPECT_EQ(r.path, "/whatif");
    EXPECT_EQ(r.query, "x=1");
    EXPECT_EQ(r.version, "HTTP/1.1");
    EXPECT_EQ(r.headers.at("content-type"), "application/json");
    EXPECT_EQ(r.body, "{\"\"}");
}

TEST(HttpParser, ParsesGetWithoutBody) {
    HttpRequestParser p;
    ASSERT_EQ(p.feed("GET /healthz HTTP/1.1\r\n\r\n"),
              HttpRequestParser::State::Done);
    EXPECT_EQ(p.request().method, "GET");
    EXPECT_EQ(p.request().path, "/healthz");
    EXPECT_TRUE(p.request().body.empty());
}

TEST(HttpParser, RejectsMalformedRequestLine) {
    HttpRequestParser p;
    ASSERT_EQ(p.feed("NONSENSE\r\n\r\n"), HttpRequestParser::State::Error);
    EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParser, RejectsOversizedHead) {
    HttpLimits limits;
    limits.max_head_bytes = 64;
    HttpRequestParser p(limits);
    const std::string raw = "GET /" + std::string(200, 'a') + " HTTP/1.1\r\n";
    ASSERT_EQ(p.feed(raw), HttpRequestParser::State::Error);
    EXPECT_EQ(p.error_status(), 431);
}

TEST(HttpParser, RejectsTooManyHeaders) {
    HttpLimits limits;
    limits.max_headers = 2;
    HttpRequestParser p(limits);
    const std::string raw =
        "GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n";
    ASSERT_EQ(p.feed(raw), HttpRequestParser::State::Error);
    EXPECT_EQ(p.error_status(), 431);
}

TEST(HttpParser, RejectsOversizedBody) {
    HttpLimits limits;
    limits.max_body_bytes = 8;
    HttpRequestParser p(limits);
    const std::string raw =
        "POST /whatif HTTP/1.1\r\nContent-Length: 9\r\n\r\n";
    ASSERT_EQ(p.feed(raw), HttpRequestParser::State::Error);
    EXPECT_EQ(p.error_status(), 413);
}

TEST(HttpParser, RejectsChunkedTransferEncoding) {
    HttpRequestParser p;
    const std::string raw =
        "POST /whatif HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
    ASSERT_EQ(p.feed(raw), HttpRequestParser::State::Error);
    EXPECT_EQ(p.error_status(), 501);
}

TEST(HttpParser, RejectsTrailingBytesAfterBody) {
    HttpRequestParser p;
    const std::string raw =
        "POST /whatif HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}GARBAGE";
    ASSERT_EQ(p.feed(raw), HttpRequestParser::State::Error);
    EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParser, SerializeResponseCarriesFraming) {
    HttpResponse resp;
    resp.status = 429;
    resp.body = "{\"error\":\"busy\"}";
    resp.extra_headers.push_back({"Retry-After", "1"});
    const std::string wire = serve::serialize_response(resp);
    EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 16\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
    EXPECT_NE(wire.find("\r\n\r\n{\"error\":\"busy\"}"), std::string::npos);
}

// ----------------------------------------------------- canonicalization --

TEST(WhatIfQuery, OverrideOrderAndNumberSpellingCanonicalize) {
    const std::string a =
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"warm\","
        "\"overrides\":{\"scheduler\":\"greedy\",\"tdp_scale\":0.8}}";
    const std::string b =
        "{ \"overrides\" : {\"tdp_scale\": 8e-1, \"scheduler\": \"greedy\"},"
        "  \"snapshot\" : \"warm\", \"schema\":\"mcs.whatif_query.v1\" }";
    const serve::WhatIfQuery qa = serve::parse_whatif_query(a);
    const serve::WhatIfQuery qb = serve::parse_whatif_query(b);
    EXPECT_EQ(qa.snapshot, qb.snapshot);
    EXPECT_EQ(qa.overrides, qb.overrides);
    EXPECT_EQ(qa.overrides.at("tdp_scale"), "0.8");
}

TEST(WhatIfQuery, DifferentValuesProduceDifferentCacheKeys) {
    serve::SnapshotEntry entry;
    entry.config_fingerprint = "cfgfp";
    entry.structural_fingerprint = "structfp";
    entry.captured_now = 400 * kMillisecond;
    entry.captured_horizon = kSecond;

    serve::WhatIfQuery q1 = serve::parse_whatif_query(
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"w\","
        "\"overrides\":{\"tdp_scale\":0.8}}");
    serve::WhatIfQuery q2 = serve::parse_whatif_query(
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"w\","
        "\"overrides\":{\"tdp_scale\":0.80}}");
    serve::WhatIfQuery q3 = serve::parse_whatif_query(
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"w\","
        "\"overrides\":{\"tdp_scale\":0.9}}");
    serve::WhatIfQuery q4 = serve::parse_whatif_query(
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"w\","
        "\"overrides\":{\"tdp_scale\":0.8},\"seconds\":0.7}");

    EXPECT_EQ(serve::cache_key(entry, q1), serve::cache_key(entry, q2));
    EXPECT_NE(serve::cache_key(entry, q1), serve::cache_key(entry, q3));
    EXPECT_NE(serve::cache_key(entry, q1), serve::cache_key(entry, q4));

    // The key also pins the snapshot identity itself.
    serve::SnapshotEntry other = entry;
    other.config_fingerprint = "othercfg";
    EXPECT_NE(serve::cache_key(entry, q1), serve::cache_key(other, q1));
}

TEST(WhatIfQuery, RejectsBadInput) {
    // Missing schema tag.
    EXPECT_THROW(serve::parse_whatif_query("{\"snapshot\":\"w\"}"),
                 RequireError);
    // Structural key smuggled through overrides.
    EXPECT_THROW(
        serve::parse_whatif_query(
            "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"w\","
            "\"overrides\":{\"width\":16}}"),
        RequireError);
    // Non-scalar override value.
    EXPECT_THROW(
        serve::parse_whatif_query(
            "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"w\","
            "\"overrides\":{\"scheduler\":[\"greedy\"]}}"),
        RequireError);
    // Unknown top-level member.
    EXPECT_THROW(
        serve::parse_whatif_query(
            "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"w\","
            "\"bogus\":1}"),
        RequireError);
    // Negative horizon.
    EXPECT_THROW(
        serve::parse_whatif_query(
            "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"w\","
            "\"seconds\":-1}"),
        RequireError);
    // Malformed JSON and a nesting bomb (network-input limits).
    EXPECT_THROW(serve::parse_whatif_query("{\"schema\":"), RequireError);
    EXPECT_THROW(serve::parse_whatif_query(std::string(64, '[')),
                 RequireError);
}

TEST(WhatIfQuery, AllowedOverridesAreThePolicyKnobs) {
    EXPECT_TRUE(serve::is_allowed_override("scheduler"));
    EXPECT_TRUE(serve::is_allowed_override("tdp_scale"));
    EXPECT_TRUE(serve::is_allowed_override("guard_band"));
    EXPECT_FALSE(serve::is_allowed_override("width"));
    EXPECT_FALSE(serve::is_allowed_override("seed"));
    EXPECT_FALSE(serve::is_allowed_override("occupancy"));
}

// ------------------------------------------------------------ the cache --

TEST(ResultCache, LruEvictionAndRefresh) {
    serve::ResultCache cache(2);
    auto val = [](const char* s) {
        return std::make_shared<const std::string>(s);
    };
    cache.insert("a", val("A"));
    cache.insert("b", val("B"));
    ASSERT_NE(cache.find("a"), nullptr);  // refreshes "a" -> "b" is LRU
    cache.insert("c", val("C"));          // evicts "b"
    EXPECT_EQ(cache.find("b"), nullptr);
    EXPECT_NE(cache.find("a"), nullptr);
    EXPECT_NE(cache.find("c"), nullptr);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ResultCache, DuplicateInsertKeepsFirstValue) {
    // Two workers racing on the same miss must converge on one answer.
    serve::ResultCache cache(4);
    cache.insert("k", std::make_shared<const std::string>("first"));
    cache.insert("k", std::make_shared<const std::string>("second"));
    ASSERT_NE(cache.find("k"), nullptr);
    EXPECT_EQ(*cache.find("k"), "first");
}

TEST(ResultCache, ZeroCapacityDisablesCaching) {
    serve::ResultCache cache(0);
    cache.insert("k", std::make_shared<const std::string>("v"));
    EXPECT_EQ(cache.find("k"), nullptr);
    EXPECT_EQ(cache.size(), 0u);
}

// ------------------------------------------------ snapshots + service --

/// The differential-baseline run expressed as repo Config keys, so
/// system_config_from(base) reproduces the captured structure.
Config serve_base_config() {
    Config cfg;
    cfg.set("side", "4");
    cfg.set("seed", "42");
    cfg.set("min_tasks", "2");
    cfg.set("max_tasks", "6");
    cfg.set("occupancy", "0.5");
    return cfg;
}

/// Runs the base config to 1 s, checkpointing at 400 ms, and returns the
/// snapshot document.
telemetry::JsonValue make_snapshot_doc(const Config& base) {
    TempFile file("serve_snapshot");
    ManycoreSystem sys(system_config_from(base));
    sys.checkpoint_at(400 * kMillisecond, file.path());
    sys.run(kSecond);
    return load_snapshot_file(file.path());
}

TEST(SnapshotPool, StructuralMismatchIsRejectedAtLoad) {
    const Config base = serve_base_config();
    telemetry::JsonValue doc = make_snapshot_doc(base);

    Config wrong = base;
    wrong.set("side", "6");  // different geometry than the captured chip
    EXPECT_THROW(
        serve::SnapshotPool::from_document("warm", doc, wrong),
        RequireError);

    // Policy knobs are non-structural: forking them must be accepted.
    Config forked = base;
    forked.set("scheduler", "greedy");
    serve::SnapshotPool pool =
        serve::SnapshotPool::from_document("warm", std::move(doc), forked);
    ASSERT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.entries()[0].captured_now, 400 * kMillisecond);
    EXPECT_EQ(pool.entries()[0].captured_horizon, kSecond);
}

HttpRequest whatif_request(const std::string& body) {
    HttpRequest req;
    req.method = "POST";
    req.path = "/whatif";
    req.body = body;
    return req;
}

std::string header(const HttpResponse& resp, const std::string& name) {
    for (const auto& [k, v] : resp.extra_headers) {
        if (k == name) return v;
    }
    return "";
}

class ServeServiceTest : public ::testing::Test {
protected:
    ServeServiceTest()
        : base_(serve_base_config()),
          service_(serve::SnapshotPool::from_document(
                       "warm", make_snapshot_doc(base_), base_),
                   serve::ServiceOptions{}, registry_) {}

    Config base_;
    telemetry::MetricsRegistry registry_;
    serve::ServeService service_;
};

TEST_F(ServeServiceTest, CachedResponseIsByteIdenticalToFresh) {
    const std::string body =
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"warm\","
        "\"overrides\":{\"scheduler\":\"greedy\",\"tdp_scale\":0.8}}";

    const HttpResponse fresh = service_.handle(whatif_request(body));
    ASSERT_EQ(fresh.status, 200) << fresh.body;
    EXPECT_EQ(header(fresh, "X-Cache"), "miss");

    const HttpResponse cached = service_.handle(whatif_request(body));
    ASSERT_EQ(cached.status, 200);
    EXPECT_EQ(header(cached, "X-Cache"), "hit");
    EXPECT_EQ(cached.body, fresh.body);  // the headline byte-identity

    // A semantically identical but differently spelled query also hits --
    // and yields the same bytes.
    const std::string respelled =
        "{\"snapshot\":\"warm\",\"overrides\":{\"tdp_scale\":8e-1,"
        "\"scheduler\":\"greedy\"},\"schema\":\"mcs.whatif_query.v1\"}";
    const HttpResponse canonical = service_.handle(whatif_request(respelled));
    ASSERT_EQ(canonical.status, 200);
    EXPECT_EQ(header(canonical, "X-Cache"), "hit");
    EXPECT_EQ(canonical.body, fresh.body);

    // And both match a direct, service-free computation.
    const serve::SnapshotEntry* entry = service_.pool().find("warm");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(serve::compute_whatif(*entry, serve::parse_whatif_query(body)),
              fresh.body);
}

TEST_F(ServeServiceTest, ShorterHorizonIsAValidFork) {
    const std::string body =
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"warm\","
        "\"seconds\":0.7}";
    const HttpResponse resp = service_.handle(whatif_request(body));
    EXPECT_EQ(resp.status, 200) << resp.body;
}

TEST_F(ServeServiceTest, HorizonOutsideCapturedWindowIs400) {
    // Past the captured horizon: the arrival trace ends there.
    EXPECT_EQ(service_
                  .handle(whatif_request(
                      "{\"schema\":\"mcs.whatif_query.v1\","
                      "\"snapshot\":\"warm\",\"seconds\":5}"))
                  .status,
              400);
    // Before the capture point: nothing left to simulate.
    EXPECT_EQ(service_
                  .handle(whatif_request(
                      "{\"schema\":\"mcs.whatif_query.v1\","
                      "\"snapshot\":\"warm\",\"seconds\":0.2}"))
                  .status,
              400);
}

TEST_F(ServeServiceTest, RoutesAndErrorPaths) {
    HttpRequest healthz;
    healthz.method = "GET";
    healthz.path = "/healthz";
    const HttpResponse h = service_.handle(healthz);
    EXPECT_EQ(h.status, 200);
    EXPECT_NE(h.body.find("\"status\""), std::string::npos);

    HttpRequest snapshots;
    snapshots.method = "GET";
    snapshots.path = "/snapshots";
    EXPECT_EQ(service_.handle(snapshots).status, 200);

    HttpRequest metrics;
    metrics.method = "GET";
    metrics.path = "/metrics";
    const HttpResponse m = service_.handle(metrics);
    EXPECT_EQ(m.status, 200);
    EXPECT_NO_THROW(telemetry::parse_json(m.body));

    HttpRequest wrong_method;
    wrong_method.method = "DELETE";
    wrong_method.path = "/whatif";
    EXPECT_EQ(service_.handle(wrong_method).status, 405);

    HttpRequest unknown;
    unknown.method = "GET";
    unknown.path = "/nope";
    EXPECT_EQ(service_.handle(unknown).status, 404);

    // Unknown snapshot name -> 404 with a JSON error body.
    const HttpResponse missing = service_.handle(whatif_request(
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"cold\"}"));
    EXPECT_EQ(missing.status, 404);
    EXPECT_NE(missing.body.find("\"error\""), std::string::npos);

    // Malformed body -> 400, not a crash.
    EXPECT_EQ(service_.handle(whatif_request("not json")).status, 400);
}

TEST_F(ServeServiceTest, MetricsCountHitsAndMisses) {
    const std::string body =
        "{\"schema\":\"mcs.whatif_query.v1\",\"snapshot\":\"warm\","
        "\"overrides\":{\"scheduler\":\"none\"}}";
    service_.handle(whatif_request(body));
    service_.handle(whatif_request(body));

    HttpRequest metrics;
    metrics.method = "GET";
    metrics.path = "/metrics";
    const std::string m = service_.handle(metrics).body;
    const telemetry::JsonValue doc = telemetry::parse_json(m);
    const telemetry::JsonValue& counters = doc.at("counters");
    EXPECT_EQ(counters.at("serve.cache_misses").number, 1.0);
    EXPECT_EQ(counters.at("serve.cache_hits").number, 1.0);
    EXPECT_EQ(counters.at("serve.whatif_requests").number, 2.0);
}

}  // namespace
}  // namespace mcs
